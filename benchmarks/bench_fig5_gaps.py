"""Fig. 5 / Tables 2–11: relative estimation-gap percentiles at input
sizes 10/100/1000 for every benchmark, method, and mode."""

import pytest

from repro.evalharness import render_gap_table
from repro.evalharness.gaps import benchmark_gaps
from repro.suite import benchmark_names

#: the five benchmarks shown in the main-paper Fig. 5
FIG5 = ("QuickSort", "QuickSelect", "MedianOfMedians", "Round", "EvenOddTail")


@pytest.mark.parametrize("name", FIG5)
def test_fig5_panel(benchmark, runs, name):
    run = runs.get(name)
    cells = benchmark.pedantic(lambda: benchmark_gaps(run), rounds=1, iterations=1)
    print()
    print(render_gap_table(run))
    for cell in cells:
        key = f"{cell.mode}/{cell.method}@{cell.size}"
        benchmark.extra_info[key] = {p: round(v, 2) for p, v in cell.percentiles.items()}
    # the qualitative Fig. 5 claim: at size 1000 hybrid gaps dominate
    # data-driven gaps for the Bayesian methods (where hybrid exists)
    by = {(c.size, c.mode, c.method): c for c in cells}
    for method in ("bayeswc", "bayespc"):
        dd = by.get((1000, "data-driven", method))
        hy = by.get((1000, "hybrid", method))
        if dd and hy:
            assert hy.percentiles[50] >= dd.percentiles[50] - 0.05


@pytest.mark.parametrize("name", sorted(set(benchmark_names()) - set(FIG5)))
def test_appendix_gap_table(benchmark, runs, name):
    """Tables 2–11 cover all 10 benchmarks; render the remaining five."""
    run = runs.get(name)
    cells = benchmark.pedantic(lambda: benchmark_gaps(run), rounds=1, iterations=1)
    print()
    print(render_gap_table(run))
    assert cells
