"""Ablations for the design choices DESIGN.md §5 calls out:

1. dataset size N — Theorem 6.2: soundness converges as N grows when
   worst-case inputs have positive probability;
2. posterior sample count M — stability of the soundness fraction;
3. BayesWC noise model (Gumbel vs normal vs logistic);
4. LP objective mode (sum vs degree-prioritized);
5. polynomial degree (wrong-degree behaviour on InsertionSort2).
"""

import numpy as np
import pytest
from dataclasses import replace

from repro import AnalysisConfig, collect_dataset, compile_program, run_analysis
from repro.lang import from_python
from repro.suite import get_benchmark
from repro.suite.generators import sorted_ascending_expensive


def _quicksort_setup():
    spec = get_benchmark("QuickSort")
    return spec, compile_program(spec.hybrid_source)


def test_theorem62_convergence_in_N(benchmark):
    """Mix worst-case inputs in with probability 0.2; soundness of Hybrid
    Opt (the weakest method) improves monotonically-ish with N."""
    spec, program = _quicksort_setup()
    rng = np.random.default_rng(0)
    config = AnalysisConfig(degree=2, num_posterior_samples=5, seed=0)

    def dataset_of_size(num_runs):
        inputs = []
        for i in range(num_runs):
            n = int(rng.integers(5, 60))
            if rng.uniform() < 0.2:
                inputs.append([sorted_ascending_expensive(n, 5)])
            else:
                inputs.append(spec.generator(rng, n))
        return collect_dataset(program, spec.hybrid_entry, inputs)

    def sweep():
        fractions = []
        for num_runs in (4, 16, 64):
            dataset = dataset_of_size(num_runs)
            result = run_analysis(program, spec.hybrid_entry, dataset, config, "opt")
            # Theorem 6.2 claims soundness up to the size limit m present
            # in the data (here 60), not for unboundedly large inputs
            fractions.append(
                result.soundness_fraction(spec.truth, range(1, 60), spec.shape_fn)
            )
        return fractions

    fractions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nTheorem 6.2 sweep (N=4,16,64 runs): sound fractions {fractions}")
    benchmark.extra_info["fractions"] = fractions
    assert fractions[-1] >= fractions[0]
    assert fractions[-1] >= 0.9  # worst-case inputs present => Opt sound on m


def test_posterior_size_M_stability(benchmark, runs):
    """The Hybrid BayesWC soundness fraction is stable in M."""
    spec = get_benchmark("QuickSort")
    program = compile_program(spec.hybrid_source)
    rng = np.random.default_rng(1)
    inputs = [spec.generator(rng, n) for n in range(5, 81, 5) for _ in range(2)]
    dataset = collect_dataset(program, spec.hybrid_entry, inputs)

    def sweep():
        out = {}
        for m in (5, 20, 60):
            config = AnalysisConfig(degree=2, num_posterior_samples=m, seed=0)
            result = run_analysis(program, spec.hybrid_entry, dataset, config, "bayeswc")
            out[m] = result.soundness_fraction(spec.truth, range(1, 1001), spec.shape_fn)
        return out

    fractions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nM sweep: {fractions}")
    values = list(fractions.values())
    assert max(values) - min(values) <= 0.35


@pytest.mark.parametrize("noise", ["gumbel", "normal", "logistic"])
def test_noise_model_ablation(benchmark, noise):
    """Eq. 5.12 noise choices: all keep the data-soundness property; the
    Gumbel default has the heaviest worst-case tail (largest bounds)."""
    spec = get_benchmark("QuickSort")
    program = compile_program(spec.hybrid_source)
    rng = np.random.default_rng(2)
    inputs = [spec.generator(rng, n) for n in range(5, 61, 5) for _ in range(2)]
    dataset = collect_dataset(program, spec.hybrid_entry, inputs)
    config = AnalysisConfig(degree=2, num_posterior_samples=15, seed=0)
    config = config.with_(bayeswc=replace(config.bayeswc, noise=noise))

    result = benchmark.pedantic(
        lambda: run_analysis(program, spec.hybrid_entry, dataset, config, "bayeswc"),
        rounds=1,
        iterations=1,
    )
    assert result.failures == 0
    from repro.aara.bound import synthetic_list

    median = float(
        np.median([b.evaluate([synthetic_list(100)]) for b in result.bounds])
    )
    print(f"\nnoise={noise}: median bound at n=100 = {median:.0f}")
    benchmark.extra_info["median_at_100"] = median
    assert median > 0


@pytest.mark.parametrize("objective", ["sum", "degree"])
def test_objective_mode_ablation(benchmark, objective):
    """Section 6.1's objective choice changes where the bound's mass goes:
    degree-prioritized minimization pushes cost into low-degree terms."""
    spec = get_benchmark("QuickSort")
    program = compile_program(spec.hybrid_source)
    rng = np.random.default_rng(3)
    inputs = [spec.generator(rng, n) for n in range(5, 81, 5) for _ in range(2)]
    dataset = collect_dataset(program, spec.hybrid_entry, inputs)
    config = AnalysisConfig(degree=2, num_posterior_samples=5, seed=0, objective=objective)

    result = benchmark.pedantic(
        lambda: run_analysis(program, spec.hybrid_entry, dataset, config, "opt"),
        rounds=1,
        iterations=1,
    )
    bound = result.bounds[0]
    print(f"\nobjective={objective}: {bound.describe()}")
    benchmark.extra_info["bound"] = bound.describe()


def test_degree_ablation_insertion_sort2(benchmark):
    """At degree 2 the data-driven fit can waste mass in the quadratic
    coefficient; at the true degree 1 the bound tracks the linear truth."""
    spec = get_benchmark("InsertionSort2")
    program = compile_program(spec.data_driven_source)
    rng = np.random.default_rng(4)
    inputs = [spec.generator(rng, n) for n in range(5, 81, 5) for _ in range(2)]
    dataset = collect_dataset(program, spec.data_driven_entry, inputs)

    def sweep():
        out = {}
        for degree in (1, 2):
            config = AnalysisConfig(degree=degree, num_posterior_samples=5, seed=0)
            result = run_analysis(
                program, spec.data_driven_entry, dataset, config, "opt"
            )
            out[degree] = result.bounds[0]
        return out

    bounds = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.aara.bound import synthetic_list

    print()
    for degree, bound in bounds.items():
        value = bound.evaluate([synthetic_list(1000)])
        print(f"degree {degree}: {bound.describe()}  -> bound(1000) = {value:.0f}")
    v1 = bounds[1].evaluate([synthetic_list(1000)])
    v2 = bounds[2].evaluate([synthetic_list(1000)])
    assert v1 <= v2 + 1e-6  # the right degree never extrapolates worse


@pytest.mark.parametrize("algorithm", ["hmc", "nuts"])
def test_sampler_backend_ablation(benchmark, algorithm):
    """HMC vs NUTS for BayesWC's survival posterior: both keep the
    data-soundness invariant; NUTS needs no leapfrog-count tuning."""
    spec = get_benchmark("QuickSort")
    program = compile_program(spec.hybrid_source)
    rng = np.random.default_rng(5)
    inputs = [spec.generator(rng, n) for n in range(5, 61, 5)]
    dataset = collect_dataset(program, spec.hybrid_entry, inputs)
    config = AnalysisConfig(degree=2, num_posterior_samples=10, seed=0)
    config = config.with_(sampler=replace(config.sampler, algorithm=algorithm))

    result = benchmark.pedantic(
        lambda: run_analysis(program, spec.hybrid_entry, dataset, config, "bayeswc"),
        rounds=1,
        iterations=1,
    )
    assert result.failures == 0
    sound = result.soundness_fraction(spec.truth, range(1, 61), spec.shape_fn)
    print(f"\nsampler={algorithm}: sound fraction on data range = {sound:.2f}")
    benchmark.extra_info["sound"] = sound
    assert sound >= 0.8
