"""Appendix C (Figs. 8–24): inferred-bound plots for all 10 benchmarks.

For each benchmark we emit, per analysis mode and method, the bound curve
series (truth, median, 10–90th band) over the benchmark's data-size range
— the numeric content of each Appendix C figure."""

import pytest

from repro.evalharness import fig6_curves, render_curve
from repro.suite import benchmark_names, get_benchmark


@pytest.mark.parametrize("name", sorted(benchmark_names()))
def test_appendix_curves(benchmark, runs, name):
    spec = get_benchmark(name)
    run = runs.get(name)
    lo, hi = min(spec.data_sizes), max(spec.data_sizes)
    step = max(1, (hi - lo) // 10)
    sizes = list(range(lo, hi + 1, step))

    series_list = benchmark.pedantic(
        lambda: fig6_curves(run, sizes), rounds=1, iterations=1
    )
    assert series_list
    print()
    for series in series_list:
        print(render_curve(series))
        print()
    # every posterior band must dominate the runtime data it was fit on:
    # the median bound at the largest data size >= the observed max there
    scatter_max = 0.0
    for series in series_list:
        for size, cost in series.scatter:
            if abs(size - hi) < 1e-9:
                scatter_max = max(scatter_max, cost)
    for series in series_list:
        if series.mode == "data-driven" and scatter_max > 0:
            assert series.median[-1] >= 0.6 * scatter_max
