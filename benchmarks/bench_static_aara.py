"""Section 2 claims: conventional AARA on the analyzable quicksort.

"Assuming each comparison has cost 1, RaML correctly infers the tight
bound n(n-1)/2 for quicksort in less than 0.1 seconds."  We measure our
implementation's static analysis on the same program (here the LP solve
dominates; pytest-benchmark reports the wall time) and check tightness.
Also covers the Table 1 "Conventional AARA" verdicts for all benchmarks.
"""

import pytest

from repro.aara import analyze_program, run_conventional, synthetic_list
from repro.evalharness.table1 import conventional_label
from repro.lang import compile_program
from repro.suite import all_benchmarks

QUICKSORT = """
let rec append xs ys =
  match xs with [] -> ys | hd :: tl -> hd :: append tl ys

let rec partition pivot xs =
  match xs with
  | [] -> ([], [])
  | hd :: tl ->
    let lower, upper = partition pivot tl in
    let _ = Raml.tick 1.0 in
    if hd <= pivot then (hd :: lower, upper) else (lower, hd :: upper)

let rec quicksort xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let lower, upper = partition hd tl in
    let ls = quicksort lower in
    let us = quicksort upper in
    append ls (hd :: us)
"""


def test_static_quicksort_tight_bound(benchmark):
    program = compile_program(QUICKSORT)
    result = benchmark(
        lambda: analyze_program(program, "quicksort", 2, stat_mode="transparent")
    )
    bound = result.bound
    for n in (10, 50, 200):
        assert bound.evaluate([synthetic_list(n)]) == pytest.approx(
            n * (n - 1) / 2, rel=1e-6, abs=1e-3
        )
    print(f"\nstatic quicksort bound: {bound.describe()}")


@pytest.mark.parametrize("spec", all_benchmarks(), ids=lambda s: s.name)
def test_conventional_verdicts(benchmark, spec):
    """Table 1 column 2: Cannot Analyze / Wrong Degree for every benchmark."""
    program = compile_program(spec.data_driven_source)
    verdict = benchmark.pedantic(
        lambda: run_conventional(program, spec.data_driven_entry, max_degree=3),
        rounds=1,
        iterations=1,
    )
    label = conventional_label(spec, verdict)
    print(f"\n{spec.name}: {label} ({verdict.status}, {verdict.runtime_seconds:.2f}s)")
    benchmark.extra_info["verdict"] = label
    expected = {
        "cannot-analyze": "Cannot Analyze",
        "wrong-degree": "Wrong Degree",
    }[spec.expected_conventional]
    assert label == expected
