"""Fig. 2: the three data-driven approaches on one synthetic dataset —
(a) Opt's single LP fit, (b) BayesWC's survival posterior feeding LPs,
(c) BayesPC's posterior over polynomial coefficients."""

import numpy as np

from repro import AnalysisConfig, collect_dataset, compile_program, run_analysis
from repro.aara.bound import synthetic_list
from repro.lang import from_python

SRC = """
let incur_cost hd =
  if (hd mod 4) = 0 then Raml.tick 1.0 else Raml.tick 0.6

let rec work xs =
  match xs with
  | [] -> 0
  | hd :: tl -> let _ = incur_cost hd in 1 + work tl

let work2 xs = Raml.stat (work xs)
"""

SIZES = list(range(2, 41, 2))


def test_fig2_three_methods(benchmark, runs):
    program = compile_program(SRC)
    rng = np.random.default_rng(0)
    inputs = [
        [from_python([int(v) for v in rng.integers(0, 100, n)])]
        for n in SIZES
        for _ in range(3)
    ]
    dataset = collect_dataset(program, "work2", inputs)
    config = AnalysisConfig(degree=1, num_posterior_samples=30, seed=0)

    def build():
        return {
            method: run_analysis(program, "work2", dataset, config, method)
            for method in ("opt", "bayeswc", "bayespc")
        }

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    print()
    print("=== Fig.2: observed data (size, max cost) ===")
    maxima = dataset["work2#1"].max_costs()
    for key in sorted(maxima):
        print(f"  n={key[0]:3d}  cmax={maxima[key]:6.1f}")
    print()
    header = f"{'n':>4s} " + " ".join(f"{m:>12s}" for m in results)
    print("=== Fig.2: inferred bound curves (posterior medians) ===")
    print(header)
    for n in (5, 10, 20, 40, 80):
        row = [f"{n:>4d}"]
        for method, result in results.items():
            values = [b.evaluate([synthetic_list(n)]) for b in result.bounds]
            row.append(f"{float(np.median(values)):12.2f}")
        print(" ".join(row))

    # all three must dominate every observed maximum (soundness w.r.t. data,
    # Theorem 6.1) ...
    for method, result in results.items():
        for key, cmax in maxima.items():
            n = key[0]
            for bound in result.bounds:
                assert bound.evaluate([synthetic_list(n)]) >= cmax - 1e-6, method
    # ... and the Bayesian methods account for unseen worst cases: their
    # median bound at the largest size exceeds the Opt point estimate
    opt_at_40 = results["opt"].bounds[0].evaluate([synthetic_list(40)])
    for method in ("bayeswc", "bayespc"):
        med = float(
            np.median([b.evaluate([synthetic_list(40)]) for b in results[method].bounds])
        )
        benchmark.extra_info[f"{method}_over_opt"] = round(med / opt_at_40, 3)
        assert med >= opt_at_40 - 1e-6
