"""Table 1: percentage of sound inferred bounds and analysis runtime for
all 10 benchmark programs × {Opt, BayesWC, BayesPC} × {data-driven, hybrid}.

Each bench runs one benchmark's full protocol once (pedantic mode) and
prints the Table 1 rows; the module-level summary bench renders the whole
table from the cached runs.

Execution goes through the ``repro.evalharness.runner`` task graph: set
``REPRO_BENCH_JOBS=4`` to fan each benchmark's method × mode cells out
over 4 worker processes, and ``REPRO_BENCH_CACHE=DIR`` to memoize
completed cells on disk (see ``conftest.py``).
"""

import pytest

from repro.evalharness import render_table1
from repro.suite import benchmark_names

ALL = sorted(benchmark_names())


@pytest.mark.parametrize("name", ALL)
def test_table1_row(benchmark, runs, name):
    run = benchmark.pedantic(lambda: runs.get(name), rounds=1, iterations=1)
    for method in ("opt", "bayeswc", "bayespc"):
        for mode in ("data-driven", "hybrid"):
            sound = run.soundness(mode, method)
            benchmark.extra_info[f"{mode}/{method}/sound"] = (
                None if sound is None else round(100 * sound, 1)
            )
            rt = run.runtime(mode, method)
            benchmark.extra_info[f"{mode}/{method}/runtime_s"] = (
                None if rt is None else round(rt, 2)
            )
    benchmark.extra_info["conventional"] = run.conventional_label
    print()
    print(render_table1([run]))


def test_table1_full(benchmark, runs):
    """Render the complete Table 1 from the cached per-benchmark runs."""

    def build():
        return [runs.get(name) for name in ALL]

    all_runs = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table1(all_runs)
    print()
    print(table)
    # paper invariants that must reproduce:
    by_name = {run.spec.name: run for run in all_runs}
    # (1) Opt never returns a sound bound on the data-driven side
    for run in all_runs:
        assert (run.soundness("data-driven", "opt") or 0.0) <= 0.05, run.spec.name
    # (2) QuickSort hybrid Bayesian analyses are (near-)fully sound
    assert by_name["QuickSort"].soundness("hybrid", "bayeswc") >= 0.9
    assert by_name["QuickSort"].soundness("hybrid", "bayespc") >= 0.9
    # (3) BubbleSort/Round/EvenOddTail have no hybrid analysis (∅)
    for name in ("BubbleSort", "Round", "EvenOddTail"):
        assert not any(mode == "hybrid" for mode, _ in by_name[name].results)
