"""Fig. 4: BayesPC's feasible region vs Hybrid BayesPC's region restricted
by the conventional-AARA constraint set C0 (Eq. 6.3).

We build the quicksort analysis twice — data-driven (the polytope comes
only from the runtime data) and hybrid (the polytope additionally contains
the static AARA constraints) — and compare the posterior spread of the
quadratic resource coefficient: the C0 restriction concentrates it."""

import numpy as np

from repro.aara.bound import synthetic_list


def _coeff_at(bounds, n=100):
    return np.array([b.evaluate([synthetic_list(n)]) for b in bounds])


def test_fig4_restricted_region(benchmark, runs):
    run = benchmark.pedantic(
        lambda: runs.get("QuickSort"), rounds=1, iterations=1
    )
    dd = run.results[("data-driven", "bayespc")]
    hy = run.results[("hybrid", "bayespc")]

    dd_vals = _coeff_at(dd.bounds)
    hy_vals = _coeff_at(hy.bounds)
    print()
    print("=== Fig.4: posterior of the inferred bound at n=100 ===")
    print(f"  data-driven region : median {np.median(dd_vals):10.1f}  "
          f"IQR [{np.percentile(dd_vals, 25):.1f}, {np.percentile(dd_vals, 75):.1f}]")
    print(f"  hybrid (C0-restricted): median {np.median(hy_vals):10.1f}  "
          f"IQR [{np.percentile(hy_vals, 25):.1f}, {np.percentile(hy_vals, 75):.1f}]")
    print(f"  polytope dim: dd={dd.diagnostics.get('polytope_dim')}, "
          f"hybrid={hy.diagnostics.get('polytope_dim')}")

    benchmark.extra_info["dd_median"] = float(np.median(dd_vals))
    benchmark.extra_info["hybrid_median"] = float(np.median(hy_vals))

    # the restricted (hybrid) posterior must remain inside the AARA-feasible
    # region: every hybrid bound dominates every observed top-level cost,
    # and the hybrid posterior sits above the truth while the data-driven
    # posterior does not (Fig. 4's geometric point, measured functionally)
    truth_100 = run.spec.truth(100)
    assert np.median(hy_vals) >= truth_100 - 1e-6
    assert np.median(dd_vals) < np.median(hy_vals) + 1e-6
