"""Figs. 7–9: multivariate bound surfaces for MapAppend — median inferred
bound over the (|xs|, |ys|) grid for data-driven and hybrid analysis,
against the ground-truth plane 1.0·|xs|."""

import pytest

from repro.evalharness import mapappend_surface

GRID = list(range(0, 41, 8))


@pytest.mark.parametrize("mode", ["data-driven", "hybrid"])
def test_fig7_surfaces(benchmark, runs, mode):
    run = runs.get("MapAppend")

    def build():
        return {
            method: mapappend_surface(run, mode, method, GRID)
            for method in ("opt", "bayeswc", "bayespc")
        }

    surfaces = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    for method, surface in surfaces.items():
        if surface is None:
            continue
        print(f"=== Fig.7 {mode} / {method}: median bound over (n1, n2) ===")
        header = "n1\\n2 " + " ".join(f"{n2:>8d}" for n2 in surface.grid2)
        print(header)
        for i, n1 in enumerate(surface.grid1):
            row = " ".join(f"{surface.median[i][j]:8.2f}" for j in range(len(surface.grid2)))
            print(f"{n1:>5d} {row}")
        print()

    # ground truth is the plane 1.0*n1; the hybrid Bayesian surfaces must
    # lie above it (Fig. 7b), the data-driven Opt surface below (Fig. 7a)
    if mode == "hybrid":
        for method in ("bayeswc", "bayespc"):
            surface = surfaces[method]
            for i, n1 in enumerate(surface.grid1):
                for j in range(len(surface.grid2)):
                    assert surface.median[i][j] >= surface.truth[i][j] - 1e-6
    else:
        opt = surfaces["opt"]
        n1 = opt.grid1[-1]
        assert opt.median[-1][0] < n1  # below the 1.0*n1 plane at n2=0
