"""Sampler engine microbenchmark: ``batched`` vs ``perchain``.

A perf-regression guard for the lockstep sampler core.  Each test runs
the same cell-shaped sampling workload under both engines and

* **fails only on correctness** — the engines must produce bit-identical
  draws chain for chain (the equivalence contract), and
* **warns on slowdown** — if the batched engine is slower than perchain
  the test emits a warning and records the ratio in ``extra_info``, but
  stays green: wall-clock on shared CI runners is too noisy to gate on.

CI's bench-smoke job records the timings as ``BENCH_sampler.json``
(``--benchmark-json``) so engine-level perf history is diffable across
commits.  Locally::

    PYTHONPATH=src python -m pytest benchmarks/bench_sampler_engines.py \
        --benchmark-json BENCH_sampler.json -q
"""

import os
import warnings

import numpy as np
import pytest

from repro.config import BayesWCConfig
from repro.inference.bayespc import BayesPCDensity, LikelihoodRow
from repro.inference.bayeswc import build_survival_model
from repro.inference.dataset import Observation, StatDataset
from repro.inference.hyperparams import BayesPCHyperparams
from repro.lp import LinExpr
from repro.stats import BATCHED, ENV_SAMPLER, PERCHAIN
from repro.stats.hmc import HMCConfig, hmc_sample_chains
from repro.stats.polytope import AffineMap, Polytope, ReducedPolytope
from repro.stats.reflective_hmc import reflective_hmc_chains

pytestmark = pytest.mark.slow

#: cell shape mirroring a ``bench all`` stat label (chains × warmup)
CFG = HMCConfig(n_samples=32, n_warmup=150, n_leapfrog=20, initial_step_size=0.05)
N_CHAINS = 2


def under(engine, fn):
    previous = os.environ.get(ENV_SAMPLER)
    os.environ[ENV_SAMPLER] = engine
    try:
        return fn()
    finally:
        if previous is None:
            os.environ.pop(ENV_SAMPLER, None)
        else:
            os.environ[ENV_SAMPLER] = previous


def survival_cell():
    """BayesWC-shaped workload: fused survival density + starts."""
    observations = [
        Observation(env=(("n", i),), value=i, cost=0.7 * i + 0.5) for i in range(1, 13)
    ]
    model = build_survival_model(StatDataset("t", observations), BayesWCConfig())
    density = model.batched_density()
    dim = model.dim
    starts = np.random.default_rng(7).normal(size=(N_CHAINS, dim)) * 0.1
    return density, starts


def bayespc_cell():
    """BayesPC-shaped workload: fused reduced density + box polytope."""
    rng = np.random.default_rng(3)
    names = [f"c{i}" for i in range(4)]
    rows = [
        LikelihoodRow(
            LinExpr(
                {name: float(rng.uniform(0.2, 2.0)) for name in names},
                float(rng.uniform(0.0, 1.0)),
            ),
            float(rng.uniform(0.0, 0.4)),
        )
        for _ in range(25)
    ]
    density = BayesPCDensity(
        names, rows, BayesPCHyperparams(gamma0=5.0, theta0=1.0, theta1=1.0), names
    )
    dim = len(names)
    A = np.vstack([np.eye(dim), -np.eye(dim)])
    b = np.concatenate([np.full(dim, 2.0), np.zeros(dim)])
    polytope = Polytope(A=A, b=b, names=names)
    reduced = ReducedPolytope(
        polytope=polytope,
        affine=AffineMap(x0=np.zeros(dim), N=np.eye(dim)),
        names=names,
    )
    fused = density.scaled_reduced_density(reduced, np.ones(dim))
    starts = np.full((N_CHAINS, dim), 1.0) + rng.normal(size=(N_CHAINS, dim)) * 0.05
    return fused, polytope, starts


def assert_bit_identical(a, b):
    np.testing.assert_array_equal(a.samples, b.samples)
    assert a.divergences == b.divergences
    assert a.chain_diagnostics == b.chain_diagnostics


def record_ratio(benchmark, batched_s, perchain_s):
    ratio = perchain_s / batched_s if batched_s > 0 else float("inf")
    benchmark.extra_info["perchain_seconds"] = round(perchain_s, 4)
    benchmark.extra_info["batched_seconds"] = round(batched_s, 4)
    benchmark.extra_info["batched_speedup"] = round(ratio, 3)
    if ratio < 1.0:
        warnings.warn(
            f"batched engine slower than perchain ({batched_s:.3f}s vs "
            f"{perchain_s:.3f}s, ratio {ratio:.2f}x) — perf regression, "
            "not a failure",
            stacklevel=2,
        )


def test_hmc_engines(benchmark):
    import time

    density, starts = survival_cell()

    def run(engine):
        return under(
            engine,
            lambda: hmc_sample_chains(
                density, starts, CFG, np.random.default_rng(11)
            ),
        )

    t0 = time.perf_counter()
    perchain = run(PERCHAIN)
    perchain_s = time.perf_counter() - t0
    batched = benchmark.pedantic(lambda: run(BATCHED), rounds=3, iterations=1)
    batched_s = benchmark.stats.stats.min
    assert_bit_identical(batched, perchain)  # hard gate: correctness
    record_ratio(benchmark, batched_s, perchain_s)


def test_reflective_engines(benchmark):
    import time

    fused, polytope, starts = bayespc_cell()

    def run(engine):
        return under(
            engine,
            lambda: reflective_hmc_chains(
                fused, polytope, starts, CFG, np.random.default_rng(13)
            ),
        )

    t0 = time.perf_counter()
    perchain = run(PERCHAIN)
    perchain_s = time.perf_counter() - t0
    batched = benchmark.pedantic(lambda: run(BATCHED), rounds=3, iterations=1)
    batched_s = benchmark.stats.stats.min
    assert_bit_identical(batched, perchain)
    assert np.array_equal(batched.n_reflections, perchain.n_reflections)
    record_ratio(benchmark, batched_s, perchain_s)
