"""Fig. 1: quicksort overview — Opt vs data-driven BayesWC vs Hybrid
BayesWC posterior bound curves against the true n(n-1)/2 bound."""

from repro.evalharness import posterior_curve, render_ascii_curve, render_curve

SIZES = list(range(10, 201, 10))


def test_fig1_panels(benchmark, runs):
    run = runs.get("QuickSort")

    def build():
        return [
            posterior_curve(run, "data-driven", "opt", SIZES),
            posterior_curve(run, "data-driven", "bayeswc", SIZES),
            posterior_curve(run, "hybrid", "bayeswc", SIZES),
        ]

    panels = benchmark.pedantic(build, rounds=1, iterations=1)
    labels = ["(a) Opt DD", "(b) BayesWC DD", "(c) BayesWC Hybrid"]
    print()
    for label, series in zip(labels, panels):
        print(f"=== Fig.1 {label} ===")
        print(render_ascii_curve(series, log_y=True))
        print()
        print(render_curve(series))
        print()

    opt_dd, wc_dd, wc_hy = panels
    spec = run.spec
    sizes = range(1, 1001)
    sound = {
        "opt_dd": run.results[("data-driven", "opt")].soundness_fraction(spec.truth, sizes, spec.shape_fn),
        "wc_dd": run.results[("data-driven", "bayeswc")].soundness_fraction(spec.truth, sizes, spec.shape_fn),
        "wc_hy": run.results[("hybrid", "bayeswc")].soundness_fraction(spec.truth, sizes, spec.shape_fn),
    }
    benchmark.extra_info.update({k: round(v, 3) for k, v in sound.items()})
    # the Fig. 1 ordering: Opt (0/1000) < data-driven BayesWC (28/1000)
    # < Hybrid BayesWC (471/1000)
    assert sound["opt_dd"] <= sound["wc_dd"] + 0.05
    assert sound["wc_dd"] < sound["wc_hy"]
    # the hybrid 10–90th band sits above the true bound at every size
    assert all(lo >= t - 1e-6 for lo, t in zip(wc_hy.band_low, wc_hy.truth))
