"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Analysis runs
are expensive, so a session-scoped cache shares them between benches; the
first bench touching a benchmark pays its cost (and reports it via
pytest-benchmark), later benches reuse the result.

Execution goes through ``repro.evalharness.runner``:

* ``REPRO_BENCH_JOBS=N`` fans the benchmark × method × mode grid out on
  ``N`` worker processes (one persistent pool for the whole session);
* ``REPRO_BENCH_CACHE=DIR`` memoizes completed tasks on disk, so a
  second run of e.g. ``bench_table1.py`` only recomputes rows whose
  program source, config, or seed changed;
* ``REPRO_BENCH_METRICS=PATH`` writes the per-task structured metrics
  report (timing, RSS, retries, cache hits) at session end.

The posterior sample count M defaults to a laptop-friendly value; set
``REPRO_BENCH_SAMPLES`` (and optionally ``REPRO_BENCH_SEED``) to scale up
towards the paper's M = 1000.
"""

import os

import pytest

from repro.config import AnalysisConfig
from repro.evalharness import EvalRunner, RunnerReport, run_benchmark
from repro.suite import get_benchmark

BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "15"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None
BENCH_METRICS = os.environ.get("REPRO_BENCH_METRICS") or None


class RunCache:
    def __init__(self):
        self._runs = {}
        self.runner = EvalRunner(jobs=BENCH_JOBS, cache_dir=BENCH_CACHE)

    def get(self, name, methods=("opt", "bayeswc", "bayespc"), samples=None):
        samples = samples or BENCH_SAMPLES
        key = (name, tuple(sorted(methods)), samples)
        if key not in self._runs:
            spec = get_benchmark(name)
            config = AnalysisConfig(
                num_posterior_samples=samples,
                seed=BENCH_SEED,
                jobs=BENCH_JOBS,
                cache_dir=BENCH_CACHE,
            )
            self._runs[key] = run_benchmark(
                spec, config, seed=BENCH_SEED, methods=methods, runner=self.runner
            )
        return self._runs[key]

    def close(self):
        if BENCH_METRICS:
            report = RunnerReport(
                tasks=[],
                outcomes=self.runner.history,
                jobs=self.runner.jobs,
                wall_seconds=0.0,
            )
            report.write_metrics(BENCH_METRICS)
        self.runner.close()


@pytest.fixture(scope="session")
def runs():
    cache = RunCache()
    yield cache
    cache.close()
