"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Analysis runs
are expensive, so a session-scoped cache shares them between benches; the
first bench touching a benchmark pays its cost (and reports it via
pytest-benchmark), later benches reuse the result.

The posterior sample count M defaults to a laptop-friendly value; set
``REPRO_BENCH_SAMPLES`` (and optionally ``REPRO_BENCH_SEED``) to scale up
towards the paper's M = 1000.
"""

import os

import pytest

from repro.config import AnalysisConfig
from repro.evalharness import run_benchmark
from repro.suite import get_benchmark

BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "15"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


class RunCache:
    def __init__(self):
        self._runs = {}

    def get(self, name, methods=("opt", "bayeswc", "bayespc"), samples=None):
        samples = samples or BENCH_SAMPLES
        key = (name, tuple(sorted(methods)), samples)
        if key not in self._runs:
            spec = get_benchmark(name)
            config = AnalysisConfig(num_posterior_samples=samples, seed=BENCH_SEED)
            self._runs[key] = run_benchmark(
                spec, config, seed=BENCH_SEED, methods=methods
            )
        return self._runs[key]


@pytest.fixture(scope="session")
def runs():
    return RunCache()
