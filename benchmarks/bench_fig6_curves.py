"""Fig. 6 (and the per-benchmark plots of Figs. 10–24): posterior bound
curves — runtime data, true bound, median and 10–90th-percentile band —
for the benchmarks the main paper plots."""

import pytest

from repro.evalharness import fig6_curves, render_curve

#: benchmark -> plotted size range (matching the paper's x-axes)
PANELS = {
    "QuickSort": list(range(10, 201, 10)),
    "QuickSelect": list(range(10, 131, 10)),
    "MedianOfMedians": list(range(10, 131, 10)),
    "Round": list(range(10, 201, 10)),
    "EvenOddTail": list(range(10, 131, 10)),
}


@pytest.mark.parametrize("name", sorted(PANELS))
def test_fig6_benchmark_curves(benchmark, runs, name):
    run = runs.get(name)
    sizes = PANELS[name]
    series_list = benchmark.pedantic(
        lambda: fig6_curves(run, sizes), rounds=1, iterations=1
    )
    assert series_list, "no analysis produced curves"
    print()
    for series in series_list:
        print(render_curve(series))
        print()
        benchmark.extra_info[f"{series.mode}/{series.method}/median_at_max"] = round(
            series.median[-1], 1
        )
    # hybrid medians dominate data-driven medians at the largest size for
    # the Bayesian methods (the Fig. 6 visual takeaway), where both exist
    by_key = {(s.mode, s.method): s for s in series_list}
    for method in ("bayeswc", "bayespc"):
        dd = by_key.get(("data-driven", method))
        hy = by_key.get(("hybrid", method))
        if dd and hy:
            assert hy.median[-1] >= dd.median[-1] * 0.8
