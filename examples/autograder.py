"""Application: auto-grading student submissions (paper Section 1).

The paper lists auto-grading of programming assignments as a Hybrid-AARA
application: the grader checks that a submission meets the assignment's
complexity requirement even when the code defeats purely static analysis.

Assignment: "implement a sorting routine using at most O(n^2) comparisons,
and your `find_min`-style helper must make the overall cost linear if you
use a single pass."  We grade three submissions of `count_occurrences`
(count how often a key occurs):

* student A — a clean linear scan                 (expected: pass, linear)
* student B — a scan that restarts once per element (quadratic; fail)
* student C — linear scan behind a comparator that static analysis
              cannot see through                   (pass — needs hybrid!)

The grader infers a posterior of cost bounds per submission and accepts a
submission when the posterior median at n=1000 stays within 3x of the
reference linear budget.

Run:  python examples/autograder.py
"""

import numpy as np

from repro import AnalysisConfig, collect_dataset, compile_program, run_analysis, run_conventional
from repro.aara.bound import synthetic_list
from repro.lang import from_python

STUDENT_A = """
let rec count key xs =
  match xs with
  | [] -> 0
  | hd :: tl ->
    let _ = Raml.tick 1.0 in
    if hd = key then 1 + count key tl else count key tl
"""

STUDENT_B = """
let rec scan_from key xs =
  match xs with
  | [] -> 0
  | hd :: tl ->
    let _ = Raml.tick 1.0 in
    if hd = key then 1 else scan_from key tl

let rec count key xs =
  match xs with
  | [] -> 0
  | hd :: tl -> scan_from key xs + count key tl
"""

STUDENT_C = """
let rec count key xs =
  match xs with
  | [] -> 0
  | hd :: tl ->
    let _ = Raml.tick 1.0 in
    if complex_eq hd key then 1 + count key tl else count key tl
"""


def grade(name: str, source: str, budget_at_1000: float) -> None:
    # wrap for data-driven fallback
    wrapped = source + "\nlet count2 key xs = Raml.stat (count key xs)\n"
    program = compile_program(wrapped)

    verdict = run_conventional(program, "count", max_degree=2)
    if verdict.succeeded:
        bound = verdict.bound.evaluate([0, synthetic_list(1000)])
        how = f"static AARA (degree {verdict.degree})"
    else:
        rng = np.random.default_rng(0)
        inputs = [
            [5, from_python([int(v) for v in rng.integers(0, 10, n)])]
            for n in range(5, 81, 5)
            for _ in range(2)
        ]
        dataset = collect_dataset(program, "count2", inputs)
        # the assignment requires linear cost, so we fit a degree-1 template:
        # if even the required-degree bound blows the budget, the submission fails
        config = AnalysisConfig(degree=1, num_posterior_samples=40, seed=0)
        result = run_analysis(program, "count2", dataset, config, "bayeswc")
        values = [b.evaluate([0, synthetic_list(1000)]) for b in result.bounds]
        bound = float(np.median(values))
        how = f"data-driven BayesWC ({verdict.status} statically)"

    ok = bound <= budget_at_1000
    print(f"student {name}: bound(1000) = {bound:10.1f}  via {how:42s} -> "
          f"{'PASS' if ok else 'FAIL'}")


def main() -> None:
    budget = 3.0 * 1000  # 3x a linear reference at n = 1000
    print(f"assignment budget at n=1000: {budget:.0f} comparisons\n")
    grade("A (linear scan)     ", STUDENT_A, budget)
    grade("B (restarting scan) ", STUDENT_B, budget)
    grade("C (opaque comparator)", STUDENT_C, budget)


if __name__ == "__main__":
    main()
