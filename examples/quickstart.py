"""Quickstart: infer worst-case cost bounds for quicksort three ways.

Reproduces the running example of the paper's Sections 1–2: quicksort with
a comparison function that static analysis cannot handle.  We (1) collect
runtime cost data, (2) run the optimization baseline (Opt) and the two
Bayesian analyses (BayesWC, BayesPC) in *hybrid* mode — data-driven on
``partition``, static AARA on the rest — and (3) compare the inferred
bounds against the true worst case n(n-1)/2.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AnalysisConfig, collect_dataset, compile_program, run_analysis
from repro.aara.bound import synthetic_list
from repro.lang import from_python

SOURCE = """
let rec append xs ys =
  match xs with
  | [] -> ys
  | hd :: tl -> hd :: append tl ys

let incur_cost hd =
  if (hd mod 5) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec partition pivot xs =
  match xs with
  | [] -> ([], [])
  | hd :: tl ->
    let lower, upper = partition pivot tl in
    let _ = incur_cost hd in
    if complex_leq hd pivot then (hd :: lower, upper)
    else (lower, hd :: upper)

let rec quicksort xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let lower, upper = Raml.stat (partition hd tl) in
    let lower_sorted = quicksort lower in
    let upper_sorted = quicksort upper in
    append lower_sorted (hd :: upper_sorted)
"""


def main() -> None:
    program = compile_program(SOURCE)

    # 1. Runtime cost data: uniformly random lists (worst cases are rare!)
    rng = np.random.default_rng(0)
    inputs = [
        [from_python([int(v) for v in rng.integers(0, 1000, n)])]
        for n in range(2, 81, 2)
        for _ in range(2)
    ]
    dataset = collect_dataset(program, "quicksort", inputs)
    print(f"collected {dataset.total_observations()} partition measurements "
          f"from {dataset.num_runs} quicksort runs\n")

    # 2. Run the three analyses
    config = AnalysisConfig(degree=2, num_posterior_samples=50, seed=0)
    truth = lambda n: n * (n - 1) / 2  # noqa: E731

    for method in ("opt", "bayeswc", "bayespc"):
        result = run_analysis(program, "quicksort", dataset, config, method)
        sound = result.soundness_fraction(truth, range(1, 1001))
        print(f"== {method:8s} ({result.mode}, {result.runtime_seconds:.1f}s)")
        print(f"   posterior bounds : {len(result.bounds)}")
        print(f"   sound fraction   : {100 * sound:.1f}%  (vs truth 1.0*C(n,2))")
        example = result.bounds[0]
        print(f"   example bound    : {example.describe()}")
        for n in (10, 100, 1000):
            values = [b.evaluate([synthetic_list(n)]) for b in result.bounds]
            print(
                f"   n={n:5d}: bound median {float(np.median(values)):12.1f} "
                f"(truth {truth(n):12.1f})"
            )
        print()


if __name__ == "__main__":
    main()
