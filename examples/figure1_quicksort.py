"""Reproduce Figure 1: data-driven vs hybrid analysis of quicksort.

Prints the three panels of the paper's Fig. 1 as numeric series:
(a) Opt on runtime data, (b) data-driven BayesWC posterior bands,
(c) Hybrid BayesWC posterior bands — each against the true bound
n(n-1)/2 and the runtime-data scatter, for input sizes 0–200.

Run:  python examples/figure1_quicksort.py
"""

import numpy as np

from repro import AnalysisConfig
from repro.evalharness import posterior_curve, render_ascii_curve, render_curve, run_benchmark
from repro.suite import get_benchmark


def main() -> None:
    spec = get_benchmark("QuickSort")
    config = AnalysisConfig(num_posterior_samples=60, seed=0)
    run = run_benchmark(spec, config, seed=0, methods=("opt", "bayeswc"))

    sizes = list(range(10, 201, 10))
    panels = [
        ("(a) Opt, data-driven", "data-driven", "opt"),
        ("(b) BayesWC, data-driven", "data-driven", "bayeswc"),
        ("(c) BayesWC, hybrid", "hybrid", "bayeswc"),
    ]
    for title, mode, method in panels:
        series = posterior_curve(run, mode, method, sizes)
        print(f"=== Figure 1 {title} ===")
        print(render_ascii_curve(series, log_y=True))
        print(render_curve(series))
        result = run.results[(mode, method)]
        sound = result.soundness_fraction(spec.truth, range(1, 1001), spec.shape_fn)
        print(
            f"sound posterior bounds: {int(round(sound * len(result.bounds)))}"
            f"/{len(result.bounds)}  (paper Fig. 1: 0/1, 28/1000, 471/1000)\n"
        )


if __name__ == "__main__":
    main()
