"""Automatic hybrid analysis: no manual ``Raml.stat`` annotations at all.

Section 3.1 of the paper notes that stat annotations "can be automatically
inserted by walking over the program's source code bottom-up to identify
functions that cannot be analyzed statically by conventional AARA".  This
example runs that pipeline end to end on an *unannotated* quicksort whose
comparator is statically opaque:

1. bottom-up probing marks ``partition`` as unanalyzable and wraps its
   call site in a fresh stat annotation;
2. runtime data is collected for the auto-inserted site;
3. Hybrid BayesWC infers a posterior of cost bounds.

Run:  python examples/autostat_pipeline.py
"""

import numpy as np

from repro import AnalysisConfig, collect_dataset, run_analysis
from repro.aara import insert_stat_annotations
from repro.aara.bound import synthetic_list
from repro.lang import compile_program, from_python

UNANNOTATED = """
let rec append xs ys =
  match xs with [] -> ys | hd :: tl -> hd :: append tl ys

let incur_cost hd =
  if (hd mod 5) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec partition pivot xs =
  match xs with
  | [] -> ([], [])
  | hd :: tl ->
    let lower, upper = partition pivot tl in
    let _ = incur_cost hd in
    if complex_leq hd pivot then (hd :: lower, upper)
    else (lower, hd :: upper)

let rec quicksort xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let lower, upper = partition hd tl in
    let ls = quicksort lower in
    let us = quicksort upper in
    append ls (hd :: us)
"""


def main() -> None:
    program = compile_program(UNANNOTATED)

    # 1. bottom-up stat placement
    placed = insert_stat_annotations(program, "quicksort", degrees=(1, 2))
    print("statically unanalyzable functions:", sorted(placed.unanalyzable))
    print("statically analyzable (degree)   :", placed.degrees)
    print("stat annotations inserted        :", placed.inserted,
          "->", placed.stat_labels())
    print()

    # 2. runtime data for the auto-inserted sites
    rng = np.random.default_rng(0)
    inputs = [
        [from_python([int(v) for v in rng.integers(0, 1000, n)])]
        for n in range(2, 81, 2)
        for _ in range(2)
    ]
    dataset = collect_dataset(placed.program, "quicksort", inputs)
    print(f"collected {dataset.total_observations()} observations at the "
          f"auto-inserted site(s)\n")

    # 3. hybrid Bayesian analysis on the auto-annotated program
    config = AnalysisConfig(degree=2, num_posterior_samples=50, seed=0)
    result = run_analysis(placed.program, "quicksort", dataset, config, "bayeswc")
    truth = lambda n: n * (n - 1) / 2  # noqa: E731
    sound = result.soundness_fraction(truth, range(1, 1001))
    print(f"Hybrid BayesWC on the auto-annotated program "
          f"({result.runtime_seconds:.1f}s):")
    print(f"  sound posterior bounds: {100 * sound:.1f}%")
    for n in (10, 100, 1000):
        values = [b.evaluate([synthetic_list(n)]) for b in result.bounds]
        print(f"  n={n:5d}: median bound {float(np.median(values)):12.1f} "
              f"(truth {truth(n):10.1f})")


if __name__ == "__main__":
    main()
