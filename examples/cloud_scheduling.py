"""Application: resource provisioning for cloud jobs (paper Section 1).

The paper motivates Hybrid AARA with cloud scheduling: a provider wants a
*reasonably accurate* estimate of a job's resource needs; occasionally
under-provisioning is acceptable because the job can be rerun with more
resources, but chronic over-provisioning wastes money.

This example provisions CPU budgets for a stream of quicksort "jobs" of
random sizes using three policies:

* ``opt``       — the single optimization-based bound,
* ``median``    — the median of the Bayesian posterior bounds (Hybrid BayesWC),
* ``p90``       — the posterior 90th percentile (more conservative).

For each policy we report the re-run rate (jobs whose true cost exceeded
the provisioned budget) and the mean over-provisioning factor.

Run:  python examples/cloud_scheduling.py
"""

import numpy as np

from repro import AnalysisConfig, collect_dataset, compile_program, run_analysis
from repro.lang import evaluate, from_python
from repro.suite import get_benchmark


def main() -> None:
    spec = get_benchmark("QuickSort")
    program = compile_program(spec.hybrid_source)
    rng = np.random.default_rng(0)

    # historical telemetry: runtime data from past jobs
    inputs = [spec.generator(rng, n) for n in range(5, 81, 5) for _ in range(2)]
    dataset = collect_dataset(program, spec.hybrid_entry, inputs)

    config = AnalysisConfig(degree=2, num_posterior_samples=60, seed=0)
    opt = run_analysis(program, spec.hybrid_entry, dataset, config, "opt")
    wc = run_analysis(program, spec.hybrid_entry, dataset, config, "bayespc")

    # incoming jobs: mostly random, but a sysadmin occasionally feeds the
    # service already-sorted data — quicksort's worst case
    from repro.suite.generators import sorted_ascending_expensive

    jobs = []
    for _ in range(300):
        n = int(rng.integers(20, 150))
        if rng.uniform() < 0.15:
            jobs.append([sorted_ascending_expensive(n, 5)])
        else:
            jobs.append(spec.generator(rng, n))
    true_costs = np.array(
        [evaluate(program, spec.hybrid_entry, list(args)).cost for args in jobs]
    )

    def provision(policy: str) -> np.ndarray:
        budgets = []
        for args in jobs:
            if policy == "opt":
                budgets.append(opt.bounds[0].evaluate(args))
            else:
                values = [b.evaluate(args) for b in wc.bounds]
                q = 50 if policy == "median" else 90
                budgets.append(float(np.percentile(values, q)))
        return np.array(budgets)

    print(f"{'policy':8s} {'re-run rate':>12s} {'mean over-provision':>20s}")
    for policy in ("opt", "median", "p90"):
        budgets = provision(policy)
        reruns = float((true_costs > budgets).mean())
        over = float((budgets / np.maximum(true_costs, 1e-9)).mean())
        print(f"{policy:8s} {100 * reruns:11.1f}% {over:19.2f}x")
    print(
        "\nThe Bayesian posterior lets the scheduler pick its own point on the\n"
        "re-run-rate / over-provisioning trade-off — the single Opt bound does not."
    )


if __name__ == "__main__":
    main()
