"""End-to-end HTTP tests against a real ``hybrid-aara serve`` subprocess.

The crown-jewel assertion lives here: a daemon sharing the batch
harness's cache directory serves cache hits whose bounds are
byte-identical to the batch harness's own outcome for the same
(program, config) cell.
"""

import http.client
import json
import signal

import pytest

from repro.config import AnalysisConfig
from repro.evalharness.runner import EvalRunner, EvalTask

pytestmark = pytest.mark.slow


def request(port, method, path, body=None, headers=None, timeout=120.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        response = conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else {}, dict(response.getheaders())
    finally:
        conn.close()


def test_analyze_status_healthz_roundtrip(spawn_daemon):
    proc, port = spawn_daemon("--jobs", "1")

    status, health, _ = request(port, "GET", "/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["breaker"]["state"] == "closed"
    assert health["queue_capacity"] > 0

    body = {"benchmark": "MapAppend", "method": "opt", "samples": 5, "seed": 0}
    status, doc, _ = request(port, "POST", "/analyze?wait=1&timeout=90", body)
    assert status == 200
    assert doc["state"] == "done"
    assert doc["cache_hit"] is False
    assert doc["result"]["ok"] is True
    assert doc["served_method"] == "opt"
    assert doc["degraded"] is None

    status, again, _ = request(port, "GET", f"/status/{doc['id']}")
    assert status == 200
    assert again["state"] == "done"
    assert [e["ev"] for e in again["events"]] == [
        "admitted", "queued", "started", "finished",
    ]

    # same request again: served from the content-addressed cache
    status, repeat, _ = request(port, "POST", "/analyze", body)
    assert status == 200
    assert repeat["cache_hit"] is True
    assert json.dumps(repeat["result"], sort_keys=True) == json.dumps(
        doc["result"], sort_keys=True
    )

    # error surfaces
    assert request(port, "POST", "/analyze", {"benchmark": "Nope"})[0] == 400
    assert request(port, "GET", "/status/r999999-beef")[0] == 404
    assert request(port, "GET", "/nowhere")[0] == 404
    assert request(port, "GET", "/analyze")[0] == 405

    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 75


def test_cache_hits_are_byte_identical_to_batch_harness(tmp_path, spawn_daemon):
    """The daemon maps requests onto the exact EvalTask the batch harness
    builds, so a shared cache yields byte-identical bounds."""
    cache_dir = tmp_path / "shared-cache"
    task = EvalTask(
        kind="analysis",
        benchmark="Concat",
        root_seed=0,
        config=AnalysisConfig(num_posterior_samples=5, seed=0),
        mode="data-driven",
        method="opt",
    )
    with EvalRunner(jobs=1, cache_dir=cache_dir) as runner:
        report = runner.run_tasks([task])
    batch_outcome = report.outcomes[0]
    assert batch_outcome["ok"]

    proc, port = spawn_daemon("--cache-dir", str(cache_dir), cache=False)
    body = {"benchmark": "Concat", "method": "opt", "samples": 5, "seed": 0}
    status, doc, _ = request(port, "POST", "/analyze", body)
    assert status == 200
    assert doc["cache_hit"] is True, "daemon missed the batch harness's cache entry"
    assert json.dumps(doc["result"]["result"], sort_keys=True) == json.dumps(
        batch_outcome["result"], sort_keys=True
    )


def test_rate_limit_answers_429_with_retry_after(spawn_daemon):
    _proc, port = spawn_daemon("--rate", "0.5", "--burst", "1")
    body = {"benchmark": "MapAppend", "method": "opt", "samples": 5}
    first = request(
        port, "POST", "/analyze?wait=1&timeout=90", dict(body, seed=1),
        headers={"X-Client": "greedy"},
    )
    assert first[0] == 200
    status, doc, headers = request(
        port, "POST", "/analyze", dict(body, seed=2), headers={"X-Client": "greedy"}
    )
    assert status == 429
    assert "rate" in doc["error"]["message"]
    assert int(headers["Retry-After"]) >= 1
    # another client is unaffected (202 accepted or 200 done)
    other = request(
        port, "POST", "/analyze", dict(body, seed=3), headers={"X-Client": "polite"}
    )
    assert other[0] in (200, 202)


def test_status_stream_emits_ndjson_events(spawn_daemon):
    _proc, port = spawn_daemon("--jobs", "1")
    body = {"benchmark": "MapAppend", "method": "opt", "samples": 5, "seed": 5}
    status, doc, _ = request(port, "POST", "/analyze", body)
    assert status in (200, 202)
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("GET", f"/status/{doc['id']}?stream=1")
        response = conn.getresponse()
        assert response.getheader("Content-Type") == "application/x-ndjson"
        lines = [json.loads(line) for line in response.read().splitlines()]
    finally:
        conn.close()
    # every progress event as its own line, then a full-record summary
    kinds = [line["ev"] for line in lines if "ev" in line]
    assert kinds[0] == "admitted"
    assert "finished" in kinds
    summary = lines[-1]
    assert summary["state"] == "done"
    assert summary["id"] == doc["id"]
