"""CLI `bench` subcommand and collect/analyze file workflow."""

import json

import pytest

from repro.cli import _random_inputs, main
from repro.lang import compile_program
from repro.lang.values import VList


@pytest.mark.parametrize("method", ["opt"])
def test_cli_bench_runs_one_benchmark(capsys, method):
    code = main(["bench", "Round", "--method", method, "--samples", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Round" in out
    assert "Relative estimation gaps" in out


def test_cli_collect_then_analyze_roundtrip(tmp_path, capsys):
    src = tmp_path / "p.ml"
    src.write_text(
        "let rec len xs = match xs with [] -> 0 | h :: t -> "
        "let _ = Raml.tick 1.0 in 1 + len t\n"
        "let len2 xs = Raml.stat (len xs)\n"
    )
    data = tmp_path / "data.json"
    out = tmp_path / "result.json"

    assert main(["collect", str(src), "--entry", "len2", "--sizes", "2:12:2", "--out", str(data)]) == 0
    assert data.exists()
    payload = json.loads(data.read_text())
    assert payload["version"] == 1 and "len2#1" in payload["labels"]

    code = main(
        [
            "analyze",
            str(src),
            "--entry",
            "len2",
            "--method",
            "opt",
            "--degree",
            "1",
            "--data",
            str(data),
            "--save-result",
            str(out),
        ]
    )
    assert code == 0
    saved = json.loads(out.read_text())
    assert saved["method"] == "opt"
    assert len(saved["bounds"]) == 1
    text = capsys.readouterr().out
    assert "bound[0]" in text


def test_cli_bench_unknown_benchmark_errors(capsys):
    code = main(["bench", "NoSuchBenchmark", "--samples", "2"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown benchmark 'NoSuchBenchmark'" in err
    assert "Concat" in err  # the error names the available choices


def test_cli_bench_parallel_smoke(capsys, tmp_path):
    """`bench --jobs 2 --cache DIR --metrics PATH` end to end."""
    metrics_path = tmp_path / "metrics.json"
    code = main(
        [
            "bench",
            "Round",
            "--method",
            "opt",
            "--samples",
            "3",
            "--jobs",
            "2",
            "--cache",
            str(tmp_path / "cache"),
            "--metrics",
            str(metrics_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Round" in out and "runner:" in out
    metrics = json.loads(metrics_path.read_text())
    assert metrics["summary"]["total_tasks"] == 2  # conventional + opt
    assert all("wall_seconds" in t for t in metrics["tasks"])

    # warm second run: everything comes from the cache
    code = main(
        ["bench", "Round", "--method", "opt", "--samples", "3",
         "--cache", str(tmp_path / "cache")]
    )
    assert code == 0
    assert "2 cache hit(s)" in capsys.readouterr().out


class TestRandomInputsRespectTypes:
    """_random_inputs must follow each parameter's inferred type instead of
    assuming every argument is an integer list."""

    PROGRAM = compile_program(
        "let rec len xs = match xs with [] -> 0 | h :: t -> "
        "let _ = Raml.tick 1.0 in 1 + len t\n"
        "let g xs b k = Raml.stat (if b then len xs else k)\n"
    )

    def test_types_per_parameter(self):
        inputs = _random_inputs(self.PROGRAM, "g", [4, 7], 2, seed=0)
        assert len(inputs) == 4  # reps x sizes
        for xs, b, k in inputs:
            assert isinstance(xs, VList)
            assert isinstance(b, bool)
            assert isinstance(k, int) and not isinstance(k, bool)
        assert len(inputs[0][0].items) == 4 and len(inputs[1][0].items) == 7

    def test_deterministic_in_seed(self):
        a = _random_inputs(self.PROGRAM, "g", [4], 1, seed=3)
        b = _random_inputs(self.PROGRAM, "g", [4], 1, seed=3)
        assert a == b

    def test_collect_roundtrip_with_non_list_params(self, tmp_path, capsys):
        src = tmp_path / "p.ml"
        src.write_text(
            "let rec len xs = match xs with [] -> 0 | h :: t -> "
            "let _ = Raml.tick 1.0 in 1 + len t\n"
            "let g xs b k = Raml.stat (if b then len xs else k)\n"
        )
        data = tmp_path / "data.json"
        code = main(
            ["collect", str(src), "--entry", "g", "--sizes", "2:8:2", "--out", str(data)]
        )
        assert code == 0
        assert json.loads(data.read_text())["version"] == 1
