"""CLI `bench` subcommand and collect/analyze file workflow."""

import json

import pytest

from repro.cli import main


@pytest.mark.parametrize("method", ["opt"])
def test_cli_bench_runs_one_benchmark(capsys, method):
    code = main(["bench", "Round", "--method", method, "--samples", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Round" in out
    assert "Relative estimation gaps" in out


def test_cli_collect_then_analyze_roundtrip(tmp_path, capsys):
    src = tmp_path / "p.ml"
    src.write_text(
        "let rec len xs = match xs with [] -> 0 | h :: t -> "
        "let _ = Raml.tick 1.0 in 1 + len t\n"
        "let len2 xs = Raml.stat (len xs)\n"
    )
    data = tmp_path / "data.json"
    out = tmp_path / "result.json"

    assert main(["collect", str(src), "--entry", "len2", "--sizes", "2:12:2", "--out", str(data)]) == 0
    assert data.exists()
    payload = json.loads(data.read_text())
    assert payload["version"] == 1 and "len2#1" in payload["labels"]

    code = main(
        [
            "analyze",
            str(src),
            "--entry",
            "len2",
            "--method",
            "opt",
            "--degree",
            "1",
            "--data",
            str(data),
            "--save-result",
            str(out),
        ]
    )
    assert code == 0
    saved = json.loads(out.read_text())
    assert saved["method"] == "opt"
    assert len(saved["bounds"]) == 1
    text = capsys.readouterr().out
    assert "bound[0]" in text


def test_cli_bench_unknown_benchmark_errors(capsys):
    with pytest.raises(KeyError):
        main(["bench", "NoSuchBenchmark", "--samples", "2"])
