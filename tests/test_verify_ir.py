"""The between-stage IR verifier (``repro.analysis.verify_ir``).

The suite conftest exports ``REPRO_VERIFY_IR=1``, so every ``normalize``
call in the whole test run already exercises the verifier on good input;
these tests target the violation paths and the env gate.
"""

import pytest

from repro.analysis.verify_ir import ENV_FLAG, check_expr, verification_enabled, verify_expr
from repro.errors import IRVerificationError, failure_stage
from repro.lang import ast as A
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program


def test_env_gate(monkeypatch):
    monkeypatch.setenv(ENV_FLAG, "1")
    assert verification_enabled()
    monkeypatch.setenv(ENV_FLAG, "0")
    assert not verification_enabled()
    monkeypatch.delenv(ENV_FLAG)
    assert not verification_enabled()


def test_v001_duplicate_binder():
    expr = A.Let("x", A.IntLit(1), A.Let("x", A.IntLit(2), A.Var("x")))
    diags = verify_expr(expr, "uniquify")
    assert [d.code for d in diags] == ["V001"]
    with pytest.raises(IRVerificationError) as err:
        check_expr(expr, "uniquify", context="f")
    assert "uniquify" in str(err.value) and "'f'" in str(err.value)
    assert failure_stage(err.value) == "normalize"


def test_v002_non_atomic_operand():
    expr = A.App("g", (A.BinOp("+", A.Var("a"), A.Var("b")),))
    codes = [d.code for d in verify_expr(expr, "anf")]
    assert "V002" in codes
    # the same tree is fine right after uniquify (ANF not yet promised)
    assert verify_expr(expr, "uniquify") == []


def test_v003_non_affine_use():
    expr = A.Cons(A.Var("x"), A.Var("x"))
    codes = [d.code for d in verify_expr(expr, "share")]
    assert codes == ["V003"]
    # branches are alternatives: one use in each arm of an if is affine
    branchy = A.If(A.Var("c"), A.Var("x"), A.Var("x"))
    assert verify_expr(branchy, "share") == []


def test_share_counts_as_single_use():
    expr = A.Share(
        "x", "x1", "x2", A.Cons(A.Var("x1"), A.Var("x2"))
    )
    assert verify_expr(expr, "share") == []


def test_unknown_stage_rejected():
    with pytest.raises(ValueError):
        verify_expr(A.Var("x"), "optimize")


def test_normalize_runs_verifier_under_env(monkeypatch):
    # sanity: a real program normalizes cleanly with the verifier on
    monkeypatch.setenv(ENV_FLAG, "1")
    program = parse_program(
        "let rec append l1 l2 =\n"
        "  match l1 with\n"
        "  | [] -> l2\n"
        "  | hd :: tl -> hd :: append tl l2\n"
    )
    normalize_program(program)


def test_normalize_detects_injected_corruption(monkeypatch):
    # corrupt the uniquify stage so its output duplicates a binder; the
    # verifier must catch it *between* stages, as a diagnostic not an assert
    from repro.lang import normalize as norm_mod

    monkeypatch.setenv(ENV_FLAG, "1")
    real = norm_mod._uniquify

    def corrupted(expr, env, fresh):
        out = real(expr, env, fresh)
        return A.Let("$dup", A.IntLit(0), A.Let("$dup", A.IntLit(1), out))

    monkeypatch.setattr(norm_mod, "_uniquify", corrupted)
    program = parse_program("let f x = x + 1\n")
    with pytest.raises(IRVerificationError) as err:
        norm_mod.normalize_program(program)
    assert any(d.code == "V001" for d in err.value.diagnostics)
    # off switch: without the env var the corruption passes the verifier
    # (and is caught later by the final normal-form check or not at all)
    monkeypatch.setenv(ENV_FLAG, "0")
    try:
        norm_mod.normalize_program(parse_program("let f x = x + 1\n"))
    except IRVerificationError:  # pragma: no cover
        pytest.fail("verifier ran despite REPRO_VERIFY_IR=0")
    except Exception:
        pass  # later stages may legitimately choke on the corruption
