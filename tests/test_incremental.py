"""Incremental engine: exact reuse sets, byte-identity, fingerprints."""

import json
import os

import pytest

from repro.analysis.fingerprint import (
    fingerprint_functions,
    normalize_slice,
    program_fingerprint,
)
from repro.analysis.incremental import (
    ArtifactStore,
    IncrementalEngine,
    artifact_key,
    peek_conventional_verdict,
)
from repro.config import ExecutionBudget
from repro.lang.parser import function_line_spans, parse_program_ex
from repro.suite import all_benchmarks

BASE = """let rec length xs =
  match xs with
  | [] -> 0
  | _hd :: tl -> let _ = Raml.tick 1.0 in 1 + length tl

let rec helper xs =
  match xs with
  | [] -> 0
  | _hd :: tl -> let _ = Raml.tick 1.0 in helper tl

let main xs =
  let a = length xs in
  let b = helper xs in
  a + b
"""

# a call chain main -> mid -> leaf, plus an unrelated lone function
CHAIN = """let rec leaf xs =
  match xs with
  | [] -> 0
  | _hd :: tl -> let _ = Raml.tick 1.0 in 1 + leaf tl

let mid xs = leaf xs + 1

let rec lone xs =
  match xs with
  | [] -> 0
  | _hd :: tl -> let _ = Raml.tick 1.0 in lone tl

let main xs = mid xs
"""


def _engine(tmp_path, **kw):
    return IncrementalEngine(ArtifactStore(tmp_path / "artifacts"), **kw)


def _corpus():
    for spec in all_benchmarks():
        yield f"{spec.name}/data_driven", spec.data_driven_source, spec.data_driven_entry
        if spec.hybrid_source is not None:
            yield f"{spec.name}/hybrid", spec.hybrid_source, spec.hybrid_entry


# ---------------------------------------------------------------------------
# Invalidation granularity
# ---------------------------------------------------------------------------


def test_cold_run_recomputes_everything(tmp_path):
    result = _engine(tmp_path).analyze(BASE, entry="main")
    assert result.granularity == "function"
    assert set(result.lint.recomputed) == {"length", "helper", "main", "<program>"}
    assert result.lint.reused == ()
    assert set(result.bound_stage.recomputed) == {"length", "helper", "main"}
    assert result.bound_stage.reused == ()


def test_noop_reanalysis_reuses_everything(tmp_path):
    engine = _engine(tmp_path)
    cold = engine.analyze(BASE, entry="main")
    warm = engine.analyze(BASE, entry="main")
    assert warm.recomputed == 0
    assert warm.reused == cold.reused + cold.recomputed
    assert warm.document() == cold.document()


def test_single_function_edit_recomputes_only_its_dependents(tmp_path):
    engine = _engine(tmp_path)
    engine.analyze(BASE, entry="main")
    edited = BASE.replace("1 + length tl", "2 + length tl")
    result = engine.analyze(edited, entry="main")
    # length changed; main's cone contains length; helper and the
    # program-level bucket are untouched
    assert set(result.lint.recomputed) == {"length", "main"}
    assert set(result.lint.reused) == {"helper", "<program>"}
    assert set(result.bound_stage.recomputed) == {"length", "main"}
    assert set(result.bound_stage.reused) == {"helper"}


def test_whitespace_only_edit_reuses_everything(tmp_path):
    engine = _engine(tmp_path)
    engine.analyze(BASE, entry="main")
    spaced = BASE.replace("  a + b", "  a + b   ") + "\n\n"
    result = engine.analyze(spaced, entry="main")
    assert result.recomputed == 0


def test_scc_cones_move_together(tmp_path):
    # the surface language cannot express mutual recursion, so every SCC
    # is a singleton (its function with itself in its own cone) and
    # SCC-as-a-unit invalidation reduces to: an edit inside a cone
    # invalidates every member of that cone's reverse closure, and
    # nothing else
    engine = _engine(tmp_path)
    cold = engine.analyze(CHAIN, entry="main")
    fps = cold.fingerprints
    assert all(len(scc) == 1 for scc in fps.sccs)
    assert "leaf" in fps.cone_members["leaf"]  # self-recursive cone
    assert fps.cone_members["main"] == ("leaf", "mid", "main")

    # edit at the bottom of the chain: the whole reverse closure moves
    result = engine.analyze(
        CHAIN.replace("1 + leaf tl", "2 + leaf tl"), entry="main"
    )
    assert set(result.bound_stage.recomputed) == {"leaf", "mid", "main"}
    assert set(result.bound_stage.reused) == {"lone"}
    assert set(result.lint.recomputed) == {"leaf", "mid", "main"}
    assert set(result.lint.reused) == {"lone", "<program>"}

    # edit in the middle: leaf's artifacts survive
    engine.analyze(CHAIN, entry="main")
    result = engine.analyze(CHAIN.replace("leaf xs + 1", "leaf xs + 2"), entry="main")
    assert set(result.bound_stage.recomputed) == {"mid", "main"}
    assert set(result.bound_stage.reused) == {"leaf", "lone"}


def test_interface_change_invalidates_lint_buckets_only_where_needed(tmp_path):
    engine = _engine(tmp_path)
    engine.analyze(BASE, entry="main")
    # adding a new function changes the program interface: every lint
    # bucket is invalid (resolve reads the global name set), but bounds
    # of untouched cones survive
    grown = BASE + "\nlet extra x = x + 1\n"
    result = engine.analyze(grown, entry="main")
    assert set(result.bound_stage.reused) == {"length", "helper", "main"}
    assert set(result.bound_stage.recomputed) == {"extra"}
    assert set(result.lint.reused) == set()


def test_revert_restores_full_reuse_and_identical_output(tmp_path):
    engine = _engine(tmp_path)
    cold = engine.analyze(BASE, entry="main")
    engine.analyze(BASE.replace("1 + length tl", "2 + length tl"), entry="main")
    reverted = engine.analyze(BASE, entry="main")
    assert reverted.recomputed == 0
    assert reverted.document() == cold.document()


# ---------------------------------------------------------------------------
# Byte-identity against a cold full run (whole suite corpus)
# ---------------------------------------------------------------------------


def test_incremental_byte_identical_to_cold_over_suite(tmp_path):
    for label, source, entry in _corpus():
        cold = IncrementalEngine(None, max_degree=1).analyze(
            source, path=label, entry=entry
        )
        engine = IncrementalEngine(
            ArtifactStore(tmp_path / "store"), max_degree=1
        )
        first = engine.analyze(source, path=label, entry=entry)
        warm = engine.analyze(source, path=label, entry=entry)
        assert warm.recomputed == 0, label
        cold_doc = json.dumps(cold.document(), sort_keys=True)
        assert json.dumps(first.document(), sort_keys=True) == cold_doc, label
        assert json.dumps(warm.document(), sort_keys=True) == cold_doc, label


def test_incremental_diagnostics_match_lint_source_over_suite(tmp_path):
    from repro.analysis import lint_source, to_json

    engine = IncrementalEngine(ArtifactStore(tmp_path / "store"), max_degree=1)
    for label, source, entry in _corpus():
        batch = sorted(
            to_json(lint_source(source, path=label, entry=entry).diagnostics),
            key=lambda d: json.dumps(d, sort_keys=True),
        )
        for _ in range(2):  # cold-fill, then assembled-from-artifacts
            incr = sorted(
                to_json(engine.analyze(source, path=label, entry=entry).diagnostics),
                key=lambda d: json.dumps(d, sort_keys=True),
            )
            assert incr == batch, label


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def test_fingerprints_collision_free_over_suite_corpus():
    by_fp = {}
    for label, source, entry in _corpus():
        parsed = parse_program_ex(source)
        fps = fingerprint_functions(source, parsed)
        assert fps is not None, label
        spans = function_line_spans(list(parsed.functions), source)
        lines = source.split("\n")
        for name, fp in fps.local.items():
            start, end = spans[name]
            content = (name, normalize_slice("\n".join(lines[start - 1 : end])))
            assert by_fp.setdefault(fp, content) == content, (
                f"fingerprint collision: {fp} covers both "
                f"{by_fp[fp][0]} and {name}"
            )
    # the corpus actually exercised distinct functions
    assert len(by_fp) > 40
    assert len({program_fingerprint(s) for _, s, _ in _corpus()}) == sum(
        1 for _ in _corpus()
    )


def test_fingerprint_ignores_trailing_whitespace_not_content():
    parsed = parse_program_ex(BASE)
    fps = fingerprint_functions(BASE, parsed)
    spaced = BASE.replace("a + b", "a + b  ")
    fps2 = fingerprint_functions(spaced, parse_program_ex(spaced))
    assert fps.local == fps2.local
    changed = BASE.replace("a + b", "b + a")
    fps3 = fingerprint_functions(changed, parse_program_ex(changed))
    assert fps3.local["main"] != fps.local["main"]
    assert fps3.local["length"] == fps.local["length"]


def test_duplicate_names_fall_back_to_program_granularity(tmp_path):
    dup = "let f x = x\nlet f y = y\nlet main z = f z\n"
    result = _engine(tmp_path).analyze(dup, entry="main")
    assert result.granularity == "program"
    assert any(d.code == "R014" for d in result.diagnostics)


# ---------------------------------------------------------------------------
# Artifact store robustness
# ---------------------------------------------------------------------------


def test_corrupted_artifact_is_quarantined_and_recomputed(tmp_path):
    engine = _engine(tmp_path)
    cold = engine.analyze(BASE, entry="main")
    store = engine.store
    corrupted = 0
    for entry_path in os.listdir(store.root):
        if entry_path.endswith(".json"):
            full = store.root / entry_path
            full.write_text(full.read_text()[:-10] + "corrupted!")
            corrupted += 1
            break
    assert corrupted == 1
    again = engine.analyze(BASE, entry="main")
    assert again.recomputed >= 1  # the damaged artifact was rebuilt
    assert again.document() == cold.document()
    assert any(
        name.endswith(".quarantined") for name in os.listdir(store.root)
    )
    healed = engine.analyze(BASE, entry="main")
    assert healed.recomputed == 0


def test_artifact_version_mismatch_is_a_miss_not_an_error(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    key = artifact_key("lint-fn", {"fn": "f", "cone": "x"})
    store.store(key, [1, 2, 3])
    payload = json.loads(store.path(key).read_text())
    payload["artifact_version"] = 999
    store.path(key).write_text(json.dumps(payload))
    assert store.load(key) is None
    assert not store.path(key).exists()  # stale format is swept, not kept


def test_store_roundtrip_and_checksum(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    key = artifact_key("bound", {"fn": "g", "cone": "y"})
    value = {"status": "bound", "describe": "1*n1"}
    store.store(key, value)
    assert store.load(key) == value


# ---------------------------------------------------------------------------
# Hostile input under the untrusted budget
# ---------------------------------------------------------------------------


def test_hostile_deep_nesting_degrades_to_diagnostic(tmp_path):
    budget = ExecutionBudget.untrusted()
    engine = IncrementalEngine(
        ArtifactStore(tmp_path / "store"), budget=budget
    )
    bomb = "let f x = " + "(" * (budget.max_nesting_depth + 10)
    result = engine.analyze(bomb)
    assert result.granularity == "parse-error"
    assert len(result.diagnostics) == 1
    assert result.diagnostics[0].code in ("R001", "R002", "R004")
    assert result.bounds == {}


def test_hostile_oversized_source_degrades_to_diagnostic(tmp_path):
    budget = ExecutionBudget.untrusted()
    engine = IncrementalEngine(None, budget=budget)
    huge = "let f x = x\n" * (budget.max_source_chars // 10)
    result = engine.analyze(huge)
    assert result.granularity == "parse-error"
    assert result.diagnostics[0].code == "R001"


# ---------------------------------------------------------------------------
# Server peek
# ---------------------------------------------------------------------------


def test_peek_returns_warm_verdict_and_never_computes(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    # nothing warm: miss
    assert peek_conventional_verdict(store, BASE, "main") is None
    IncrementalEngine(store).analyze(BASE, entry="main")
    verdict = peek_conventional_verdict(store, BASE, "main")
    assert verdict is not None
    assert verdict["status"] == "bound"
    assert verdict["runtime_seconds"] == 0.0
    assert verdict["bound"] is not None
    # unknown entry / unparseable source: miss, not an exception
    assert peek_conventional_verdict(store, BASE, "missing") is None
    assert peek_conventional_verdict(store, "let f = (", "f") is None


def test_server_fast_path_serves_incremental_verdict(tmp_path):
    from repro.server.core import ServerConfig, ServerCore

    cache = tmp_path / "cache"
    IncrementalEngine(
        ArtifactStore(cache), budget=ExecutionBudget.untrusted()
    ).analyze(BASE, entry="main")
    core = ServerCore(
        ServerConfig(cache_dir=str(cache), runs_dir=str(tmp_path / "runs"), jobs=1)
    )
    core.start()
    try:
        record = core.submit(
            {"source": BASE, "entry": "main", "method": "conventional"},
            client="test",
        )
        assert record.state == "done"
        assert record.cache_hit
        assert record.outcome["verdict"]["status"] == "bound"
        assert record.outcome["metrics"]["incremental"] is True
        assert core.counters["incremental_hits"] == 1
    finally:
        core.stop(0.5)


def test_cli_watch_single_cycle_renders_stats(tmp_path, capsys):
    from repro.cli import main

    prog = tmp_path / "prog.ml"
    prog.write_text(BASE)
    cache = tmp_path / "cache"
    rc = main(
        [
            "lint",
            "--watch",
            str(prog),
            "--watch-cycles",
            "1",
            "--cache-dir",
            str(cache),
            "--entry",
            "main",
            "--degree",
            "1",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 reused / 7 recomputed" in out
    assert "length : " in out and "main : " in out
    # second invocation: same content, artifacts all warm
    rc = main(
        [
            "lint",
            "--watch",
            str(prog),
            "--watch-cycles",
            "1",
            "--cache-dir",
            str(cache),
            "--entry",
            "main",
            "--degree",
            "1",
        ]
    )
    assert rc == 0
    assert "7 reused / 0 recomputed" in capsys.readouterr().out


def test_cli_watch_rejects_multiple_files(tmp_path):
    from repro.cli import main

    assert main(["lint", "--watch", "a.ml", "b.ml"]) == 2


def test_server_fast_path_miss_still_queues(tmp_path):
    from repro.server.core import ServerConfig, ServerCore

    core = ServerCore(
        ServerConfig(
            cache_dir=str(tmp_path / "cache"),
            runs_dir=str(tmp_path / "runs"),
            jobs=1,
        )
    )
    core.start()
    try:
        record = core.submit(
            {"source": BASE, "entry": "main", "method": "conventional"},
            client="test",
        )
        assert not record.cache_hit
        assert core.counters["incremental_hits"] == 0
        assert core.counters["admitted"] == 1
    finally:
        core.stop(0.5)
