"""Automatic stat placement tests (Section 3.1's bottom-up procedure)."""

import numpy as np
import pytest

from repro.aara.autostat import AutoStatResult, insert_stat_annotations
from repro.config import AnalysisConfig
from repro.errors import StaticAnalysisError
from repro.inference import collect_dataset, run_opt
from repro.lang import compile_program, evaluate, from_python

QUICKSORT_OPAQUE = """
let rec append xs ys =
  match xs with [] -> ys | hd :: tl -> hd :: append tl ys

let incur_cost hd =
  if (hd mod 5) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec partition pivot xs =
  match xs with
  | [] -> ([], [])
  | hd :: tl ->
    let lower, upper = partition pivot tl in
    let _ = incur_cost hd in
    if complex_leq hd pivot then (hd :: lower, upper)
    else (lower, hd :: upper)

let rec quicksort xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let lower, upper = partition hd tl in
    let ls = quicksort lower in
    let us = quicksort upper in
    append ls (hd :: us)
"""


class TestPlacement:
    def test_identifies_opaque_leaf(self):
        program = compile_program(QUICKSORT_OPAQUE)
        result = insert_stat_annotations(program, "quicksort")
        assert result.unanalyzable == {"partition"}
        assert result.inserted == 1
        assert result.stat_labels() == ["auto#1"]

    def test_analyzable_functions_recorded(self):
        program = compile_program(QUICKSORT_OPAQUE)
        result = insert_stat_annotations(program, "quicksort")
        assert "append" in result.degrees

    def test_fully_analyzable_program_untouched(self):
        program = compile_program(
            "let rec len xs = match xs with [] -> 0 | h :: t -> "
            "let _ = Raml.tick 1.0 in 1 + len t"
        )
        result = insert_stat_annotations(program, "len")
        assert result.inserted == 0
        assert result.unanalyzable == set()

    def test_transitive_propagation(self):
        """A caller whose only problem is an opaque callee is NOT marked;
        only the call is wrapped."""
        src = """
let leaf a b = if complex_leq a b then 1 else 0
let mid x = leaf x 3
let rec top xs =
  match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in mid h + top t
"""
        program = compile_program(src)
        result = insert_stat_annotations(program, "top")
        assert result.unanalyzable == {"leaf"}
        assert result.inserted == 1  # the leaf call inside mid

    def test_unknown_entry(self):
        program = compile_program("let f x = x")
        with pytest.raises(StaticAnalysisError):
            insert_stat_annotations(program, "ghost")

    def test_existing_stats_preserved(self):
        src = """
let opaque a = if complex_leq a 0 then 1 else 2
let f x = Raml.stat (opaque x)
"""
        program = compile_program(src)
        result = insert_stat_annotations(program, "f")
        # the existing stat already isolates the opaque call
        labels = result.stat_labels()
        assert "f#1" in labels


class TestEndToEnd:
    def test_auto_annotated_program_runs_and_analyzes(self):
        program = compile_program(QUICKSORT_OPAQUE)
        result = insert_stat_annotations(program, "quicksort")
        rng = np.random.default_rng(0)
        inputs = [
            [from_python([int(v) for v in rng.integers(0, 1000, n)])]
            for n in range(2, 31, 2)
        ]
        # semantics unchanged by the inserted annotations
        for args in inputs[:3]:
            before = evaluate(program, "quicksort", list(args))
            after = evaluate(result.program, "quicksort", list(args))
            assert before.value == after.value
            assert before.cost == pytest.approx(after.cost)
        dataset = collect_dataset(result.program, "quicksort", inputs)
        analysis = run_opt(
            result.program, "quicksort", dataset, AnalysisConfig(degree=2)
        )
        bound = analysis.bounds[0]
        for args in inputs:
            measured = evaluate(result.program, "quicksort", list(args)).cost
            assert bound.evaluate(args) >= measured - 1e-5
