"""ResourceBound representation, evaluation, and pretty-printing."""

import pytest

from repro.aara.annot import ABase, AList, AProd, ASum
from repro.aara.bound import (
    ResourceBound,
    bound_curve,
    psi,
    shape_features,
    synthetic_list,
    synthetic_nested_list,
)
from repro.errors import StaticAnalysisError
from repro.lang import ast as A
from repro.lang.values import VList
from repro.lp import LinExpr


def make_bound(p0=1.0, coeffs=(2.0, 0.5)):
    ann = AList(tuple(LinExpr.constant(c) for c in coeffs), ABase(A.INT))
    return ResourceBound("f", (ann,), p0)


class TestEvaluate:
    def test_polynomial_value(self):
        bound = make_bound()
        # 1 + 2*10 + 0.5*C(10,2)
        assert bound.evaluate([synthetic_list(10)]) == pytest.approx(1 + 20 + 22.5)

    def test_evaluate_python(self):
        bound = make_bound()
        assert bound.evaluate_python([0, 0, 0]) == pytest.approx(1 + 6 + 1.5)

    def test_arity_check(self):
        with pytest.raises(StaticAnalysisError):
            make_bound().evaluate([synthetic_list(1), synthetic_list(1)])

    def test_multi_argument(self):
        a1 = AList((LinExpr.constant(1.0),), ABase(A.INT))
        a2 = AList((LinExpr.constant(3.0),), ABase(A.INT))
        bound = ResourceBound("g", (a1, a2), 0.0)
        assert bound.evaluate([synthetic_list(2), synthetic_list(5)]) == pytest.approx(17.0)

    def test_tuple_argument(self):
        ann = AProd((ABase(A.INT), AList((LinExpr.constant(2.0),), ABase(A.INT))))
        bound = ResourceBound("h", (ann,), 0.0)
        from repro.lang.values import VTuple

        assert bound.evaluate([VTuple((0, synthetic_list(4)))]) == pytest.approx(8.0)


class TestSyntheticShapes:
    def test_synthetic_list(self):
        assert len(synthetic_list(7).items) == 7

    def test_synthetic_nested_distributes_evenly(self):
        nested = synthetic_nested_list(3, 10)
        assert isinstance(nested, VList)
        inner_sizes = [len(v.items) for v in nested.items]
        assert sum(inner_sizes) == 10
        assert max(inner_sizes) - min(inner_sizes) <= 1

    def test_synthetic_nested_empty(self):
        assert len(synthetic_nested_list(0, 5).items) == 0


class TestShapeFeatures:
    """The vectorized-evaluation contract: coeffs · features == evaluate."""

    def _check(self, bound, args):
        features = shape_features(args, bound.params)
        assert features is not None
        import numpy as np

        dot = float(np.dot(bound.coefficients(), features))
        assert dot == pytest.approx(bound.evaluate(args), abs=1e-12)

    def test_flat_list(self):
        self._check(make_bound(), [synthetic_list(9)])

    def test_multi_argument(self):
        a1 = AList((LinExpr.constant(1.0),), ABase(A.INT))
        a2 = AList((LinExpr.constant(3.0), LinExpr.constant(0.25)), ABase(A.INT))
        bound = ResourceBound("g", (a1, a2), 2.0)
        self._check(bound, [synthetic_list(2), synthetic_list(5)])

    def test_nested_list_sums_elem_features(self):
        elem = AList((LinExpr.constant(0.5),), ABase(A.INT))
        ann = AList((LinExpr.constant(2.0),), elem)
        bound = ResourceBound("h", (ann,), 0.0)
        self._check(bound, [synthetic_nested_list(3, 10)])

    def test_empty_nested_list_keeps_layout(self):
        elem = AList((LinExpr.constant(0.5),), ABase(A.INT))
        ann = AList((LinExpr.constant(2.0),), elem)
        bound = ResourceBound("h", (ann,), 1.5)
        features = shape_features([VList(())], bound.params)
        assert features is not None
        assert len(features) == len(bound.coefficients())
        self._check(bound, [VList(())])

    def test_tuple_argument(self):
        ann = AProd((ABase(A.INT), AList((LinExpr.constant(2.0),), ABase(A.INT))))
        bound = ResourceBound("h", (ann,), 0.0)
        from repro.lang.values import VTuple

        self._check(bound, [VTuple((0, synthetic_list(4)))])

    def test_sum_annotation_falls_back(self):
        ann = ASum(
            ABase(A.INT), LinExpr.constant(1.0), ABase(A.INT), LinExpr.constant(2.0)
        )
        assert shape_features([synthetic_list(1)], (ann,)) is None

    def test_arity_mismatch_falls_back(self):
        assert shape_features([], make_bound().params) is None


class TestReporting:
    def test_describe_contains_terms(self):
        text = make_bound().describe()
        assert "2*n1" in text
        assert "C(n1,2)" in text

    def test_describe_omits_zero_terms(self):
        text = make_bound(p0=0.0, coeffs=(1.0, 0.0)).describe()
        assert "C(" not in text

    def test_describe_custom_names(self):
        text = make_bound().describe(["m"])
        assert "2*m" in text

    def test_coefficients_order(self):
        assert make_bound().coefficients() == [1.0, 2.0, 0.5]

    def test_bound_curve(self):
        values = bound_curve(make_bound(), [1, 2, 3])
        assert values == pytest.approx([3.0, 5.5, 8.5])

    def test_psi_matches_bound(self):
        bound = make_bound()
        for n in (0, 5, 12):
            assert bound.evaluate([synthetic_list(n)]) == pytest.approx(
                psi(n, 1.0, [2.0, 0.5])
            )
