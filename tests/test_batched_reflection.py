"""Property tests for the batched reflection kernel (Hypothesis).

The reflective leapfrog of :mod:`repro.stats.batched` is the geometric
heart of BayesPC's sampler.  Three families of invariants pin it down:

* **containment** — a drift never ends outside the polytope (when it
  reports ``inside``), for any interior start, momentum and step;
* **reflection algebra** — bouncing off a facet is a Householder
  reflection in the facet normal: an involution that flips the normal
  component and preserves kinetic energy;
* **integrator structure** — the batched leapfrog is time-reversible
  and near-conserves the Hamiltonian at small steps, and every kernel
  is *batch-size stable*: a row's result is bit-identical whether it is
  integrated alone or stacked with other chains (the property that makes
  the ``batched`` and ``perchain`` engines interchangeable).

The scalar ``_DriftEngine`` in :mod:`repro.stats.reflective_hmc` serves
as the oracle for trajectories with unambiguous geometry (endpoints well
clear of any facet), since the batched engine resolves grazing contacts
through its convexity direct path rather than the hit-time machinery.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.stats.batched import BatchedDriftEngine, leapfrog_batch, leapfrog_reflective_batch
from repro.stats.densities import LoopDensity, as_batched
from repro.stats.polytope import Polytope
from repro.stats.reflective_hmc import _DriftEngine

# geometric tests derive their data from seeded generators: Hypothesis
# shrinks the seeds, while the generated geometry stays non-degenerate
seeds = st.integers(0, 2**31 - 1)
dims = st.integers(1, 5)


def box(dim: int, half: float = 1.0) -> Polytope:
    A = np.vstack([np.eye(dim), -np.eye(dim)])
    b = np.full(2 * dim, half)
    return Polytope(A=A, b=b, names=[f"x{i}" for i in range(dim)])


def random_polytope(dim: int, rng: np.random.Generator) -> Polytope:
    """A bounded polytope containing the origin: a box plus random cuts."""
    base = box(dim)
    m = int(rng.integers(0, 4))
    normals = rng.normal(size=(m, dim))
    offsets = rng.uniform(0.3, 1.5, size=m)  # origin stays strictly inside
    return Polytope(
        A=np.vstack([base.A, normals]),
        b=np.concatenate([base.b, offsets]),
        names=base.names,
    )


def interior_point(poly: Polytope, rng: np.random.Generator) -> np.ndarray:
    """Rejection-sample a strictly interior point (origin fallback)."""
    for _ in range(64):
        q = rng.uniform(-0.9, 0.9, size=poly.dim)
        if np.all(poly.A @ q <= poly.b - 1e-6):
            return q
    return np.zeros(poly.dim)


def gaussian_density(dim: int):
    inv_var = 1.0 / (1.0 + 0.25 * np.arange(dim)) ** 2

    def logdensity_and_grad(q):
        return float(-0.5 * np.sum(inv_var * q * q)), -inv_var * q

    return as_batched(logdensity_and_grad)


class TestDriftContainment:
    @given(seed=seeds, dim=dims)
    @settings(max_examples=80, deadline=None)
    def test_drift_stays_inside(self, seed, dim):
        rng = np.random.default_rng(seed)
        poly = random_polytope(dim, rng)
        engine = BatchedDriftEngine(poly)
        rows = int(rng.integers(1, 5))
        Q = np.stack([interior_point(poly, rng) for _ in range(rows)])
        P = rng.normal(size=(rows, dim)) * rng.uniform(0.1, 4.0)
        dt = rng.uniform(0.01, 3.0, size=rows)
        Qd, Pd, refl, ok, inside = engine.drift(Q, P, dt)
        # rows the engine vouches for really are inside (tiny fp slop only)
        for i in np.flatnonzero(ok & inside):
            assert poly.contains(Qd[i], tol=1e-9)
        assert np.all(refl >= 0)

    @given(seed=seeds, dim=dims)
    @settings(max_examples=60, deadline=None)
    def test_inside_flag_matches_zero_tolerance_containment(self, seed, dim):
        rng = np.random.default_rng(seed)
        poly = random_polytope(dim, rng)
        engine = BatchedDriftEngine(poly)
        Q = np.stack([interior_point(poly, rng) for _ in range(3)])
        P = rng.normal(size=(3, dim)) * 2.0
        dt = rng.uniform(0.01, 2.0, size=3)
        Qd, _Pd, _refl, _ok, inside = engine.drift(Q, P, dt)
        np.testing.assert_array_equal(inside, engine.contains(Qd, 0.0))


class TestReflectionAlgebra:
    @given(
        normal=st.lists(st.floats(-4, 4, allow_nan=False, width=64), min_size=2, max_size=5),
        momentum=st.lists(st.floats(-4, 4, allow_nan=False, width=64), min_size=2, max_size=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_householder_reflection_is_an_involution(self, normal, momentum):
        n = min(len(normal), len(momentum))
        a = np.asarray(normal[:n])
        p = np.asarray(momentum[:n])
        assume(float(a @ a) > 1e-6)

        def reflect(v):
            return v - (2.0 * (a @ v) / (a @ a)) * a

        r = reflect(p)
        np.testing.assert_allclose(reflect(r), p, rtol=1e-9, atol=1e-12)
        # normal component flips; kinetic energy is preserved
        np.testing.assert_allclose(a @ r, -(a @ p), rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(r @ r, p @ p, rtol=1e-9, atol=1e-12)

    @given(seed=seeds, dim=dims)
    @settings(max_examples=60, deadline=None)
    def test_engine_bounce_is_the_householder_reflection(self, seed, dim):
        """One clean wall hit: the engine's momentum update must equal the
        textbook reflection in that facet's normal."""
        rng = np.random.default_rng(seed)
        poly = box(dim)
        engine = BatchedDriftEngine(poly)
        q = np.zeros(dim)
        p = rng.normal(size=dim)
        p[0] = rng.uniform(1.0, 3.0)  # guarantee the +x0 wall is hit
        # time to the +x0 wall is 1/p[0]; stop shortly after the bounce
        # and keep the other coordinates away from their own walls
        dt = 1.0 / p[0] + 0.05
        assume(np.all(np.abs(p[1:] * dt) < 0.95))  # no other wall is reached
        Qd, Pd, refl, ok, inside = engine.drift(q[None, :], p[None, :], np.array([dt]))
        assert ok[0] and inside[0]
        assert refl[0] == 1
        a = poly.A[0]
        expected = p - (2.0 * (a @ p) / (a @ a)) * a
        np.testing.assert_allclose(Pd[0], expected, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(Pd[0] @ Pd[0], p @ p, rtol=1e-9, atol=1e-12)

    @given(seed=seeds, dim=dims)
    @settings(max_examples=60, deadline=None)
    def test_kinetic_energy_survives_any_reflection_sequence(self, seed, dim):
        rng = np.random.default_rng(seed)
        poly = random_polytope(dim, rng)
        engine = BatchedDriftEngine(poly)
        Q = np.stack([interior_point(poly, rng) for _ in range(2)])
        P = rng.normal(size=(2, dim)) * 3.0
        dt = rng.uniform(0.5, 4.0, size=2)
        _Qd, Pd, refl, ok, _inside = engine.drift(Q, P, dt)
        for i in range(2):
            if ok[i]:
                np.testing.assert_allclose(
                    Pd[i] @ Pd[i], P[i] @ P[i], rtol=1e-7, atol=1e-9
                )


class TestScalarOracle:
    @given(seed=seeds, dim=dims)
    @settings(max_examples=60, deadline=None)
    def test_batched_drift_matches_scalar_engine_on_clean_geometry(self, seed, dim):
        rng = np.random.default_rng(seed)
        poly = random_polytope(dim, rng)
        batched_engine = BatchedDriftEngine(poly)
        scalar_engine = _DriftEngine(poly)
        q = interior_point(poly, rng)
        p = rng.normal(size=dim) * rng.uniform(0.2, 3.0)
        dt = float(rng.uniform(0.05, 2.0))
        qs, ps, refl_s, ok_s = scalar_engine.drift(q.copy(), p.copy(), dt)
        # restrict to unambiguous geometry: the scalar endpoint must sit
        # well clear of every facet, else grazing-contact tie-breaks may
        # legitimately differ between the two engines
        margin = np.abs(poly.b - poly.A @ qs)
        assume(ok_s and np.all(margin > 1e-7))
        qb, pb, refl_b, ok_b, inside_b = batched_engine.drift(
            q[None, :], p[None, :], np.array([dt])
        )
        assert bool(ok_b[0]) == ok_s
        np.testing.assert_allclose(qb[0], qs, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(pb[0], ps, rtol=1e-9, atol=1e-12)


class TestLeapfrogStructure:
    @given(seed=seeds, dim=dims)
    @settings(max_examples=40, deadline=None)
    def test_leapfrog_is_time_reversible(self, seed, dim):
        density = gaussian_density(dim)
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 4))
        Q0 = rng.normal(size=(rows, dim)) * 0.5
        P0 = rng.normal(size=(rows, dim))
        _lp, G0 = density.batched(Q0)
        step = rng.uniform(0.01, 0.15, size=rows)
        n_steps = rng.integers(1, 8, size=rows)
        q1, p1, _lp1, g1 = leapfrog_batch(density, Q0, P0, G0, step, n_steps)
        # integrating back with reversed momentum returns to the start
        q2, p2, _lp2, _g2 = leapfrog_batch(density, q1, -p1, g1, step, n_steps)
        np.testing.assert_allclose(q2, Q0, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(-p2, P0, rtol=1e-8, atol=1e-10)

    @given(seed=seeds, dim=dims)
    @settings(max_examples=40, deadline=None)
    def test_leapfrog_energy_error_shrinks_with_the_step(self, seed, dim):
        """Velocity Verlet is second order: quartering the step must cut
        the Hamiltonian error by far more than half."""
        density = gaussian_density(dim)
        rng = np.random.default_rng(seed)
        Q0 = rng.normal(size=(1, dim)) * 0.5
        P0 = rng.normal(size=(1, dim))
        lp0, G0 = density.batched(Q0)
        h0 = -lp0[0] + 0.5 * float(P0[0] @ P0[0])

        def energy_error(step, n):
            q, p, lp, _g = leapfrog_batch(
                density, Q0, P0, G0, np.array([step]), np.array([n])
            )
            return abs((-lp[0] + 0.5 * float(p[0] @ p[0])) - h0)

        # the pointwise error oscillates, so compare the worst error over
        # matched trajectory times instead of a single endpoint
        times = [1, 2, 3, 4, 5]
        coarse = max(energy_error(0.2, n) for n in times)
        fine = max(energy_error(0.05, 4 * n) for n in times)
        assume(coarse > 1e-10)  # flat region: nothing to compare
        assert fine <= coarse * 0.5 + 1e-12

    @given(seed=seeds, dim=dims)
    @settings(max_examples=40, deadline=None)
    def test_reflective_leapfrog_reversible_without_wall_contact(self, seed, dim):
        density = gaussian_density(dim)
        rng = np.random.default_rng(seed)
        poly = box(dim, half=50.0)  # walls far away: pure leapfrog inside
        drift = BatchedDriftEngine(poly)
        Q0 = rng.normal(size=(2, dim)) * 0.5
        P0 = rng.normal(size=(2, dim))
        _lp, G0 = density.batched(Q0)
        step = rng.uniform(0.01, 0.1, size=2)
        n_steps = rng.integers(1, 6, size=2)
        q1, p1, _l1, g1, refl = leapfrog_reflective_batch(
            density, drift, Q0, P0, G0, step, n_steps
        )
        assert np.all(refl == 0)
        q2, p2, _l2, _g2, _r2 = leapfrog_reflective_batch(
            density, drift, q1, -p1, g1, step, n_steps
        )
        np.testing.assert_allclose(q2, Q0, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(-p2, P0, rtol=1e-8, atol=1e-10)


class TestBatchSizeStability:
    """The engine-equivalence contract: a row computes the same bits
    alone as in a stack."""

    @given(seed=seeds, dim=dims)
    @settings(max_examples=60, deadline=None)
    def test_drift_rows_are_batch_size_stable(self, seed, dim):
        rng = np.random.default_rng(seed)
        poly = random_polytope(dim, rng)
        engine = BatchedDriftEngine(poly)
        rows = int(rng.integers(2, 6))
        Q = np.stack([interior_point(poly, rng) for _ in range(rows)])
        P = rng.normal(size=(rows, dim)) * rng.uniform(0.2, 3.0)
        dt = rng.uniform(0.05, 2.5, size=rows)
        Qb, Pb, reflb, okb, insb = engine.drift(Q, P, dt)
        for i in range(rows):
            q1, p1, r1, o1, in1 = engine.drift(Q[i : i + 1], P[i : i + 1], dt[i : i + 1])
            np.testing.assert_array_equal(Qb[i], q1[0])
            np.testing.assert_array_equal(Pb[i], p1[0])
            assert reflb[i] == r1[0]
            assert okb[i] == o1[0]
            assert insb[i] == in1[0]

    @given(seed=seeds, dim=dims)
    @settings(max_examples=30, deadline=None)
    def test_leapfrog_rows_are_batch_size_stable(self, seed, dim):
        density = gaussian_density(dim)
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(2, 5))
        Q0 = rng.normal(size=(rows, dim)) * 0.4
        P0 = rng.normal(size=(rows, dim))
        _lp, G0 = density.batched(Q0)
        step = rng.uniform(0.02, 0.2, size=rows)
        n_steps = rng.integers(1, 9, size=rows)
        qb, pb, lpb, gb = leapfrog_batch(density, Q0, P0, G0, step, n_steps)
        for i in range(rows):
            q1, p1, lp1, g1 = leapfrog_batch(
                density,
                Q0[i : i + 1],
                P0[i : i + 1],
                G0[i : i + 1],
                step[i : i + 1],
                n_steps[i : i + 1],
            )
            np.testing.assert_array_equal(qb[i], q1[0])
            np.testing.assert_array_equal(pb[i], p1[0])
            np.testing.assert_array_equal(lpb[i], lp1[0])
            np.testing.assert_array_equal(gb[i], g1[0])


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
