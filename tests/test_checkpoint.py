"""Sampler checkpointing: interrupted chains resume rng-identically.

The durable-runs property for the samplers is *interrupted ≡
uninterrupted*: a chain killed mid-run and restarted from its last
snapshot must emit exactly the draws (and leave the rng in exactly the
state) an undisturbed chain would have.  These tests simulate the kill
by making the log-density callable raise after a fixed number of
evaluations, then re-invoke the sampler with a fresh generator.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro import checkpoint
from repro.stats.hmc import HMCConfig, hmc_sample
from repro.stats.nuts import nuts_sample
from repro.stats.polytope import Polytope
from repro.stats.reflective_hmc import reflective_hmc_sample


def std_normal(x):
    return -0.5 * float(x @ x), -x


class Interrupter:
    """Log-density wrapper that dies after ``budget`` evaluations."""

    def __init__(self, fn, budget):
        self.fn = fn
        self.budget = budget
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        if self.calls > self.budget:
            raise KeyboardInterrupt
        return self.fn(x)


def box_polytope():
    A = np.vstack([np.eye(2), -np.eye(2)])
    b = np.array([1.0, 1.0, 1.0, 1.0])
    return Polytope(A, b, ["x", "y"])


CFG = HMCConfig(n_samples=40, n_warmup=20, n_leapfrog=8)


def run_sampler(name, logp, rng, key=None):
    if name == "hmc":
        return hmc_sample(logp, np.zeros(2), CFG, rng, checkpoint_key=key)
    if name == "nuts":
        return nuts_sample(logp, np.zeros(2), CFG, rng, checkpoint_key=key)
    return reflective_hmc_sample(
        logp, box_polytope(), np.zeros(2), CFG, rng, checkpoint_key=key
    )


@pytest.mark.parametrize("sampler", ["hmc", "nuts", "reflective"])
class TestInterruptedEqualsUninterrupted:
    def golden(self, sampler):
        rng = np.random.default_rng(42)
        result = run_sampler(sampler, std_normal, rng)
        return result, checkpoint.rng_state(rng)

    def test_resumed_chain_is_rng_identical(self, sampler, tmp_path):
        golden, golden_rng = self.golden(sampler)
        checkpoint.enable(tmp_path / "ckpt", interval=5)
        with checkpoint.task_scope("cell/one"):
            interrupter = Interrupter(std_normal, 220)
            rng = np.random.default_rng(42)
            with pytest.raises(KeyboardInterrupt):
                run_sampler(sampler, interrupter, rng, key="chain0")
            # the wrapper must have fired mid-chain, past the first snapshot
            assert interrupter.calls > interrupter.budget
            rng = np.random.default_rng(42)
            resumed = run_sampler(sampler, std_normal, rng, key="chain0")
        assert np.array_equal(resumed.samples, golden.samples)
        assert resumed.step_size == golden.step_size
        assert checkpoint.rng_state(rng) == golden_rng

    def test_done_chain_replays_result_and_rng(self, sampler, tmp_path):
        golden, golden_rng = self.golden(sampler)
        checkpoint.enable(tmp_path / "ckpt", interval=5)
        with checkpoint.task_scope("cell/one"):
            rng = np.random.default_rng(42)
            first = run_sampler(sampler, std_normal, rng, key="chain0")
            # second call must not evaluate the target at all
            def explode(x):
                raise AssertionError("done chain must not re-run")

            rng = np.random.default_rng(42)
            replayed = run_sampler(sampler, explode, rng, key="chain0")
        assert np.array_equal(first.samples, golden.samples)
        assert np.array_equal(replayed.samples, golden.samples)
        assert checkpoint.rng_state(rng) == golden_rng

    def test_config_change_invalidates_snapshot(self, sampler, tmp_path):
        checkpoint.enable(tmp_path / "ckpt", interval=5)
        with checkpoint.task_scope("cell/one"):
            rng = np.random.default_rng(42)
            run_sampler(sampler, std_normal, rng, key="chain0")
            other = dataclasses.replace(CFG, n_samples=CFG.n_samples + 1)
            rng = np.random.default_rng(42)
            if sampler == "hmc":
                result = hmc_sample(std_normal, np.zeros(2), other, rng, checkpoint_key="chain0")
            elif sampler == "nuts":
                result = nuts_sample(std_normal, np.zeros(2), other, rng, checkpoint_key="chain0")
            else:
                result = reflective_hmc_sample(
                    std_normal, box_polytope(), np.zeros(2), other, rng, checkpoint_key="chain0"
                )
        # a mismatched fingerprint reruns the chain rather than replaying
        assert result.samples.shape[0] == other.n_samples


class TestChainCheckpoint:
    def cursor(self, tmp_path, fingerprint=None):
        return checkpoint.ChainCheckpoint(
            str(tmp_path / "c.ckpt.json"), fingerprint or {"key": "k"}, interval=10
        )

    def test_due_never_at_zero(self, tmp_path):
        cur = self.cursor(tmp_path)
        assert not cur.due(0)
        assert cur.due(10)
        assert not cur.due(11)

    def test_round_trip(self, tmp_path):
        cur = self.cursor(tmp_path)
        cur.save({"status": "running", "iteration": 10})
        assert self.cursor(tmp_path).load() == {"status": "running", "iteration": 10}

    def test_fingerprint_mismatch_ignored(self, tmp_path):
        self.cursor(tmp_path).save({"status": "running", "iteration": 10})
        assert self.cursor(tmp_path, {"key": "other"}).load() is None

    def test_torn_file_ignored(self, tmp_path):
        cur = self.cursor(tmp_path)
        cur.save({"status": "running", "iteration": 10})
        blob = open(cur.path).read()
        with open(cur.path, "w") as handle:
            handle.write(blob[: len(blob) // 2])
        assert self.cursor(tmp_path).load() is None

    def test_save_degrades_on_oserror(self, tmp_path, monkeypatch):
        cur = self.cursor(tmp_path)

        def boom(*a, **k):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(checkpoint.os, "replace", boom)
        cur.save({"status": "running", "iteration": 10})
        assert cur._broken
        monkeypatch.undo()
        cur.save({"status": "running", "iteration": 20})  # no-op now
        assert self.cursor(tmp_path).load() is None

    def test_atomic_save_leaves_no_tmp(self, tmp_path):
        cur = self.cursor(tmp_path)
        cur.save({"status": "done", "iteration": 40})
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []


class TestActivation:
    def test_cursor_is_none_when_disabled(self):
        assert checkpoint.chain_cursor("k", CFG, np.zeros(2)) is None

    def test_cursor_is_none_outside_task_scope(self, tmp_path):
        checkpoint.enable(tmp_path)
        assert checkpoint.chain_cursor("k", CFG, np.zeros(2)) is None

    def test_cursor_is_none_without_key(self, tmp_path):
        checkpoint.enable(tmp_path)
        with checkpoint.task_scope("cell"):
            assert checkpoint.chain_cursor(None, CFG, np.zeros(2)) is None

    def test_ensure_from_env_tracks_changes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(checkpoint.ENV_CHECKPOINT, str(tmp_path / "a"))
        assert checkpoint.ensure_from_env()
        assert checkpoint.enabled()
        monkeypatch.delenv(checkpoint.ENV_CHECKPOINT)
        assert not checkpoint.ensure_from_env()
        assert not checkpoint.enabled()

    def test_interval_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(checkpoint.ENV_INTERVAL, "7")
        checkpoint.enable(tmp_path)
        with checkpoint.task_scope("cell"):
            cur = checkpoint.chain_cursor("k", CFG, np.zeros(2))
        assert cur.interval == 7

    def test_rng_state_round_trip_is_json_safe(self):
        rng = np.random.default_rng(3)
        rng.standard_normal(17)
        state = json.loads(json.dumps(checkpoint.rng_state(rng)))
        other = np.random.default_rng(0)
        checkpoint.restore_rng(other, state)
        assert other.standard_normal(5).tolist() == rng.standard_normal(5).tolist()
