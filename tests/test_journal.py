"""Write-ahead run journal: append, replay, torn tails, degraded mode."""

import json
import os

import pytest

from repro import faultinject
from repro.evalharness.journal import (
    JOURNAL_NAME,
    JournalReplay,
    RunJournal,
    new_run_id,
    replay,
)


def write_run(run_dir, outcomes=(), finish=None):
    with RunJournal(run_dir, "r1") as journal:
        journal.run_start(
            params={"benchmark": "all", "seed": 0},
            signature={"cache_version": 4},
            grid=["a/static/aara", "a/hybrid/opt"],
        )
        for task, ok in outcomes:
            journal.task_start(task)
            journal.task_finish(task, {"task_id": task, "ok": ok, "result": {"n": 1}})
        if finish:
            journal.run_finish(finish)
    return run_dir


class TestRoundTrip:
    def test_replay_reconstructs_header_and_outcomes(self, tmp_path):
        run = write_run(tmp_path / "r1", [("a/static/aara", True), ("a/hybrid/opt", False)])
        out = replay(run)
        assert out.run_id == "r1"
        assert out.grid == ["a/static/aara", "a/hybrid/opt"]
        assert out.signature == {"cache_version": 4}
        assert out.params["benchmark"] == "all"
        assert set(out.started) == {"a/static/aara", "a/hybrid/opt"}
        assert not out.run_finished and not out.torn

    def test_completed_ok_excludes_failures(self, tmp_path):
        run = write_run(tmp_path / "r1", [("a/static/aara", True), ("a/hybrid/opt", False)])
        assert list(replay(run).completed_ok()) == ["a/static/aara"]

    def test_last_outcome_wins(self, tmp_path):
        run = tmp_path / "r1"
        with RunJournal(run) as journal:
            journal.task_finish("t", {"ok": False})
            journal.task_finish("t", {"ok": True})
        assert replay(run).finished["t"] == {"ok": True}

    def test_run_finish_and_resume_counters(self, tmp_path):
        run = write_run(tmp_path / "r1", [("a/static/aara", True)], finish="ok")
        with RunJournal(run, "r1") as journal:
            journal.run_resume(1, 1)
            journal.shutdown("signal:SIGTERM")
        out = replay(run)
        assert out.run_finished
        assert out.resumes == 1
        assert out.shutdowns == ["signal:SIGTERM"]

    def test_append_only_across_reopens(self, tmp_path):
        run = write_run(tmp_path / "r1", [("a/static/aara", True)])
        with RunJournal(run, "r1") as journal:
            journal.task_finish("a/hybrid/opt", {"ok": True})
        out = replay(run)
        assert out.header is not None
        assert len(out.finished) == 2


class TestTornTail:
    def test_torn_final_line_is_tolerated(self, tmp_path):
        run = write_run(tmp_path / "r1", [("a/static/aara", True), ("a/hybrid/opt", True)])
        path = os.path.join(run, JOURNAL_NAME)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:-20])  # kill mid-append of the final record
        out = replay(run)
        assert out.torn
        # the torn record's task is simply absent and will rerun
        assert list(out.finished) == ["a/static/aara"]

    def test_mid_file_corruption_raises(self, tmp_path):
        run = write_run(tmp_path / "r1", [("a/static/aara", True), ("a/hybrid/opt", True)])
        path = os.path.join(run, JOURNAL_NAME)
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b"{garbage\n"
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError):
            replay(run)


class TestDegradedMode:
    def test_enospc_fault_degrades_not_raises(self, tmp_path, capsys):
        faultinject.install(faultinject.FaultPlan.parse("journal-enospc:count=1"))
        with RunJournal(tmp_path / "r1") as journal:
            journal.task_finish("t1", {"ok": True})  # eaten by injected ENOSPC
            assert journal._degraded
            journal.task_finish("t2", {"ok": True})  # silently dropped
        out = replay(tmp_path / "r1")
        assert out.finished == {}

    def test_closed_journal_survives_close_twice(self, tmp_path):
        journal = RunJournal(tmp_path / "r1")
        journal.close()
        journal.close()


class TestRunId:
    def test_new_run_id_shape(self):
        rid = new_run_id()
        stamp, _, suffix = rid.rpartition("-")
        assert len(suffix) == 6
        assert len(stamp) == 15

    def test_header_none_properties_are_empty(self):
        out = JournalReplay(run_id="x", header=None)
        assert out.grid == [] and out.signature == {} and out.params == {}
