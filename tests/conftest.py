"""Shared test fixtures: environment hygiene for durable-run machinery.

The bench CLI journals every run under ``$REPRO_RUNS_DIR`` (default
``./runs``) and several subsystems activate themselves from environment
variables (checkpointing, fault injection, tracing).  Tests must neither
litter the working tree nor leak activation state into each other, so an
autouse fixture redirects run journals into ``tmp_path`` and restores
every activation variable afterwards.
"""

import os

import pytest

from repro import checkpoint, faultinject, telemetry
from repro.stats import engine as sampler_engine

# the IR verifier is always on in tests: every normalize call in the whole
# suite doubles as a uniquify/ANF/share invariant check (violations raise
# IRVerificationError with V0xx diagnostics instead of silent corruption)
os.environ.setdefault("REPRO_VERIFY_IR", "1")

_ENV_VARS = (
    "REPRO_RUNS_DIR",
    checkpoint.ENV_CHECKPOINT,
    checkpoint.ENV_INTERVAL,
    faultinject.ENV_SPEC,
    faultinject.ENV_STATE,
    telemetry.ENV_TRACE,
)

# the sampler engine selector is different: CI's engine matrix exports it
# for a whole suite run, so tests must SEE the ambient value — but a test
# that overrides it (the equivalence suite) must not leak its choice
_AMBIENT_SAMPLER = os.environ.get(sampler_engine.ENV_SAMPLER)


@pytest.fixture
def spawn_daemon(tmp_path):
    """Factory starting a `hybrid-aara serve` subprocess on a free port.

    Returns ``(proc, port)`` once the daemon prints its readiness line;
    every spawned daemon is SIGKILLed at teardown if still alive.
    """
    import json
    import signal
    import subprocess
    import sys

    procs = []
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

    def _spawn(*extra_args, env=None, cache=True):
        cmd = [
            sys.executable, "-m", "repro.cli", "serve", "--port", "0",
            "--runs-dir", str(tmp_path / "server-runs"),
        ]
        if cache:
            cmd += ["--cache-dir", str(tmp_path / "server-cache")]
        cmd += list(extra_args)
        full_env = {**os.environ, "PYTHONPATH": src, **(env or {})}
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=full_env,
        )
        procs.append(proc)
        line = proc.stdout.readline()
        assert line, f"daemon died before announcing: {proc.stderr.read()}"
        return proc, json.loads(line)["port"]

    yield _spawn
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        proc.stdout.close()
        proc.stderr.close()


@pytest.fixture(autouse=True)
def _durable_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    for var in _ENV_VARS[1:]:
        monkeypatch.delenv(var, raising=False)
    yield
    # deactivate anything a test (or the CLI under test) switched on
    # in-process, including env vars the code itself exported mid-test
    import os

    for var in _ENV_VARS:
        os.environ.pop(var, None)
    if _AMBIENT_SAMPLER is None:
        os.environ.pop(sampler_engine.ENV_SAMPLER, None)
    else:
        os.environ[sampler_engine.ENV_SAMPLER] = _AMBIENT_SAMPLER
    checkpoint.disable()
    faultinject.uninstall()
    telemetry.disable()
