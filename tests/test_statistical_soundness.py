"""Cross-benchmark statistical-soundness checks (Theorems 6.1 and 6.2).

Theorem 6.1: every inferred bound dominates every top-level measurement in
the runtime data used to infer it.  We verify this on real benchmarks for
all three methods.

Theorem 6.2: as the dataset grows (with worst-case inputs appearing with
positive probability), the probability of inferring a sound bound
converges to one.  We verify the mechanism on QuickSort.
"""

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.inference import collect_dataset, run_analysis
from repro.lang import compile_program, evaluate
from repro.suite import get_benchmark
from repro.suite.generators import sorted_ascending_expensive

FAST_BENCHMARKS = ["MapAppend", "Concat", "InsertionSort2", "Round", "EvenOddTail"]


@pytest.mark.parametrize("name", FAST_BENCHMARKS)
@pytest.mark.parametrize("method", ["opt", "bayeswc"])
def test_theorem61_bounds_dominate_data(name, method):
    spec = get_benchmark(name)
    program = compile_program(spec.data_driven_source)
    rng = np.random.default_rng(0)
    sizes = list(spec.data_sizes)[::3]
    inputs = [spec.generator(rng, n) for n in sizes]
    dataset = collect_dataset(program, spec.data_driven_entry, inputs)
    config = spec.config(AnalysisConfig(num_posterior_samples=6, seed=0))
    result = run_analysis(program, spec.data_driven_entry, dataset, config, method)
    assert result.bounds, f"{name}/{method} returned no bounds"
    for args in inputs:
        measured = evaluate(program, spec.data_driven_entry, list(args)).cost
        for bound in result.bounds:
            assert bound.evaluate(args) >= measured - 1e-4, (name, method)


def test_theorem62_worst_case_data_makes_opt_sound_up_to_size_limit():
    """With worst-case inputs in the dataset, even Opt becomes sound *up to
    the input-size limit m present in the data* — exactly the statement of
    Theorem 6.2 (soundness for all V with φ(V) ≤ m)."""
    spec = get_benchmark("QuickSort")
    program = compile_program(spec.hybrid_source)
    rng = np.random.default_rng(1)
    inputs = [spec.generator(rng, n) for n in range(5, 61, 5)]
    inputs += [[sorted_ascending_expensive(n, 5)] for n in range(5, 61, 5)]
    dataset = collect_dataset(program, spec.hybrid_entry, inputs)
    config = AnalysisConfig(degree=2, num_posterior_samples=3, seed=0)
    result = run_analysis(program, spec.hybrid_entry, dataset, config, "opt")
    assert result.soundness_fraction(spec.truth, range(1, 61), spec.shape_fn) == 1.0
    # and the bound is within a whisker of the truth even beyond m
    gaps = result.relative_gaps(spec.truth, 1000, spec.shape_fn)
    assert gaps[0] > -0.01


def test_random_data_leaves_opt_unsound():
    """The complementary fact that motivates the whole paper."""
    spec = get_benchmark("QuickSort")
    program = compile_program(spec.hybrid_source)
    rng = np.random.default_rng(2)
    inputs = [spec.generator(rng, n) for n in range(5, 61, 5)]
    dataset = collect_dataset(program, spec.hybrid_entry, inputs)
    config = AnalysisConfig(degree=2, num_posterior_samples=3, seed=0)
    result = run_analysis(program, spec.hybrid_entry, dataset, config, "opt")
    assert result.soundness_fraction(spec.truth, range(1, 1001), spec.shape_fn) == 0.0
