"""Per-code diagnostic tests + golden rendered output for each lint code.

Each case is a tiny program designed to trigger exactly one rule; the
test asserts the code fires with a real span and that the full rendered
text (carets, notes, summary line) matches the committed golden file.
Regenerate goldens with ``REPRO_UPDATE_GOLDEN=1 pytest tests/test_lint_diagnostics.py``.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import (
    CODES,
    Diagnostic,
    lint_source,
    promote_warnings,
    render_all_text,
    render_text,
    to_json,
    to_sarif,
)
from repro.analysis.recursion import recursion_diagnostics
from repro.lang import ast as A

GOLDEN_DIR = Path(__file__).parent / "golden" / "lint"

#: code -> (source, entry) designed to trigger that code
CASES = {
    "R001": ("let f x = x ? 1\n", None),
    "R002": ("let f x = let y = in x\n", None),
    "R010": ("let f x = y\n", None),
    "R011": ("let f x = g x\n", None),
    "R012": ("let f x = x\nlet g y = f y y\n", None),
    "R013": ("let f x x = x + 1\n", None),
    "R014": ("let f x = x\nlet f y = y\nlet main z = f z\n", None),
    "R015": ("let f x = f x\n", None),
    "R016": ("let f x = x\n", "missing"),
    "R042": (
        "let rec spin xs =\n"
        "  match xs with\n"
        "  | [] -> 0\n"
        "  | hd :: tl -> let _ = Raml.tick 1.0 in spin xs\n",
        None,
    ),
    "W001": ("let f x = let x = x + 1 in x\n", None),
    "W002": ("let f x = let y = 1 in x\n", None),
    "W003": ("let g x = x\nlet main y = y\n", None),
    "W004": (
        "let f xs =\n"
        "  match xs with\n"
        "  | [] -> 0\n"
        "  | _ -> 1\n"
        "  | x :: t -> 2\n",
        None,
    ),
    "W005": ("let f xs = match xs with | x :: t -> x\n", None),
    "W010": ("let f x = let _ = Raml.tick (-1.0) in x\n", None),
    "W011": ("let f x = Raml.stat (x + 1)\n", None),
    "W012": (
        "let f x = x + 1\nlet g y = Raml.stat (Raml.stat (f y))\n",
        None,
    ),
    "W013": (
        "let rec g y = if y < 1 then 0 else Raml.stat (g (y - 1))\n"
        "let main x = x + 1\n",
        None,
    ),
    "N001": ("let id x = x\nlet f xs = (id xs, id xs)\n", None),
    "N002": ("let f p = match p with | (a, b) -> a\n", None),
}


def _lint(code):
    source, entry = CASES[code]
    return lint_source(source, path=f"{code}.ml", entry=entry), source


@pytest.mark.parametrize("code", sorted(CASES))
def test_case_triggers_code_with_span(code):
    result, _source = _lint(code)
    hits = [d for d in result.diagnostics if d.code == code]
    assert hits, f"{code} did not fire: {[d.code for d in result.diagnostics]}"
    # R016 (entry not found) is a whole-program fact with no span
    if code != "R016":
        assert all(d.span is not None and d.span.line >= 1 for d in hits)
    for d in result.diagnostics:
        assert d.code in CODES


@pytest.mark.parametrize("code", sorted(CASES))
def test_golden_rendering(code):
    result, source = _lint(code)
    rendered = render_all_text(result.diagnostics, {f"{code}.ml": source}) + "\n"
    golden = GOLDEN_DIR / f"{code}.txt"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(rendered)
    assert golden.exists(), f"golden file missing; regenerate with REPRO_UPDATE_GOLDEN=1"
    assert rendered == golden.read_text()


def test_at_least_eight_codes_are_golden_tested():
    assert len(CASES) >= 8


def test_severity_prefix_matches_code_family():
    for code in sorted(CASES):
        result, _ = _lint(code)
        for d in result.diagnostics:
            if d.code.startswith("R"):
                assert d.severity == "error", d
            elif d.code.startswith("W"):
                assert d.severity == "warning", d
            elif d.code.startswith("N"):
                assert d.severity == "note", d


def test_r043_mutual_recursion_on_constructed_ast():
    # the surface parser cannot express mutual recursion; build it directly
    even = A.FunDef(
        "even",
        ("n",),
        A.App("odd", (A.Var("n"),)),
        recursive=True,
        pos=A.Pos(1, 1),
    )
    odd = A.FunDef(
        "odd",
        ("n",),
        A.App("even", (A.Var("n"),)),
        recursive=True,
        pos=A.Pos(2, 1),
    )
    diags = recursion_diagnostics([even, odd])
    assert sorted(d.code for d in diags) == ["R043", "R043"]
    assert {d.function for d in diags} == {"even", "odd"}


def test_promote_warnings_keeps_notes():
    result, _ = _lint("W002")
    promoted = promote_warnings(result.diagnostics)
    assert any(d.severity == "error" and d.code == "W002" for d in promoted)
    assert all(d.severity != "warning" for d in promoted)
    result, _ = _lint("N001")
    promoted = promote_warnings(result.diagnostics)
    assert all(d.severity == "note" for d in promoted if d.code == "N001")


def test_json_rendering_round_trips():
    result, _ = _lint("W002")
    payload = to_json(result.diagnostics)
    assert payload["version"] == 1
    blob = json.loads(json.dumps(payload))
    codes = [d["code"] for d in blob["diagnostics"]]
    assert "W002" in codes
    for d in blob["diagnostics"]:
        assert set(d) == {
            "code",
            "severity",
            "message",
            "path",
            "line",
            "col",
            "length",
            "function",
            "notes",
        }


def test_sarif_has_rules_and_regions():
    result, _ = _lint("R042")
    sarif = to_sarif(result.diagnostics)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {d.code for d in result.diagnostics} == rule_ids
    r042 = [r for r in run["results"] if r["ruleId"] == "R042"]
    assert r042 and r042[0]["level"] == "error"
    region = r042[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 4 and region["startColumn"] == 42


def test_render_text_without_source_still_shows_location():
    d = Diagnostic(code="W002", severity="warning", message="m", path="x.ml")
    out = render_text(d, None)
    assert "warning[W002]" in out and "x.ml" in out
