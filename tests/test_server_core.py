"""ServerCore tests: admission flow, degradation, crash/hang supervision.

These drive the sans-io core directly — no sockets — with module-level
fake task functions (they must cross the process pool, so they live at
module scope and communicate through the filesystem/env).
"""

import contextlib
import json
import os
import time

import pytest

from repro.evalharness.journal import JOURNAL_NAME
from repro.server.core import AdmissionError, ServerConfig, ServerCore
from repro.server.model import SpecError


def _outcome(task, ok=True, sampler_latency=0.01, error=None):
    return {
        "task": task.task_id,
        "kind": task.kind,
        "benchmark": task.benchmark,
        "mode": task.mode,
        "method": task.method,
        "seed": task.seed,
        "ok": ok,
        "outcome": "ok" if ok else "error",
        "error": error,
        "failure": None
        if ok
        else {"stage": "sampler", "error_class": "SamplerError", "attempts": 1, "elapsed": 0.0},
        "result": {"bound": [1.0, 2.0]} if ok else None,
        "verdict": None,
        "metrics": {
            "wall_seconds": 0.01,
            "max_rss_kb": 0,
            "pid": os.getpid(),
            "started_ts": time.time(),
            "stages": {"sampler": sampler_latency},
        },
    }


def fast_task(task):
    return _outcome(task)


def slow_sampler_task(task):
    # completes fine but reports a sampler stage way over any budget
    return _outcome(task, sampler_latency=99.0)


def crash_once_task(task):
    flag = os.path.join(os.environ["REPRO_TEST_CRASH_DIR"], f"crashed-{task.task_id.replace('/', '_')}")
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(1)  # simulate a worker death, not a Python exception
    return _outcome(task)


def sleep_by_benchmark_task(task):
    # MapAppend hangs; everything else is fast
    if task.benchmark == "MapAppend":
        time.sleep(30.0)
    elif task.benchmark == "Concat":
        time.sleep(2.0)
    return _outcome(task)


@contextlib.contextmanager
def running_core(tmp_path, task_fn, **overrides):
    overrides.setdefault("jobs", 1)
    overrides.setdefault("rate", 0.0)  # rate limiting off unless a test wants it
    overrides.setdefault("backoff_seconds", 0.0)
    overrides.setdefault("runs_dir", str(tmp_path / "server-runs"))
    overrides.setdefault("cache_dir", str(tmp_path / "server-cache"))
    config = ServerConfig(**overrides)
    core = ServerCore(config)
    core.supervisor.task_fn = task_fn
    core.start()
    try:
        yield core
    finally:
        core.stop(grace=0.2)


def wait_terminal(record, timeout=20.0):
    deadline = time.monotonic() + timeout
    while not record.terminal():
        if time.monotonic() > deadline:
            raise AssertionError(f"request {record.id} never terminal: {record.state}")
        time.sleep(0.01)
    return record


BODY = {"benchmark": "MapAppend", "method": "opt", "samples": 5, "seed": 0}


def test_submit_runs_to_done(tmp_path):
    with running_core(tmp_path, fast_task) as core:
        record = core.submit(dict(BODY), client="t")
        wait_terminal(record)
        assert record.state == "done"
        assert [e["ev"] for e in record.events] == ["admitted", "queued", "started", "finished"]
        assert record.outcome["ok"]
        assert core.counters["done"] == 1
        health = core.healthz()
        assert health["status"] == "ok"
        assert health["breaker"]["state"] == "closed"


def test_second_submit_is_cache_hit_with_identical_outcome(tmp_path):
    with running_core(tmp_path, fast_task) as core:
        first = wait_terminal(core.submit(dict(BODY), client="t"))
        second = core.submit(dict(BODY), client="t")
        assert second.terminal()  # cache hits resolve synchronously
        assert second.cache_hit and not first.cache_hit
        # byte-identical result payload (same content-addressed entry)
        assert json.dumps(second.outcome["result"], sort_keys=True) == json.dumps(
            first.outcome["result"], sort_keys=True
        )


def test_malformed_specs_are_400s(tmp_path):
    with running_core(tmp_path, fast_task) as core:
        for bad in (
            {},
            {"benchmark": "NoSuchBenchmark"},
            {"benchmark": "MapAppend", "method": "quantum"},
            {"benchmark": "MapAppend", "samples": 0},
            {"benchmark": "MapAppend", "deadline_seconds": -1},
        ):
            with pytest.raises(SpecError):
                core.submit(bad, client="t")


def test_rate_limit_sheds_with_retry_after(tmp_path):
    with running_core(tmp_path, fast_task, rate=1.0, burst=1.0) as core:
        wait_terminal(core.submit(dict(BODY, seed=1), client="greedy"))
        with pytest.raises(AdmissionError) as info:
            core.submit(dict(BODY, seed=2), client="greedy")
        assert info.value.status == 429
        assert info.value.retry_after > 0
        assert core.counters["rate_limited"] == 1
        # a different client is not punished
        other = core.submit(dict(BODY, seed=3), client="polite")
        wait_terminal(other)


def test_rate_limited_client_still_gets_cache_hits(tmp_path):
    with running_core(tmp_path, fast_task, rate=1.0, burst=1.0) as core:
        wait_terminal(core.submit(dict(BODY), client="c"))
        # bucket is empty now, but the same request is cached — served anyway
        record = core.submit(dict(BODY), client="c")
        assert record.cache_hit
        assert record.state == "done"


def test_queue_full_sheds(tmp_path):
    with running_core(
        tmp_path, sleep_by_benchmark_task, jobs=1, queue_capacity=1
    ) as core:
        # one hanging request occupies the worker, one fills the queue
        core.submit({"benchmark": "MapAppend", "method": "opt", "seed": 1}, client="t")
        time.sleep(0.3)  # let the supervisor pull it into the pool
        core.submit({"benchmark": "MapAppend", "method": "opt", "seed": 2}, client="t")
        with pytest.raises(AdmissionError) as info:
            core.submit({"benchmark": "MapAppend", "method": "opt", "seed": 3}, client="t")
        assert info.value.status == 429
        assert info.value.retry_after >= 1.0
        assert core.counters["shed"] == 1


def test_breaker_degrades_bayespc_and_marks_response(tmp_path):
    with running_core(
        tmp_path,
        slow_sampler_task,
        latency_budget=1.0,
        breaker_threshold=2,
        breaker_window=4,
    ) as core:
        for seed in (1, 2):
            wait_terminal(
                core.submit(dict(BODY, method="bayespc", seed=seed), client="t")
            )
        assert core.breaker.level() == 1
        degraded = core.submit(dict(BODY, method="bayespc", seed=3), client="t")
        wait_terminal(degraded)
        assert degraded.degraded is not None
        assert degraded.degraded["requested"] == "bayespc"
        assert degraded.degraded["served"] == "bayeswc"
        assert "breaker-open" in degraded.degraded["reason"]
        assert degraded.served_method == "bayeswc"
        doc = degraded.to_json()
        assert doc["degraded"]["served"] == "bayeswc"
        assert core.healthz()["breaker"]["state"] == "open"
        # opt requests pass through untouched even while open
        plain = wait_terminal(core.submit(dict(BODY, method="opt", seed=4), client="t"))
        assert plain.degraded is None


def test_worker_crash_is_retried_transparently(tmp_path, monkeypatch):
    crash_dir = tmp_path / "crash-flags"
    crash_dir.mkdir()
    monkeypatch.setenv("REPRO_TEST_CRASH_DIR", str(crash_dir))
    with running_core(tmp_path, crash_once_task) as core:
        record = wait_terminal(core.submit(dict(BODY), client="t"))
        assert record.state == "done"
        assert record.attempts == 2  # first attempt died with the worker
        assert core.supervisor.pool_replacements >= 1


def test_hung_worker_times_out_and_daemon_survives(tmp_path):
    with running_core(tmp_path, sleep_by_benchmark_task, jobs=1) as core:
        hung = core.submit(
            {"benchmark": "MapAppend", "method": "opt", "deadline_seconds": 1.0},
            client="t",
        )
        wait_terminal(hung, timeout=15.0)
        assert hung.state == "timeout"
        assert "deadline" in hung.error
        assert core.counters["timeout"] == 1
        # the pool was replaced; a new request still completes
        after = core.submit({"benchmark": "QuickSort", "method": "opt"}, client="t")
        wait_terminal(after)
        assert after.state == "done"


def test_innocent_inflight_request_survives_pool_kill(tmp_path):
    with running_core(tmp_path, sleep_by_benchmark_task, jobs=2) as core:
        innocent = core.submit(
            {"benchmark": "Concat", "method": "opt", "deadline_seconds": 60.0},
            client="t",
        )
        hung = core.submit(
            {"benchmark": "MapAppend", "method": "opt", "deadline_seconds": 1.0},
            client="t",
        )
        wait_terminal(hung, timeout=15.0)
        assert hung.state == "timeout"
        wait_terminal(innocent, timeout=30.0)
        assert innocent.state == "done"
        # the resubmission did not burn one of the innocent's attempts
        assert innocent.attempts == 1


def test_drain_cancels_queued_requests_as_resumable(tmp_path):
    config_runs = tmp_path / "server-runs"
    with running_core(tmp_path, sleep_by_benchmark_task, jobs=1) as core:
        run_id = core.run_id
        inflight = core.submit({"benchmark": "MapAppend", "method": "opt"}, client="t")
        time.sleep(0.3)
        queued = core.submit({"benchmark": "MapAppend", "method": "opt", "seed": 9}, client="t")
        stats = core.stop(grace=0.2)
        assert stats["cancelled"] == 2
        assert inflight.state == "cancelled"
        assert queued.state == "cancelled"
        with pytest.raises(AdmissionError) as info:
            core.submit(dict(BODY), client="t")
        assert info.value.status == 503
    journal_path = config_runs / run_id / JOURNAL_NAME
    events = [json.loads(line) for line in journal_path.read_text().splitlines()]
    cancelled = [e for e in events if e["ev"] == "request-cancelled"]
    assert {e["id"] for e in cancelled} == {inflight.id, queued.id}
    assert all(e["resumable"] for e in cancelled)
