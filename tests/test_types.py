"""Simple type inference tests."""

import pytest

from repro.errors import TypeMismatchError
from repro.lang import ast as A
from repro.lang import compile_program
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.types import typecheck_program


def infer(src):
    return typecheck_program(normalize_program(parse_program(src)))


class TestInference:
    def test_identity_defaults_to_int(self):
        prog = infer("let f x = x")
        assert prog["f"].fun_type == A.FunType((A.INT,), A.INT)

    def test_arithmetic_forces_int(self):
        prog = infer("let f x = x + 1")
        assert prog["f"].fun_type.params == (A.INT,)

    def test_list_type(self):
        prog = infer("let f xs = match xs with [] -> 0 | h :: t -> h")
        assert prog["f"].fun_type.params == (A.TList(A.INT),)

    def test_nested_list(self):
        prog = infer(
            "let rec f xss = match xss with [] -> 0 | h :: t -> (match h with [] -> 0 | a :: b -> a) + f t"
        )
        assert prog["f"].fun_type.params == (A.TList(A.TList(A.INT)),)

    def test_bool_result(self):
        prog = infer("let f x = x <= 3")
        assert prog["f"].fun_type.result == A.BOOL

    def test_tuple_result(self):
        prog = infer("let f x = (x, x + 1)")
        assert prog["f"].fun_type.result == A.TProd((A.INT, A.INT))

    def test_sum_types(self):
        prog = infer(
            "let f s = match s with | Left x -> x + 1 | Right b -> if b then 1 else 0"
        )
        assert prog["f"].fun_type.params == (A.TSum(A.INT, A.BOOL),)

    def test_recursive_function(self):
        prog = infer(
            "let rec length xs = match xs with [] -> 0 | h :: t -> 1 + length t"
        )
        assert prog["length"].fun_type == A.FunType((A.TList(A.INT),), A.INT)

    def test_mutual_reference_forward(self):
        prog = infer("let f x = g x\nlet g y = y + 1")
        assert prog["f"].fun_type.result == A.INT

    def test_builtin_application(self):
        prog = infer("let f a b = complex_leq a b")
        assert prog["f"].fun_type == A.FunType((A.INT, A.INT), A.BOOL)

    def test_error_expr_types_at_anything(self):
        prog = infer("let f xs = match xs with [] -> raise Bad | h :: t -> h")
        assert prog["f"].fun_type.result == A.INT

    def test_stat_is_transparent_to_types(self):
        prog = infer("let f xs = Raml.stat (g xs)\nlet g xs = match xs with [] -> 0 | h :: t -> h")
        assert prog["f"].fun_type.result == A.INT

    def test_nodes_are_annotated(self):
        prog = infer("let f x = x + 1")
        for node in prog["f"].body.walk():
            assert node.type is not None


class TestErrors:
    def test_branch_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            infer("let f c = if c then 1 else []")

    def test_condition_not_bool(self):
        with pytest.raises(TypeMismatchError):
            infer("let f x = if x then 1 else 2\nlet g y = f (y + 1)")

    def test_arity_mismatch(self):
        with pytest.raises(TypeMismatchError):
            infer("let f x = x\nlet g y = f y y")

    def test_unknown_function(self):
        with pytest.raises(TypeMismatchError):
            infer("let f x = mystery x")

    def test_occurs_check(self):
        with pytest.raises(TypeMismatchError):
            infer("let rec f xs = f (xs :: [])")

    def test_cons_of_mismatched_element(self):
        with pytest.raises(TypeMismatchError):
            infer("let f b = (b && true) :: [ 1 ]")

    def test_compile_program_raises(self):
        with pytest.raises(TypeMismatchError):
            compile_program("let f x = x + true")
