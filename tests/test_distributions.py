"""Distribution library tests: densities, CDFs, inverses, truncation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InferenceError
from repro.stats.distributions import (
    GumbelMin,
    HalfNormal,
    Logistic,
    Normal,
    Weibull,
    sample_truncated,
    truncated_logpdf,
)

RNG = np.random.default_rng(12345)

pos = st.floats(0.2, 5.0, allow_nan=False)


def numeric_gradient(f, x, h=1e-6):
    return (f(x + h) - f(x - h)) / (2 * h)


class TestNormal:
    def test_logpdf_standard(self):
        assert Normal().logpdf(0.0) == pytest.approx(-0.5 * math.log(2 * math.pi))

    def test_cdf_median(self):
        assert Normal(2.0, 3.0).cdf(2.0) == pytest.approx(0.5)

    @given(x=st.floats(-4, 4), loc=st.floats(-2, 2), scale=pos)
    @settings(max_examples=40, deadline=None)
    def test_gradient_consistent(self, x, loc, scale):
        d = Normal(loc, scale)
        assert d.grad_logpdf(x) == pytest.approx(
            numeric_gradient(lambda t: float(d.logpdf(t)), x), abs=1e-4
        )

    def test_sample_moments(self):
        xs = Normal(1.0, 2.0).sample(RNG, size=20000)
        assert xs.mean() == pytest.approx(1.0, abs=0.1)
        assert xs.std() == pytest.approx(2.0, abs=0.1)


class TestHalfNormal:
    def test_negative_support_zero(self):
        assert HalfNormal(1.0).logpdf(-0.5) == -np.inf

    def test_samples_nonnegative(self):
        xs = HalfNormal(2.0).sample(RNG, size=1000)
        assert np.all(xs >= 0)

    def test_density_integrates_to_one(self):
        xs = np.linspace(0, 20, 40001)
        pdf = np.exp(HalfNormal(2.0).logpdf(xs))
        assert np.trapezoid(pdf, xs) == pytest.approx(1.0, abs=1e-3)


class TestGumbelMin:
    def test_cdf_matches_definition(self):
        d = GumbelMin()
        z = 0.3
        assert d.cdf(z) == pytest.approx(1 - math.exp(-math.exp(z)))

    @given(u=st.floats(0.01, 0.99))
    @settings(max_examples=40, deadline=None)
    def test_ppf_inverts_cdf(self, u):
        d = GumbelMin(1.0, 2.0)
        assert d.cdf(d.ppf(u)) == pytest.approx(u, abs=1e-9)

    @given(x=st.floats(-3, 2))
    @settings(max_examples=40, deadline=None)
    def test_gradient_consistent(self, x):
        d = GumbelMin()
        assert d.grad_logpdf(x) == pytest.approx(
            numeric_gradient(lambda t: float(d.logpdf(t)), x), abs=1e-4
        )

    def test_exp_of_gumbel_min_is_weibull(self):
        """The survival-analysis identity behind Eq. 5.12."""
        sigma = 0.7
        d = GumbelMin()
        zs = d.sample(RNG, size=40000)
        cs = np.exp(sigma * zs)  # scale exp(mu)=1, shape 1/sigma
        w = Weibull(shape=1 / sigma, scale=1.0)
        # compare empirical CDF with Weibull CDF at a few quantiles
        for q in (0.25, 0.5, 0.75):
            empirical = np.quantile(cs, q)
            assert w.cdf(empirical) == pytest.approx(q, abs=0.02)


class TestLogistic:
    @given(u=st.floats(0.01, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_ppf_inverts_cdf(self, u):
        d = Logistic(0.5, 1.5)
        assert d.cdf(d.ppf(u)) == pytest.approx(u, abs=1e-9)


class TestWeibull:
    def test_invalid_params(self):
        with pytest.raises(InferenceError):
            Weibull(0.0, 1.0)

    def test_exponential_special_case(self):
        d = Weibull(1.0, 2.0)
        assert float(d.logpdf(1.0)) == pytest.approx(math.log(0.5) - 0.5)

    @given(u=st.floats(0.01, 0.99), k=pos, lam=pos)
    @settings(max_examples=40, deadline=None)
    def test_ppf_inverts_cdf(self, u, k, lam):
        d = Weibull(k, lam)
        assert float(d.cdf(d.ppf(u))) == pytest.approx(u, abs=1e-9)

    @given(x=st.floats(0.1, 10), k=st.floats(1.0, 3.0), lam=pos)
    @settings(max_examples=40, deadline=None)
    def test_gradient_consistent(self, x, k, lam):
        d = Weibull(k, lam)
        assert float(d.grad_logpdf(x)) == pytest.approx(
            numeric_gradient(lambda t: float(d.logpdf(t)), x), rel=1e-3, abs=1e-4
        )

    def test_logcdf_matches_cdf(self):
        d = Weibull(1.5, 2.0)
        for x in (0.5, 1.0, 4.0):
            assert float(d.logcdf(x)) == pytest.approx(math.log(float(d.cdf(x))))


class TestTruncation:
    def test_samples_respect_interval(self):
        d = Weibull(1.0, 1.0)
        xs = sample_truncated(d, 0.5, 2.0, RNG, size=500)
        assert np.all((xs >= 0.5) & (xs <= 2.0))

    def test_unbounded_above(self):
        d = GumbelMin()
        xs = np.array([sample_truncated(d, 1.0, np.inf, RNG) for _ in range(200)])
        assert np.all(xs >= 1.0)

    def test_degenerate_interval_returns_endpoint(self):
        d = Weibull(1.0, 1.0)
        assert sample_truncated(d, 1e9, 1e9 + 1, RNG) >= 1e9

    def test_truncated_logpdf_normalizes(self):
        d = Normal()
        xs = np.linspace(-1, 1, 20001)
        pdf = np.exp(truncated_logpdf(d, xs, -1, 1))
        assert np.trapezoid(pdf, xs) == pytest.approx(1.0, abs=1e-3)

    def test_truncated_logpdf_outside_is_minus_inf(self):
        d = Normal()
        assert truncated_logpdf(d, np.array([5.0]), -1, 1)[0] == -np.inf
