"""Hardened POST /analyze: untrusted source, tenants, quotas, hostile mix.

The serving invariants for arbitrary submitted programs:

* a source submission that lints clean produces real bounds, under the
  untrusted execution budget, cached by content address;
* a source byte-identical to a suite benchmark re-routes onto the
  benchmark-name path — same task id, byte-identical bounds, shared
  cache entry;
* lint rejection is a structured 422 with the diagnostics in the body;
* API keys map to tenants; quota exhaustion is a structured 429 with
  provenance; and every hostile corpus program terminates in a
  classified state — never an unhandled exception or a dropped request.
"""

import importlib.util
import json
import os
import time

import pytest

from repro.server.admission import TenantQuotas
from tests.test_server_chaos import assert_no_request_dropped, request

pytestmark = pytest.mark.slow

HOSTILE_DIR = os.path.join(os.path.dirname(__file__), "hostile")

MEASURABLE = """
let rec length xs =
  match xs with
  | [] -> 0
  | hd :: tl -> let _ = Raml.tick 1.0 in 1 + length tl

let main xs = Raml.stat (length xs)
"""


def _corpus_module():
    spec = importlib.util.spec_from_file_location(
        "hostile_build_corpus", os.path.join(HOSTILE_DIR, "build_corpus.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ---------------------------------------------------------------------------
# Tenant quotas: deterministic unit tests (no daemon, fake clock)
# ---------------------------------------------------------------------------


class TestTenantQuotas:
    def test_concurrency_quota(self):
        quotas = TenantQuotas(max_concurrent=1)
        ok, _, _ = quotas.acquire("alice")
        assert ok
        ok, reason, retry = quotas.acquire("alice")
        assert not ok and "concurrency" in reason and retry > 0
        ok2, _, _ = quotas.acquire("bob")  # quotas are per-tenant
        assert ok2
        quotas.release("alice")
        assert quotas.acquire("alice")[0]

    def test_cpu_window_quota_prunes_old_charges(self):
        now = [100.0]
        quotas = TenantQuotas(cpu_seconds=1.0, window=60.0, clock=lambda: now[0])
        ok, _, _ = quotas.acquire("alice")
        assert ok
        quotas.release("alice")
        quotas.charge("alice", 2.0)
        ok, reason, retry = quotas.acquire("alice")
        assert not ok and "cpu" in reason
        assert 0 < retry <= 60.0
        now[0] += 61.0  # the charge ages out of the window
        assert quotas.acquire("alice")[0]

    def test_disabled_quotas_admit_everything(self):
        quotas = TenantQuotas()
        assert not quotas.enabled()
        for _ in range(100):
            assert quotas.acquire("anyone")[0]


# ---------------------------------------------------------------------------
# Source submissions through the live daemon
# ---------------------------------------------------------------------------


def test_source_submission_returns_bounds(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon("--jobs", "1")
    body = {"source": MEASURABLE, "entry": "main", "method": "opt", "samples": 5}
    status, doc = request(port, "POST", "/analyze?wait=1&timeout=120", body)
    assert status == 200, doc
    assert doc["state"] == "done"
    assert doc["request"]["benchmark"].startswith("user:")
    assert doc["result"]["ok"]
    health = request(port, "GET", "/healthz")[1]
    assert health["counters"]["source_requests"] >= 1
    assert health["budget"]["eval_steps"] == 2_000_000  # untrusted defaults
    assert_no_request_dropped(tmp_path)


def test_source_normalization_shares_the_cache(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon("--jobs", "1")
    body = {"source": MEASURABLE, "entry": "main", "method": "opt", "samples": 5}
    first = request(port, "POST", "/analyze?wait=1&timeout=120", body)[1]
    assert first["state"] == "done"
    # CRLF line endings + trailing whitespace: same normalized content
    mangled = MEASURABLE.replace("\n", "  \r\n") + "\n\n"
    body2 = dict(body, source=mangled)
    second = request(port, "POST", "/analyze?wait=1&timeout=120", body2)[1]
    assert second["request"]["benchmark"] == first["request"]["benchmark"]
    assert second["cache_hit"] is True
    assert second["result"] == first["result"]


def test_source_benchmark_equivalence(tmp_path, spawn_daemon):
    """A suite program submitted as raw source re-routes onto the
    benchmark-name path: same task id, byte-identical bounds."""
    from repro.suite.registry import all_benchmarks

    spec = next(b for b in all_benchmarks() if b.name == "MapAppend")
    _proc, port = spawn_daemon("--jobs", "1")
    by_name = {"benchmark": "MapAppend", "method": "opt", "samples": 5, "seed": 0}
    status, named = request(port, "POST", "/analyze?wait=1&timeout=120", by_name)
    assert status == 200 and named["state"] == "done"
    by_source = {
        "source": spec.data_driven_source,
        "method": "opt",
        "samples": 5,
        "seed": 0,
    }
    status, sourced = request(port, "POST", "/analyze?wait=1&timeout=120", by_source)
    assert status == 200, sourced
    assert sourced["request"]["benchmark"] == "MapAppend"  # rerouted, not user:<sha>
    assert sourced["result"]["task"] == named["result"]["task"]
    assert sourced["cache_hit"] is True  # shared cache entry
    assert json.dumps(sourced["result"], sort_keys=True) == json.dumps(
        named["result"], sort_keys=True
    )


def test_lint_rejection_is_422_with_diagnostics(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon("--jobs", "1")
    body = {"source": "let main xs = Raml.stat (undefined_fn xs)", "method": "opt"}
    status, doc = request(port, "POST", "/analyze?wait=1", body)
    assert status == 422
    error = doc["error"]
    assert error["code"] == "rejected-lint"
    assert error["diagnostics"], "422 must carry the lint diagnostics"
    assert all("code" in d and "message" in d for d in error["diagnostics"])
    health = request(port, "GET", "/healthz")[1]
    assert health["counters"]["rejected_lint"] >= 1


def test_bad_source_requests_are_structured_400s(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon("--jobs", "1")
    # source and benchmark together is ambiguous
    status, doc = request(
        port, "POST", "/analyze",
        {"source": MEASURABLE, "benchmark": "MapAppend", "method": "opt"},
    )
    assert status == 400 and doc["error"]["code"] == "bad-spec"
    # degree outside the supported range
    status, doc = request(
        port, "POST", "/analyze", {"source": MEASURABLE, "method": "opt", "degree": 9}
    )
    assert status == 400 and doc["error"]["code"] == "bad-spec"


def test_api_keys_gate_admission(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon("--jobs", "1", "--api-key", "sekrit=alice")
    status, doc = request(
        port, "POST", "/analyze", {"benchmark": "MapAppend", "method": "opt"}
    )
    assert status == 401
    assert doc["error"]["code"] == "auth-failed"
    # with the key: admitted and attributed to the tenant
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120.0)
    try:
        conn.request(
            "POST",
            "/analyze?wait=1&timeout=90",
            body=json.dumps({"benchmark": "MapAppend", "method": "opt", "samples": 5}),
            headers={"Content-Type": "application/json", "X-Api-Key": "sekrit"},
        )
        response = conn.getresponse()
        doc = json.loads(response.read())
    finally:
        conn.close()
    assert response.status == 200 and doc["state"] == "done"
    health = request(port, "GET", "/healthz")[1]
    assert health["auth"] == {"enabled": True, "tenants": ["alice"]}


def test_cpu_quota_sheds_with_provenance(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon(
        "--jobs", "1",
        "--quota-cpu-seconds", "0.001",  # first real request exhausts it
        "--quota-window", "60",
    )
    first = request(
        port, "POST", "/analyze?wait=1&timeout=120",
        {"benchmark": "MapAppend", "method": "opt", "samples": 5, "seed": 0},
    )[1]
    assert first["state"] == "done"
    status, doc = request(
        port, "POST", "/analyze",
        {"benchmark": "Concat", "method": "opt", "samples": 5, "seed": 1},
    )
    assert status == 429
    error = doc["error"]
    assert error["code"] == "quota-exceeded"
    assert "cpu" in error["message"]  # quota provenance, not a bare 429
    assert error.get("retry_after", 0) > 0
    health = request(port, "GET", "/healthz")[1]
    assert health["counters"]["quota_shed"] >= 1
    assert health["quotas"]["tenants"]["public"]["cpu_used_seconds"] > 0
    # a cached replay of the first request is still served (no quota spend)
    replay = request(
        port, "POST", "/analyze?wait=1",
        {"benchmark": "MapAppend", "method": "opt", "samples": 5, "seed": 0},
    )[1]
    assert replay["state"] == "done" and replay["cache_hit"] is True
    assert_no_request_dropped(tmp_path)


# ---------------------------------------------------------------------------
# The hostile corpus, end to end through the daemon
# ---------------------------------------------------------------------------

#: expected terminal classification per corpus member (see tests/hostile/)
CORPUS_TERMINAL = {
    "spin.raml": ("error", "eval-budget"),
    "deep_call.raml": ("error", "eval-budget"),
    "value_bomb.raml": ("error", "eval-budget"),
    "lp_blowup.raml": ("done", None),
    "token_bomb.raml": (422, "rejected-lint"),
    "match_nest.raml": (422, "rejected-lint"),
}


def test_hostile_corpus_through_daemon(tmp_path, spawn_daemon):
    corpus = _corpus_module().corpus_programs()
    assert set(corpus) == set(CORPUS_TERMINAL)
    _proc, port = spawn_daemon("--jobs", "2")
    for name, source in sorted(corpus.items()):
        expected_state, expected_detail = CORPUS_TERMINAL[name]
        body = {"source": source, "method": "opt", "samples": 5, "client": name}
        status, doc = request(port, "POST", "/analyze?wait=1&timeout=120", body)
        if expected_state == 422:
            assert status == 422, f"{name}: {status} {doc}"
            assert doc["error"]["code"] == "rejected-lint"
            assert doc["error"]["diagnostics"]
        else:
            assert status == 200, f"{name}: {status} {doc}"
            assert doc["state"] == expected_state, f"{name}: {doc}"
            if expected_detail:
                stage = doc["result"]["failure"]["stage"]
                assert stage == expected_detail, f"{name}: stage {stage}"
    # the daemon survived the whole corpus and accounted for everything
    health = request(port, "GET", "/healthz")[1]
    assert health["status"] in ("ok", "degraded")
    assert health["counters"]["rejected_lint"] >= 2
    assert health["counters"]["budget_exceeded"] >= 3
    assert_no_request_dropped(tmp_path)


def test_hostile_mix_soak_with_chaos(tmp_path, spawn_daemon):
    """Mini version of the CI hostile-mix soak: 25%+ hostile source traffic
    while worker-crash faults fire, loadgen invariants checked."""
    from repro.server.loadgen import LoadgenConfig, check_invariants, run_loadgen

    corpus_dir = tmp_path / "hostile"
    _corpus_module().materialize(str(corpus_dir))
    _proc, port = spawn_daemon(
        "--jobs", "2",
        env={
            "REPRO_FAULTS": "worker-crash:count=2:action=exit",
            "REPRO_FAULTS_STATE": str(tmp_path / "fault-state"),
        },
    )
    report = run_loadgen(
        LoadgenConfig(
            url=f"http://127.0.0.1:{port}",
            requests=30,
            rate=15.0,
            seed=7,
            samples=5,
            wait_timeout=120.0,
            hostile_dir=str(corpus_dir),
            hostile_fraction=0.4,
            out=str(tmp_path / "BENCH_server.json"),
        )
    )
    check_invariants(report)  # every request terminal, nothing dropped
    taxonomy = report["taxonomy"]
    hostile_buckets = {"rejected-lint", "budget-exceeded", "resource-limit"}
    assert hostile_buckets & set(taxonomy), f"no hostile traffic classified: {taxonomy}"
    assert "transport_error" not in taxonomy
    assert "incomplete" not in taxonomy
    assert_no_request_dropped(tmp_path)
