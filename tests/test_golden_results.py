"""Golden-result regression tests for the evaluation harness.

Small fixed-seed posterior summaries for two cheap benchmarks are
committed under ``tests/golden/``; the runner must reproduce them
exactly (posterior coefficients within float tolerance, soundness
fractions exactly).  Any change to seeding, samplers, the LP pipeline,
or the runner's task decomposition that alters the posteriors shows up
here — bump the goldens deliberately by re-running this file with
``--regen`` (``PYTHONPATH=src python tests/test_golden_results.py --regen``).

Between them the two benchmarks cover all three methods and both modes:
Concat has a hybrid variant (opt + bayeswc), BubbleSort is data-driven
only (opt + bayespc, the reflective-HMC path).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.evalharness import run_benchmark
from repro.suite import get_benchmark

pytestmark = pytest.mark.slow

GOLDEN_DIR = Path(__file__).parent / "golden"
SAMPLES = 5
SEED = 0

#: benchmark -> (golden file, methods)
CASES = {
    "Concat": ("concat.json", ("opt", "bayeswc")),
    "BubbleSort": ("bubble_sort.json", ("opt", "bayespc")),
}


def _summarize(name: str, methods) -> dict:
    config = AnalysisConfig(num_posterior_samples=SAMPLES, seed=SEED)
    run = run_benchmark(get_benchmark(name), config, seed=SEED, methods=methods)
    cells = {}
    for (mode, method), result in sorted(run.results.items()):
        cells[f"{mode}/{method}"] = {
            "num_bounds": result.num_bounds,
            "failures": result.failures,
            "median_coefficients": result.median_coefficients(),
            "soundness": run.soundness(mode, method),
        }
    return {
        "benchmark": name,
        "seed": SEED,
        "samples": SAMPLES,
        "methods": list(methods),
        "conventional": run.conventional_label,
        "errors": {f"{m}/{k}": v for (m, k), v in sorted(run.errors.items())},
        "cells": cells,
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_posterior_summary(name):
    path, methods = CASES[name]
    golden = json.loads((GOLDEN_DIR / path).read_text())
    actual = _summarize(name, methods)

    assert actual["conventional"] == golden["conventional"]
    assert actual["errors"] == golden["errors"]
    assert sorted(actual["cells"]) == sorted(golden["cells"])
    for cell, expected in golden["cells"].items():
        got = actual["cells"][cell]
        assert got["num_bounds"] == expected["num_bounds"], cell
        assert got["failures"] == expected["failures"], cell
        np.testing.assert_allclose(
            got["median_coefficients"],
            expected["median_coefficients"],
            rtol=1e-6,
            atol=1e-9,
            err_msg=f"{name} {cell} median coefficients drifted",
        )
        assert got["soundness"] == pytest.approx(expected["soundness"], abs=1e-9), cell


def regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, (path, methods) in CASES.items():
        summary = _summarize(name, methods)
        (GOLDEN_DIR / path).write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {GOLDEN_DIR / path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regen()
    else:
        print("usage: python tests/test_golden_results.py --regen")
