"""Opt-in smoke tests for the runnable examples.

The examples each take one to a few minutes, so they only run when
``REPRO_RUN_EXAMPLES=1`` is set — e.g. in a nightly job.  The default test
run still verifies that every example imports cleanly and exposes a
``main`` entry point.
"""

import importlib.util
import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)
RUN_FULL = bool(os.environ.get("REPRO_RUN_EXAMPLES"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = _load(path)
    assert callable(getattr(module, "main", None))
    assert module.__doc__ and "Run:" in module.__doc__


@pytest.mark.skipif(not RUN_FULL, reason="set REPRO_RUN_EXAMPLES=1 to run examples")
@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_to_completion(path):
    result = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=1200
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
