"""Unit tests for the AARA constraint generator internals."""

import pytest

from repro.aara.analyze import build_analysis, solve_analysis
from repro.aara.annot import make_template
from repro.aara.bound import synthetic_list
from repro.aara.typecheck import ConstraintGenerator, StatSite
from repro.errors import StaticAnalysisError
from repro.lang import compile_program
from repro.lp import LinExpr


def gen_for(src, degree=1, **kwargs):
    return ConstraintGenerator(compile_program(src), degree, **kwargs)


class TestInstantiation:
    def test_fresh_signatures_per_call_site(self):
        """Non-recursive callees are re-derived per call site (resource
        polymorphism across SCCs)."""
        src = """
let helper xs = match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in h
let caller xs =
  match xs with
  | [] -> 0
  | h :: t -> helper t + (match t with [] -> 0 | a :: b -> helper b)
"""
        generator = gen_for(src, stat_mode="transparent")
        generator.instantiate("caller")
        assert generator.stats.instantiations.get("helper", 0) == 2

    def test_recursive_scc_derived_once_per_level(self):
        src = """
let rec len xs = match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in 1 + len t
"""
        generator = gen_for(src, degree=2, stat_mode="transparent")
        generator.instantiate("len")
        # one instantiation covering degree+1 levels (3 body derivations)
        assert generator.stats.instantiations["len"] == 1
        assert generator.stats.derivations == 3

    def test_mutual_recursion_shares_signatures(self):
        src = """
let rec ping xs = match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in pong t
let rec pong xs = match xs with [] -> 0 | h :: t -> ping t
"""
        generator = gen_for(src, degree=1, stat_mode="transparent")
        sig = generator.instantiate("ping")
        assert sig.fname == "ping"
        # SCC {ping, pong} derived together: 2 functions x 2 levels
        assert generator.stats.derivations == 4

    def test_derivation_budget_guard(self):
        src = """
let f0 x = x + 1
let f1 x = f0 (f0 x)
let f2 x = f1 (f1 x)
let f3 x = f2 (f2 x)
let f4 x = f3 (f3 x)
"""
        generator = gen_for(src, stat_mode="transparent", max_derivations=8)
        with pytest.raises(StaticAnalysisError, match="budget"):
            generator.instantiate("f4")

    def test_unknown_function(self):
        generator = gen_for("let f x = x", stat_mode="transparent")
        with pytest.raises(StaticAnalysisError):
            generator.instantiate("ghost")


class TestStatSites:
    SRC = """
let helper xs = match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in h
let top xs ys = Raml.stat (helper xs) + (match ys with [] -> 0 | h :: t -> h)
"""

    def test_site_context_restricted_to_free_vars(self):
        seen = {}

        def handler(site: StatSite):
            seen["ctx"] = sorted(site.ctx)
            seen["label"] = site.label
            result = make_template(site.result_type, site.degree, site.lp)
            return result, site.lp.fresh("q0")

        generator = gen_for(self.SRC, stat_handler=handler)
        generator.instantiate("top")
        assert seen["label"] == "top#1"
        # only xs (not ys) is free in the stat body
        assert len(seen["ctx"]) == 1

    def test_costful_flag_reaches_handler(self):
        flags = []

        def handler(site: StatSite):
            flags.append(site.costful)
            result = make_template(site.result_type, site.degree, site.lp)
            return result, site.lp.fresh("q0")

        src = """
let helper xs = match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in h
let rec walk xs =
  match xs with
  | [] -> 0
  | h :: t -> Raml.stat (helper xs) + walk t
"""
        generator = gen_for(src, degree=1, stat_handler=handler)
        generator.instantiate("walk")
        # level 0 costful, level 1 cost-free
        assert True in flags and False in flags

    def test_missing_handler_rejected(self):
        with pytest.raises(StaticAnalysisError, match="handler"):
            gen_for(self.SRC)

    def test_transparent_mode_ignores_stat(self):
        result = solve_analysis(
            build_analysis(compile_program(self.SRC), "top", 1, stat_mode="transparent")
        )
        # bound = 1 per element of xs
        assert result.bound.evaluate([synthetic_list(5), synthetic_list(9)]) == pytest.approx(
            5.0, abs=1e-5
        )

    def test_unknown_stat_mode(self):
        with pytest.raises(StaticAnalysisError):
            gen_for(self.SRC, stat_mode="wat")


class TestPotentialFlow:
    def test_branch_join_takes_maximum(self):
        src = """
let f c xs =
  if c then (let _ = Raml.tick 5.0 in 0)
  else (match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in h)
"""
        result = solve_analysis(
            build_analysis(compile_program(src), "f", 1, stat_mode="transparent")
        )
        from repro.lang.values import from_python

        value = result.bound.evaluate([from_python(True), synthetic_list(0)])
        assert value == pytest.approx(5.0, abs=1e-5)

    def test_share_splits_cost_across_uses(self):
        src = """
let rec count xs = match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in 1 + count t
let twice xs = count xs + count xs
"""
        result = solve_analysis(
            build_analysis(compile_program(src), "twice", 1, stat_mode="transparent")
        )
        assert result.bound.evaluate([synthetic_list(10)]) == pytest.approx(20.0, abs=1e-4)

    def test_sum_injection_and_match_roundtrip_potential(self):
        src = """
let wrap xs = Left xs
let consume s =
  match s with
  | Left xs -> (match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in h)
  | Right n -> n
let go xs = consume (wrap xs)
"""
        result = solve_analysis(
            build_analysis(compile_program(src), "go", 1, stat_mode="transparent")
        )
        # potential flows through the sum constructor: cost <= 1 (one tick max)
        assert result.bound.evaluate([synthetic_list(4)]) <= 4.0 + 1e-6

    def test_nil_carries_free_potential(self):
        src = """
let rec count xs = match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in 1 + count t
let fresh x = count []
"""
        result = solve_analysis(
            build_analysis(compile_program(src), "fresh", 1, stat_mode="transparent")
        )
        from repro.lang.values import from_python

        assert result.bound.evaluate([from_python(0)]) == pytest.approx(0.0, abs=1e-6)


class TestCostFreeLevels:
    def test_levels_match_degree(self):
        src = "let rec len xs = match xs with [] -> 0 | h :: t -> 1 + len t"
        for degree, expected in ((1, 2), (2, 3), (3, 4)):
            generator = gen_for(src, degree=degree, stat_mode="transparent")
            generator.instantiate("len")
            assert generator.stats.derivations == expected

    def test_superposition_allows_quadratic_accumulation(self):
        """Insertion sort needs the cost-free chain; without it the analysis
        would be infeasible at degree 2 (regression for HH'10 support)."""
        src = """
let rec insert x xs =
  match xs with
  | [] -> [ x ]
  | h :: t -> let _ = Raml.tick 1.0 in
    if x <= h then x :: h :: t else h :: insert x t

let rec isort xs = match xs with [] -> [] | h :: t -> insert h (isort t)
"""
        result = solve_analysis(
            build_analysis(compile_program(src), "isort", 2, stat_mode="transparent")
        )
        assert result.bound.evaluate([synthetic_list(8)]) == pytest.approx(28.0, abs=1e-4)
