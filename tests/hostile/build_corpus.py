"""Materialize the full hostile corpus into a directory.

Two corpus members are generated rather than checked in, because their
whole point is bulk:

* ``token_bomb.raml`` — a single expression of ~120k tokens, tripping
  the lexer's token budget (R001) at the admission lint gate.
* ``match_nest.raml`` — match expressions nested far beyond the parser's
  depth budget, tripping the R004 nesting diagnostic (and, before that
  budget existed, a Python ``RecursionError``).

Usage::

    python tests/hostile/build_corpus.py /tmp/hostile

The static members (``spin.raml``, ``deep_call.raml``,
``value_bomb.raml``, ``lp_blowup.raml``) are copied alongside, so the
output directory is a complete corpus for ``hybrid-aara loadgen
--hostile`` and the CI hostile-mix soak.
"""

from __future__ import annotations

import os
import shutil
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

STATIC_PROGRAMS = (
    "spin.raml",
    "deep_call.raml",
    "value_bomb.raml",
    "lp_blowup.raml",
)


def token_bomb(terms: int = 60_000) -> str:
    """One expression of ``2 * terms`` tokens (far over the 100k default
    token budget at the default 60k)."""
    return "let main n = Raml.stat (n" + " + 1" * terms + ")\n"


def match_nest(depth: int = 300) -> str:
    """Match expressions nested ``depth`` deep (default: 3x the untrusted
    nesting budget)."""
    head = "let rec grind xs =\n"
    body = []
    indent = "  "
    for level in range(depth):
        body.append(
            f"{indent}match xs with | [] -> {level} | hd :: tl ->\n"
        )
        indent += " "
    body.append(f"{indent}0\n")
    return head + "".join(body) + "let main xs = Raml.stat (grind xs)\n"


def corpus_programs(token_terms: int = 60_000, nest_depth: int = 300):
    """``{name: source}`` for the complete corpus (static + generated)."""
    programs = {}
    for name in STATIC_PROGRAMS:
        with open(os.path.join(HERE, name), "r") as handle:
            programs[name] = handle.read()
    programs["token_bomb.raml"] = token_bomb(token_terms)
    programs["match_nest.raml"] = match_nest(nest_depth)
    return programs


def materialize(directory: str, token_terms: int = 60_000, nest_depth: int = 300) -> list:
    """Write the full corpus into ``directory``; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for name in STATIC_PROGRAMS:
        dst = os.path.join(directory, name)
        shutil.copyfile(os.path.join(HERE, name), dst)
        paths.append(dst)
    for name, source in (
        ("token_bomb.raml", token_bomb(token_terms)),
        ("match_nest.raml", match_nest(nest_depth)),
    ):
        dst = os.path.join(directory, name)
        with open(dst, "w") as handle:
            handle.write(source)
        paths.append(dst)
    return paths


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: build_corpus.py <output-dir>", file=sys.stderr)
        raise SystemExit(2)
    written = materialize(sys.argv[1])
    print(f"wrote {len(written)} hostile program(s) to {sys.argv[1]}")
