"""Normalization preserves the semantics of every benchmark program.

The interpreter runs both the raw parsed AST and the share-let-normalized
one; on every benchmark and random input the value and cost must agree —
a strong end-to-end check of the parser/normalizer/interpreter stack.
"""

import numpy as np
import pytest

from repro.lang.interp import Interpreter
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.types import typecheck_program
from repro.suite import all_benchmarks

RNG = np.random.default_rng(123)


@pytest.mark.parametrize("spec", all_benchmarks(), ids=lambda s: s.name)
@pytest.mark.parametrize("variant", ["data-driven", "hybrid"])
def test_normalization_preserves_benchmark_semantics(spec, variant):
    source = spec.data_driven_source if variant == "data-driven" else spec.hybrid_source
    if source is None:
        pytest.skip("no hybrid variant")
    entry = spec.data_driven_entry if variant == "data-driven" else spec.hybrid_entry

    raw = parse_program(source)
    normalized = typecheck_program(normalize_program(parse_program(source)))

    for _ in range(3):
        n = int(RNG.choice(spec.data_sizes[:4]))
        args = spec.generator(RNG, n)
        r1 = Interpreter(raw, collect_stats=False).run(entry, list(args))
        r2 = Interpreter(normalized, collect_stats=False).run(entry, list(args))
        assert r1.value == r2.value
        assert r1.cost == pytest.approx(r2.cost)


@pytest.mark.parametrize("spec", all_benchmarks(), ids=lambda s: s.name)
def test_stat_records_cost_partition(spec):
    """For top-level-stat (data-driven) programs, the single stat record's
    cost equals the whole run's cost."""
    from repro.lang import compile_program, evaluate
    from repro.lang import ast as A

    program = compile_program(spec.data_driven_source)
    body = program[spec.data_driven_entry].body
    is_wrapper = isinstance(body, A.Stat) or (
        isinstance(body, A.Let) and isinstance(body.body, A.Stat)
    )
    n = int(spec.data_sizes[2])
    args = spec.generator(RNG, n)
    result = evaluate(program, spec.data_driven_entry, args)
    if is_wrapper and len(result.stat_records) == 1:
        assert result.stat_records[0].cost == pytest.approx(result.cost)
    else:
        # InsertionSort2-style: the stat region carries the entire ticked cost
        total = sum(r.cost for r in result.stat_records)
        assert total >= result.cost - 1e-9 or result.cost == 0.0
