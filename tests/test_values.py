"""Value representation and size-projection tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast as A
from repro.lang.values import (
    VList,
    VTuple,
    from_python,
    sizes_of,
    to_python,
    type_of_value,
)

nested_data = st.recursive(
    st.integers(-100, 100) | st.booleans(),
    lambda inner: st.lists(inner, max_size=4),
    max_leaves=20,
)


class TestConversion:
    def test_int(self):
        assert from_python(5) == 5

    def test_bool_stays_bool(self):
        assert from_python(True) is True

    def test_list(self):
        v = from_python([1, 2])
        assert isinstance(v, VList) and len(v) == 2

    def test_tuple(self):
        v = from_python((1, [2]))
        assert isinstance(v, VTuple)

    @given(st.lists(st.lists(st.integers(-5, 5), max_size=3), max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_nested_lists(self, data):
        assert to_python(from_python(data)) == data

    def test_rejects_unconvertible(self):
        from repro.errors import EvalError

        with pytest.raises(EvalError):
            from_python({"a": 1})


class TestTypeOfValue:
    def test_int_list(self):
        assert type_of_value(from_python([1, 2])) == A.TList(A.INT)

    def test_empty_list_defaults_to_int(self):
        assert type_of_value(from_python([])) == A.TList(A.INT)

    def test_tuple(self):
        assert type_of_value(from_python((1, True))) == A.TProd((A.INT, A.BOOL))


class TestSizeProjection:
    """φ(V, v) flattening (Section 5.4)."""

    def test_scalar_contributes_nothing(self):
        assert sizes_of(from_python(7)) == ()

    def test_flat_list_gives_length(self):
        assert sizes_of(from_python([1, 2, 3])) == (3,)

    def test_nested_list_gives_outer_and_total(self):
        assert sizes_of(from_python([[1, 2], [3], []])) == (3, 3)

    def test_tuple_concatenates(self):
        assert sizes_of(from_python(([1, 2], [3]))) == (2, 1)

    def test_tuple_of_scalar_and_list(self):
        assert sizes_of(from_python((5, [1, 2, 3, 4]))) == (4,)

    @given(st.lists(st.lists(st.integers(0, 5), max_size=5), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_nested_totals(self, data):
        outer, total = sizes_of(from_python(data))[:2]
        assert outer == len(data)
        assert total == sum(len(inner) for inner in data)
