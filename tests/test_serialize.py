"""Serialization round-trip tests for datasets, bounds, and results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig
from repro.errors import DatasetError
from repro.inference import collect_dataset, run_opt
from repro.inference.serialize import (
    bound_from_json,
    bound_to_json,
    dataset_from_json,
    dataset_to_json,
    load_dataset,
    load_result,
    result_from_json,
    result_to_json,
    save_dataset,
    save_result,
    value_from_json,
    value_to_json,
)
from repro.lang import compile_program, from_python
from repro.lang.values import VInl, VTuple, VUnit

SRC = """
let rec work xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + work tl
let work2 xs = Raml.stat (work xs)
"""


@pytest.fixture(scope="module")
def setup():
    prog = compile_program(SRC)
    rng = np.random.default_rng(0)
    inputs = [
        [from_python([int(v) for v in rng.integers(0, 100, n)])] for n in range(1, 15)
    ]
    dataset = collect_dataset(prog, "work2", inputs)
    result = run_opt(prog, "work2", dataset, AnalysisConfig(degree=1))
    return prog, dataset, result


nested_values = st.recursive(
    st.integers(-1000, 1000) | st.booleans(),
    lambda inner: st.lists(inner, max_size=4),
    max_leaves=15,
)


class TestValues:
    @given(data=nested_values)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, data):
        value = from_python(data)
        assert value_from_json(value_to_json(value)) == value

    def test_special_values(self):
        for value in (VUnit(), VTuple((1, from_python([2]))), VInl(5)):
            assert value_from_json(value_to_json(value)) == value

    def test_bool_int_distinction(self):
        assert value_from_json(value_to_json(True)) is True
        assert value_from_json(value_to_json(1)) == 1
        assert value_from_json(value_to_json(1)) is not True

    def test_bad_payload(self):
        with pytest.raises(DatasetError):
            value_from_json({"weird": 1})


class TestDatasets:
    def test_roundtrip_in_memory(self, setup):
        _prog, dataset, _result = setup
        restored = dataset_from_json(dataset_to_json(dataset))
        assert restored.labels() == dataset.labels()
        assert restored.total_observations() == dataset.total_observations()
        assert restored.num_runs == dataset.num_runs
        original = dataset["work2#1"].observations[0]
        copy = restored["work2#1"].observations[0]
        assert copy == original

    def test_roundtrip_via_file(self, setup, tmp_path):
        _prog, dataset, _result = setup
        path = tmp_path / "data.json"
        save_dataset(dataset, str(path))
        restored = load_dataset(str(path))
        assert restored["work2#1"].max_costs() == dataset["work2#1"].max_costs()

    def test_restored_dataset_analyzes_identically(self, setup, tmp_path):
        prog, dataset, result = setup
        path = tmp_path / "data.json"
        save_dataset(dataset, str(path))
        restored = load_dataset(str(path))
        again = run_opt(prog, "work2", restored, AnalysisConfig(degree=1))
        assert again.bounds[0].coefficients() == pytest.approx(
            result.bounds[0].coefficients()
        )

    def test_version_check(self):
        with pytest.raises(DatasetError):
            dataset_from_json({"version": 99, "labels": {}})


class TestBoundsAndResults:
    def test_bound_roundtrip(self, setup):
        _prog, _dataset, result = setup
        bound = result.bounds[0]
        restored = bound_from_json(bound_to_json(bound))
        assert restored.fname == bound.fname
        assert restored.coefficients() == pytest.approx(bound.coefficients())
        assert restored.evaluate_python([0] * 9) == pytest.approx(
            bound.evaluate_python([0] * 9)
        )

    def test_result_roundtrip(self, setup, tmp_path):
        _prog, _dataset, result = setup
        path = tmp_path / "result.json"
        save_result(result, str(path))
        restored = load_result(str(path))
        assert restored.method == result.method
        assert restored.mode == result.mode
        assert len(restored.bounds) == len(result.bounds)
        assert restored.runtime_seconds == pytest.approx(result.runtime_seconds)

    def test_result_version_check(self):
        with pytest.raises(DatasetError):
            result_from_json({"version": 0})

    def test_nested_annotation_roundtrip(self):
        from repro.aara.annot import ABase, AList, AProd
        from repro.aara.bound import ResourceBound
        from repro.lang import ast as A
        from repro.lp import LinExpr

        inner = AList((LinExpr.constant(0.25),), ABase(A.INT))
        ann = AProd((ABase(A.BOOL), AList((LinExpr.constant(1.5), LinExpr.constant(2.0)), inner)))
        bound = ResourceBound("g", (ann,), 3.5)
        restored = bound_from_json(bound_to_json(bound))
        assert restored.coefficients() == pytest.approx(bound.coefficients())
