"""Benchmark-suite tests: all 10 programs compile, run correctly, stay under
their analytic ground truths, and attain them on adversarial inputs."""

import numpy as np
import pytest

from repro.lang import compile_program, evaluate, from_python
from repro.suite import all_benchmarks, benchmark_names, get_benchmark
from repro.suite.generators import (
    all_equal_expensive,
    multiples_list,
    sorted_ascending_expensive,
    sorted_descending_list,
)

RNG = np.random.default_rng(42)
SPECS = all_benchmarks()


@pytest.fixture(scope="module")
def compiled():
    out = {}
    for spec in SPECS:
        out[(spec.name, "data-driven")] = compile_program(spec.data_driven_source)
        if spec.hybrid_source:
            out[(spec.name, "hybrid")] = compile_program(spec.hybrid_source)
    return out


class TestRegistry:
    def test_ten_benchmarks(self):
        assert len(benchmark_names()) == 10

    def test_expected_names(self):
        expected = {
            "MapAppend",
            "Concat",
            "InsertionSort2",
            "QuickSort",
            "QuickSelect",
            "MedianOfMedians",
            "ZAlgorithm",
            "BubbleSort",
            "Round",
            "EvenOddTail",
        }
        assert set(benchmark_names()) == expected

    def test_hybrid_unavailable_matches_paper(self):
        # Table 1 marks BubbleSort, Round, EvenOddTail hybrid as ∅
        no_hybrid = {s.name for s in SPECS if s.hybrid_source is None}
        assert no_hybrid == {"BubbleSort", "Round", "EvenOddTail"}

    def test_conventional_expectations_recorded(self):
        wrong_degree = {s.name for s in SPECS if s.expected_conventional == "wrong-degree"}
        assert wrong_degree == {"InsertionSort2", "ZAlgorithm", "EvenOddTail"}


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
class TestPrograms:
    def test_data_driven_compiles_with_stat(self, spec, compiled):
        prog = compiled[(spec.name, "data-driven")]
        assert prog.has_stat()

    def test_cost_below_truth_on_random_inputs(self, spec, compiled):
        prog = compiled[(spec.name, "data-driven")]
        for _ in range(4):
            n = int(RNG.choice(spec.data_sizes))
            args = spec.generator(RNG, n)
            result = evaluate(prog, spec.data_driven_entry, args)
            assert result.cost <= spec.truth(n) + 1e-6

    def test_hybrid_variant_same_cost_semantics(self, spec, compiled):
        if spec.hybrid_source is None:
            pytest.skip("no hybrid variant")
        dd = compiled[(spec.name, "data-driven")]
        hy = compiled[(spec.name, "hybrid")]
        n = int(spec.data_sizes[2])
        args = spec.generator(RNG, n)
        # strip the data-driven wrapper: run the underlying function
        cost_h = evaluate(hy, spec.hybrid_entry, list(args)).cost
        cost_d = evaluate(dd, spec.data_driven_entry, list(args)).cost
        assert cost_h == pytest.approx(cost_d)

    def test_truth_monotone_enough(self, spec):
        values = [spec.truth(n) for n in (10, 100, 1000)]
        assert values[0] <= values[1] <= values[2]

    def test_shape_fn_matches_arity(self, spec, compiled):
        prog = compiled[(spec.name, "data-driven")]
        params = prog[spec.data_driven_entry].params
        assert len(spec.shape_fn(10)) == len(params)


class TestAdversarialTightness:
    """The analytic ground truths are attained (or safely dominate)."""

    def test_quicksort(self):
        spec = get_benchmark("QuickSort")
        prog = compile_program(spec.data_driven_source)
        n = 30
        cost = evaluate(prog, spec.data_driven_entry, [sorted_ascending_expensive(n, 5)]).cost
        assert cost == pytest.approx(spec.truth(n))

    def test_quickselect(self):
        spec = get_benchmark("QuickSelect")
        prog = compile_program(spec.data_driven_source)
        n = 30
        cost = evaluate(
            prog, spec.data_driven_entry, [n - 1, sorted_ascending_expensive(n, 10)]
        ).cost
        assert cost == pytest.approx(spec.truth(n))

    def test_bubble_sort(self):
        spec = get_benchmark("BubbleSort")
        prog = compile_program(spec.data_driven_source)
        n = 20
        cost = evaluate(prog, spec.data_driven_entry, [sorted_descending_list(n, 10)]).cost
        assert cost == pytest.approx(spec.truth(n))

    def test_z_algorithm(self):
        spec = get_benchmark("ZAlgorithm")
        prog = compile_program(spec.data_driven_source)
        n = 25
        cost = evaluate(prog, spec.data_driven_entry, [all_equal_expensive(n)]).cost
        assert cost == pytest.approx(spec.truth(n))

    def test_insertion_sort2(self):
        spec = get_benchmark("InsertionSort2")
        prog = compile_program(spec.data_driven_source)
        n = 25
        cost = evaluate(prog, spec.data_driven_entry, [multiples_list(n, 200)]).cost
        assert cost == pytest.approx(spec.truth(n))

    def test_even_odd_tail(self):
        spec = get_benchmark("EvenOddTail")
        prog = compile_program(spec.data_driven_source)
        n = 24
        cost = evaluate(prog, spec.data_driven_entry, [multiples_list(n, 10)]).cost
        assert cost == pytest.approx(spec.truth(n))

    def test_round(self):
        spec = get_benchmark("Round")
        prog = compile_program(spec.data_driven_source)
        n = 16
        cost = evaluate(prog, spec.data_driven_entry, [multiples_list(n, 10)]).cost
        assert cost == pytest.approx(spec.truth(n))

    def test_map_append(self):
        spec = get_benchmark("MapAppend")
        prog = compile_program(spec.data_driven_source)
        n = 20
        cost = evaluate(
            prog, spec.data_driven_entry, [multiples_list(n, 100), multiples_list(n, 100)]
        ).cost
        assert cost == pytest.approx(spec.truth(n))

    def test_concat(self):
        spec = get_benchmark("Concat")
        prog = compile_program(spec.data_driven_source)
        n = 6
        nested = from_python([[5 * (j + 1) for j in range(5)] for _ in range(n)])
        cost = evaluate(prog, spec.data_driven_entry, [nested]).cost
        assert cost == pytest.approx(spec.truth(n))

    def test_median_of_medians_upper_bound(self):
        # the recurrence is an upper bound; no input should exceed it
        spec = get_benchmark("MedianOfMedians")
        prog = compile_program(spec.data_driven_source)
        for n in (25, 50):
            for _ in range(3):
                args = spec.generator(RNG, n)
                cost = evaluate(prog, spec.data_driven_entry, args).cost
                assert cost <= spec.truth(n)


class TestFunctionalCorrectness:
    def test_quicksort_sorts(self):
        spec = get_benchmark("QuickSort")
        prog = compile_program(spec.data_driven_source)
        from repro.lang import to_python

        result = evaluate(prog, spec.data_driven_entry, [from_python([3, 1, 2])])
        assert to_python(result.value) == [1, 2, 3]

    def test_quickselect_selects(self):
        spec = get_benchmark("QuickSelect")
        prog = compile_program(spec.data_driven_source)
        result = evaluate(prog, spec.data_driven_entry, [1, from_python([30, 10, 20])])
        assert result.value == 20

    def test_median_of_medians_selects(self):
        spec = get_benchmark("MedianOfMedians")
        prog = compile_program(spec.data_driven_source)
        values = [7, 1, 9, 3, 5, 2, 8, 4, 6, 0]
        for idx in (0, 4, 9):
            result = evaluate(prog, spec.data_driven_entry, [idx, from_python(values)])
            assert result.value == sorted(values)[idx]

    def test_bubble_sort_sorts(self):
        spec = get_benchmark("BubbleSort")
        prog = compile_program(spec.data_driven_source)
        from repro.lang import to_python

        result = evaluate(prog, spec.data_driven_entry, [from_python([4, 2, 3, 1])])
        assert to_python(result.value) == [1, 2, 3, 4]

    def test_z_algorithm_values(self):
        spec = get_benchmark("ZAlgorithm")
        prog = compile_program(spec.data_driven_source)
        from repro.lang import to_python

        # classic example: z of "aaab"-like list
        result = evaluate(prog, spec.data_driven_entry, [from_python([1, 1, 1, 2])])
        assert to_python(result.value) == [0, 2, 1, 0]
