"""Housekeeping CLI tests: ``runs gc`` pruning and ``trace`` error paths.

``runs gc`` mirrors ``cache gc``: age pruning first, then oldest-first
eviction down to a size cap, atomic per-run removal, and ``--dry-run``
that never touches the filesystem.  The ``trace`` subcommands must fail
with one clean line + exit 2 on a missing/empty trace directory — and
``trace export`` must never create ``trace.json`` inside a bad target.
"""

import json
import os
import time

from repro.cli import main
from repro.evalharness.journal import JOURNAL_NAME, gc_runs


def make_run(root, name, age_seconds=0.0, payload_bytes=0):
    """A plausible run directory: journal + optional payload, aged."""
    run_dir = root / name
    run_dir.mkdir(parents=True)
    journal = run_dir / JOURNAL_NAME
    journal.write_text(json.dumps({"ev": "run-start", "run_id": name}) + "\n")
    if payload_bytes:
        (run_dir / "report.json").write_bytes(b"x" * payload_bytes)
    if age_seconds:
        old = time.time() - age_seconds
        os.utime(journal, (old, old))
    return run_dir


# -- gc_runs (library) ------------------------------------------------------


def test_gc_removes_runs_past_max_age(tmp_path):
    old = make_run(tmp_path, "run-old", age_seconds=10 * 86400)
    fresh = make_run(tmp_path, "run-fresh")
    stats = gc_runs(tmp_path, max_age_seconds=86400.0)
    assert stats["removed"] == 1 and stats["kept"] == 1
    assert not old.exists()
    assert fresh.exists()


def test_gc_evicts_oldest_until_under_size_cap(tmp_path):
    make_run(tmp_path, "run-a", age_seconds=300, payload_bytes=4096)
    make_run(tmp_path, "run-b", age_seconds=200, payload_bytes=4096)
    make_run(tmp_path, "run-c", age_seconds=100, payload_bytes=4096)
    stats = gc_runs(tmp_path, max_bytes=9000)
    # only the oldest needs to go to get under the cap
    assert stats["removed"] == 1
    assert not (tmp_path / "run-a").exists()
    assert (tmp_path / "run-b").exists() and (tmp_path / "run-c").exists()
    assert stats["bytes"] <= 9000


def test_gc_leaves_non_run_entries_alone(tmp_path):
    make_run(tmp_path, "run-old", age_seconds=10 * 86400)
    (tmp_path / "not-a-run").mkdir()  # no journal.jsonl inside
    (tmp_path / "stray-file.txt").write_text("keep me")
    stats = gc_runs(tmp_path, max_age_seconds=86400.0)
    assert stats["skipped"] == 2
    assert (tmp_path / "not-a-run").exists()
    assert (tmp_path / "stray-file.txt").exists()


def test_gc_dry_run_reports_without_deleting(tmp_path):
    doomed = make_run(tmp_path, "run-old", age_seconds=10 * 86400)
    stats = gc_runs(tmp_path, max_age_seconds=86400.0, dry_run=True)
    assert stats["removed"] == 1
    assert stats["bytes_removed"] > 0
    assert doomed.exists()  # nothing actually touched
    assert (doomed / JOURNAL_NAME).exists()


def test_gc_missing_root_is_a_noop(tmp_path):
    stats = gc_runs(tmp_path / "nowhere", max_age_seconds=1.0)
    assert stats == {
        "kept": 0, "removed": 0, "skipped": 0, "bytes": 0, "bytes_removed": 0,
    }


def test_gc_leaves_no_trash_behind(tmp_path):
    """Removal goes through an atomic rename; the trash name must not
    survive a normal gc."""
    make_run(tmp_path, "run-old", age_seconds=10 * 86400)
    gc_runs(tmp_path, max_age_seconds=86400.0)
    assert os.listdir(tmp_path) == []


# -- runs gc (CLI) ----------------------------------------------------------


def test_cli_runs_gc_prunes_by_age(tmp_path):
    make_run(tmp_path, "run-old", age_seconds=10 * 86400)
    keep = make_run(tmp_path, "run-fresh")
    assert main(["runs", "gc", str(tmp_path), "--max-age-days", "1"]) == 0
    assert not (tmp_path / "run-old").exists()
    assert keep.exists()


def test_cli_runs_gc_without_limits_is_exit_2(tmp_path, capsys):
    make_run(tmp_path, "run-x")
    assert main(["runs", "gc", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "--max-age-days" in err
    assert len([l for l in err.strip().splitlines() if l]) == 1
    assert (tmp_path / "run-x").exists()


def test_cli_runs_gc_dry_run_needs_no_limits(tmp_path):
    survivor = make_run(tmp_path, "run-x", age_seconds=10 * 86400)
    assert main(["runs", "gc", str(tmp_path), "--dry-run"]) == 0
    assert survivor.exists()


# -- trace summary / export error paths -------------------------------------


def test_trace_summary_missing_dir_is_one_line_exit_2(tmp_path, capsys):
    assert main(["trace", "summary", str(tmp_path / "no-such-dir")]) == 2
    err = capsys.readouterr().err
    assert "does not exist" in err
    assert len([l for l in err.strip().splitlines() if l]) == 1


def test_trace_summary_empty_dir_is_one_line_exit_2(tmp_path, capsys):
    empty = tmp_path / "empty-trace"
    empty.mkdir()
    assert main(["trace", "summary", str(empty)]) == 2
    err = capsys.readouterr().err
    assert "no trace files" in err
    assert len([l for l in err.strip().splitlines() if l]) == 1


def test_trace_export_missing_dir_creates_nothing(tmp_path, capsys):
    target = tmp_path / "no-such-dir"
    assert main(["trace", "export", str(target)]) == 2
    assert "does not exist" in capsys.readouterr().err
    assert not target.exists()  # export must not mkdir/write into a bad target


def test_trace_export_empty_dir_creates_nothing(tmp_path, capsys):
    empty = tmp_path / "empty-trace"
    empty.mkdir()
    assert main(["trace", "export", str(empty)]) == 2
    assert "no trace files" in capsys.readouterr().err
    assert os.listdir(empty) == []  # no trace.json conjured out of nothing


def test_trace_summary_still_works_on_a_real_trace(tmp_path):
    """The error guards must not break the happy path."""
    trace_dir = tmp_path / "trace"
    code = main([
        "bench", "MapAppend", "--method", "opt", "--samples", "3",
        "--no-journal", "--trace", str(trace_dir),
    ])
    assert code == 0
    assert main(["trace", "summary", str(trace_dir)]) == 0
    out = tmp_path / "exported.json"
    assert main(["trace", "export", str(trace_dir), "--out", str(out)]) == 0
    assert json.loads(out.read_text())["traceEvents"]
