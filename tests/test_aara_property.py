"""Property-based soundness: static AARA bounds dominate measured costs on
randomized inputs (Theorem 4.1, checked empirically)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aara import analyze_program
from repro.lang import compile_program, evaluate, from_python

PROGRAMS = {
    "length": (
        """
let rec length xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + length tl
""",
        1,
    ),
    "isort": (
        """
let rec insert x xs =
  match xs with
  | [] -> [ x ]
  | hd :: tl ->
    let _ = Raml.tick 1.0 in
    if x <= hd then x :: hd :: tl else hd :: insert x tl

let rec isort xs =
  match xs with [] -> [] | hd :: tl -> insert hd (isort tl)
""",
        2,
    ),
    "all_pairs": (
        # note: an accumulator-based selection sort is NOT AARA-typable
        # (accumulators cannot gain polynomial potential under the shift
        # operator — the same limitation that makes ZAlgorithm "Wrong
        # Degree"); this nested traversal is the canonical typable quadratic
        """
let rec inner x ys =
  match ys with
  | [] -> 0
  | h :: t -> let _ = Raml.tick 1.0 in 1 + inner x t

let rec all_pairs xs =
  match xs with
  | [] -> 0
  | h :: t -> inner h t + all_pairs t
""",
        2,
    ),
    "pairs": (
        """
let rec zip_cost xs ys =
  match xs with
  | [] -> 0
  | hd :: tl ->
    (match ys with
     | [] -> 0
     | h2 :: t2 -> let _ = Raml.tick 1.0 in 1 + zip_cost tl t2)
""",
        1,
    ),
}

_BOUNDS = {}


def bound_for(name):
    if name not in _BOUNDS:
        src, degree = PROGRAMS[name]
        program = compile_program(src)
        fname = program.function_names()[-1]
        _BOUNDS[name] = (
            program,
            fname,
            analyze_program(program, fname, degree, stat_mode="transparent").bound,
        )
    return _BOUNDS[name]


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_static_bound_dominates_random_executions(name, data):
    program, fname, bound = bound_for(name)
    xs = data.draw(st.lists(st.integers(-100, 100), max_size=25))
    if fname == "all_pairs":
        args = [from_python(xs)]
    elif fname == "zip_cost":
        ys = data.draw(st.lists(st.integers(-100, 100), max_size=25))
        args = [from_python(xs), from_python(ys)]
    else:
        args = [from_python(xs)]
    measured = evaluate(program, fname, args).cost
    assert bound.evaluate(args) >= measured - 1e-6
