"""Empirical-Bayes hyperparameter tests (Appendix B)."""

import numpy as np
import pytest

from repro.config import BayesPCConfig
from repro.inference.hyperparams import (
    gamma0_from_opt,
    resolve_bayespc_hyperparams,
    theta1_from_gaps,
)


class TestTheta1:
    def test_formula(self):
        """θ1 = (1100/188.7)·ε90 + 100 (Eq. B.9)."""
        gaps = [10.0] * 100
        assert theta1_from_gaps(gaps) == pytest.approx(1100 / 188.7 * 10 + 100)

    def test_empty_gaps(self):
        assert theta1_from_gaps([]) == pytest.approx(100.0)

    def test_negative_gaps_clamped(self):
        assert theta1_from_gaps([-5.0] * 10) == pytest.approx(100.0)

    def test_percentile_selects_tail(self):
        gaps = [0.0] * 95 + [100.0] * 5
        high = theta1_from_gaps(gaps, alpha=99)
        low = theta1_from_gaps(gaps, alpha=50)
        assert high > low


class TestGamma0:
    def _opt_setup(self):
        from repro.aara.analyze import build_analysis
        from repro.lang import compile_program
        from repro.lp import solve_lexicographic

        prog = compile_program(
            """
let rec insert x xs =
  match xs with
  | [] -> [ x ]
  | hd :: tl ->
    let _ = Raml.tick 3.0 in
    if x <= hd then x :: hd :: tl else hd :: insert x tl

let rec isort xs =
  match xs with [] -> [] | hd :: tl -> insert hd (isort tl)
"""
        )
        analysis = build_analysis(prog, "isort", 2, stat_mode="transparent")
        solution = solve_lexicographic(analysis.lp, analysis.root_objectives())
        return analysis, solution

    def test_formula_uses_top_degree_coefficient(self):
        """γ0 = (8/15)·max(top coeffs) + 4/5 (Eq. B.5): isort with tick 3
        has top (quadratic) coefficient 3."""
        analysis, solution = self._opt_setup()
        gamma0 = gamma0_from_opt(analysis, solution)
        assert gamma0 == pytest.approx((8 / 15) * 3.0 + 0.8, abs=1e-3)


class TestResolve:
    def test_explicit_values_pass_through(self):
        analysis, solution = TestGamma0()._opt_setup()
        config = BayesPCConfig(gamma0=2.5, theta0=1.5, theta1=42.0)
        hyper = resolve_bayespc_hyperparams(config, analysis, solution, [1.0])
        assert (hyper.gamma0, hyper.theta0, hyper.theta1) == (2.5, 1.5, 42.0)

    def test_empirical_fallback(self):
        analysis, solution = TestGamma0()._opt_setup()
        config = BayesPCConfig()  # gamma0/theta1 None
        hyper = resolve_bayespc_hyperparams(config, analysis, solution, [10.0] * 10)
        assert hyper.gamma0 > 0.8
        assert hyper.theta1 > 100.0 - 1e-9
