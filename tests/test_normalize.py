"""Share-let normalization tests, including the semantic-preservation
property: a program evaluates to the same value and cost before and after
normalization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.lang import ast as A
from repro.lang import compile_program, evaluate, from_python
from repro.lang.interp import Interpreter
from repro.lang.normalize import _check_normal_form, normalize_expr, normalize_program
from repro.lang.parser import parse_expr, parse_program
from repro.lang.types import typecheck_program


def normal(src: str) -> A.Expr:
    return normalize_expr(parse_expr(src))


class TestANF:
    def test_cons_operands_become_variables(self):
        expr = normal("(1 + 2) :: []")
        # a let chain ending in a cons of variables
        node = expr
        while isinstance(node, A.Let):
            node = node.body
        assert isinstance(node, A.Cons)
        assert isinstance(node.head, A.Var)
        assert isinstance(node.tail, A.Var)

    def test_app_args_become_variables(self):
        expr = normalize_expr(
            parse_expr("f (g x) 3"),
        )
        node = expr
        while isinstance(node, A.Let):
            node = node.body
        assert isinstance(node, A.App)
        assert all(isinstance(a, A.Var) for a in node.args)

    def test_if_condition_becomes_variable(self):
        expr = normal("if x <= 1 then 1 else 2")
        node = expr
        while isinstance(node, A.Let):
            node = node.body
        assert isinstance(node, A.If)
        assert isinstance(node.cond, A.Var)

    def test_already_normal_expression_unchanged_shape(self):
        expr = normal("let y = 1 in y")
        assert isinstance(expr, A.Let)


class TestShareInsertion:
    def test_duplicate_use_gets_share(self):
        expr = normal("x + x")
        assert isinstance(expr, A.Share)

    def test_triple_use_gets_two_shares(self):
        expr = normal("(x + x) + x")
        shares = [n for n in expr.walk() if isinstance(n, A.Share)]
        assert len(shares) == 2

    def test_branches_do_not_need_share(self):
        # y used in both branches of if — alternatives, one use
        expr = normal("if c then y else y")
        assert not any(isinstance(n, A.Share) for n in expr.walk())

    def test_scrutinee_reuse_in_branch_needs_share(self):
        expr = normal("match xs with | [] -> xs | h :: t -> t")
        assert any(isinstance(n, A.Share) for n in expr.walk())

    def test_sequential_let_use(self):
        expr = normal("let a = f x in g x")
        assert any(isinstance(n, A.Share) for n in expr.walk())


class TestInvariantChecker:
    def test_accepts_normal_forms(self):
        for src in ["x", "let a = f x in a", "if c then 1 else 2"]:
            _check_normal_form(normal(src))

    def test_rejects_duplicate_use(self):
        bad = A.BinOp("+", A.Var("x"), A.Var("x"))
        with pytest.raises(ReproError):
            _check_normal_form(bad)

    def test_rejects_non_variable_operand(self):
        bad = A.Cons(A.IntLit(1), A.Nil())
        with pytest.raises(ReproError):
            _check_normal_form(bad)

    def test_normalize_program_checks_all_functions(self):
        prog = parse_program("let f x = x + x\nlet g y = f (f y)")
        normalize_program(prog)  # must not raise


SEMANTIC_SOURCES = [
    (
        """
let rec length xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + length tl
""",
        "length",
    ),
    (
        """
let rec sum_twice xs =
  match xs with
  | [] -> 0
  | hd :: tl -> hd + hd + sum_twice tl
""",
        "sum_twice",
    ),
    (
        """
let rec rev_app acc xs =
  match xs with [] -> acc | hd :: tl -> rev_app (hd :: acc) tl
let reverse xs = let _ = Raml.tick 0.5 in rev_app [] xs
""",
        "reverse",
    ),
]


class TestSemanticPreservation:
    @pytest.mark.parametrize("src,fname", SEMANTIC_SOURCES)
    @given(data=st.lists(st.integers(-50, 50), max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_normalization_preserves_value_and_cost(self, src, fname, data):
        raw = parse_program(src)
        normalized = typecheck_program(normalize_program(parse_program(src)))
        args = [from_python(data)]
        if fname == "rev_app":
            args = [from_python([]), from_python(data)]
        # the un-normalized program is still evaluable (the interpreter does
        # not require normal form)
        r1 = Interpreter(raw, collect_stats=False).run(fname, list(args))
        r2 = Interpreter(normalized, collect_stats=False).run(fname, list(args))
        assert r1.value == r2.value
        assert r1.cost == pytest.approx(r2.cost)

    def test_compile_program_pipeline(self):
        prog = compile_program(SEMANTIC_SOURCES[0][0])
        result = evaluate(prog, "length", [from_python([1, 2, 3, 4])])
        assert result.value == 4
        assert result.cost == 4.0
