"""BayesWC survival-model tests (Section 5.2 / Appendix B.1)."""

import numpy as np
import pytest

from repro.config import AnalysisConfig, BayesWCConfig
from repro.inference import collect_dataset
from repro.inference.bayeswc import (
    NOISE_MODELS,
    build_survival_model,
    infer_worst_case_samples,
)
from repro.lang import compile_program, from_python

SRC = """
let rec cost_len xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + cost_len tl

let top xs = Raml.stat (cost_len xs)
"""


@pytest.fixture(scope="module")
def stat_ds():
    prog = compile_program(SRC)
    rng = np.random.default_rng(0)
    inputs = []
    for n in range(1, 21):
        for _ in range(3):
            inputs.append([from_python([int(v) for v in rng.integers(0, 50, n)])])
    return collect_dataset(prog, "top", inputs)["top#1"]


class TestModelConstruction:
    def test_feature_standardization(self, stat_ds):
        model = build_survival_model(stat_ds, BayesWCConfig())
        assert model.features.mean(axis=0) == pytest.approx(np.zeros(1), abs=1e-9)

    def test_zero_cost_supported_via_shift(self):
        prog = compile_program("let f xs = Raml.stat (g xs)\nlet g xs = xs")
        ds = collect_dataset(prog, "f", [[from_python([1, 2])]])
        model = build_survival_model(ds["f#1"], BayesWCConfig())
        assert np.all(np.isfinite(model.log_costs))

    def test_unknown_noise_rejected(self):
        prog = compile_program(SRC)
        ds = collect_dataset(prog, "top", [[from_python([1])]])
        from repro.errors import InferenceError

        with pytest.raises(InferenceError):
            build_survival_model(ds["top#1"], BayesWCConfig(noise="cauchy"))

    @pytest.mark.parametrize("noise", sorted(NOISE_MODELS))
    def test_gradient_matches_finite_differences(self, stat_ds, noise):
        model = build_survival_model(stat_ds, BayesWCConfig(noise=noise))
        theta = np.array([1.0, 0.5, 0.8])
        logp, grad = model.logdensity_and_grad(theta)
        assert np.isfinite(logp)
        for i in range(theta.size):
            h = 1e-6
            tp, tm = theta.copy(), theta.copy()
            tp[i] += h
            tm[i] -= h
            fd = (model.logdensity_and_grad(tp)[0] - model.logdensity_and_grad(tm)[0]) / (2 * h)
            assert grad[i] == pytest.approx(fd, rel=1e-4, abs=1e-3)

    def test_degenerate_sigma_rejected(self, stat_ds):
        model = build_survival_model(stat_ds, BayesWCConfig())
        logp, _ = model.logdensity_and_grad(np.array([0.0, 0.0, 0.0]))
        assert logp == -np.inf


class TestWorstCaseSimulation:
    def test_samples_dominate_observed_maxima(self, stat_ds):
        """The soundness half of Eq. (5.7): μ_n([ĉ_n^max, ∞)) = 1."""
        config = AnalysisConfig(num_posterior_samples=30)
        rng = np.random.default_rng(1)
        wc = infer_worst_case_samples(stat_ds, config, rng)
        maxima = stat_ds.max_costs()
        for key, samples in wc.samples.items():
            assert np.all(samples >= maxima[key] - 1e-9)

    def test_samples_exceed_max_with_positive_probability(self, stat_ds):
        """The robustness half of Eq. (5.7)."""
        config = AnalysisConfig(num_posterior_samples=60)
        rng = np.random.default_rng(2)
        wc = infer_worst_case_samples(stat_ds, config, rng)
        maxima = stat_ds.max_costs()
        exceed = [
            np.mean(samples > maxima[key] + 1e-9) for key, samples in wc.samples.items()
        ]
        assert np.mean(exceed) > 0.2

    def test_batch_view(self, stat_ds):
        config = AnalysisConfig(num_posterior_samples=10)
        wc = infer_worst_case_samples(stat_ds, config, np.random.default_rng(3))
        batch = wc.batch(0)
        assert set(batch) == set(wc.samples)
        assert wc.num_samples == 10

    def test_reasonable_extrapolation_scale(self, stat_ds):
        """Posterior worst cases should be same order as observations."""
        config = AnalysisConfig(num_posterior_samples=40)
        wc = infer_worst_case_samples(stat_ds, config, np.random.default_rng(4))
        for key, samples in wc.samples.items():
            observed = stat_ds.max_costs()[key]
            assert np.median(samples) <= 20 * (observed + 1.0)
