"""Execution budgets for untrusted source: front end, interpreter, LP.

Every cap in :class:`repro.config.ExecutionBudget` must fail *closed and
classified*: oversized input is an R0xx lint diagnostic, runaway
evaluation is a ``BudgetExceededError`` (failure stage ``eval-budget``),
and an LP past the size guard is an honest ``resource-limit`` verdict.
A hostile program must never surface a Python ``RecursionError``,
``MemoryError``, or unhandled exception.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import os

import pytest

from repro.config import AnalysisConfig, ExecutionBudget
from repro.errors import (
    BudgetExceededError,
    LexError,
    NestingDepthError,
    ResourceLimitError,
    failure_stage,
)
from repro.lang import compile_program
from repro.lang.interp import Interpreter
from repro.lang.parser import parse_program
from repro.analysis import lint_source, render_text
from repro.aara.analyze import run_conventional

HOSTILE_DIR = os.path.join(os.path.dirname(__file__), "hostile")


def _corpus():
    spec = importlib.util.spec_from_file_location(
        "hostile_build_corpus", os.path.join(HOSTILE_DIR, "build_corpus.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def nested_match(depth: int) -> str:
    head = "let rec grind xs =\n"
    lines = []
    indent = "  "
    for level in range(depth):
        lines.append(f"{indent}match xs with | [] -> {level} | hd :: tl ->\n")
        indent += " "
    lines.append(f"{indent}0\n")
    return head + "".join(lines) + "let main xs = Raml.stat (grind xs)\n"


# ---------------------------------------------------------------------------
# Front end: parser depth, lexer size caps
# ---------------------------------------------------------------------------


class TestParserDepth:
    def test_deep_nesting_is_a_diagnostic_not_a_recursion_error(self):
        # regression: pre-budget parsers died with Python RecursionError on
        # deeply nested input; the cap must turn that into NestingDepthError
        source = nested_match(5_000)
        with pytest.raises(NestingDepthError) as err:
            parse_program(source)
        assert "nesting depth exceeds" in str(err.value)

    def test_budget_cap_is_tighter_than_the_default(self):
        source = nested_match(150)  # over the untrusted cap, under default 400
        parse_program(source)  # trusted path still accepts it
        with pytest.raises(NestingDepthError):
            parse_program(source, max_depth=ExecutionBudget.untrusted().max_nesting_depth)

    def test_lint_renders_r004_with_caret(self):
        source = nested_match(150)
        result = lint_source(source, budget=ExecutionBudget.untrusted())
        codes = [d.code for d in result.errors()]
        assert "R004" in codes
        diag = next(d for d in result.errors() if d.code == "R004")
        rendered = render_text(diag, source)
        assert "R004" in rendered
        assert "^" in rendered  # caret pointing at the offending nesting

    def test_nesting_error_classifies_as_frontend(self):
        assert failure_stage(NestingDepthError("deep", 1, 1)) == "frontend"


class TestLexerCaps:
    def test_source_char_cap(self):
        budget = dataclasses.replace(ExecutionBudget.untrusted(), max_source_chars=64)
        source = "let main n = Raml.stat (n + 1)  (* %s *)\n" % ("x" * 200)
        with pytest.raises(LexError) as err:
            compile_program(source, budget=budget)
        assert "source too large" in str(err.value)

    def test_token_cap_rejects_token_bomb_as_r001(self):
        bomb = _corpus().token_bomb(terms=500)
        budget = dataclasses.replace(ExecutionBudget.untrusted(), max_tokens=400)
        result = lint_source(bomb, budget=budget)
        codes = [d.code for d in result.errors()]
        assert "R001" in codes
        assert any("token budget exceeded" in d.message for d in result.errors())

    def test_trusted_lexer_stays_uncapped(self):
        from repro.lang.lexer import tokenize

        bomb = _corpus().token_bomb(terms=500)
        tokens = tokenize(bomb)  # no budget: the suite path must still lex
        assert len(tokens) > 400


# ---------------------------------------------------------------------------
# Interpreter fuel: steps, call depth, value size
# ---------------------------------------------------------------------------

COUNTDOWN = """
let rec count n = if n <= 0 then 0 else 1 + count (n - 1)
let main n = Raml.stat (count n)
"""

REPLICATE = """
let rec rep n = if n <= 0 then [] else 1 :: rep (n - 1)
let main n = Raml.stat (rep n)
"""


class TestInterpreterFuel:
    def test_step_fuel_trips_with_kind_steps(self):
        program = compile_program(COUNTDOWN)
        interp = Interpreter(program, max_steps=50)
        with pytest.raises(BudgetExceededError) as err:
            interp.run("count", [1_000])
        assert err.value.kind == "steps"

    def test_call_depth_trips_with_kind_call_depth(self):
        program = compile_program(COUNTDOWN)
        interp = Interpreter(program, max_call_depth=10)
        with pytest.raises(BudgetExceededError) as err:
            interp.run("count", [1_000])
        assert err.value.kind == "call-depth"

    def test_value_size_trips_on_oversized_list(self):
        program = compile_program(REPLICATE)
        interp = Interpreter(program, max_value_size=8)
        with pytest.raises(BudgetExceededError) as err:
            interp.run("rep", [50])
        assert err.value.kind == "value-size"

    def test_value_size_trips_on_huge_integers(self):
        source = open(os.path.join(HOSTILE_DIR, "value_bomb.raml")).read()
        program = compile_program(source)
        interp = Interpreter(program, max_value_size=1_000_000)
        with pytest.raises(BudgetExceededError) as err:
            interp.run("main", [0])
        assert err.value.kind == "value-size"
        assert "bit budget" in str(err.value)

    def test_budget_errors_classify_as_eval_budget(self):
        assert failure_stage(BudgetExceededError("out of fuel")) == "eval-budget"

    def test_fuel_resets_between_runs(self):
        program = compile_program(COUNTDOWN)
        interp = Interpreter(program, max_steps=500)
        for _ in range(3):  # each run gets fresh fuel, not a shared tank
            interp.run("count", [10])


# ---------------------------------------------------------------------------
# Guarded LP construction
# ---------------------------------------------------------------------------


class TestLPGuard:
    def test_lp_blowup_hits_resource_limit_verdict(self):
        source = open(os.path.join(HOSTILE_DIR, "lp_blowup.raml")).read()
        budget = dataclasses.replace(
            ExecutionBudget.untrusted(), lp_variables=500, lp_constraints=500
        )
        program = compile_program(source, budget=budget)
        verdict = run_conventional(program, "main", max_degree=3, budget=budget)
        assert verdict.status == "resource-limit"
        assert "budget" in verdict.detail

    def test_unbudgeted_analysis_of_same_program_finds_a_bound(self):
        source = open(os.path.join(HOSTILE_DIR, "lp_blowup.raml")).read()
        program = compile_program(source)
        verdict = run_conventional(program, "main", max_degree=2)
        assert verdict.status == "bound"

    def test_resource_limit_error_classifies(self):
        assert failure_stage(ResourceLimitError("too big")) == "resource-limit"


# ---------------------------------------------------------------------------
# End to end: the whole hostile corpus through the eval harness
# ---------------------------------------------------------------------------

#: what each corpus member must terminate as under the untrusted budget
EXPECTED_TERMINAL = {
    # runtime budget trips (lint-clean programs)
    "spin.raml": {"eval-budget"},
    "deep_call.raml": {"eval-budget"},
    "value_bomb.raml": {"eval-budget"},
    # measurable data-driven program (LP abuse only bites conventional mode)
    "lp_blowup.raml": {"ok"},
    # rejected at the lint gate before any execution
    "token_bomb.raml": {"lint:R001"},
    "match_nest.raml": {"lint:R004"},
}


class TestHostileCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return _corpus().corpus_programs(token_terms=60_000, nest_depth=300)

    def test_corpus_is_complete(self, corpus):
        assert set(corpus) == set(EXPECTED_TERMINAL)

    @pytest.mark.parametrize("name", sorted(EXPECTED_TERMINAL))
    def test_program_reaches_a_classified_terminal_state(self, name, corpus):
        from repro.evalharness.runner import EvalTask, execute_task

        source = corpus[name]
        budget = ExecutionBudget.untrusted()
        result = lint_source(source, path=name, budget=budget)
        errors = [d for d in result.errors() if d.code not in ("R042", "R043")]
        expected = EXPECTED_TERMINAL[name]
        if errors:
            # the admission gate rejects it: that IS the terminal state
            got = {f"lint:{d.code}" for d in errors}
            assert got & expected, f"{name}: lint rejected with {got}, wanted {expected}"
            return
        assert not any(e.startswith("lint:") for e in expected), (
            f"{name}: expected lint rejection but the program linted clean"
        )
        config = AnalysisConfig(num_posterior_samples=5, seed=1, budget=budget)
        task = EvalTask(
            "analysis",
            f"user:{name}",
            7,
            config=config,
            mode="data-driven",
            method="opt",
            source=source,
            entry="main",
        )
        outcome = execute_task(task)  # must never raise
        if outcome.get("ok"):
            got = "ok"
        else:
            got = outcome["failure"]["stage"]
        assert got in expected, f"{name}: terminal state {got}, wanted {expected}"
