"""Call-graph/SCC, pretty-printer, diagnostics, and error-hierarchy tests."""

import numpy as np
import pytest

from repro.aara.signatures import call_graph, dependency_order, is_self_recursive, scc_of
from repro.errors import (
    DatasetError,
    EvalError,
    InferenceError,
    InfeasibleError,
    LexError,
    LPError,
    ParseError,
    ReproError,
    SourceError,
    StaticAnalysisError,
    TypeMismatchError,
    UnanalyzableError,
)
from repro.lang import compile_program
from repro.lang.pretty import pretty_expr, pretty_program
from repro.stats.diagnostics import effective_sample_size, percentile_bands, split_rhat

PROGRAM = compile_program(
    """
let rec even n = if n = 0 then true else odd (n - 1)
let rec odd n = if n = 0 then false else even (n - 1)
let rec length xs = match xs with [] -> 0 | h :: t -> 1 + length t
let top xs = if even (length xs) then 1 else 0
"""
)


class TestCallGraph:
    def test_edges(self):
        graph = call_graph(PROGRAM)
        assert graph.has_edge("even", "odd")
        assert graph.has_edge("top", "length")
        assert not graph.has_edge("length", "top")

    def test_mutual_recursion_scc(self):
        sccs = scc_of(PROGRAM)
        assert sccs["even"] == sccs["odd"] == frozenset({"even", "odd"})
        assert sccs["length"] == frozenset({"length"})

    def test_self_recursion_detection(self):
        sccs = scc_of(PROGRAM)
        assert is_self_recursive(PROGRAM, "length", sccs)
        assert is_self_recursive(PROGRAM, "even", sccs)
        assert not is_self_recursive(PROGRAM, "top", sccs)

    def test_dependency_order_callees_first(self):
        order = dependency_order(PROGRAM)
        assert order.index("length") < order.index("top")
        assert order.index("even") < order.index("top")


class TestPretty:
    def test_expr_roundtrips_syntax_elements(self):
        fdef = PROGRAM["length"]
        text = pretty_expr(fdef.body)
        assert "match" in text and "::" in text

    def test_program_includes_types(self):
        text = pretty_program(PROGRAM)
        assert "let rec length" in text
        assert "int list" in text

    def test_stat_and_tick_render(self):
        prog = compile_program(
            "let f xs = Raml.stat (g xs)\nlet g xs = let _ = Raml.tick 1.5 in xs"
        )
        text = pretty_program(prog)
        assert "stat[f#1]" in text
        assert "tick 1.5" in text


class TestDiagnostics:
    def test_ess_iid_close_to_n(self):
        rng = np.random.default_rng(0)
        chain = rng.normal(size=4000)
        assert effective_sample_size(chain) > 2500

    def test_ess_correlated_much_smaller(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=4000)
        chain = np.cumsum(noise) * 0.05 + noise  # strongly autocorrelated
        assert effective_sample_size(chain) < 1000

    def test_ess_tiny_chain(self):
        assert effective_sample_size(np.array([1.0, 2.0])) == 2.0

    def test_rhat_converged_chains(self):
        rng = np.random.default_rng(1)
        chains = rng.normal(size=(4, 500))
        assert split_rhat(chains) == pytest.approx(1.0, abs=0.05)

    def test_rhat_diverged_chains(self):
        rng = np.random.default_rng(2)
        chains = rng.normal(size=(2, 500))
        chains[1] += 10.0
        assert split_rhat(chains) > 1.5

    def test_percentile_bands(self):
        bands = percentile_bands(np.arange(101.0))
        assert bands["p50"] == pytest.approx(50.0)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            LexError,
            ParseError,
            TypeMismatchError,
            EvalError,
            StaticAnalysisError,
            UnanalyzableError,
            InfeasibleError,
            LPError,
            InferenceError,
            DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_source_error_formats_position(self):
        err = SourceError("bad", line=3, col=7)
        assert "3:7" in str(err)

    def test_unanalyzable_is_static_analysis_error(self):
        assert issubclass(UnanalyzableError, StaticAnalysisError)
