"""Mutation tests: seed a defect into a known-clean program, assert the
linter reports exactly the right code at exactly the right line:col.

The base program is the paper's quicksort pipeline (clean by the sweep
test); each mutation is a small textual edit with a hand-computed span.
"""

import pytest

from repro.analysis import lint_source

BASE = """\
let rec append l1 l2 =
  match l1 with
  | [] -> l2
  | hd :: tl -> let _ = Raml.tick 1.0 in hd :: append tl l2

let rec length xs =
  match xs with
  | [] -> 0
  | hd :: tl -> 1 + length tl

let main ys = length (append ys (append ys []))
"""


def _codes_at(result, code):
    return [(d.span.line, d.span.col) for d in result.diagnostics if d.code == code]


def test_base_program_is_clean():
    result = lint_source(BASE, path="base.ml")
    assert result.clean(), [
        (d.code, d.message) for d in result.errors() + result.warnings()
    ]


def test_mutation_shadowed_variable():
    # shadow the parameter `ys` inside main
    mutated = BASE.replace(
        "let main ys = length (append ys (append ys []))",
        "let main ys = let ys = append ys [] in length ys",
    )
    result = lint_source(mutated, path="mut.ml")
    assert _codes_at(result, "W001") == [(11, 15)]


def test_mutation_negative_tick():
    mutated = BASE.replace("Raml.tick 1.0", "Raml.tick (-1.0)")
    result = lint_source(mutated, path="mut.ml")
    assert _codes_at(result, "W010") == [(4, 25)]


def test_mutation_unreachable_arm():
    # a wildcard arm before the cons arm makes the cons arm unreachable
    mutated = BASE.replace(
        "  | [] -> 0\n  | hd :: tl -> 1 + length tl",
        "  | [] -> 0\n  | _ -> 1\n  | hd :: tl -> 1 + length tl",
    )
    result = lint_source(mutated, path="mut.ml")
    assert _codes_at(result, "W004") == [(10, 5)]


def test_mutation_unbound_variable():
    mutated = BASE.replace("1 + length tl", "1 + length zl")
    result = lint_source(mutated, path="mut.ml")
    assert _codes_at(result, "R010") == [(9, 28)]
    assert result.errors()


def test_mutation_wrong_arity():
    # drop one argument from the outer append call
    mutated = BASE.replace(
        "let main ys = length (append ys (append ys []))",
        "let main ys = length (append (append ys []))",
    )
    result = lint_source(mutated, path="mut.ml")
    assert _codes_at(result, "R012") == [(11, 23)]


def test_mutation_missing_rec_marker():
    mutated = BASE.replace("let rec length xs", "let length xs")
    result = lint_source(mutated, path="mut.ml")
    assert _codes_at(result, "R015") == [(9, 21)]


def test_mutation_nonstructural_recursion_gets_r042():
    # recurse on the whole list instead of the tail (the append cycle
    # carries tick cost, so this is provably unboundable)
    mutated = BASE.replace("hd :: append tl l2", "hd :: append l1 l2")
    result = lint_source(mutated, path="mut.ml")
    assert _codes_at(result, "R042") == [(4, 48)]


def test_mutation_duplicate_function():
    mutated = BASE + "\nlet length n = n\n"
    result = lint_source(mutated, path="mut.ml", entry="main")
    assert _codes_at(result, "R014") == [(13, 5)]


@pytest.mark.parametrize(
    "needle,replacement,code",
    [
        ("append tl l2", "append2 tl l2", "R011"),  # unknown function
        ("let main ys", "let main ys ys", "R013"),  # duplicate parameter
    ],
)
def test_mutation_table(needle, replacement, code):
    mutated = BASE.replace(needle, replacement)
    result = lint_source(mutated, path="mut.ml")
    hits = [d for d in result.diagnostics if d.code == code]
    assert hits and all(d.severity == "error" for d in hits)
