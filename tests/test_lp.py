"""LP substrate tests: expressions, problems, lexicographic solving."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, LPError
from repro.lp import LPProblem, LinExpr, feasible_point, solve_lexicographic, solve_min

coef = st.floats(-10, 10, allow_nan=False)


class TestLinExpr:
    def test_var_and_constant(self):
        x = LinExpr.var("x")
        e = 2 * x + 3
        assert e.coeffs == {"x": 2.0}
        assert e.const == 3.0

    def test_subtraction_cancels(self):
        x = LinExpr.var("x")
        assert (x - x).is_constant()

    def test_evaluate(self):
        x, y = LinExpr.var("x"), LinExpr.var("y")
        e = 2 * x - y + 1
        assert e.evaluate({"x": 3, "y": 4}) == 3.0

    def test_total(self):
        e = LinExpr.total([LinExpr.var("a"), 2, LinExpr.var("a")])
        assert e.coeffs == {"a": 2.0} and e.const == 2.0

    def test_str(self):
        assert str(2 * LinExpr.var("x") + 1) == "2*x + 1"

    @given(a=coef, b=coef, c=coef)
    @settings(max_examples=50, deadline=None)
    def test_linearity(self, a, b, c):
        x, y = LinExpr.var("x"), LinExpr.var("y")
        e = a * x + b * y + c
        assert e.evaluate({"x": 2.0, "y": -1.0}) == pytest.approx(2 * a - b + c)

    @given(a=coef, b=coef)
    @settings(max_examples=50, deadline=None)
    def test_add_commutes(self, a, b):
        x = LinExpr.var("x")
        e1 = (a * x) + (b * x)
        e2 = (b * x) + (a * x)
        assert e1.evaluate({"x": 1.7}) == pytest.approx(e2.evaluate({"x": 1.7}))

    def test_hashable_and_equal(self):
        x = LinExpr.var("x")
        assert hash(2 * x + 1) == hash(2 * x + 1)
        assert 2 * x + 1 == 2 * x + 1


class TestLPProblem:
    def test_fresh_variables_unique(self):
        p = LPProblem()
        names = {p.fresh("q").variables()[0] for _ in range(10)}
        assert len(names) == 10

    def test_constraint_check(self):
        p = LPProblem()
        x = p.fresh("x")
        con = p.add_ge(x, 5)
        assert not con.holds({"x.0": 4})
        assert con.holds({"x.0": 5})

    def test_problem_check_finds_violation(self):
        p = LPProblem()
        x = p.fresh("x")
        p.add_le(x, 3)
        assert p.check({"x.0": 10}) is not None
        assert p.check({"x.0": 1}) is None

    def test_extend_merges(self):
        p, q = LPProblem(), LPProblem()
        xp = p.fresh("a")
        xq = q.fresh("b")
        q.add_ge(xq, 1)
        p.extend(q)
        assert len(p.constraints) == 1

    def test_matrices_shape(self):
        p = LPProblem()
        x, y = p.fresh("x"), p.fresh("y")
        p.add_le(x + y, 4)
        p.add_eq(x, 1)
        A_ub, b_ub, A_eq, b_eq, index = p.to_matrices()
        assert A_ub.shape == (1, 2)
        assert A_eq.shape == (1, 2)


class TestSolving:
    def test_simple_min(self):
        p = LPProblem()
        x = p.fresh("x")
        p.add_ge(x, 3)
        sol = solve_min(p, x)
        assert sol.value(x) == pytest.approx(3.0)

    def test_implicit_nonnegativity(self):
        p = LPProblem()
        x = p.fresh("x")
        p.add_le(x, 10)
        sol = solve_min(p, x)
        assert sol.value(x) == pytest.approx(0.0)

    def test_infeasible_raises(self):
        p = LPProblem()
        x = p.fresh("x")
        p.add_le(x, -1)  # x >= 0 implicitly
        with pytest.raises(InfeasibleError):
            solve_min(p, x)

    def test_unbounded_raises(self):
        p = LPProblem()
        x = p.fresh("x")
        p.add_ge(x, 0)
        with pytest.raises(LPError):
            solve_min(p, -1 * x)

    def test_lexicographic_order_matters(self):
        p = LPProblem()
        x, y = p.fresh("x"), p.fresh("y")
        p.add_ge(x + y, 10)
        sol_xy = solve_lexicographic(p, [x, y])
        sol_yx = solve_lexicographic(p, [y, x])
        assert sol_xy.value(x) == pytest.approx(0.0, abs=1e-6)
        assert sol_yx.value(y) == pytest.approx(0.0, abs=1e-6)

    def test_pinned_variables(self):
        p = LPProblem()
        x, y = p.fresh("x"), p.fresh("y")
        p.add_ge(x + y, 10)
        name = x.variables()[0]
        sol = solve_lexicographic(p, [y], pinned={name: 4.0})
        assert sol.value(x) == pytest.approx(4.0, abs=1e-5)
        assert sol.value(y) == pytest.approx(6.0, abs=1e-5)

    def test_pinned_can_make_infeasible(self):
        p = LPProblem()
        x = p.fresh("x")
        p.add_le(x, 3)
        with pytest.raises(InfeasibleError):
            solve_min(p, x, pinned={x.variables()[0]: 5.0})

    def test_feasible_point(self):
        p = LPProblem()
        x = p.fresh("x")
        p.add_ge(x, 2)
        point = feasible_point(p)
        assert point is not None and point[x.variables()[0]] >= 2 - 1e-6

    def test_feasible_point_none_when_empty(self):
        p = LPProblem()
        x = p.fresh("x")
        p.add_le(x, -5)
        assert feasible_point(p) is None

    @given(target=st.floats(0.5, 50, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_min_matches_target(self, target):
        p = LPProblem()
        x = p.fresh("x")
        p.add_ge(2 * x, target)
        sol = solve_min(p, x)
        assert sol.value(x) == pytest.approx(target / 2, rel=1e-6)
