"""Tests for repro.telemetry: spans, sinks, exporters, and the no-op path.

The contract under test is the observability tentpole's core guarantee:
tracing only ever *observes*.  Results and rng streams must be identical
with telemetry off and on, the disabled path must not allocate span
objects, and the per-process JSONL sink must survive hard worker kills
so cross-process merges still see every completed event.
"""

import json
import os

import pytest

from repro import faultinject, telemetry
from repro.config import AnalysisConfig
from repro.evalharness import EvalRunner, expand_grid, run_benchmark, timing_markdown
from repro.evalharness.runner import max_rss_kb
from repro.inference.serialize import result_to_json
from repro.suite import get_benchmark
from repro.telemetry import NULL_SPAN
from repro.telemetry.chrome import load_events, trace_files, write_chrome_trace
from repro.telemetry.console import Console
from repro.telemetry.summary import summarize_events, summarize_trace_dir

CONFIG = AnalysisConfig(num_posterior_samples=4, seed=0)


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    """No trace state leaks into (or out of) any test."""
    monkeypatch.delenv(telemetry.ENV_TRACE, raising=False)
    telemetry.disable()
    faultinject.uninstall()
    yield
    telemetry.disable()
    faultinject.uninstall()


class TestSpans:
    def test_nesting_parent_links_and_ordering(self, tmp_path):
        telemetry.enable(tmp_path)
        with telemetry.span("runner.task", task="T") as root:
            with telemetry.span("lp.solve", variables=3) as inner:
                inner.set(iterations=7)
        telemetry.disable()
        events = load_events(tmp_path)
        spans = {e["name"]: e for e in events if e["ev"] == "span"}
        assert set(spans) == {"runner.task", "lp.solve"}
        assert spans["lp.solve"]["parent"] == spans["runner.task"]["id"]
        assert spans["runner.task"]["parent"] is None
        assert spans["lp.solve"]["stage"] == "lp"
        assert spans["lp.solve"]["args"] == {"variables": 3, "iterations": 7}
        # children close before parents, and the parent's duration covers them
        assert spans["runner.task"]["dur"] >= spans["lp.solve"]["dur"]
        # events are sorted by start timestamp after the merge
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)

    def test_exception_is_recorded_and_propagated(self, tmp_path):
        telemetry.enable(tmp_path)
        with pytest.raises(ValueError):
            with telemetry.span("aara.build"):
                raise ValueError("boom")
        telemetry.disable()
        (event,) = load_events(tmp_path)
        assert event["args"]["error"] == "ValueError"

    def test_explicit_stage_overrides_name_prefix(self, tmp_path):
        telemetry.enable(tmp_path)
        with telemetry.span("runner.task", stage="task"):
            pass
        telemetry.disable()
        (event,) = load_events(tmp_path)
        assert event["stage"] == "task"

    def test_counters_and_gauges(self, tmp_path):
        telemetry.enable(tmp_path)
        telemetry.counter("lp.solves", 2, context="x")
        telemetry.gauge("sampler.accept_rate", 0.91)
        telemetry.disable()
        by_name = {e["name"]: e for e in load_events(tmp_path)}
        assert by_name["lp.solves"]["ev"] == "counter"
        assert by_name["lp.solves"]["value"] == 2.0
        assert by_name["sampler.accept_rate"]["ev"] == "gauge"
        assert by_name["sampler.accept_rate"]["value"] == pytest.approx(0.91)

    def test_stage_accumulator_partitions_root_duration(self, tmp_path):
        telemetry.enable(tmp_path)
        acc = telemetry.stage_totals()
        with acc:
            with telemetry.span("runner.task", stage="task"):
                with telemetry.span("lp.solve"):
                    pass
        telemetry.disable()
        root = next(e for e in load_events(tmp_path) if e["name"] == "runner.task")
        assert set(acc.totals) == {"task", "lp"}
        assert sum(acc.totals.values()) == pytest.approx(root["dur"], rel=0.05, abs=1e-4)


class TestDisabledFastPath:
    def test_span_returns_shared_singleton(self):
        assert telemetry.span("a.b", x=1) is NULL_SPAN
        assert telemetry.span("c.d") is telemetry.span("e.f")
        with telemetry.span("a.b") as sp:
            sp.set(y=2)  # no-op, no state

    def test_no_events_and_no_accumulator(self, tmp_path):
        assert telemetry.stage_totals() is None
        telemetry.counter("x", 1)
        telemetry.gauge("y", 2.0)
        assert trace_files(tmp_path) == []
        assert not telemetry.enabled()

    def test_enable_without_dir_times_but_does_not_write(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        telemetry.enable(None)
        with telemetry.span("lp.solve"):
            telemetry.counter("lp.solves", 1)
        assert telemetry.trace_path() is None
        assert trace_files(tmp_path) == []

    def test_ensure_from_env(self, tmp_path, monkeypatch):
        assert telemetry.ensure_from_env() is False
        monkeypatch.setenv(telemetry.ENV_TRACE, str(tmp_path))
        assert telemetry.ensure_from_env() is True
        with telemetry.span("lp.solve"):
            pass
        assert len(load_events(tmp_path)) == 1


class TestExporters:
    def _record(self, tmp_path):
        telemetry.enable(tmp_path)
        with telemetry.span("runner.task", stage="task", task="Round/data-driven/opt"):
            with telemetry.span("lp.solve", variables=5):
                pass
            telemetry.counter("lp.solves", 1)
        telemetry.disable()

    def test_chrome_trace_schema(self, tmp_path):
        self._record(tmp_path)
        n = write_chrome_trace(tmp_path)
        doc = json.loads((tmp_path / "trace.json").read_text())
        events = doc["traceEvents"]
        assert n == len(events) >= 3  # 2 spans + counter + process metadata
        for event in events:
            assert {"ph", "pid", "tid", "name"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0 and "ts" in event
            if event["ph"] == "C":
                assert isinstance(event["args"], dict)
        assert any(e["ph"] == "M" for e in events)

    def test_summary_totals_match_wall_clock(self, tmp_path):
        self._record(tmp_path)
        summary = summarize_trace_dir(tmp_path)
        cell = summary.cells["Round/data-driven/opt"]
        assert cell.wall_seconds > 0
        assert sum(cell.stages.values()) == pytest.approx(
            cell.wall_seconds, rel=0.1, abs=1e-4
        )
        assert summary.counters["lp.solves"] == 1.0

    def test_summary_skips_torn_lines(self, tmp_path):
        self._record(tmp_path)
        victim = trace_files(tmp_path)[0]
        with open(victim, "a") as handle:
            handle.write('{"ev": "span", "name": "torn...')  # SIGKILL mid-write
        events = load_events(tmp_path)
        assert all(e["name"] != "torn" for e in events)
        summarize_events(events)  # parses without raising


class TestCrossProcess:
    def test_pool_trace_survives_worker_kill(self, tmp_path, monkeypatch):
        """A hard worker death (os._exit) must leave mergeable traces that
        still contain the faultinject.fired counter from the dead worker."""
        trace_dir = tmp_path / "trace"
        monkeypatch.setenv(telemetry.ENV_TRACE, str(trace_dir))
        monkeypatch.setenv(
            faultinject.ENV_SPEC,
            "worker-crash:match=Round/data-driven/opt:count=1:action=exit",
        )
        monkeypatch.setenv(faultinject.ENV_STATE, str(tmp_path / "state"))
        tasks = expand_grid([get_benchmark("Round")], CONFIG, seed=0, methods=("opt",))
        with EvalRunner(jobs=2, max_retries=2, backoff_seconds=0.05) as runner:
            report = runner.run_tasks(tasks)
        assert all(o["ok"] for o in report.outcomes)
        events = load_events(trace_dir)
        pids = {e["pid"] for e in events}
        assert len(pids) >= 2  # parent + at least one worker wrote a file
        fired = [e for e in events if e["ev"] == "counter" and e["name"] == "faultinject.fired"]
        assert fired and fired[0]["args"]["site"] == "worker-crash"
        # the successful retry recorded full task spans with stage data
        roots = [e for e in events if e["ev"] == "span" and e["name"] == "runner.task"]
        assert {r["args"]["task"] for r in roots} >= {t.task_id for t in tasks}
        victim = report.outcome_by_id()["Round/data-driven/opt"]
        assert victim["metrics"]["attempts"] >= 2
        assert len({e["stage"] for e in events if e["ev"] == "span"}) >= 4

    def test_metrics_json_aggregates_stages(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.ENV_TRACE, str(tmp_path / "trace"))
        tasks = expand_grid([get_benchmark("Round")], CONFIG, seed=0, methods=("opt",))
        with EvalRunner() as runner:
            report = runner.run_tasks(tasks)
        metrics = report.metrics_json()
        assert metrics["version"] == 2
        assert metrics["summary"]["stage_wall_seconds"]
        for entry in metrics["tasks"]:
            assert len(entry["stages"]) >= 4, entry["task"]
            total = sum(entry["stages"].values())
            assert total == pytest.approx(entry["wall_seconds"], rel=0.1, abs=0.05)
        text = timing_markdown(metrics)
        assert text.startswith("## Timing")
        assert "Round/data-driven/opt" in text

    def test_timing_markdown_empty_without_stage_data(self):
        assert timing_markdown(None) == ""
        assert timing_markdown({"tasks": [], "summary": {}}) == ""


class TestGoldenStability:
    def test_traced_results_identical_to_untraced(self, tmp_path):
        """Telemetry only observes: posteriors and rng streams must be
        byte-identical with tracing off and on (all three methods)."""
        methods = ("opt", "bayeswc", "bayespc")
        spec = get_benchmark("Round")
        plain = run_benchmark(spec, CONFIG, seed=0, methods=methods, jobs=1)
        telemetry.enable(tmp_path)
        traced = run_benchmark(spec, CONFIG, seed=0, methods=methods, jobs=1)
        telemetry.disable()
        assert set(plain.results) == set(traced.results)
        for key in plain.results:
            a = result_to_json(plain.results[key])
            b = result_to_json(traced.results[key])
            a.pop("runtime_seconds")
            b.pop("runtime_seconds")
            assert a == b, key
        assert load_events(tmp_path)  # tracing actually recorded something


class TestSatellites:
    def test_max_rss_kb_platform_units(self):
        # Linux ru_maxrss is KiB; macOS reports bytes
        assert max_rss_kb(raw=2048, platform="linux") == 2048
        assert max_rss_kb(raw=2048 * 1024, platform="darwin") == 2048
        assert max_rss_kb() >= 0  # live value on whatever platform runs the tests

    def test_write_metrics_is_atomic(self, tmp_path):
        tasks = expand_grid([get_benchmark("Round")], CONFIG, seed=0, methods=("opt",))
        with EvalRunner() as runner:
            report = runner.run_tasks(tasks)
        out = tmp_path / "metrics.json"
        report.write_metrics(out)
        assert json.loads(out.read_text())["version"] == 2
        leftovers = [p for p in tmp_path.iterdir() if p.name != "metrics.json"]
        assert leftovers == []  # no temp files left behind


class TestConsole:
    def _lines(self, capsys):
        captured = capsys.readouterr()
        return captured.out.splitlines(), captured.err.splitlines()

    def test_default_levels(self, capsys):
        con = Console(verbosity=0, json_mode=False)
        con.result("table")
        con.info("status")
        con.debug("detail")
        con.warn("careful")
        con.error("broken")
        out, err = self._lines(capsys)
        assert out == ["table", "status"]  # debug hidden by default
        assert err == ["careful", "broken"]

    def test_quiet_hides_status_keeps_results(self, capsys):
        con = Console(verbosity=-1, json_mode=False)
        con.result("table")
        con.info("status")
        con.warn("careful")
        con.error("broken")
        out, err = self._lines(capsys)
        assert out == ["table"]
        assert err == ["broken"]

    def test_verbose_shows_debug(self, capsys):
        con = Console(verbosity=1, json_mode=False)
        con.debug("detail")
        out, _err = self._lines(capsys)
        assert out == ["detail"]

    def test_json_mode_emits_structured_lines(self, capsys):
        con = Console(verbosity=0, json_mode=True)
        con.info("collected", observations=60)
        out, _err = self._lines(capsys)
        payload = json.loads(out[0])
        assert payload == {"level": "info", "msg": "collected", "observations": 60}

    def test_json_mode_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "json")
        assert Console().json_mode is True
        monkeypatch.delenv("REPRO_LOG")
        assert Console().json_mode is False


class TestCLI:
    def _make_trace(self, tmp_path):
        telemetry.enable(tmp_path)
        with telemetry.span("runner.task", stage="task", task="Round/data-driven/opt"):
            with telemetry.span("lp.solve"):
                pass
        telemetry.disable()

    def test_trace_summary_command(self, tmp_path, capsys):
        from repro.cli import main

        self._make_trace(tmp_path)
        assert main(["trace", "summary", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "per-stage wall time" in out
        assert "Round/data-driven/opt" in out

    def test_trace_export_command(self, tmp_path, capsys):
        from repro.cli import main

        self._make_trace(tmp_path)
        out_file = tmp_path / "out.json"
        assert main(["trace", "export", str(tmp_path), "--out", str(out_file)]) == 0
        assert json.loads(out_file.read_text())["traceEvents"]

    def test_trace_summary_empty_dir_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "summary", str(tmp_path)]) == 2
        assert "no trace files" in capsys.readouterr().err

    def test_quiet_flag_suppresses_status(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        program = tmp_path / "prog.ml"
        program.write_text(
            "let rec len xs = match xs with [] -> 0 | h :: t -> "
            "let _ = Raml.tick 1.0 in 1 + len t\n"
            "let len2 xs = Raml.stat (len xs)\n"
        )
        out_path = tmp_path / "data.json"
        argv = [
            "collect", str(program), "--entry", "len2",
            "--sizes", "2:8:2", "--out", str(out_path),
        ]
        assert main(argv) == 0
        assert "collected" in capsys.readouterr().out
        assert main(["-q"] + argv) == 0
        assert capsys.readouterr().out == ""
