"""Chaos tests: fault injection and signal handling through the daemon.

The batch harness's ``REPRO_FAULTS`` sites fire unchanged inside the
daemon's pool workers (same ``execute_task``, same cache ``store``), so
these tests drive the daemon with the same fault plans the chaos CI job
uses — and assert the soak invariant: every admitted request reaches a
terminal state, and the daemon itself never dies.
"""

import http.client
import json
import signal
import time

import pytest

from repro.evalharness.journal import JOURNAL_NAME

pytestmark = pytest.mark.slow


def request(port, method, path, body=None, timeout=120.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json", "X-Client": "chaos"},
        )
        response = conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else {}
    finally:
        conn.close()


def journal_events(tmp_path):
    """All request journal events from the daemon's run directory."""
    events = []
    for path in (tmp_path / "server-runs").glob(f"server-*/{JOURNAL_NAME}"):
        for line in path.read_text().splitlines():
            events.append(json.loads(line))
    return events


def assert_no_request_dropped(tmp_path):
    """The soak invariant, from the write-ahead journal: every admitted
    (non-cached) request has a terminal journal record."""
    events = journal_events(tmp_path)
    admitted = {
        e["id"] for e in events if e["ev"] == "request-admitted" and not e["cached"]
    }
    resolved = {
        e["id"] for e in events if e["ev"] in ("request-finish", "request-cancelled")
    }
    dropped = admitted - resolved
    assert not dropped, f"requests vanished without a terminal record: {dropped}"


def test_worker_crash_is_survived_and_retried(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon(
        "--jobs", "1",
        env={
            "REPRO_FAULTS": "worker-crash:match=MapAppend/*:count=1:action=exit",
            "REPRO_FAULTS_STATE": str(tmp_path / "fault-state"),
        },
    )
    body = {"benchmark": "MapAppend", "method": "opt", "samples": 5, "seed": 0}
    status, doc = request(port, "POST", "/analyze?wait=1&timeout=90", body)
    assert status == 200
    assert doc["state"] == "done"
    assert doc["attempts"] == 2  # first attempt died with the injected exit
    health = request(port, "GET", "/healthz")[1]
    assert health["status"] == "ok"
    assert health["pool"]["replacements"] >= 1
    assert_no_request_dropped(tmp_path)


def test_hung_worker_is_killed_without_daemon_restart(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon(
        "--jobs", "1",
        env={
            "REPRO_FAULTS": "worker-hang:match=MapAppend/*:count=1:delay=600",
            "REPRO_FAULTS_STATE": str(tmp_path / "fault-state"),
        },
    )
    body = {
        "benchmark": "MapAppend", "method": "opt", "samples": 5,
        "deadline_seconds": 2.0,
    }
    status, doc = request(port, "POST", "/analyze?wait=1&timeout=60", body)
    assert status == 200
    assert doc["state"] == "timeout"
    assert "deadline" in doc["error"]
    # the daemon replaced the pool and keeps serving
    status, after = request(
        port, "POST", "/analyze?wait=1&timeout=90",
        {"benchmark": "Concat", "method": "opt", "samples": 5},
    )
    assert status == 200 and after["state"] == "done"
    assert_no_request_dropped(tmp_path)


def test_nan_logdensity_yields_terminal_response(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon(
        "--jobs", "1",
        env={
            "REPRO_FAULTS": "nan-logdensity:count=2",
            "REPRO_FAULTS_STATE": str(tmp_path / "fault-state"),
        },
    )
    body = {"benchmark": "MapAppend", "method": "bayeswc", "samples": 5, "seed": 0}
    status, doc = request(port, "POST", "/analyze?wait=1&timeout=120", body)
    assert status == 200
    # self-healing may absorb the NaN (done) or the cell records a sampler
    # error — either way the request resolves and the daemon survives
    assert doc["state"] in ("done", "error")
    assert request(port, "GET", "/healthz")[0] == 200
    assert_no_request_dropped(tmp_path)


def test_torn_cache_write_recovers_transparently(tmp_path, spawn_daemon):
    _proc, port = spawn_daemon(
        "--jobs", "1",
        env={
            "REPRO_FAULTS": "cache-torn:match=MapAppend/*:count=1",
            "REPRO_FAULTS_STATE": str(tmp_path / "fault-state"),
        },
    )
    body = {"benchmark": "MapAppend", "method": "opt", "samples": 5, "seed": 0}
    first = request(port, "POST", "/analyze?wait=1&timeout=90", body)
    assert first[1]["state"] == "done"  # the torn write hit the cache, not the client
    # the repeat cannot be served from the torn entry: it quarantines and
    # recomputes — still terminal, never corrupt
    second = request(port, "POST", "/analyze?wait=1&timeout=90", body)
    assert second[1]["state"] == "done"
    assert second[1]["cache_hit"] is False
    third = request(port, "POST", "/analyze?wait=1&timeout=90", body)
    assert third[1]["state"] == "done"
    assert third[1]["cache_hit"] is True  # the rewrite was clean
    assert_no_request_dropped(tmp_path)


def test_sigterm_drains_inflight_and_exits_75(tmp_path, spawn_daemon):
    proc, port = spawn_daemon("--jobs", "1", "--grace", "60")
    body = {"benchmark": "MapAppend", "method": "bayespc", "samples": 25, "seed": 7}
    status, doc = request(port, "POST", "/analyze", body)  # async: 202
    assert status in (200, 202)
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=120) == 75
    # the in-flight request was resolved (or journalled cancelled) — never dropped
    assert_no_request_dropped(tmp_path)
    events = journal_events(tmp_path)
    finished = [e for e in events if e["ev"] == "request-finish" and e["id"] == doc["id"]]
    cancelled = [e for e in events if e["ev"] == "request-cancelled" and e["id"] == doc["id"]]
    assert finished or (cancelled and cancelled[0]["resumable"])


def test_second_sigterm_abandons_grace_window(tmp_path, spawn_daemon):
    proc, port = spawn_daemon(
        "--jobs", "1", "--grace", "120",
        env={
            "REPRO_FAULTS": "worker-hang:match=MapAppend/*:count=1:delay=600",
            "REPRO_FAULTS_STATE": str(tmp_path / "fault-state"),
        },
    )
    body = {"benchmark": "MapAppend", "method": "opt", "samples": 5}
    status, doc = request(port, "POST", "/analyze", body)
    assert status in (200, 202)
    time.sleep(1.0)  # let the hang start in a worker
    started = time.monotonic()
    proc.send_signal(signal.SIGTERM)  # enters the 120s grace window
    time.sleep(0.5)
    proc.send_signal(signal.SIGTERM)  # abandons it immediately
    assert proc.wait(timeout=30) == 75
    assert time.monotonic() - started < 20, "second signal did not cut the drain short"
    # the abandoned request is journalled as resumable, not dropped
    events = journal_events(tmp_path)
    cancelled = [e for e in events if e["ev"] == "request-cancelled" and e["id"] == doc["id"]]
    assert cancelled and cancelled[0]["resumable"]
    assert_no_request_dropped(tmp_path)


def test_mini_soak_with_chaos_meets_invariants(tmp_path, spawn_daemon):
    """A scaled-down version of the CI soak job: open-loop traffic with
    worker crashes injected; every request must reach a terminal class."""
    from repro.server.loadgen import LoadgenConfig, check_invariants, run_loadgen

    _proc, port = spawn_daemon(
        "--jobs", "2",
        env={
            "REPRO_FAULTS": "worker-crash:count=2:action=exit",
            "REPRO_FAULTS_STATE": str(tmp_path / "fault-state"),
        },
    )
    out = tmp_path / "BENCH_server.json"
    report = run_loadgen(
        LoadgenConfig(
            url=f"http://127.0.0.1:{port}",
            requests=16,
            rate=8.0,
            seed=1,
            samples=5,
            out=str(out),
        )
    )
    check_invariants(report)  # raises on dropped/unresolved requests
    assert sum(report["taxonomy"].values()) == 16
    assert out.exists()
    saved = json.loads(out.read_text())
    assert saved["taxonomy"] == report["taxonomy"]
    assert request(port, "GET", "/healthz")[0] == 200
    assert_no_request_dropped(tmp_path)
