"""PosteriorResult summary helpers and additional surface-syntax coverage."""

import numpy as np
import pytest

from repro.aara.annot import ABase, AList
from repro.aara.bound import ResourceBound
from repro.errors import ParseError
from repro.inference.posterior import PosteriorResult, default_shape
from repro.lang import ast as A
from repro.lang import compile_program, evaluate, from_python
from repro.lang.parser import parse_expr, parse_program
from repro.lp import LinExpr


def linear_bound(slope, const=0.0):
    ann = AList((LinExpr.constant(slope),), ABase(A.INT))
    return ResourceBound("f", (ann,), const)


def make_posterior(slopes):
    return PosteriorResult(
        method="bayeswc",
        mode="data-driven",
        bounds=[linear_bound(s) for s in slopes],
        runtime_seconds=1.0,
    )


class TestPosteriorHelpers:
    def test_curves_shape(self):
        post = make_posterior([1.0, 2.0, 3.0])
        curves = post.curves([10, 20])
        assert curves.shape == (3, 2)
        assert curves[1, 1] == pytest.approx(40.0)

    def test_soundness_fraction(self):
        post = make_posterior([0.5, 1.0, 1.5, 2.0])
        truth = lambda n: float(n)  # noqa: E731
        assert post.soundness_fraction(truth, [5, 50]) == pytest.approx(0.75)

    def test_soundness_empty(self):
        post = make_posterior([])
        assert post.soundness_fraction(lambda n: 1.0, [5]) == 0.0

    def test_relative_gaps(self):
        post = make_posterior([2.0])
        gaps = post.relative_gaps(lambda n: float(n), 10)
        assert gaps[0] == pytest.approx(1.0)

    def test_gap_percentiles_empty(self):
        post = make_posterior([])
        pct = post.gap_percentiles(lambda n: 1.0, 10)
        assert all(np.isnan(v) for v in pct.values())

    def test_gaps_guard_against_zero_truth(self):
        post = make_posterior([1.0])
        gaps = post.relative_gaps(lambda n: 0.0, 10)
        assert np.isfinite(gaps[0])

    def test_percentile_curves_ordered(self):
        post = make_posterior([1.0, 2.0, 3.0, 4.0])
        bands = post.percentile_curves([10], percentiles=(10, 50, 90))
        assert bands[10][0] <= bands[50][0] <= bands[90][0]

    def test_median_coefficients(self):
        post = make_posterior([1.0, 3.0, 5.0])
        assert post.median_coefficients() == pytest.approx([0.0, 3.0])

    def test_default_shape(self):
        (shape,) = default_shape(7)
        assert len(shape.items) == 7

    def test_num_bounds(self):
        assert make_posterior([1.0, 2.0]).num_bounds == 2


class TestSurfaceSyntaxExtras:
    def test_comment_inside_function(self):
        prog = compile_program(
            "let f x = (* the identity, plus one *) x + 1"
        )
        assert evaluate(prog, "f", [from_python(1)]).value == 2

    def test_nested_match_with_parens(self):
        src = """
let f xs =
  match xs with
  | [] -> 0
  | h :: t -> (match t with [] -> h | a :: b -> a)
"""
        prog = compile_program(src)
        assert evaluate(prog, "f", [from_python([4, 9])]).value == 9

    def test_deeply_nested_list_pattern(self):
        src = """
let f xs =
  match xs with
  | a :: b :: c :: rest -> c
  | _ -> 0 - 1
"""
        prog = compile_program(src)
        assert evaluate(prog, "f", [from_python([1, 2, 3, 4])]).value == 3
        assert evaluate(prog, "f", [from_python([1])]).value == -1

    def test_tuple_in_list(self):
        src = """
let f ps =
  match ps with
  | [] -> 0
  | (a, b) :: t -> a + b
"""
        prog = compile_program(src)
        assert evaluate(prog, "f", [from_python([(3, 4), (5, 6)])]).value == 7

    def test_arithmetic_precedence_with_unary(self):
        prog = compile_program("let f x = 0 - x * 2 + 1")
        assert evaluate(prog, "f", [from_python(3)]).value == -5

    def test_annotated_list_list_param_parses(self):
        # parameter type annotations are parsed (and discarded: inference
        # recomputes them from usage)
        src = """
let f (xss : int list list) =
  match xss with
  | [] -> 0
  | h :: t -> (match h with [] -> 0 | a :: b -> a)
"""
        prog = compile_program(src)
        assert prog["f"].fun_type.params == (A.TList(A.TList(A.INT)),)

    def test_stat_of_nonapplication_expression(self):
        src = "let f xs = Raml.stat (match xs with [] -> 0 | h :: t -> h)"
        prog = compile_program(src)
        result = evaluate(prog, "f", [from_python([9])])
        assert result.value == 9
        assert result.stat_records[0].label == "f#1"

    def test_two_stats_same_function_distinct_labels(self):
        src = "let f x y = Raml.stat (g x) + Raml.stat (g y)\nlet g v = v"
        prog = compile_program(src)
        result = evaluate(prog, "f", [from_python(1), from_python(2)])
        assert {r.label for r in result.stat_records} == {"f#1", "f#2"}

    def test_match_failure_at_runtime(self):
        from repro.errors import EvalError

        src = "let f xs = match xs with | [ a ] -> a | a :: b :: t -> b"
        prog = compile_program(src)
        with pytest.raises(EvalError, match="match failure"):
            evaluate(prog, "f", [from_python([])])

    def test_parse_expr_rejects_fun(self):
        with pytest.raises(ParseError):
            parse_expr("fun x -> x")

    def test_program_with_only_exception_decl_rejected(self):
        with pytest.raises(ParseError):
            parse_program("exception Foo")
