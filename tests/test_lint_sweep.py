"""Whole-corpus lint sweep + CLI + runner-guard integration.

The paper suite and every example program must stay lint-clean (no
errors, no warnings; notes are informational), the ``lint`` subcommand
must behave as documented, and the lint guard in the eval runner must
not change any analysis result.
"""

import copy
import glob
import json
import os
from pathlib import Path

import pytest

from repro.analysis import extract_embedded_sources, lint_source
from repro.cli import main
from repro.config import AnalysisConfig
from repro.suite import all_benchmarks

REPO = Path(__file__).parent.parent


def _suite_units():
    for spec in all_benchmarks():
        yield f"{spec.name}/data_driven", spec.data_driven_source, spec.data_driven_entry
        if spec.hybrid_source is not None:
            yield f"{spec.name}/hybrid", spec.hybrid_source, spec.hybrid_entry


@pytest.mark.parametrize(
    "label,source,entry", list(_suite_units()), ids=[u[0] for u in _suite_units()]
)
def test_suite_programs_are_lint_clean(label, source, entry):
    result = lint_source(source, path=label, entry=entry)
    offenders = [
        f"{d.severity}[{d.code}] {d.message} @ {d.location()}"
        for d in result.errors() + result.warnings()
    ]
    assert result.clean(), offenders


def test_suite_covers_all_ten_benchmarks():
    assert len(all_benchmarks()) == 10


@pytest.mark.parametrize(
    "path", sorted(glob.glob(str(REPO / "examples" / "*.py"))), ids=os.path.basename
)
def test_example_embedded_programs_are_lint_clean(path):
    programs = extract_embedded_sources(Path(path).read_text())
    for name, source in programs:
        result = lint_source(source, path=f"{path}#{name}")
        offenders = [
            f"{d.severity}[{d.code}] {d.message} @ {d.location()}"
            for d in result.errors() + result.warnings()
        ]
        assert result.clean(), offenders


def test_examples_actually_embed_programs():
    embedded = sum(
        len(extract_embedded_sources(p.read_text()))
        for p in (REPO / "examples").glob("*.py")
    )
    assert embedded >= 4


def test_parser_preserves_positions_everywhere():
    """Every node of every suite program parses with a real position."""
    from repro.lang.parser import parse_program

    for label, source, _entry in _suite_units():
        program = parse_program(source)
        for fdef in program:
            assert fdef.pos is not None and fdef.pos.line >= 1, label
            assert fdef.name_pos is not None, label
            assert fdef.param_pos is not None and len(fdef.param_pos) == len(
                fdef.params
            ), label
            for node in fdef.body.walk():
                assert node.pos is not None, (label, fdef.name, type(node).__name__)
                assert node.pos.line >= 1, (label, fdef.name, type(node).__name__)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_lint_suite_exits_clean(capsys):
    assert main(["lint", "--suite"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_cli_lint_werror_stays_clean_on_suite():
    # acceptance: the suite is clean even with warnings promoted
    assert main(["lint", "--suite", "--Werror"]) == 0


def test_cli_lint_error_exit_code(tmp_path):
    bad = tmp_path / "bad.ml"
    bad.write_text("let f x = y\n")
    assert main(["lint", str(bad)]) == 1
    assert main(["lint", str(bad), "--format", "json"]) == 1


def test_cli_lint_json_payload(tmp_path, capsys):
    bad = tmp_path / "bad.ml"
    bad.write_text("let f x = y\n")
    main(["lint", str(bad), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert [d["code"] for d in payload["diagnostics"]] == ["R010"]
    d = payload["diagnostics"][0]
    assert (d["line"], d["col"]) == (1, 11)


def test_cli_lint_sarif_out_file(tmp_path):
    out = tmp_path / "lint.sarif"
    assert main(["lint", "--suite", "--format", "sarif", "--out", str(out)]) == 0
    sarif = json.loads(out.read_text())
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


def test_cli_lint_werror_promotes_warning_to_failure(tmp_path):
    warn = tmp_path / "warn.ml"
    warn.write_text("let f x = let y = 1 in x\n")
    assert main(["lint", str(warn)]) == 0
    assert main(["lint", str(warn), "--Werror"]) == 1


def test_cli_lint_nothing_to_do_is_an_error(capsys):
    assert main(["lint"]) == 2


def test_cli_lint_python_file_extraction(tmp_path, capsys):
    py = tmp_path / "emb.py"
    py.write_text('PROG = """let f x = y\n"""\nOTHER = 42\n')
    assert main(["lint", str(py)]) == 1
    out = capsys.readouterr().out
    assert "emb.py#PROG" in out and "R010" in out


def test_cli_static_reports_unboundable(tmp_path, capsys):
    prog = tmp_path / "spin.ml"
    prog.write_text("let rec spin xs = let _ = Raml.tick 1.0 in spin xs\n")
    assert main(["static", str(prog), "--entry", "spin"]) == 1
    out = capsys.readouterr().out
    assert "unboundable" in out and "R042" in out


def test_cli_parse_error_is_caret_rendered(tmp_path, capsys):
    prog = tmp_path / "syn.ml"
    prog.write_text("let f x =\n  let y = in x\n")
    assert main(["static", str(prog), "--entry", "f"]) == 2
    err = capsys.readouterr().err
    assert "error[R002]" in err and "^" in err and "syn.ml:2:" in err


def test_lint_spans_land_in_lint_stage(tmp_path):
    """`trace summary` buckets lint cost under its own stage."""
    from repro import telemetry
    from repro.telemetry.chrome import load_events

    telemetry.enable(tmp_path)
    try:
        lint_source("let f x = x\n", path="traced.ml")
    finally:
        telemetry.disable()
    spans = [e for e in load_events(tmp_path) if e["ev"] == "span"]
    lint_spans = [e for e in spans if e["name"].startswith("lint.")]
    assert {e["name"] for e in lint_spans} >= {"lint.parse", "lint.resolve"}
    assert all(e["stage"] == "lint" for e in lint_spans)


# ---------------------------------------------------------------------------
# Runner guard: identical results, memoized lint
# ---------------------------------------------------------------------------


def _strip_timing(outcome):
    out = copy.deepcopy(outcome)
    out.pop("metrics", None)
    if out.get("verdict"):
        out["verdict"].pop("runtime_seconds", None)
    if out.get("result"):
        out["result"].pop("runtime_seconds", None)
    return out


def test_lint_guard_does_not_change_results(monkeypatch):
    from repro.evalharness import execute_task, expand_grid
    from repro.evalharness import runner as runner_mod
    from repro.suite import get_benchmark

    config = AnalysisConfig(num_posterior_samples=4, seed=0)
    tasks = expand_grid([get_benchmark("Round")], config, seed=0, methods=("opt",))

    runner_mod._PROGRAM_CACHE.clear()
    runner_mod._LINT_CACHE.clear()
    guarded = [_strip_timing(execute_task(t)) for t in tasks]

    runner_mod._PROGRAM_CACHE.clear()
    runner_mod._LINT_CACHE.clear()
    monkeypatch.setattr(runner_mod, "_lint_guard", lambda spec, mode, budget=None: None)
    unguarded = [_strip_timing(execute_task(t)) for t in tasks]

    assert guarded == unguarded
    assert all(o["outcome"] == "ok" for o in guarded)


def test_lint_guard_is_memoized_per_program(monkeypatch):
    from repro.evalharness import runner as runner_mod
    from repro.suite import get_benchmark

    calls = []
    import repro.analysis as analysis_mod

    real = analysis_mod.lint_source

    def counting(source, path="<input>", entry=None, budget=None):
        calls.append(path)
        return real(source, path=path, entry=entry, budget=budget)

    monkeypatch.setattr(analysis_mod, "lint_source", counting)
    runner_mod._PROGRAM_CACHE.clear()
    runner_mod._LINT_CACHE.clear()
    spec = get_benchmark("Round")
    for _ in range(5):
        runner_mod._compiled_program(spec, "data-driven")
    assert len(calls) == 1


def test_lint_guard_failure_records_lint_stage(monkeypatch):
    from repro.errors import LintError, failure_stage
    from repro.evalharness import execute_task, expand_grid
    from repro.evalharness import runner as runner_mod
    from repro.suite import get_benchmark

    # serve a program with a lint error (unbound variable) for every mode
    monkeypatch.setattr(
        runner_mod,
        "_mode_variant",
        lambda spec, mode: ("let round_list x = unbound_var\n", "round_list"),
    )
    config = AnalysisConfig(num_posterior_samples=4, seed=0)
    tasks = expand_grid([get_benchmark("Round")], config, seed=0, methods=("opt",))
    runner_mod._PROGRAM_CACHE.clear()
    runner_mod._LINT_CACHE.clear()
    outcomes = [execute_task(t) for t in tasks]
    runner_mod._PROGRAM_CACHE.clear()
    runner_mod._LINT_CACHE.clear()
    assert outcomes
    assert all(o["outcome"] == "error" for o in outcomes)
    assert all(o["failure"]["stage"] == "lint" for o in outcomes)
    assert all("R010" in o["error"] for o in outcomes)
    assert failure_stage(LintError("x")) == "lint"
