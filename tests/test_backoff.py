"""The shared deterministic backoff: one derivation, every call site.

Satellite of the daemon PR: the seed-derived retry jitter used to live
inside the eval runner; it is now :mod:`repro.backoff`, shared by the
runner's retry loop and the daemon pool supervisor's resubmission path.
These tests pin the schedule byte-for-byte across both call sites.
"""

import json

from repro import backoff
from repro.evalharness.runner import EvalRunner, EvalTask, derive_seed
from repro.server.model import WorkItem
from repro.server.pool import PoolSupervisor


def test_derive_u63_stable_and_63_bit():
    a = backoff.derive_u63(7, "x", 3)
    b = backoff.derive_u63(7, "x", 3)
    assert a == b
    assert 0 <= a < 2**63
    assert backoff.derive_u63(7, "x", 4) != a
    assert backoff.derive_u63(8, "x", 3) != a


def test_runner_seed_derivation_delegates_to_backoff():
    # the runner's per-task seeds and the backoff jitter share one SHA-256
    # construction — a drift between them would silently change cache keys
    assert derive_seed(42, "MapAppend", "hybrid", "opt") == backoff.derive_u63(
        42, "MapAppend", "hybrid", "opt"
    )


def test_jitter_range():
    for attempt in range(1, 20):
        j = backoff.jitter(12345, attempt)
        assert 0.5 <= j < 1.5


def test_delay_grows_exponentially_modulo_jitter():
    base = 0.05
    for attempt in range(1, 6):
        delay = backoff.backoff_delay(base, attempt, seed=9)
        nominal = base * 2 ** (attempt - 1)
        assert 0.5 * nominal <= delay < 1.5 * nominal


def test_zero_base_disables_backoff():
    assert backoff.backoff_delay(0.0, 5, seed=1) == 0.0
    assert backoff.sleep_backoff(0.0, 5, seed=1) == 0.0


def test_schedule_byte_stable():
    # the schedule must serialize identically across repeated computation:
    # chaos tests rely on the same fault plan yielding the same sleeps
    one = json.dumps(backoff.backoff_schedule(0.05, 6, seed=321))
    two = json.dumps(backoff.backoff_schedule(0.05, 6, seed=321))
    assert one == two


def test_runner_and_pool_compute_identical_delays(monkeypatch):
    """The two production call sites produce the same schedule for the
    same (base, attempt, seed) — byte-stable across call sites."""
    base, seed = 0.05, derive_seed(0, "MapAppend", "data-driven", "opt")

    # call site 1: the eval runner's retry loop (sleeps the delay)
    slept = []
    monkeypatch.setattr(backoff.time, "sleep", lambda s: slept.append(s))
    runner = EvalRunner(jobs=1, backoff_seconds=base)
    for attempt in (1, 2, 3):
        runner._backoff(attempt, seed)

    # call site 2: the daemon pool supervisor's charged retry (schedules
    # an eligibility timestamp instead of sleeping)
    supervisor = PoolSupervisor(
        jobs=1, queue=None, on_start=None, on_done=None, on_fail=None,
        backoff_seconds=base,
    )
    task = EvalTask(kind="analysis", benchmark="MapAppend", root_seed=0,
                    mode="data-driven", method="opt")
    assert task.seed == seed
    scheduled = []
    for attempt in (1, 2, 3):
        item = WorkItem(request_id="r1", task=task, deadline=1e18, priority=5,
                        attempts=attempt)
        before = backoff.time.monotonic()
        supervisor._schedule_retry(item, charged=True)
        ts, _item = supervisor._delayed.pop()
        scheduled.append(ts - before)

    expected = backoff.backoff_schedule(base, 3, seed=seed)
    assert json.dumps(slept) == json.dumps(expected)
    for got, want in zip(scheduled, expected):
        # eligibility timestamps pass through monotonic(): equal modulo
        # the clock read between computing and storing
        assert abs(got - want) < 0.01
