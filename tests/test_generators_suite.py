"""Input-generator and benchmark-spec plumbing tests."""

import numpy as np
import pytest

from repro.lang.values import VList, to_python
from repro.suite import all_benchmarks, get_benchmark
from repro.suite.generators import (
    MixedGenerator,
    all_equal_expensive,
    multiples_list,
    random_int_list,
    random_nested_list,
    random_small_alphabet_list,
    sorted_ascending_expensive,
    sorted_descending_list,
)

RNG = np.random.default_rng(5)


class TestGenerators:
    def test_random_int_list_shape(self):
        value = random_int_list(RNG, 12, lo=5, hi=9)
        data = to_python(value)
        assert len(data) == 12
        assert all(5 <= v < 9 for v in data)

    def test_random_nested_totals(self):
        value = random_nested_list(RNG, 4, 17)
        data = to_python(value)
        assert len(data) == 4
        assert sum(len(inner) for inner in data) == 17

    def test_nested_zero_outer(self):
        assert to_python(random_nested_list(RNG, 0, 10)) == []

    def test_sorted_descending(self):
        data = to_python(sorted_descending_list(5, 10))
        assert data == [50, 40, 30, 20, 10]
        assert all(v % 10 == 0 for v in data)

    def test_sorted_ascending_expensive(self):
        data = to_python(sorted_ascending_expensive(4, 5))
        assert data == [5, 10, 15, 20]

    def test_all_equal(self):
        data = to_python(all_equal_expensive(3, 7))
        assert data == [7, 7, 7]

    def test_multiples(self):
        data = to_python(multiples_list(4, 3))
        assert sorted(data) == [3, 6, 9, 12]

    def test_small_alphabet_bounded(self):
        data = to_python(random_small_alphabet_list(RNG, 50, alphabet=4))
        assert len(set(data)) <= 4

    def test_mixed_generator_dispatches(self):
        calls = {"random": 0, "adv": 0}

        def random_fn(rng, n):
            calls["random"] += 1
            return [n]

        def adv_fn(rng, n):
            calls["adv"] += 1
            return [n]

        mixed = MixedGenerator(random_fn, adv_fn, p=0.5)
        for _ in range(60):
            mixed(RNG, 3)
        assert calls["random"] > 5 and calls["adv"] > 5


class TestSpecPlumbing:
    def test_inputs_cover_sizes_times_reps(self):
        spec = get_benchmark("QuickSort")
        rng = np.random.default_rng(0)
        inputs = spec.inputs(rng)
        assert len(inputs) == len(spec.data_sizes) * spec.repetitions

    @pytest.mark.parametrize("spec", all_benchmarks(), ids=lambda s: s.name)
    def test_generator_sizes_match_request(self, spec):
        rng = np.random.default_rng(1)
        n = int(spec.data_sizes[1])
        args = spec.generator(rng, n)
        lists = [a for a in args if isinstance(a, VList)]
        assert lists, "every benchmark takes at least one list argument"
        primary = lists[0]
        assert len(primary.items) == n

    @pytest.mark.parametrize("spec", all_benchmarks(), ids=lambda s: s.name)
    def test_truth_zero_at_zero(self, spec):
        assert spec.truth(0) == pytest.approx(0.0)

    def test_median_of_medians_values_distinct(self):
        spec = get_benchmark("MedianOfMedians")
        rng = np.random.default_rng(2)
        _idx, values = spec.generator(rng, 40)
        data = to_python(values)
        assert len(set(data)) == len(data)
