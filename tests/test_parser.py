"""Parser unit tests: expressions, patterns, match compilation, programs."""

import pytest

from repro.errors import ParseError
from repro.lang import ast as A
from repro.lang.parser import parse_expr, parse_program


class TestAtoms:
    def test_int(self):
        assert parse_expr("42") == A.IntLit(42)

    def test_negative_int(self):
        assert parse_expr("-7") == A.IntLit(-7)

    def test_bools(self):
        assert parse_expr("true") == A.BoolLit(True)
        assert parse_expr("false") == A.BoolLit(False)

    def test_unit(self):
        assert parse_expr("()") == A.UnitLit()

    def test_var(self):
        assert parse_expr("x") == A.Var("x")

    def test_empty_list(self):
        assert parse_expr("[]") == A.Nil()

    def test_list_literal_desugars_to_cons(self):
        expr = parse_expr("[1; 2]")
        assert expr == A.Cons(A.IntLit(1), A.Cons(A.IntLit(2), A.Nil()))

    def test_tuple(self):
        expr = parse_expr("(1, 2, 3)")
        assert isinstance(expr, A.TupleExpr) and len(expr.items) == 3

    def test_parenthesized_single_is_not_tuple(self):
        assert parse_expr("(5)") == A.IntLit(5)


class TestOperators:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, A.BinOp) and expr.op == "+"
        assert isinstance(expr.right, A.BinOp) and expr.right.op == "*"

    def test_mod_keyword(self):
        expr = parse_expr("x mod 5")
        assert isinstance(expr, A.BinOp) and expr.op == "mod"

    def test_comparison(self):
        expr = parse_expr("x <= y + 1")
        assert isinstance(expr, A.BinOp) and expr.op == "<="

    def test_cons_right_associative(self):
        expr = parse_expr("1 :: 2 :: []")
        assert isinstance(expr, A.Cons)
        assert isinstance(expr.tail, A.Cons)

    def test_cons_binds_tighter_than_comparison(self):
        expr = parse_expr("x :: xs = ys")
        assert isinstance(expr, A.BinOp) and expr.op == "="

    def test_boolean_connectives_desugar_to_if(self):
        # && / || desugar to conditionals to preserve short-circuiting
        expr = parse_expr("a && b || c")
        assert isinstance(expr, A.If)
        assert expr.then_branch == A.BoolLit(True)
        inner = expr.cond
        assert isinstance(inner, A.If) and inner.else_branch == A.BoolLit(False)

    def test_not(self):
        expr = parse_expr("not b")
        assert isinstance(expr, A.Neg) and expr.op == "not"

    def test_unary_minus_on_var(self):
        expr = parse_expr("- x")
        assert isinstance(expr, A.Neg) and expr.op == "-"


class TestApplicationAndAnnotations:
    def test_application_collects_atom_args(self):
        expr = parse_expr("f x 1 (g y)")
        assert isinstance(expr, A.App) and expr.fname == "f"
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], A.App)

    def test_application_stops_at_operator(self):
        expr = parse_expr("f x + 1")
        assert isinstance(expr, A.BinOp) and expr.op == "+"

    def test_tick(self):
        assert parse_expr("Raml.tick 0.5") == A.Tick(0.5)
        assert parse_expr("tick 1.0") == A.Tick(1.0)

    def test_tick_integer_literal(self):
        assert parse_expr("Raml.tick 2") == A.Tick(2.0)

    def test_tick_negative(self):
        assert parse_expr("Raml.tick (-1.5)") == A.Tick(-1.5)

    def test_stat_label_assignment(self):
        expr = parse_expr("Raml.stat (f x)")
        assert isinstance(expr, A.Stat)
        assert expr.label == "main#1"

    def test_left_right_constructors(self):
        assert isinstance(parse_expr("Left 1"), A.Inl)
        assert isinstance(parse_expr("Right x"), A.Inr)

    def test_raise(self):
        expr = parse_expr("raise Invalid_input")
        assert expr == A.ErrorExpr("Invalid_input")


class TestLetAndIf:
    def test_let(self):
        expr = parse_expr("let x = 1 in x")
        assert isinstance(expr, A.Let) and expr.name == "x"

    def test_let_wildcard(self):
        expr = parse_expr("let _ = tick 1.0 in 2")
        assert isinstance(expr, A.Let)
        assert expr.name.startswith("$")

    def test_let_tuple_pattern_unparenthesized(self):
        expr = parse_expr("let a, b = p in a")
        # compiled to a let + tuple match
        assert isinstance(expr, A.Let)
        assert isinstance(expr.body, A.MatchTuple)

    def test_let_tuple_pattern_parenthesized(self):
        expr = parse_expr("let (a, b) = p in b")
        assert isinstance(expr, A.Let)
        assert isinstance(expr.body, A.MatchTuple)

    def test_if(self):
        expr = parse_expr("if x <= 0 then 1 else 2")
        assert isinstance(expr, A.If)


class TestMatchCompilation:
    def test_simple_list_match(self):
        expr = parse_expr("match xs with | [] -> 0 | hd :: tl -> 1")
        assert isinstance(expr, A.MatchList)
        assert expr.nil_branch == A.IntLit(0)

    def test_match_without_leading_bar(self):
        expr = parse_expr("match xs with [] -> 0 | hd :: tl -> 1")
        assert isinstance(expr, A.MatchList)

    def test_singleton_list_pattern_compiles_to_nested_match(self):
        expr = parse_expr("match xs with | [] -> 0 | [ x ] -> 1 | a :: b :: t -> 2")
        assert isinstance(expr, A.MatchList)
        assert isinstance(expr.cons_branch, A.MatchList)

    def test_wildcard_fallthrough(self):
        expr = parse_expr("match xs with | [ a; b ] -> a | _ -> 0")
        assert isinstance(expr, A.MatchList)

    def test_tuple_pattern_match(self):
        expr = parse_expr("match p with | (a, b) -> a")
        assert isinstance(expr, A.MatchTuple)

    def test_sum_pattern_match(self):
        expr = parse_expr("match s with | Left x -> x | Right y -> y")
        assert isinstance(expr, A.MatchSum)

    def test_non_variable_scrutinee_bound_first(self):
        expr = parse_expr("match f x with | [] -> 0 | h :: t -> 1")
        assert isinstance(expr, A.Let)
        assert isinstance(expr.body, A.MatchList)

    def test_nested_cons_binds_inner_names(self):
        expr = parse_expr("match xs with | [] -> 0 | x1 :: x2 :: t -> x2")
        inner = expr.cons_branch
        assert isinstance(inner, A.MatchList)


class TestPrograms:
    def test_single_function(self):
        prog = parse_program("let f x = x + 1")
        assert prog["f"].params == ("x",)
        assert not prog["f"].recursive

    def test_recursive_function(self):
        prog = parse_program("let rec f x = f x")
        assert prog["f"].recursive

    def test_annotated_params(self):
        prog = parse_program("let f (x : int) (ys : int list) = x")
        assert prog["f"].params == ("x", "ys")

    def test_return_type_annotation(self):
        prog = parse_program("let f (x : int) : int = x")
        assert prog["f"].params == ("x",)

    def test_exception_declaration_ignored(self):
        prog = parse_program("exception Bad\nlet f x = x")
        assert "f" in prog

    def test_multiple_functions(self):
        prog = parse_program("let f x = x\nlet g y = f y")
        assert prog.function_names() == ["f", "g"]

    def test_stat_labels_unique_per_function(self):
        prog = parse_program(
            "let f x = Raml.stat (g x)\nlet g y = Raml.stat (h y)\nlet h z = z"
        )
        assert prog.stat_labels() == ["f#1", "g#1"]

    def test_zero_param_function_rejected(self):
        with pytest.raises(ParseError):
            parse_program("let f = 1")

    def test_redefining_builtin_rejected(self):
        with pytest.raises(ParseError):
            parse_program("let complex_leq a b = true")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("   ")

    def test_local_let_rec_rejected(self):
        with pytest.raises(ParseError):
            parse_program("let f x = let rec g y = y in g x")

    def test_trailing_garbage_in_expr(self):
        with pytest.raises(ParseError):
            parse_expr("1 2 3")
