"""Chaos suite: every injected fault must land in its fault-tolerance net.

Each test activates one fault site from :mod:`repro.faultinject` and
asserts the pipeline's corresponding recovery mechanism fires — the
runner's retry loop and watchdog, the sampler's self-healing restarts,
the LP fallback chain, and the cache's corrupt-entry recovery — while
non-faulted cells stay byte-identical.
"""

import json
import time

import numpy as np
import pytest

from repro import faultinject
from repro.config import AnalysisConfig
from repro.errors import LPError, ReproError, SamplerDivergenceError
from repro.evalharness import EvalRunner, expand_grid
from repro.faultinject import ENV_SPEC, ENV_STATE, FaultPlan, parse_spec
from repro.lp import LPProblem, solve_lexicographic
from repro.stats.hmc import HMCConfig, HMCResult, hmc_sample_chains, sample_with_healing
from repro.suite import get_benchmark

CONFIG = AnalysisConfig(num_posterior_samples=4, seed=0)


@pytest.fixture(autouse=True)
def _clean_faults():
    """No plan leaks into (or out of) any test."""
    faultinject.uninstall()
    yield
    faultinject.uninstall()


def _tasks(names=("Round",), methods=("opt",)):
    specs = [get_benchmark(name) for name in names]
    return expand_grid(specs, CONFIG, seed=0, methods=methods)


class TestSpecParsing:
    def test_round_trip(self):
        clauses = parse_spec("worker-crash:match=Round/*:count=2:action=exit; cache-torn")
        assert [c.site for c in clauses] == ["worker-crash", "cache-torn"]
        assert clauses[0].match == "Round/*" and clauses[0].count == 2
        assert clauses[0].action == "exit"
        assert clauses[1].count == 1  # default: fire once

    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError):
            parse_spec("core-meltdown")

    def test_malformed_options_rejected(self):
        with pytest.raises(ReproError):
            parse_spec("worker-crash:count")
        with pytest.raises(ReproError):
            parse_spec("worker-crash:frequency=2")
        with pytest.raises(ReproError):
            parse_spec("worker-crash:action=segfault")

    def test_count_limits_firings(self):
        plan = FaultPlan.parse("lp-fail:count=2")
        fired = [plan.fire("lp-fail", "highs") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_match_is_fnmatch_on_key(self):
        plan = FaultPlan.parse("worker-hang:match=Round/*:count=-1")
        assert plan.fire("worker-hang", "Round/data-driven/opt") is not None
        assert plan.fire("worker-hang", "Concat/data-driven/opt") is None

    def test_prob_is_deterministic(self):
        a = FaultPlan.parse("lp-fail:count=-1:prob=0.5:seed=7")
        b = FaultPlan.parse("lp-fail:count=-1:prob=0.5:seed=7")
        pattern_a = [a.fire("lp-fail", "highs") is not None for _ in range(64)]
        pattern_b = [b.fire("lp-fail", "highs") is not None for _ in range(64)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_state_dir_shares_counters_across_plans(self, tmp_path):
        # two plans over one state dir model two processes of one run
        a = FaultPlan.parse("cache-torn:count=1", state_dir=tmp_path)
        b = FaultPlan.parse("cache-torn:count=1", state_dir=tmp_path)
        assert a.fire("cache-torn", "x") is not None
        assert b.fire("cache-torn", "x") is None  # token already claimed

    def test_zero_overhead_when_inactive(self):
        def fn(x):
            return 0.0, x

        assert faultinject.wrap_logdensity(fn, "any") is fn
        assert faultinject.fault_point(faultinject.LP_FAIL, "highs") is False

    def test_wrapping_only_for_targeted_keys(self):
        faultinject.install(FaultPlan.parse("nan-logdensity:match=other"))

        def fn(x):
            return 0.0, x

        assert faultinject.wrap_logdensity(fn, "chaos") is fn
        assert faultinject.wrap_logdensity(fn, "other") is not fn


class TestWorkerCrash:
    def test_injected_crash_is_retried_and_recovers(self):
        faultinject.install(
            FaultPlan.parse("worker-crash:match=Round/data-driven/opt:count=1")
        )
        with EvalRunner(backoff_seconds=0.0) as runner:
            report = runner.run_tasks(_tasks())
        assert all(o["ok"] for o in report.outcomes)
        victim = report.outcome_by_id()["Round/data-driven/opt"]
        assert victim["metrics"]["attempts"] == 2

    def test_persistent_crash_records_provenance(self):
        faultinject.install(
            FaultPlan.parse("worker-crash:match=Round/data-driven/opt:count=-1")
        )
        with EvalRunner(max_retries=1, backoff_seconds=0.0) as runner:
            report = runner.run_tasks(_tasks())
        victim = report.outcome_by_id()["Round/data-driven/opt"]
        assert not victim["ok"]
        assert victim["outcome"] == "crash"
        assert victim["failure"]["error_class"] == "InjectedFault"
        assert victim["failure"]["stage"] == "worker"
        assert victim["failure"]["attempts"] == 2
        # blast radius is exactly one cell
        others = [o for o in report.outcomes if o["task"] != victim["task"]]
        assert others and all(o["ok"] for o in others)

    def test_fail_fast_aborts_on_first_failure(self):
        faultinject.install(
            FaultPlan.parse("worker-crash:match=Round/data-driven/opt:count=-1")
        )
        with EvalRunner(max_retries=0, backoff_seconds=0.0, fail_fast=True) as runner:
            with pytest.raises(ReproError, match="fail-fast"):
                runner.run_tasks(_tasks())


class TestWatchdog:
    def test_serial_hang_times_out_with_provenance(self):
        faultinject.install(
            FaultPlan.parse("worker-hang:match=Round/data-driven/opt:count=-1:delay=60")
        )
        start = time.monotonic()
        with EvalRunner(max_retries=0, backoff_seconds=0.0, task_timeout=2.0) as runner:
            report = runner.run_tasks(_tasks())
        elapsed = time.monotonic() - start
        victim = report.outcome_by_id()["Round/data-driven/opt"]
        assert victim["outcome"] == "timeout"
        assert victim["failure"]["error_class"] == "TaskTimeoutError"
        assert victim["failure"]["stage"] == "runner"
        assert "watchdog" in victim["error"]
        assert report.metrics_json()["summary"]["timeouts"] == 1
        assert elapsed < 30  # the 60 s sleep was interrupted

    def test_serial_hang_recovers_on_retry(self):
        faultinject.install(
            FaultPlan.parse("worker-hang:match=Round/data-driven/opt:count=1:delay=60")
        )
        with EvalRunner(max_retries=1, backoff_seconds=0.0, task_timeout=2.0) as runner:
            report = runner.run_tasks(_tasks())
        assert all(o["ok"] for o in report.outcomes)
        victim = report.outcome_by_id()["Round/data-driven/opt"]
        assert victim["metrics"]["attempts"] == 2

    def test_pool_hung_worker_is_reclaimed(self, tmp_path, monkeypatch):
        # env-driven spec with a shared state dir: the firing counter must
        # span forked workers and the replacement pool ("hang once per run")
        monkeypatch.setenv(
            ENV_SPEC, "worker-hang:match=Round/data-driven/opt:count=1:delay=120"
        )
        monkeypatch.setenv(ENV_STATE, str(tmp_path / "state"))
        start = time.monotonic()
        with EvalRunner(
            jobs=2, max_retries=1, backoff_seconds=0.1, task_timeout=3.0
        ) as runner:
            report = runner.run_tasks(_tasks())
        elapsed = time.monotonic() - start
        assert all(o["ok"] for o in report.outcomes)
        victim = report.outcome_by_id()["Round/data-driven/opt"]
        assert victim["metrics"]["attempts"] == 2
        assert elapsed < 60  # ≈ watchdog + backoff + rerun, not the 120 s hang

    def test_pool_mixed_crash_and_retry(self, tmp_path, monkeypatch):
        # a hard worker death (os._exit) breaks the pool: the victim and any
        # in-flight tasks must be rescanned and resubmitted, then succeed
        monkeypatch.setenv(
            ENV_SPEC, "worker-crash:match=Round/data-driven/opt:count=1:action=exit"
        )
        monkeypatch.setenv(ENV_STATE, str(tmp_path / "state"))
        with EvalRunner(jobs=2, max_retries=2, backoff_seconds=0.05) as runner:
            report = runner.run_tasks(_tasks())
        assert all(o["ok"] for o in report.outcomes)
        victim = report.outcome_by_id()["Round/data-driven/opt"]
        assert victim["metrics"]["attempts"] >= 2


class TestSamplerHealing:
    @staticmethod
    def _gauss(x):
        return float(-0.5 * np.sum(x * x)), -x

    def test_fully_divergent_chain_raises(self):
        faultinject.install(FaultPlan.parse("nan-logdensity:match=chaos:count=-1"))
        config = HMCConfig(n_samples=10, n_warmup=10, n_leapfrog=4, max_restarts=1)
        with pytest.raises(SamplerDivergenceError):
            hmc_sample_chains(
                self._gauss, [np.zeros(2)], config, np.random.default_rng(0),
                fault_key="chaos",
            )

    def test_limited_nan_burst_heals(self):
        faultinject.install(FaultPlan.parse("nan-logdensity:match=chaos:count=3"))
        config = HMCConfig(n_samples=20, n_warmup=10, n_leapfrog=4)
        result = hmc_sample_chains(
            self._gauss, [np.ones(2)], config, np.random.default_rng(0),
            fault_key="chaos",
        )
        assert result.samples.shape == (20, 2)
        assert result.retries >= 1
        assert result.chain_diagnostics
        assert result.chain_diagnostics[0]["retries"] >= 1

    def test_untargeted_key_is_unaffected(self):
        faultinject.install(FaultPlan.parse("nan-logdensity:match=other:count=-1"))
        config = HMCConfig(n_samples=10, n_warmup=10, n_leapfrog=4)
        result = hmc_sample_chains(
            self._gauss, [np.zeros(2)], config, np.random.default_rng(0),
            fault_key="chaos",
        )
        assert result.retries == 0 and result.divergences == 0

    def test_healing_halves_step_and_counts_retries(self):
        calls = []

        def stub(cfg, rng):
            calls.append(cfg.initial_step_size)
            return HMCResult(
                np.zeros((10, 1)), 1.0, cfg.initial_step_size, np.zeros(10),
                divergences=9 if len(calls) == 1 else 0,
            )

        config = HMCConfig(n_samples=10, initial_step_size=0.4)
        result = sample_with_healing(stub, config, np.random.default_rng(0))
        assert calls == [0.4, 0.2]
        assert result.retries == 1 and result.divergences == 0


class TestLPFallback:
    def test_injected_numerical_failure_falls_back(self):
        faultinject.install(FaultPlan.parse("lp-fail:match=highs:count=1"))
        p = LPProblem()
        x = p.fresh("x")
        p.add_ge(x, 3)
        sol = solve_lexicographic(p, [x])
        assert sol.value(x) == pytest.approx(3.0, abs=1e-6)
        assert sol.fallbacks >= 1

    def test_all_methods_failing_raises_lperror(self):
        faultinject.install(FaultPlan.parse("lp-fail:count=-1"))
        p = LPProblem()
        x = p.fresh("x")
        p.add_ge(x, 3)
        with pytest.raises(LPError, match="attempt"):
            solve_lexicographic(p, [x])


class TestCacheTorn:
    def test_torn_write_recovers_on_next_run(self, tmp_path):
        faultinject.install(FaultPlan.parse("cache-torn:count=1"))
        tasks = _tasks()
        with EvalRunner(cache_dir=tmp_path) as runner:
            first = runner.run_tasks(tasks)
            assert all(o["ok"] for o in first.outcomes)
            faultinject.uninstall()
            second = runner.run_tasks(tasks)
            assert all(o["ok"] for o in second.outcomes)
            hits = [o["metrics"]["cache_hit"] for o in second.outcomes]
            assert hits.count(False) == 1  # only the torn entry recomputed
            third = runner.run_tasks(tasks)
            assert all(o["metrics"]["cache_hit"] for o in third.outcomes)

    def test_atomic_store_leaves_no_temp_files(self, tmp_path):
        with EvalRunner(cache_dir=tmp_path) as runner:
            runner.run_tasks(_tasks())
        assert list(tmp_path.glob("*.tmp")) == []


class TestNewFaultSites:
    def test_parent_signal_term_delivers_sigterm(self):
        import signal

        received = []
        previous = signal.signal(signal.SIGTERM, lambda *_: received.append("TERM"))
        try:
            faultinject.install(FaultPlan.parse("parent-signal:count=1:action=term"))
            assert faultinject.fault_point(faultinject.PARENT_SIGNAL, "any")
            time.sleep(0.1)
        finally:
            signal.signal(signal.SIGTERM, previous)
        assert received == ["TERM"]

    def test_parent_signal_kill_action_parses(self):
        clauses = parse_spec("parent-signal:action=kill")
        assert clauses[0].action == "kill"

    def test_journal_enospc_degrades_journal(self, tmp_path):
        from repro.evalharness.journal import RunJournal, replay

        faultinject.install(FaultPlan.parse("journal-enospc:count=1"))
        with RunJournal(tmp_path / "r") as journal:
            journal.task_finish("t", {"ok": True})
            assert journal._degraded
        assert replay(tmp_path / "r").finished == {}

    def test_cache_bitflip_is_caught_by_checksum(self, tmp_path):
        tasks = _tasks()
        with EvalRunner(cache_dir=tmp_path) as runner:
            first = runner.run_tasks(tasks)
            assert all(o["ok"] for o in first.outcomes)
        from repro.evalharness import ResultCache

        cache = ResultCache(tmp_path)
        cache.wipe()
        faultinject.install(FaultPlan.parse("cache-bitflip:count=1"))
        cache.store(tasks[0], first.outcomes[0])
        faultinject.uninstall()
        # the flipped payload must never be served as a valid outcome
        assert cache.load(tasks[0]) is None
        assert len(list(cache.root.glob("*.json.quarantined"))) == 1


def _strip_wall_clock(payload):
    """Drop timing fields (the only nondeterministic part of an outcome)."""
    if isinstance(payload, dict):
        return {
            k: _strip_wall_clock(v)
            for k, v in payload.items()
            if k != "runtime_seconds"
        }
    if isinstance(payload, list):
        return [_strip_wall_clock(v) for v in payload]
    return payload


class TestEndToEndDegradation:
    def test_unaffected_cells_byte_identical_under_faults(self):
        tasks = _tasks(names=("Round", "Concat"))
        with EvalRunner(backoff_seconds=0.0) as runner:
            baseline = runner.run_tasks(tasks)
        assert all(o["ok"] for o in baseline.outcomes)

        faulted_ids = {"Round/data-driven/opt", "Concat/data-driven/opt"}
        faultinject.install(
            FaultPlan.parse(
                "worker-crash:match=Round/data-driven/opt:count=-1;"
                "worker-crash:match=Concat/data-driven/opt:count=-1"
            )
        )
        with EvalRunner(max_retries=1, backoff_seconds=0.0) as runner:
            degraded = runner.run_tasks(tasks)

        base_by_id = baseline.outcome_by_id()
        ok_cells = 0
        for outcome in degraded.outcomes:
            if outcome["task"] in faulted_ids:
                assert outcome["outcome"] == "crash"
                failure = outcome["failure"]
                assert failure["stage"] == "worker"
                assert failure["error_class"] == "InjectedFault"
                assert failure["attempts"] == 2
            else:
                ok_cells += 1
                want = base_by_id[outcome["task"]]
                for part in ("result", "verdict"):
                    assert json.dumps(
                        _strip_wall_clock(outcome[part]), sort_keys=True
                    ) == json.dumps(_strip_wall_clock(want[part]), sort_keys=True)
        assert ok_cells > 0


class TestCLIExitCodes:
    def test_fail_fast_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        # pre-seed both env vars through monkeypatch so the values the CLI
        # writes are restored (removed) at teardown
        monkeypatch.setenv(ENV_SPEC, "placeholder")
        monkeypatch.setenv(ENV_STATE, str(tmp_path / "state"))
        code = main(
            [
                "bench", "Round", "--method", "opt", "--samples", "4",
                "--faults", "worker-crash:match=Round/data-driven/opt:count=-1",
                "--fail-fast",
            ]
        )
        assert code != 0
        assert "fail-fast" in capsys.readouterr().err

    def test_keep_going_exits_zero_with_warning(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(ENV_SPEC, "placeholder")
        monkeypatch.setenv(ENV_STATE, str(tmp_path / "state"))
        code = main(
            [
                "bench", "Round", "--method", "opt", "--samples", "4",
                "--faults", "worker-crash:match=Round/data-driven/opt:count=-1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "warning" in captured.err and "failed" in captured.err
        assert "ERR" in captured.out  # footnoted partial table
