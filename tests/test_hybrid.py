"""Hybrid AARA integration tests: H:Opt, H:BayesWC, H:BayesPC (Section 6),
including the Theorem 6.1 property (bounds sound w.r.t. the runtime data)."""

import numpy as np
import pytest

from repro.aara.bound import synthetic_list
from repro.config import AnalysisConfig
from repro.inference import (
    classify_mode,
    collect_dataset,
    run_analysis,
    run_bayespc,
    run_bayeswc,
    run_opt,
)
from repro.lang import compile_program, evaluate, from_python

HYBRID_SRC = """
let incur_cost hd =
  if (hd mod 5) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec helper xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let _ = incur_cost hd in
    if complex_leq hd 500 then hd :: helper tl else helper tl

let rec driver xs =
  match xs with
  | [] -> 0
  | hd :: tl ->
    let kept = Raml.stat (helper xs) in
    driver tl
"""

DD_SRC = """
let incur_cost hd =
  if (hd mod 5) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec work xs =
  match xs with
  | [] -> 0
  | hd :: tl -> let _ = incur_cost hd in 1 + work tl

let work2 xs = Raml.stat (work xs)
"""


@pytest.fixture(scope="module")
def dd_setup():
    prog = compile_program(DD_SRC)
    rng = np.random.default_rng(0)
    inputs = [
        [from_python([int(v) for v in rng.integers(0, 100, n)])]
        for n in range(1, 31)
        for _ in range(2)
    ]
    dataset = collect_dataset(prog, "work2", inputs)
    return prog, dataset, inputs


@pytest.fixture(scope="module")
def hybrid_setup():
    prog = compile_program(HYBRID_SRC)
    rng = np.random.default_rng(1)
    inputs = [
        [from_python([int(v) for v in rng.integers(0, 1000, n)])]
        for n in range(1, 25)
        for _ in range(2)
    ]
    dataset = collect_dataset(prog, "driver", inputs)
    return prog, dataset, inputs


CFG = AnalysisConfig(degree=1, num_posterior_samples=12)
CFG2 = AnalysisConfig(degree=2, num_posterior_samples=12)


class TestModeClassification:
    def test_data_driven(self, dd_setup):
        prog, _, _ = dd_setup
        assert classify_mode(prog, "work2") == "data-driven"

    def test_hybrid(self, hybrid_setup):
        prog, _, _ = hybrid_setup
        assert classify_mode(prog, "driver") == "hybrid"


class TestOpt:
    def test_dd_bound_dominates_all_observed_costs(self, dd_setup):
        """Theorem 6.1 for H:Opt: sound w.r.t. every measurement."""
        prog, dataset, inputs = dd_setup
        result = run_opt(prog, "work2", dataset, CFG)
        bound = result.bounds[0]
        for args in inputs:
            measured = evaluate(prog, "work2", list(args)).cost
            assert bound.evaluate(args) >= measured - 1e-6

    def test_hybrid_bound_dominates_top_level_costs(self, hybrid_setup):
        prog, dataset, inputs = hybrid_setup
        result = run_opt(prog, "driver", dataset, CFG2)
        bound = result.bounds[0]
        for args in inputs:
            measured = evaluate(prog, "driver", list(args)).cost
            assert bound.evaluate(args) >= measured - 1e-4

    def test_opt_is_single_bound(self, dd_setup):
        prog, dataset, _ = dd_setup
        result = run_opt(prog, "work2", dataset, CFG)
        assert result.num_bounds == 1 and result.method == "opt"


class TestBayesWC:
    def test_posterior_bounds_dominate_data(self, dd_setup):
        prog, dataset, inputs = dd_setup
        result = run_bayeswc(prog, "work2", dataset, CFG)
        assert result.failures == 0
        assert len(result.bounds) == CFG.num_posterior_samples
        for bound in result.bounds[:4]:
            for args in inputs[::7]:
                measured = evaluate(prog, "work2", list(args)).cost
                assert bound.evaluate(args) >= measured - 1e-6

    def test_bounds_vary_across_posterior(self, dd_setup):
        prog, dataset, _ = dd_setup
        result = run_bayeswc(prog, "work2", dataset, CFG)
        values = {round(b.evaluate([synthetic_list(40)]), 6) for b in result.bounds}
        assert len(values) > 1

    def test_bayeswc_at_least_opt(self, dd_setup):
        """Sampled worst-case costs are >= observed maxima, so every BayesWC
        bound dominates the Opt bound at the observed sizes."""
        prog, dataset, _ = dd_setup
        opt = run_opt(prog, "work2", dataset, CFG).bounds[0]
        wc = run_bayeswc(prog, "work2", dataset, CFG)
        n = 30
        opt_val = opt.evaluate([synthetic_list(n)])
        assert min(b.evaluate([synthetic_list(n)]) for b in wc.bounds) >= opt_val - 1e-4


@pytest.mark.slow
class TestBayesPC:
    def test_dd_posterior_dominates_data(self, dd_setup):
        prog, dataset, inputs = dd_setup
        result = run_bayespc(prog, "work2", dataset, CFG)
        assert result.failures == 0
        for bound in result.bounds[:4]:
            for args in inputs[::7]:
                measured = evaluate(prog, "work2", list(args)).cost
                assert bound.evaluate(args) >= measured - 1e-4

    def test_hybrid_runs_and_is_sound_on_data(self, hybrid_setup):
        prog, dataset, inputs = hybrid_setup
        result = run_bayespc(prog, "driver", dataset, CFG2)
        assert len(result.bounds) > 0
        bound = result.bounds[0]
        for args in inputs[::5]:
            measured = evaluate(prog, "driver", list(args)).cost
            assert bound.evaluate(args) >= measured - 1e-3

    def test_diagnostics_present(self, dd_setup):
        prog, dataset, _ = dd_setup
        result = run_bayespc(prog, "work2", dataset, CFG)
        assert "accept_rate" in result.diagnostics
        assert result.diagnostics["polytope_dim"] >= 1


class TestDispatcher:
    def test_run_analysis_dispatch(self, dd_setup):
        prog, dataset, _ = dd_setup
        for method in ("opt", "bayeswc", "bayespc"):
            result = run_analysis(prog, "work2", dataset, CFG, method)
            assert result.method == method

    def test_unknown_method(self, dd_setup):
        prog, dataset, _ = dd_setup
        from repro.errors import InferenceError

        with pytest.raises(InferenceError):
            run_analysis(prog, "work2", dataset, CFG, "magic")
