"""Additional Hybrid-engine edge cases: the Opt-LP objective semantics,
grouped observations, w-variable sharing, and cost-free data constraints."""

import numpy as np
import pytest

from repro.aara.analyze import build_analysis
from repro.config import AnalysisConfig
from repro.inference import SiteCollector, collect_dataset, make_data_handler, run_opt
from repro.inference.hybrid import METHODS
from repro.lang import compile_program, from_python
from repro.lp import solve_lexicographic

DD_SRC = """
let rec work xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + work tl
let work2 xs = Raml.stat (work xs)
"""

HY_SRC = """
let rec helper xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + helper tl
let rec walk xs =
  match xs with
  | [] -> 0
  | hd :: tl -> Raml.stat (helper xs) + walk tl
"""


def make_dd():
    prog = compile_program(DD_SRC)
    inputs = [[from_python(list(range(n)))] for n in (1, 2, 3, 3, 3, 5)]
    return prog, collect_dataset(prog, "work2", inputs)


class TestHandlerMechanics:
    def test_observations_grouped_with_multiplicity(self):
        prog, dataset = make_dd()
        collector = SiteCollector()
        handler = make_data_handler(dataset, collector, cost_mode="const")
        build_analysis(prog, "work2", 1, stat_handler=handler)
        (occ,) = collector.occurrences
        # 6 observations collapse into 4 distinct (size, potential) groups
        assert len(occ.rows) == 4
        counts = {row.cost: row.count for row in occ.rows}
        assert counts[3.0] == 3  # the three size-3 runs share one group

    def test_gap_objective_weighted_by_count(self):
        prog, dataset = make_dd()
        collector = SiteCollector()
        handler = make_data_handler(dataset, collector, cost_mode="const")
        analysis = build_analysis(prog, "work2", 1, stat_handler=handler)
        solution = solve_lexicographic(
            analysis.lp, [collector.gap_objective] + analysis.root_objectives()
        )
        # the data is exactly linear: gap optimum is 0
        assert solution.objective_values[0] == pytest.approx(0.0, abs=1e-6)

    def test_wvar_mode_creates_one_var_per_size_key(self):
        prog, dataset = make_dd()
        collector = SiteCollector()
        handler = make_data_handler(dataset, collector, cost_mode="wvar")
        build_analysis(prog, "work2", 1, stat_handler=handler)
        # unique size keys: |xs| in {1,2,3,5} with their outputs
        assert len(collector.wvars) == 4

    def test_wvar_shared_across_costful_and_not_duplicated(self):
        prog = compile_program(HY_SRC)
        inputs = [[from_python(list(range(n)))] for n in (2, 3)]
        dataset = collect_dataset(prog, "walk", inputs)
        collector = SiteCollector()
        handler = make_data_handler(dataset, collector, cost_mode="wvar")
        build_analysis(prog, "walk", 1, stat_handler=handler)
        # multiple site occurrences (levels) but one wvar per (label, key)
        labels = {label for (label, _key) in collector.wvars}
        assert labels == {"walk#1"}
        costful_occurrences = [o for o in collector.occurrences if o.costful]
        costfree_occurrences = [o for o in collector.occurrences if not o.costful]
        assert costful_occurrences and costfree_occurrences

    def test_cost_free_occurrences_contribute_no_rows(self):
        prog = compile_program(HY_SRC)
        inputs = [[from_python(list(range(n)))] for n in (2, 3)]
        dataset = collect_dataset(prog, "walk", inputs)
        collector = SiteCollector()
        handler = make_data_handler(dataset, collector, cost_mode="const")
        build_analysis(prog, "walk", 1, stat_handler=handler)
        for occ in collector.occurrences:
            if not occ.costful:
                assert occ.rows == []

    def test_unknown_cost_mode_rejected(self):
        from repro.errors import InferenceError

        with pytest.raises(InferenceError):
            make_data_handler(None, SiteCollector(), cost_mode="exotic")

    def test_site_vars_cover_judgment(self):
        prog, dataset = make_dd()
        collector = SiteCollector()
        handler = make_data_handler(dataset, collector, cost_mode="const")
        build_analysis(prog, "work2", 1, stat_handler=handler)
        names = collector.site_vars()
        assert any(name.startswith("st.work2#1") for name in names)
        assert any("q0" in name for name in names)


class TestOptExactness:
    def test_linear_data_yields_exact_linear_bound(self):
        prog, dataset = make_dd()
        result = run_opt(prog, "work2", dataset, AnalysisConfig(degree=1))
        bound = result.bounds[0]
        # data is cost = n exactly, so Opt recovers slope 1 with no constant
        assert bound.evaluate_python([0] * 50) == pytest.approx(50.0, abs=1e-5)

    def test_methods_registry(self):
        assert set(METHODS) == {"opt", "bayeswc", "bayespc"}
