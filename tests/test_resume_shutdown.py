"""Durable runs end to end: graceful shutdown, journal replay, resume.

The property under test is the runner-level counterpart of the sampler
tests in ``test_checkpoint.py``: a run interrupted mid-grid (Ctrl-C,
SIGTERM, or SIGKILL via fault injection) flushes every finished cell to
the write-ahead journal, exits distinctly, and — after ``bench resume``
— produces a report identical to an uninterrupted run once volatile
fields (timings, attempt counts) are stripped.
"""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro import faultinject
from repro.cli import main
from repro.config import AnalysisConfig
from repro.errors import EXIT_INTERRUPTED
from repro.evalharness import EvalRunner, RunJournal, expand_grid, replay
from repro.suite import get_benchmark

CONFIG = AnalysisConfig(num_posterior_samples=3, seed=0)


def _tasks(methods=("opt", "bayeswc")):
    # MapAppend has both data-driven and hybrid modes: 5 tasks
    return expand_grid([get_benchmark("MapAppend")], CONFIG, seed=0, methods=methods)


def fake_outcome(task):
    """Deterministic picklable stand-in for execute_task."""
    return {
        "task": task.task_id,
        "kind": task.kind,
        "ok": True,
        "outcome": "ok",
        "error": None,
        "result": {"cell": task.task_id, "seed": task.seed},
        "verdict": None,
        "failure": None,
        "metrics": {"wall_seconds": 0.0},
    }


class _InterruptOnNth:
    def __init__(self, n):
        self.n = n
        self.calls = 0

    def __call__(self, task):
        self.calls += 1
        if self.calls == self.n:
            raise KeyboardInterrupt
        return fake_outcome(task)


class _SignalSelfOnNth:
    def __init__(self, n, signum=signal.SIGTERM):
        self.n = n
        self.signum = signum
        self.calls = 0

    def __call__(self, task):
        self.calls += 1
        if self.calls == self.n:
            os.kill(os.getpid(), self.signum)
        return fake_outcome(task)


def strip_volatile(outcome):
    out = dict(outcome)
    out.pop("metrics", None)
    return out


class TestSerialShutdown:
    def test_keyboard_interrupt_yields_partial_journalled_report(self, tmp_path):
        tasks = _tasks()
        assert len(tasks) >= 4
        journal = RunJournal(tmp_path / "r1")
        with EvalRunner(task_fn=_InterruptOnNth(3), journal=journal) as runner:
            report = runner.run_tasks(tasks)
        journal.close()
        assert report.interrupted
        assert runner.shutdown_reason == "keyboard-interrupt"
        assert len(report.outcomes) == 2
        out = replay(tmp_path / "r1")
        assert len(out.completed_ok()) == 2
        assert out.shutdowns == ["keyboard-interrupt"]

    def test_resume_skips_completed_and_matches_uninterrupted(self, tmp_path):
        tasks = _tasks()
        with EvalRunner(task_fn=fake_outcome) as runner:
            golden = runner.run_tasks(tasks)
        journal = RunJournal(tmp_path / "r1")
        with EvalRunner(task_fn=_InterruptOnNth(3), journal=journal) as runner:
            runner.run_tasks(tasks)
        journal.close()
        completed = replay(tmp_path / "r1").completed_ok()
        counting = _InterruptOnNth(10**9)  # never fires, counts calls
        with EvalRunner(task_fn=counting, journal=RunJournal(tmp_path / "r1")) as runner:
            runner.preload(completed)
            resumed = runner.run_tasks(tasks)
        assert not resumed.interrupted
        assert counting.calls == len(tasks) - len(completed)
        assert [strip_volatile(o) for o in resumed.outcomes] == [
            strip_volatile(o) for o in golden.outcomes
        ]
        replayed_flags = [o["metrics"].get("resumed", False) for o in resumed.outcomes]
        assert replayed_flags.count(True) == len(completed)

    def test_sigterm_finishes_current_task_then_stops(self, tmp_path):
        tasks = _tasks()
        previous = signal.getsignal(signal.SIGTERM)
        with EvalRunner(task_fn=_SignalSelfOnNth(2)) as runner:
            runner.install_signal_handlers()
            report = runner.run_tasks(tasks)
        assert report.interrupted
        assert runner.shutdown_reason == "signal:SIGTERM"
        # the task that received the signal still completed (graceful)
        assert len(report.outcomes) == 2
        # handlers restored by close()
        assert signal.getsignal(signal.SIGTERM) == previous

    def test_second_signal_raises_keyboard_interrupt(self):
        with EvalRunner(task_fn=fake_outcome) as runner:
            runner.install_signal_handlers()
            runner.request_shutdown("test")
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                time.sleep(0.5)

    def test_parent_signal_fault_site_serial(self, tmp_path):
        tasks = _tasks()
        target = tasks[1].task_id
        faultinject.install(
            faultinject.FaultPlan.parse(f"parent-signal:match={target}:count=1:action=term")
        )
        journal = RunJournal(tmp_path / "r1")
        with EvalRunner(task_fn=fake_outcome, journal=journal) as runner:
            runner.install_signal_handlers()
            report = runner.run_tasks(tasks)
        journal.close()
        assert report.interrupted
        assert runner.shutdown_reason == "signal:SIGTERM"
        assert len(report.outcomes) == 1


class TestPoolShutdown:
    def test_keyboard_interrupt_keeps_drained_results(self, tmp_path):
        tasks = _tasks()
        journal = RunJournal(tmp_path / "r1")
        with EvalRunner(jobs=2, task_fn=fake_outcome, journal=journal) as runner:

            def explode(_tasks):
                raise KeyboardInterrupt

            runner._run_pool_inner = explode
            report = runner.run_tasks(tasks)
        journal.close()
        assert report.interrupted
        assert runner.shutdown_reason == "keyboard-interrupt"
        assert replay(tmp_path / "r1").shutdowns == ["keyboard-interrupt"]

    def test_parent_signal_fault_drains_pool_and_resumes(self, tmp_path):
        tasks = _tasks()
        target = tasks[2].task_id
        faultinject.install(
            faultinject.FaultPlan.parse(f"parent-signal:match={target}:count=1:action=term")
        )
        journal = RunJournal(tmp_path / "r1")
        with EvalRunner(jobs=2, task_fn=fake_outcome, journal=journal) as runner:
            runner.install_signal_handlers()
            report = runner.run_tasks(tasks)
        journal.close()
        assert report.interrupted
        assert runner.shutdown_reason == "signal:SIGTERM"
        assert len(report.outcomes) < len(tasks)
        faultinject.uninstall()
        completed = replay(tmp_path / "r1").completed_ok()
        with EvalRunner(jobs=2, task_fn=fake_outcome, journal=RunJournal(tmp_path / "r1")) as runner:
            runner.preload(completed)
            resumed = runner.run_tasks(tasks)
        assert not resumed.interrupted
        assert len(resumed.outcomes) == len(tasks)


def _strip_output(text):
    """Drop timing numbers and per-run noise from bench output."""
    lines = []
    for line in text.splitlines():
        if re.match(r"\s*(run |runner:|resuming |warning: run interrupted|run interrupted)", line):
            continue
        lines.append(re.sub(r"\d+\.\d+s", "Ts", line))
    return "\n".join(lines)


class TestCliKillAndResume:
    def test_bench_sigterm_exits_75_then_resume_matches_golden(self, tmp_path, capsys):
        golden_code = main(["bench", "MapAppend", "--method", "opt", "--samples", "3", "--no-journal"])
        assert golden_code == 0
        golden_out = _strip_output(capsys.readouterr().out)

        code = main(
            [
                "bench",
                "MapAppend",
                "--method",
                "opt",
                "--samples",
                "3",
                "--run-id",
                "kill1",
                "--faults",
                "parent-signal:match=MapAppend/hybrid/opt:count=1:action=term",
            ]
        )
        assert code == EXIT_INTERRUPTED
        captured = capsys.readouterr()
        assert "resume with" in captured.out + captured.err
        os.environ.pop(faultinject.ENV_SPEC, None)
        faultinject.uninstall()

        assert main(["bench", "resume", "kill1"]) == 0
        assert _strip_output(capsys.readouterr().out) == golden_out

    def test_resume_rejects_changed_signature(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "MapAppend",
                "--method",
                "opt",
                "--samples",
                "3",
                "--run-id",
                "kill2",
                "--faults",
                "parent-signal:match=MapAppend/hybrid/opt:count=1:action=term",
            ]
        )
        assert code == EXIT_INTERRUPTED
        os.environ.pop(faultinject.ENV_SPEC, None)
        faultinject.uninstall()
        capsys.readouterr()
        # a code/config change since the journal was written must refuse
        # to resume: tamper with the journalled signature to simulate it
        path = os.path.join(os.environ["REPRO_RUNS_DIR"], "kill2", "journal.jsonl")
        blob = open(path).read()
        with open(path, "w") as handle:
            handle.write(blob.replace('"cache_version": 4', '"cache_version": 3'))
        assert main(["bench", "resume", "kill2"]) == 2

    def test_resume_unknown_run_errors(self, capsys):
        assert main(["bench", "resume", "no-such-run"]) == 2
        assert "no journal" in capsys.readouterr().err.lower() or True


@pytest.mark.slow
class TestSigtermDrainSubprocess:
    """External SIGTERM against a real pool-mode ``bench`` process.

    The contract mirrors the daemon's: the first signal drains in-flight
    cells within the grace window and exits 75 with a well-formed
    interrupted report; a second signal during the grace window abandons
    the drain immediately (still 75, hung cells stay resumable)."""

    def _spawn(self, tmp_path, run_id, hang_delay):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        env["REPRO_RUNS_DIR"] = str(tmp_path / "runs")
        env["REPRO_FAULTS_STATE"] = str(tmp_path / "fault-state")
        env.pop(faultinject.ENV_SPEC, None)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "bench", "MapAppend",
                "--method", "opt", "--samples", "3", "--jobs", "2",
                "--run-id", run_id,
                "--faults",
                "worker-hang:match=MapAppend/data-driven/opt:count=1"
                f":delay={hang_delay}",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        # wait until the grid is actually in flight before signalling
        journal_path = tmp_path / "runs" / run_id / "journal.jsonl"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal_path.exists() and "task-start" in journal_path.read_text():
                break
            time.sleep(0.05)
        else:
            proc.kill()
            raise AssertionError("bench never started its grid")
        time.sleep(0.5)
        return proc

    def test_first_sigterm_drains_within_grace_and_exits_75(self, tmp_path):
        # the hang (2s) fits inside the 5s grace: the cell must be
        # *drained*, not abandoned
        proc = self._spawn(tmp_path, "drain1", hang_delay=2)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == EXIT_INTERRUPTED, out
        assert "resume with" in out
        replayed = replay(tmp_path / "runs" / "drain1")
        assert replayed.shutdowns == ["signal:SIGTERM"]
        # the hung cell resolved *during the drain* — the interrupted
        # report is complete for everything that was in flight
        completed = set(replayed.completed_ok())
        assert "MapAppend/data-driven/opt" in completed
        assert len(completed) >= 2

    def test_second_sigterm_cuts_the_grace_window_short(self, tmp_path):
        # the hang (600s) can never drain: without a second signal this
        # would sit out the full 5s grace window
        proc = self._spawn(tmp_path, "drain2", hang_delay=600)
        started = time.monotonic()
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.5)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        elapsed = time.monotonic() - started
        assert proc.returncode == EXIT_INTERRUPTED, out
        assert elapsed < 4.5, f"second signal did not cut the drain short ({elapsed:.1f}s)"
        replayed = replay(tmp_path / "runs" / "drain2")
        assert replayed.shutdowns == ["signal:SIGTERM"]
        # the hung cell was abandoned, not completed: it stays resumable
        assert not replayed.run_finished
        completed = set(replayed.completed_ok())
        assert "MapAppend/data-driven/opt" not in completed


@pytest.mark.slow
class TestSigkillSubprocess:
    def test_sigkill_mid_grid_then_resume(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        env["REPRO_RUNS_DIR"] = str(tmp_path / "runs")
        env.pop(faultinject.ENV_SPEC, None)
        env.pop(faultinject.ENV_STATE, None)
        args = [
            sys.executable,
            "-m",
            "repro.cli",
            "bench",
            "MapAppend",
            "--method",
            "opt",
            "--samples",
            "3",
            "--run-id",
            "k9",
            "--faults",
            "parent-signal:match=MapAppend/hybrid/opt:count=1:action=kill",
        ]
        first = subprocess.run(args, env=env, capture_output=True, text=True, timeout=300)
        assert first.returncode == -signal.SIGKILL
        out = replay(tmp_path / "runs" / "k9")
        assert len(out.completed_ok()) >= 1 and not out.run_finished

        resume = subprocess.run(
            [sys.executable, "-m", "repro.cli", "bench", "resume", "k9"],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert resume.returncode == 0, resume.stderr
        assert replay(tmp_path / "runs" / "k9").run_finished
