"""No-U-Turn sampler tests."""

import numpy as np
import pytest
from dataclasses import replace

from repro.errors import InferenceError
from repro.stats.hmc import HMCConfig
from repro.stats.nuts import nuts_sample, nuts_sample_chains

RNG = np.random.default_rng(11)


def std_normal(x):
    return -0.5 * float(x @ x), -x


def correlated_gaussian(rho=0.95):
    cov = np.array([[1.0, rho], [rho, 1.0]])
    prec = np.linalg.inv(cov)

    def logp(x):
        return -0.5 * float(x @ prec @ x), -(prec @ x)

    return logp, cov


class TestNuts:
    def test_standard_normal_moments(self):
        result = nuts_sample(
            std_normal, np.zeros(3), HMCConfig(n_samples=2500, n_warmup=500), RNG
        )
        assert result.samples.mean(axis=0) == pytest.approx(np.zeros(3), abs=0.1)
        assert result.samples.std(axis=0) == pytest.approx(np.ones(3), abs=0.12)

    def test_correlated_gaussian_covariance(self):
        logp, cov = correlated_gaussian()
        result = nuts_sample(
            logp, np.zeros(2), HMCConfig(n_samples=4000, n_warmup=600), RNG
        )
        est = np.cov(result.samples.T)
        assert est == pytest.approx(cov, abs=0.15)

    def test_rejects_bad_start(self):
        def bad(x):
            return -np.inf, x

        with pytest.raises(InferenceError):
            nuts_sample(bad, np.zeros(1), HMCConfig(n_samples=10), RNG)

    def test_chains_concatenate(self):
        cfg = HMCConfig(n_samples=50, n_warmup=50)
        result = nuts_sample_chains(std_normal, [np.zeros(2), np.ones(2)], cfg, RNG)
        assert result.samples.shape == (100, 2)

    def test_logdensities_recorded(self):
        result = nuts_sample(
            std_normal, np.zeros(1), HMCConfig(n_samples=100, n_warmup=100), RNG
        )
        assert np.all(np.isfinite(result.logdensities))


class TestBayesWCWithNuts:
    def test_nuts_backend_produces_sound_samples(self):
        from repro.config import AnalysisConfig
        from repro.inference import collect_dataset
        from repro.inference.bayeswc import infer_worst_case_samples
        from repro.lang import compile_program, from_python

        src = """
let rec work xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + work tl
let work2 xs = Raml.stat (work xs)
"""
        prog = compile_program(src)
        rng = np.random.default_rng(0)
        inputs = [
            [from_python([int(v) for v in rng.integers(0, 50, n)])]
            for n in range(1, 16)
            for _ in range(2)
        ]
        ds = collect_dataset(prog, "work2", inputs)["work2#1"]
        config = AnalysisConfig(num_posterior_samples=20)
        config = config.with_(sampler=replace(config.sampler, algorithm="nuts"))
        wc = infer_worst_case_samples(ds, config, np.random.default_rng(1))
        maxima = ds.max_costs()
        for key, samples in wc.samples.items():
            assert np.all(samples >= maxima[key] - 1e-9)
