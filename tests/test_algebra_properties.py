"""Hypothesis property tests on the core algebraic structures.

These pin down the identities the type system's soundness rests on:
LinExpr is a module over the rationals, the shift operator telescopes the
binomial potential, and sharing exactly splits potential.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aara.annot import ABase, AList, binomial, potential_of_value, shift, superpose
from repro.lang import ast as A
from repro.lang.values import from_python
from repro.lp import LPProblem, LinExpr, solve_min

scalar = st.floats(-20, 20, allow_nan=False, allow_infinity=False)
small_nonneg = st.floats(0, 10, allow_nan=False)
assignment = st.fixed_dictionaries({"x": scalar, "y": scalar, "z": scalar})


def expr_from(coeffs, const):
    e = LinExpr.constant(const)
    for name, c in coeffs.items():
        e = e + c * LinExpr.var(name)
    return e


exprs = st.builds(
    expr_from,
    st.dictionaries(st.sampled_from(["x", "y", "z"]), scalar, max_size=3),
    scalar,
)


class TestLinExprModuleLaws:
    @given(a=exprs, b=exprs, env=assignment)
    @settings(max_examples=60, deadline=None)
    def test_addition_commutes(self, a, b, env):
        assert (a + b).evaluate(env) == pytest.approx((b + a).evaluate(env))

    @given(a=exprs, b=exprs, c=exprs, env=assignment)
    @settings(max_examples=60, deadline=None)
    def test_addition_associates(self, a, b, c, env):
        assert ((a + b) + c).evaluate(env) == pytest.approx(
            (a + (b + c)).evaluate(env), abs=1e-8
        )

    @given(a=exprs, k=scalar, j=scalar, env=assignment)
    @settings(max_examples=60, deadline=None)
    def test_scalar_distributes(self, a, k, j, env):
        assert ((k + j) * a).evaluate(env) == pytest.approx(
            (k * a + j * a).evaluate(env), abs=1e-6
        )

    @given(a=exprs, env=assignment)
    @settings(max_examples=40, deadline=None)
    def test_negation_is_additive_inverse(self, a, env):
        assert (a + (-a)).evaluate(env) == pytest.approx(0.0, abs=1e-9)

    @given(a=exprs, b=exprs, env=assignment)
    @settings(max_examples=40, deadline=None)
    def test_subtraction_consistent(self, a, b, env):
        assert (a - b).evaluate(env) == pytest.approx(
            a.evaluate(env) - b.evaluate(env), abs=1e-8
        )


coeff_vectors = st.lists(small_nonneg, min_size=1, max_size=4)


class TestPotentialAlgebra:
    @given(coeffs=coeff_vectors, n=st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_shift_telescopes(self, coeffs, n):
        """Φ([v|vs] : L^q) = q1 + Φ(vs : L^{⊳q}) for every degree vector."""
        ann = AList(tuple(LinExpr.constant(c) for c in coeffs), ABase(A.INT))
        shifted = AList(shift(ann.coeffs), ABase(A.INT))
        whole = potential_of_value(from_python([0] * n), ann).const
        tail = potential_of_value(from_python([0] * (n - 1)), shifted).const
        assert whole == pytest.approx(coeffs[0] + tail, rel=1e-9, abs=1e-9)

    @given(coeffs=coeff_vectors, n=st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_potential_is_binomial_sum(self, coeffs, n):
        ann = AList(tuple(LinExpr.constant(c) for c in coeffs), ABase(A.INT))
        expected = sum(c * binomial(n, i + 1) for i, c in enumerate(coeffs))
        assert potential_of_value(from_python([0] * n), ann).const == pytest.approx(expected)

    @given(a=coeff_vectors, n=st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_superpose_is_pointwise_additive_on_potential(self, a, n):
        ann_a = AList(tuple(LinExpr.constant(c) for c in a), ABase(A.INT))
        ann_b = AList(tuple(LinExpr.constant(2 * c) for c in a), ABase(A.INT))
        both = superpose(ann_a, ann_b)
        value = from_python([0] * n)
        assert potential_of_value(value, both).const == pytest.approx(
            potential_of_value(value, ann_a).const + potential_of_value(value, ann_b).const
        )

    @given(total=st.floats(0.5, 10), n=st.integers(1, 15))
    @settings(max_examples=30, deadline=None)
    def test_sharing_conserves_potential(self, total, n):
        from repro.aara.annot import make_template, sharing

        lp = LPProblem()
        ann = make_template(A.TList(A.INT), 1, lp)
        lp.add_eq(next(iter(ann.coefficients())), total)
        a1, a2 = sharing(ann, lp)
        solution = solve_min(lp, next(iter(a1.coefficients())))
        phi_whole = sum(
            c.evaluate(solution.assignment) * binomial(n, i + 1)
            for i, c in enumerate(ann.coeffs)
        )
        phi_parts = sum(
            c.evaluate(solution.assignment) * binomial(n, i + 1)
            for part in (a1, a2)
            for i, c in enumerate(part.coeffs)
        )
        assert phi_whole == pytest.approx(phi_parts, abs=1e-6)
