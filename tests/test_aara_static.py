"""Conventional AARA end-to-end tests: bound inference on canonical programs.

These reproduce the claims of Sections 2 and 4: tight linear and quadratic
bounds for the standard list programs, cost-free resource-polymorphic
recursion for insertion sort, honest failures on opaque builtins and on
recursions AARA cannot bound.
"""

import pytest

from repro.aara import analyze_program, run_conventional, synthetic_list
from repro.aara.bound import psi, synthetic_nested_list
from repro.errors import InfeasibleError, StaticAnalysisError, UnanalyzableError
from repro.lang import compile_program, evaluate, from_python

LENGTH = """
let rec length xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + length tl
"""

APPEND = """
let rec append xs ys =
  match xs with
  | [] -> ys
  | hd :: tl -> let _ = Raml.tick 1.0 in hd :: append tl ys
"""

INSERTION_SORT = """
let rec insert x xs =
  match xs with
  | [] -> [ x ]
  | hd :: tl ->
    let _ = Raml.tick 1.0 in
    if x <= hd then x :: hd :: tl else hd :: insert x tl

let rec insertion_sort xs =
  match xs with
  | [] -> []
  | hd :: tl -> insert hd (insertion_sort tl)
"""

QUICKSORT = """
let rec append xs ys =
  match xs with [] -> ys | hd :: tl -> hd :: append tl ys

let rec partition pivot xs =
  match xs with
  | [] -> ([], [])
  | hd :: tl ->
    let lower, upper = partition pivot tl in
    let _ = Raml.tick 1.0 in
    if hd <= pivot then (hd :: lower, upper) else (lower, hd :: upper)

let rec quicksort xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let lower, upper = partition hd tl in
    let ls = quicksort lower in
    let us = quicksort upper in
    append ls (hd :: us)
"""


def bound_of(src, fname, degree):
    return analyze_program(
        compile_program(src), fname, degree, stat_mode="transparent"
    ).bound


class TestLinearBounds:
    def test_length_is_exactly_n(self):
        bound = bound_of(LENGTH, "length", 1)
        for n in (0, 1, 10, 100):
            assert bound.evaluate([synthetic_list(n)]) == pytest.approx(n, abs=1e-5)

    def test_append_costs_first_argument(self):
        bound = bound_of(APPEND, "append", 1)
        value = bound.evaluate([synthetic_list(7), synthetic_list(100)])
        assert value == pytest.approx(7.0, abs=1e-5)

    def test_constant_cost_function(self):
        src = "let f xs = let _ = Raml.tick 2.5 in xs"
        bound = bound_of(src, "f", 1)
        assert bound.evaluate([synthetic_list(50)]) == pytest.approx(2.5, abs=1e-5)

    def test_branch_maximum(self):
        src = """
let f c xs =
  if c then (let _ = Raml.tick 3.0 in 0) else (let _ = Raml.tick 1.0 in 1)
"""
        bound = bound_of(src, "f", 1)
        assert bound.evaluate([from_python(True), synthetic_list(0)]) == pytest.approx(3.0, abs=1e-5)


class TestPolynomialBounds:
    def test_insertion_sort_tight_quadratic(self):
        """Requires cost-free resource-polymorphic recursion (HH'10)."""
        bound = bound_of(INSERTION_SORT, "insertion_sort", 2)
        assert bound.evaluate([synthetic_list(10)]) == pytest.approx(45.0, abs=1e-4)
        assert bound.evaluate([synthetic_list(100)]) == pytest.approx(4950.0, abs=1e-2)

    def test_quicksort_tight_quadratic(self):
        """The Section 2 example: RaML infers n(n-1)/2."""
        bound = bound_of(QUICKSORT, "quicksort", 2)
        assert bound.evaluate([synthetic_list(10)]) == pytest.approx(45.0, abs=1e-4)

    def test_quadratic_infeasible_at_degree_one(self):
        with pytest.raises((InfeasibleError, StaticAnalysisError)):
            bound_of(INSERTION_SORT, "insertion_sort", 1)

    def test_nested_list_inner_potential(self):
        src = """
let rec inner_len xs = match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in 1 + inner_len t
let rec total xss = match xss with [] -> 0 | h :: t -> inner_len h + total t
"""
        bound = bound_of(src, "total", 1)
        assert bound.evaluate([synthetic_nested_list(4, 20)]) == pytest.approx(20.0, abs=1e-4)


class TestSoundnessAgainstInterpreter:
    @pytest.mark.parametrize(
        "src,fname,args",
        [
            (LENGTH, "length", [[3, 1, 2]]),
            (APPEND, "append", [[1, 2, 3], [9]]),
            (INSERTION_SORT, "insertion_sort", [[5, 4, 3, 2, 1]]),
            (QUICKSORT, "quicksort", [[9, 8, 7, 6, 5, 4]]),
        ],
    )
    def test_bound_dominates_measured_cost(self, src, fname, args):
        prog = compile_program(src)
        degree = 2
        bound = analyze_program(prog, fname, degree, stat_mode="transparent").bound
        values = [from_python(a) for a in args]
        measured = evaluate(prog, fname, values).cost
        assert bound.evaluate(values) >= measured - 1e-6


class TestFailures:
    def test_opaque_builtin_raises(self):
        src = """
let rec member x xs =
  match xs with
  | [] -> false
  | hd :: tl -> let _ = Raml.tick 1.0 in
    if complex_eq hd x then true else member x tl
"""
        with pytest.raises(UnanalyzableError):
            bound_of(src, "member", 1)

    def test_run_conventional_verdicts(self):
        verdict = run_conventional(compile_program(INSERTION_SORT), "insertion_sort")
        assert verdict.status == "bound"
        assert verdict.degree == 2

    def test_run_conventional_cannot_analyze(self):
        src = "let f a b = if complex_leq a b then 1 else 0"
        verdict = run_conventional(compile_program(src), "f")
        assert verdict.status == "cannot-analyze"

    def test_saturation_recursion_infeasible(self):
        src = """
let rec spin xs =
  match xs with
  | [] -> []
  | hd :: tl -> let _ = Raml.tick 1.0 in
    if hd > 0 then spin (hd - 1 :: tl) else tl
"""
        verdict = run_conventional(compile_program(src), "spin", max_degree=2)
        assert verdict.status == "infeasible"

    def test_stat_without_handler_rejected(self):
        src = "let f xs = Raml.stat (g xs)\nlet g xs = xs"
        with pytest.raises(StaticAnalysisError):
            analyze_program(compile_program(src), "f", 1, stat_mode="handler")


class TestSumTypes:
    def test_sum_constant_potential(self):
        src = """
let consume s =
  match s with
  | Left xs -> (match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in h)
  | Right n -> n
"""
        bound = bound_of(src, "consume", 1)
        from repro.lang.values import VInl

        assert bound.evaluate([VInl(from_python([1, 2]))]) >= 1.0 - 1e-6


def test_psi_helper():
    assert psi(4, 1.0, [2.0, 0.5]) == pytest.approx(1.0 + 8.0 + 3.0)
