"""Unit tests for the daemon's admission-control primitives.

All three mechanisms take an injectable clock, so these tests never
sleep: time is a number we move by hand.
"""

import threading

import pytest

from repro.server.admission import (
    BoundedPriorityQueue,
    CircuitBreaker,
    QueueFull,
    TokenBucket,
    TokenBucketTable,
)


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# -- token bucket -----------------------------------------------------------


def test_bucket_allows_burst_then_refuses():
    bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
    assert [bucket.acquire(0.0)[0] for _ in range(3)] == [True, True, True]
    allowed, retry_after = bucket.acquire(0.0)
    assert not allowed
    assert 0 < retry_after <= 1.0


def test_bucket_refills_at_rate():
    bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
    assert bucket.acquire(0.0)[0]
    assert not bucket.acquire(0.0)[0]
    assert bucket.acquire(0.6)[0]  # 0.6s * 2/s = 1.2 tokens


def test_table_isolates_clients():
    clock = Clock()
    table = TokenBucketTable(rate=1.0, burst=1.0, clock=clock)
    assert table.acquire("a")[0]
    assert not table.acquire("a")[0]
    assert table.acquire("b")[0]  # b has its own bucket


def test_table_rate_zero_disables():
    table = TokenBucketTable(rate=0.0, burst=0.0)
    assert all(table.acquire("x")[0] for _ in range(100))


def test_table_bounds_client_count():
    clock = Clock()
    table = TokenBucketTable(rate=1.0, burst=1.0, max_clients=2, clock=clock)
    table.acquire("a"), table.acquire("b"), table.acquire("c")
    assert len(table._buckets) == 2
    # "a" was evicted (LRU), so it gets a fresh bucket — full burst again
    assert table.acquire("a")[0]


# -- bounded priority queue -------------------------------------------------


def test_queue_orders_by_priority_then_fifo():
    queue = BoundedPriorityQueue(capacity=10)
    queue.put("low-1", priority=9)
    queue.put("high", priority=0)
    queue.put("low-2", priority=9)
    assert queue.pop() == "high"
    assert queue.pop() == "low-1"
    assert queue.pop() == "low-2"
    assert queue.pop() is None


def test_queue_sheds_at_capacity_with_retry_after():
    queue = BoundedPriorityQueue(capacity=2)
    queue.put("a")
    queue.put("b")
    with pytest.raises(QueueFull) as info:
        queue.put("c")
    assert 1.0 <= info.value.retry_after <= 60.0
    assert len(queue) == 2  # the shed item never entered


def test_queue_retry_after_tracks_service_rate():
    clock = Clock()
    queue = BoundedPriorityQueue(capacity=4, clock=clock)
    for i in range(4):
        queue.put(i)
    # drain two items 2 seconds apart => observed service time 2s/item
    queue.pop()
    clock.now = 2.0
    queue.pop()
    queue.put("x"), queue.put("y")
    with pytest.raises(QueueFull) as info:
        queue.put("z")
    # 4 queued * 2s/item = 8s backlog estimate
    assert info.value.retry_after == pytest.approx(8.0)


def test_queue_drain_returns_everything_in_priority_order():
    queue = BoundedPriorityQueue(capacity=10)
    queue.put("b", priority=5)
    queue.put("a", priority=1)
    assert queue.drain() == ["a", "b"]
    assert len(queue) == 0


def test_queue_pop_timeout_wakes_on_put():
    queue = BoundedPriorityQueue(capacity=4)
    got = []
    thread = threading.Thread(target=lambda: got.append(queue.pop(timeout=5.0)))
    thread.start()
    queue.put("item")
    thread.join(timeout=5.0)
    assert got == ["item"]


# -- circuit breaker --------------------------------------------------------


def make_breaker(clock, **kw):
    kw.setdefault("latency_budget", 1.0)
    kw.setdefault("window", 4)
    kw.setdefault("threshold", 2)
    kw.setdefault("cooldown", 10.0)
    return CircuitBreaker(clock=clock, **kw)


def test_breaker_stays_closed_under_budget():
    breaker = make_breaker(Clock())
    for _ in range(20):
        breaker.record(0.5, ok=True)
    assert breaker.level() == 0
    assert breaker.degrade("bayespc") == ("bayespc", None)


def test_breaker_trips_on_latency_breaches():
    breaker = make_breaker(Clock())
    breaker.record(5.0, ok=True)
    assert breaker.level() == 0  # one breach < threshold
    breaker.record(5.0, ok=True)
    assert breaker.level() == 1


def test_breaker_trips_on_failures_too():
    breaker = make_breaker(Clock())
    breaker.record(0.1, ok=False)
    breaker.record(0.1, ok=False)
    assert breaker.level() == 1


def test_degradation_ladder():
    clock = Clock()
    breaker = make_breaker(clock)
    for _ in range(2):
        breaker.record(5.0, ok=True)
    assert breaker.level() == 1
    served, reason = breaker.degrade("bayespc")
    assert served == "bayeswc" and "breaker-open" in reason
    assert breaker.degrade("bayeswc") == ("bayeswc", None)
    assert breaker.degrade("opt") == ("opt", None)
    # keep breaching: level 2 falls everything back to the LP-only path
    for _ in range(2):
        breaker.record(5.0, ok=True)
    assert breaker.level() == 2
    assert breaker.degrade("bayespc")[0] == "opt"
    assert breaker.degrade("bayeswc")[0] == "opt"
    assert breaker.degrade("opt") == ("opt", None)


def test_breaker_decays_one_level_per_cooldown():
    clock = Clock()
    breaker = make_breaker(clock, cooldown=10.0)
    for _ in range(4):
        breaker.record(5.0, ok=True)
    assert breaker.level() == 2
    clock.now += 10.0
    assert breaker.level() == 1
    clock.now += 10.0
    assert breaker.level() == 0
    assert breaker.degrade("bayespc") == ("bayespc", None)


def test_breaker_retrips_after_decay():
    clock = Clock()
    breaker = make_breaker(clock)
    for _ in range(2):
        breaker.record(5.0, ok=True)
    clock.now += 20.0
    assert breaker.level() == 0
    for _ in range(2):
        breaker.record(5.0, ok=True)
    assert breaker.level() == 1
    assert breaker.trips == 2


def test_breaker_snapshot_shape():
    breaker = make_breaker(Clock())
    snap = breaker.snapshot()
    assert snap["state"] == "closed"
    breaker.record(9.0, ok=True)
    breaker.record(9.0, ok=True)
    snap = breaker.snapshot()
    assert snap["state"] == "open"
    assert snap["level"] == 1
    assert snap["trips"] == 1
    assert snap["total_breaches"] == 2
