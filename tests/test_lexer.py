"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import Token, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


class TestBasicTokens:
    def test_empty_input_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_integer(self):
        (tok,) = tokenize("42")[:-1]
        assert tok.kind == "int" and tok.text == "42"

    def test_float(self):
        (tok,) = tokenize("0.5")[:-1]
        assert tok.kind == "float" and tok.text == "0.5"

    def test_int_and_float_distinguished(self):
        assert kinds("3 0.5") == ["int", "float"]

    def test_identifier(self):
        (tok,) = tokenize("foo_bar'")[:-1]
        assert tok.kind == "ident" and tok.text == "foo_bar'"

    def test_dotted_identifier(self):
        (tok,) = tokenize("Raml.tick")[:-1]
        assert tok.kind == "ident" and tok.text == "Raml.tick"

    def test_keyword(self):
        (tok,) = tokenize("match")[:-1]
        assert tok.kind == "keyword"

    def test_underscore_is_symbol(self):
        (tok,) = tokenize("_")[:-1]
        assert tok.kind == "symbol" and tok.text == "_"

    def test_underscore_prefixed_identifier(self):
        (tok,) = tokenize("_foo")[:-1]
        assert tok.kind == "ident" and tok.text == "_foo"

    def test_string_literal(self):
        (tok,) = tokenize('"hello"')[:-1]
        assert tok.kind == "string" and tok.text == "hello"

    def test_string_with_escape(self):
        (tok,) = tokenize(r'"a\"b"')[:-1]
        assert tok.text == 'a"b'


class TestSymbols:
    @pytest.mark.parametrize(
        "symbol",
        ["->", "::", "<=", ">=", "<>", "&&", "||", "(", ")", "[", "]", ";", ",", "|", "=", "<", ">", "+", "-", "*", "/"],
    )
    def test_symbol_roundtrip(self, symbol):
        (tok,) = tokenize(symbol)[:-1]
        assert tok.kind == "symbol" and tok.text == symbol

    def test_maximal_munch_arrow(self):
        assert texts("x->y") == ["x", "->", "y"]

    def test_maximal_munch_cons(self):
        assert texts("x::y") == ["x", "::", "y"]

    def test_le_not_lt_eq(self):
        assert texts("a<=b") == ["a", "<=", "b"]


class TestCommentsAndPositions:
    def test_comment_is_skipped(self):
        assert texts("a (* comment *) b") == ["a", "b"]

    def test_nested_comment(self):
        assert texts("a (* x (* y *) z *) b") == ["a", "b"]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a (* b")

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].col == 1
        assert tokens[1].line == 2 and tokens[1].col == 3

    def test_invalid_character_raises_with_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("a\n  ?")
        assert "2:" in str(exc.value)


class TestRealisticInput:
    def test_quicksort_snippet(self):
        src = "let rec partition pivot xs =\n  match xs with\n  | [] -> ([], [])"
        toks = texts(src)
        assert toks[:4] == ["let", "rec", "partition", "pivot"]
        assert "match" in toks and "->" in toks

    def test_tick_annotation(self):
        assert texts("Raml.tick 0.5") == ["Raml.tick", "0.5"]

    def test_negative_handled_as_separate_tokens(self):
        assert texts("-1") == ["-", "1"]
