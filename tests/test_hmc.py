"""HMC and reflective-HMC sampler tests."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.stats.hmc import HMCConfig, hmc_sample, hmc_sample_chains, leapfrog
from repro.stats.polytope import Polytope, chebyshev_center
from repro.stats.reflective_hmc import (
    _DriftEngine,
    _reflective_drift,
    diagonal_preconditioner,
    map_estimate,
    reflective_hmc_sample,
    rescale_problem,
)

RNG = np.random.default_rng(7)


def std_normal(x):
    return -0.5 * float(x @ x), -x


class TestLeapfrog:
    def test_energy_approximately_conserved(self):
        q = np.array([1.0, -0.5])
        p = np.array([0.3, 0.7])
        _logp, grad = std_normal(q)
        q2, p2, logp2, _ = leapfrog(q, p, grad, 0.05, 30, std_normal)
        h0 = -std_normal(q)[0] + 0.5 * p @ p
        h1 = -logp2 + 0.5 * p2 @ p2
        assert abs(h1 - h0) < 1e-3

    def test_reversibility(self):
        q = np.array([0.4])
        p = np.array([1.0])
        _l, g = std_normal(q)
        q2, p2, _l2, g2 = leapfrog(q, p, g, 0.1, 10, std_normal)
        q3, p3, _l3, _g3 = leapfrog(q2, -p2, g2, 0.1, 10, std_normal)
        assert q3 == pytest.approx(q, abs=1e-10)


class TestHMC:
    def test_standard_normal_moments(self):
        result = hmc_sample(std_normal, np.zeros(2), HMCConfig(n_samples=3000, n_warmup=500), RNG)
        assert result.samples.mean(axis=0) == pytest.approx([0, 0], abs=0.1)
        assert result.samples.std(axis=0) == pytest.approx([1, 1], abs=0.12)

    def test_rejects_bad_start(self):
        def bad(x):
            return -np.inf, x

        with pytest.raises(InferenceError):
            hmc_sample(bad, np.zeros(1), HMCConfig(n_samples=10), RNG)

    def test_multichain_concatenates(self):
        cfg = HMCConfig(n_samples=100, n_warmup=50)
        result = hmc_sample_chains(std_normal, [np.zeros(1), np.ones(1)], cfg, RNG)
        assert result.samples.shape == (200, 1)


def box_polytope():
    A = np.vstack([np.eye(2), -np.eye(2)])
    b = np.array([1.0, 1.0, 0.0, 0.0])
    return Polytope(A, b, ["x", "y"])


class TestReflectiveDrift:
    def test_free_flight_without_walls(self):
        poly = box_polytope()
        q, p, refl, ok = _reflective_drift(
            np.array([0.5, 0.5]), np.array([0.1, 0.0]), 1.0, poly
        )
        assert ok and refl == 0
        assert q == pytest.approx([0.6, 0.5])

    def test_single_reflection(self):
        poly = box_polytope()
        q, p, refl, ok = _reflective_drift(
            np.array([0.5, 0.5]), np.array([1.0, 0.0]), 1.0, poly
        )
        assert ok and refl == 1
        assert q == pytest.approx([0.5, 0.5])  # 0.5 to the wall, 0.5 back
        assert p == pytest.approx([-1.0, 0.0])

    def test_drift_stays_inside(self):
        poly = box_polytope()
        rng = np.random.default_rng(3)
        engine = _DriftEngine(poly)
        q = np.array([0.3, 0.7])
        for _ in range(50):
            p = rng.normal(size=2)
            q, p, _refl, ok = engine.drift(q, p, 0.9)
            assert ok
            assert poly.contains(q, tol=1e-9)

    def test_corner_reflection_budget(self):
        # momentum aimed into a corner still terminates
        poly = box_polytope()
        q, p, refl, ok = _reflective_drift(
            np.array([0.999, 0.999]), np.array([5.0, 5.0]), 10.0, poly
        )
        assert refl >= 2


@pytest.mark.slow
class TestReflectiveHMC:
    def test_uniform_box_moments(self):
        poly = box_polytope()
        center, _ = chebyshev_center(poly)

        def flat(x):
            return 0.0, np.zeros(2)

        result = reflective_hmc_sample(
            flat, poly, center, HMCConfig(n_samples=4000, n_warmup=300, n_leapfrog=8, initial_step_size=0.3), RNG
        )
        assert result.samples.mean(axis=0) == pytest.approx([0.5, 0.5], abs=0.05)
        assert result.samples.var(axis=0) == pytest.approx([1 / 12, 1 / 12], abs=0.02)

    def test_truncated_gaussian_mass_inside(self):
        poly = box_polytope()
        center, _ = chebyshev_center(poly)
        result = reflective_hmc_sample(
            std_normal, poly, center, HMCConfig(n_samples=2000, n_warmup=300), RNG
        )
        assert np.all(result.samples >= -1e-9)
        assert np.all(result.samples <= 1 + 1e-9)

    def test_requires_interior_start(self):
        poly = box_polytope()
        with pytest.raises(InferenceError):
            reflective_hmc_sample(
                std_normal, poly, np.array([2.0, 2.0]), HMCConfig(n_samples=10), RNG
            )


class TestWarmStartHelpers:
    def test_map_estimate_improves_density(self):
        poly = box_polytope()

        def target(x):
            diff = x - np.array([0.7, 0.2])
            return -10 * float(diff @ diff), -20 * diff

        start = np.array([0.1, 0.9])
        mode = map_estimate(target, poly, start)
        assert target(mode)[0] > target(start)[0]
        assert mode == pytest.approx([0.7, 0.2], abs=0.02)

    def test_map_estimate_respects_walls(self):
        poly = box_polytope()

        def target(x):
            # mode outside the box: optimizer must stop at the wall
            diff = x - np.array([2.0, 0.5])
            return -float(diff @ diff), -2 * diff

        mode = map_estimate(target, poly, np.array([0.5, 0.5]))
        assert poly.contains(mode, tol=1e-9)
        assert mode[0] > 0.9

    def test_preconditioner_scales_by_curvature(self):
        poly = Polytope(np.zeros((0, 2)), np.zeros(0), ["a", "b"])

        def target(x):
            # curvature 100 along dim 0, curvature 1 along dim 1
            return -50 * x[0] ** 2 - 0.5 * x[1] ** 2, np.array([-100 * x[0], -x[1]])

        scales = diagonal_preconditioner(target, np.array([0.3, 0.3]), poly)
        assert scales[0] == pytest.approx(0.1, rel=0.05)
        assert scales[1] == pytest.approx(1.0, rel=0.05)

    def test_rescale_problem_roundtrip(self):
        poly = box_polytope()
        scales = np.array([2.0, 0.5])
        scaled = rescale_problem(std_normal, poly, scales)
        z = np.array([0.4, 0.6])
        y = scaled.from_z(z)
        assert scaled.to_z(y) == pytest.approx(z)
        logp_direct, _ = std_normal(z)
        logp_scaled, _ = scaled.logdensity_and_grad(y)
        assert logp_scaled == pytest.approx(logp_direct)
