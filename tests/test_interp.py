"""Cost-semantics interpreter tests (Section 3.2–3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvalError
from repro.lang import compile_program, evaluate, from_python, run_on_inputs
from repro.lang.interp import _trunc_div, _trunc_mod


def run(src, fname, *args):
    prog = compile_program(src)
    return evaluate(prog, fname, [from_python(a) for a in args])


class TestBasics:
    def test_arithmetic(self):
        assert run("let f x = x * 3 + 2", "f", 5).value == 17

    def test_comparison_chain(self):
        assert run("let f x = if x <= 3 then 1 else 0", "f", 3).value == 1

    def test_boolean_short_circuit(self):
        # (1/0) is never evaluated thanks to && short-circuiting
        src = "let f x = if x > 0 && (10 / x) > 1 then 1 else 0"
        assert run(src, "f", 0).value == 0

    def test_list_construction(self):
        result = run("let f x = x :: [ 1; 2 ]", "f", 0)
        assert str(result.value) == "[0; 1; 2]"

    def test_tuple_projection(self):
        src = "let f p = match p with (a, b) -> a + b"
        assert run(src, "f", (3, 4)).value == 7

    def test_sum_dispatch(self):
        src = "let f x = match x with | Left a -> a | Right b -> 0 - b\nlet g y = f (Left y)"
        assert run(src, "g", 5).value == 5

    def test_unit(self):
        assert str(run("let f x = ()", "f", 1).value) == "()"


class TestCostAccounting:
    def test_tick_accumulates(self):
        src = "let f x = let _ = Raml.tick 1.5 in let _ = Raml.tick 2.0 in x"
        assert run(src, "f", 0).cost == 3.5

    def test_negative_tick(self):
        src = "let f x = let _ = Raml.tick 2.0 in let _ = Raml.tick (-0.5) in x"
        assert run(src, "f", 0).cost == 1.5

    def test_cost_zero_without_ticks(self):
        assert run("let f x = x + 1", "f", 1).cost == 0.0

    def test_cost_in_untaken_branch_not_counted(self):
        src = "let f x = if x > 0 then x else (let _ = Raml.tick 9.0 in x)"
        assert run(src, "f", 5).cost == 0.0

    def test_recursive_cost(self):
        src = """
let rec count xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + count tl
"""
        assert run(src, "count", [1, 2, 3, 4, 5]).cost == 5.0

    @given(st.lists(st.integers(0, 100), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_cost_equals_length(self, xs):
        src = """
let rec count xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + count tl
"""
        result = run(src, "count", xs)
        assert result.cost == float(len(xs))
        assert result.value == len(xs)


class TestDivMod:
    @pytest.mark.parametrize(
        "a,b,q,r",
        [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1), (6, 3, 2, 0)],
    )
    def test_ocaml_truncating_semantics(self, a, b, q, r):
        assert _trunc_div(a, b) == q
        assert _trunc_mod(a, b) == r

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            run("let f x = x / 0", "f", 1)

    def test_mod_by_zero(self):
        with pytest.raises(EvalError):
            run("let f x = x mod 0", "f", 1)

    @given(st.integers(-1000, 1000), st.integers(-50, 50).filter(lambda b: b != 0))
    @settings(max_examples=50, deadline=None)
    def test_div_mod_identity(self, a, b):
        assert _trunc_div(a, b) * b + _trunc_mod(a, b) == a


class TestStatRecords:
    SRC = """
let helper xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in hd

let rec walk xs =
  match xs with
  | [] -> 0
  | hd :: tl -> Raml.stat (helper xs) + walk tl
"""

    def test_one_record_per_dynamic_evaluation(self):
        prog = compile_program(self.SRC)
        result = evaluate(prog, "walk", [from_python([5, 6, 7])])
        assert len(result.stat_records) == 3

    def test_record_costs(self):
        prog = compile_program(self.SRC)
        result = evaluate(prog, "walk", [from_python([5, 6])])
        assert [r.cost for r in result.stat_records] == [1.0, 1.0]

    def test_record_env_restricted_to_free_vars(self):
        prog = compile_program(self.SRC)
        result = evaluate(prog, "walk", [from_python([5])])
        record = result.stat_records[0]
        assert len(record.env) == 1  # just the xs share

    def test_collect_stats_disabled(self):
        prog = compile_program(self.SRC)
        result = evaluate(prog, "walk", [from_python([5, 6])], collect_stats=False)
        assert result.stat_records == []
        assert result.cost == 2.0

    def test_nested_stat_cost_includes_inner(self):
        src = """
let inner x = let _ = Raml.tick 1.0 in x
let outer x = Raml.stat (inner x) + (let _ = Raml.tick 0.5 in 0)
let top x = Raml.stat (outer x)
"""
        prog = compile_program(src)
        result = evaluate(prog, "top", [from_python(1)])
        by_label = {r.label: r.cost for r in result.stat_records}
        assert by_label["outer#1"] == 1.0
        assert by_label["top#1"] == 1.5


class TestErrorsAndEdges:
    def test_error_expr_raises(self):
        with pytest.raises(EvalError, match="Invalid_input"):
            run("let f xs = match xs with [] -> raise Invalid_input | h :: t -> h", "f", [])

    def test_unknown_function(self):
        prog = compile_program("let f x = x")
        with pytest.raises(EvalError):
            evaluate(prog, "nope", [from_python(1)])

    def test_wrong_arity(self):
        prog = compile_program("let f x = x")
        with pytest.raises(EvalError):
            evaluate(prog, "f", [from_python(1), from_python(2)])

    def test_run_on_inputs_sweeps(self):
        prog = compile_program(
            "let rec len xs = match xs with [] -> 0 | h :: t -> let _ = Raml.tick 1.0 in 1 + len t"
        )
        results = run_on_inputs(prog, "len", [[from_python([1])], [from_python([1, 2])]])
        assert [r.cost for r in results] == [1.0, 2.0]

    def test_builtin_complex_leq_behaves_as_leq(self):
        src = "let f a b = if complex_leq a b then 1 else 0"
        assert run(src, "f", 2, 3).value == 1
        assert run(src, "f", 4, 3).value == 0

    def test_deep_recursion_does_not_overflow(self):
        src = """
let rec len xs = match xs with [] -> 0 | h :: t -> 1 + len t
"""
        assert run(src, "len", list(range(3000))).value == 3000
