"""Polytope utilities: H-representation, facial reduction, interior points."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.lp import LPProblem
from repro.stats.polytope import (
    Polytope,
    chebyshev_center,
    find_implied_equalities,
    low_norm_interior_point,
    max_min_slack,
    polytope_from_lp,
)


def unit_box(n=2):
    A = np.vstack([np.eye(n), -np.eye(n)])
    b = np.concatenate([np.ones(n), np.zeros(n)])
    return Polytope(A, b, [f"x{i}" for i in range(n)])


class TestPolytopeBasics:
    def test_contains(self):
        box = unit_box()
        assert box.contains(np.array([0.5, 0.5]))
        assert not box.contains(np.array([1.5, 0.5]))

    def test_slack(self):
        box = unit_box()
        slack = box.slack(np.array([0.25, 0.75]))
        assert slack == pytest.approx([0.75, 0.25, 0.25, 0.75])

    def test_chebyshev_center_of_box(self):
        center, radius = chebyshev_center(unit_box())
        assert center == pytest.approx([0.5, 0.5])
        assert radius == pytest.approx(0.5)

    def test_chebyshev_empty_interior_raises(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([0.0, 0.0])  # x = 0 plane: no interior
        with pytest.raises(InferenceError):
            chebyshev_center(Polytope(A, b, ["x", "y"]))

    def test_max_min_slack_absolute(self):
        t, point = max_min_slack(unit_box(), cap=10.0, absolute=True)
        assert t == pytest.approx(0.5)
        assert unit_box().contains(point)


class TestFromLP:
    def test_simple_inequalities(self):
        lp = LPProblem()
        x = lp.fresh("x")
        lp.add_le(x, 5)
        reduced = polytope_from_lp(lp)
        assert reduced.polytope.dim == 1
        assert reduced.assignment(np.array([2.0]))  # maps back

    def test_equalities_are_eliminated(self):
        lp = LPProblem()
        x, y = lp.fresh("x"), lp.fresh("y")
        lp.add_eq(x + y, 4)
        lp.add_le(x, 3)
        reduced = polytope_from_lp(lp)
        assert reduced.polytope.dim == 1
        # any point in the reduced space satisfies the equality exactly
        xvals = reduced.assignment(np.array([0.1]))
        assert xvals["x.0"] + xvals["y.1"] == pytest.approx(4.0)

    def test_implied_equalities_promoted(self):
        lp = LPProblem()
        x, y = lp.fresh("x"), lp.fresh("y")
        # x <= 0 with x >= 0 implicit: x is an implied equality
        lp.add_le(x, 0)
        lp.add_le(y, 2)
        reduced = polytope_from_lp(lp)
        assert reduced.polytope.dim == 1  # only y remains free
        xvals = reduced.assignment(np.zeros(1))
        assert xvals["x.0"] == pytest.approx(0.0, abs=1e-9)

    def test_chained_implied_equalities(self):
        lp = LPProblem()
        x, y, z = lp.fresh("x"), lp.fresh("y"), lp.fresh("z")
        lp.add_le(x, 0)  # x = 0
        lp.add_le(y, x)  # y <= x = 0 => y = 0
        lp.add_le(z, 1)
        reduced = polytope_from_lp(lp)
        assert reduced.polytope.dim == 1

    def test_inconsistent_equalities_raise(self):
        lp = LPProblem()
        x = lp.fresh("x")
        lp.add_eq(x, 1)
        lp.add_eq(x, 2)
        with pytest.raises(InferenceError):
            polytope_from_lp(lp)

    def test_zero_dimensional(self):
        lp = LPProblem()
        x = lp.fresh("x")
        lp.add_eq(x, 3)
        reduced = polytope_from_lp(lp)
        assert reduced.polytope.dim == 0
        assert reduced.assignment(np.zeros(0))["x.0"] == pytest.approx(3.0)


class TestFindImpliedEqualities:
    def test_none_in_full_dimensional(self):
        box = unit_box()
        implied, interior = find_implied_equalities(box.A, box.b)
        assert implied == []
        assert interior is not None and box.contains(interior)

    def test_detects_pinned_direction(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([0.0, 0.0, 1.0, 0.0])
        implied, _ = find_implied_equalities(A, b)
        assert set(implied) == {0, 1}


class TestInteriorPoints:
    def test_low_norm_interior_is_interior_and_small(self):
        lp = LPProblem()
        x, y = lp.fresh("x"), lp.fresh("y")
        lp.add_ge(x + y, 2)
        reduced = polytope_from_lp(lp)
        z = low_norm_interior_point(reduced)
        assert reduced.polytope.contains(z, tol=-1e-12)
        values = reduced.assignment(z)
        assert values["x.0"] + values["y.1"] <= 3.0  # near the constraint
