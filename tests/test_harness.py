"""Evaluation-harness tests on a fast benchmark subset."""

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.evalharness import (
    BenchmarkRun,
    conventional_label,
    fig6_curves,
    mapappend_surface,
    posterior_curve,
    render_curve,
    render_gap_table,
    render_table1,
    run_benchmark,
    scatter_from_dataset,
)
from repro.evalharness.gaps import benchmark_gaps, soundness_by_gap
from repro.suite import get_benchmark


@pytest.fixture(scope="module")
def round_run():
    """Round is data-driven-only and cheap: ideal for harness tests."""
    spec = get_benchmark("Round")
    config = AnalysisConfig(num_posterior_samples=8, seed=0)
    return run_benchmark(spec, config, seed=0, methods=("opt", "bayeswc"))


class TestRunBenchmark:
    def test_results_present(self, round_run):
        assert ("data-driven", "opt") in round_run.results
        assert ("data-driven", "bayeswc") in round_run.results

    def test_no_hybrid_for_round(self, round_run):
        assert not any(mode == "hybrid" for mode, _ in round_run.results)

    def test_conventional_verdict(self, round_run):
        assert round_run.conventional_label == "Cannot Analyze"

    def test_soundness_accessor(self, round_run):
        value = round_run.soundness("data-driven", "opt")
        assert 0.0 <= value <= 1.0
        assert round_run.soundness("hybrid", "opt") is None

    def test_runtime_accessor(self, round_run):
        assert round_run.runtime("data-driven", "bayeswc") > 0


class TestRendering:
    def test_table1_renders(self, round_run):
        text = render_table1([round_run])
        assert "Round" in text and "Cannot Analyze" in text
        assert "BayesWC" in text

    def test_gap_table_renders(self, round_run):
        text = render_gap_table(round_run)
        assert "Round" in text
        assert "∅" in text  # hybrid column empty

    def test_gap_cells(self, round_run):
        cells = benchmark_gaps(round_run)
        assert all(5 in c.percentiles and 95 in c.percentiles for c in cells)
        assert {c.size for c in cells} == {10, 100, 1000}

    def test_soundness_by_gap(self, round_run):
        value = soundness_by_gap(round_run, 100, "data-driven", "bayeswc")
        assert 0.0 <= value <= 1.0
        assert soundness_by_gap(round_run, 100, "hybrid", "opt") is None


class TestCurves:
    def test_posterior_curve(self, round_run):
        series = posterior_curve(round_run, "data-driven", "bayeswc", [10, 50, 100])
        assert len(series.median) == 3
        assert series.band_low[0] <= series.median[0] <= series.band_high[0]
        assert series.scatter  # runtime data attached

    def test_missing_combination_returns_none(self, round_run):
        assert posterior_curve(round_run, "hybrid", "opt", [10]) is None

    def test_fig6_bundle(self, round_run):
        series_list = fig6_curves(round_run, [10, 100])
        assert len(series_list) == 2  # opt + bayeswc, data-driven only

    def test_render_curve_text(self, round_run):
        series = posterior_curve(round_run, "data-driven", "opt", [10, 100])
        text = render_curve(series)
        assert "truth" in text and "median" in text

    def test_scatter_from_dataset(self, round_run):
        points = scatter_from_dataset(round_run.datasets["data-driven"])
        assert all(len(p) == 2 for p in points)


class TestConventionalLabel:
    def test_wrong_degree_label(self):
        from repro.aara.analyze import ConventionalVerdict

        spec = get_benchmark("InsertionSort2")
        verdict = ConventionalVerdict("bound", degree=2)
        assert conventional_label(spec, verdict) == "Wrong Degree"

    def test_right_degree_label(self):
        from repro.aara.analyze import ConventionalVerdict

        spec = get_benchmark("QuickSort")  # truth degree 2
        verdict = ConventionalVerdict("bound", degree=2)
        assert conventional_label(spec, verdict).startswith("Bound")

    def test_infeasible_maps_to_cannot_analyze(self):
        from repro.aara.analyze import ConventionalVerdict

        spec = get_benchmark("BubbleSort")
        verdict = ConventionalVerdict("infeasible")
        assert conventional_label(spec, verdict) == "Cannot Analyze"
