"""BayesPC density tests (Section 5.3): gradients, support, censoring."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference.bayespc import BayesPCDensity, LikelihoodRow
from repro.inference.hyperparams import BayesPCHyperparams
from repro.lp import LinExpr


def make_density(theta0=1.0, theta1=10.0, gamma0=1.0, floor=0.1):
    x, y = LinExpr.var("x"), LinExpr.var("y")
    rows = [
        LikelihoodRow(expr=2 * x + y, cost=1.0, count=1),
        LikelihoodRow(expr=x + 3 * y + 0.5, cost=2.0, count=2),
    ]
    hyper = BayesPCHyperparams(gamma0=gamma0, theta0=theta0, theta1=theta1)
    return BayesPCDensity(["x", "y"], rows, hyper, site_vars=["x"], truncation_floor=floor)


class TestDensity:
    def test_finite_in_interior(self):
        d = make_density()
        logp, grad = d.logdensity_and_grad(np.array([2.0, 2.0]))
        assert np.isfinite(logp) and np.all(np.isfinite(grad))

    def test_negative_gap_has_zero_density(self):
        d = make_density()
        # c' = 2x + y = 0.5 < cost 1.0 → eps < 0
        logp, _ = d.logdensity_and_grad(np.array([0.25, 0.0]))
        assert logp == -np.inf

    def test_zero_gap_allowed_for_shape_one(self):
        d = make_density(theta0=1.0)
        # first row: c' = 2*0 + 1 = 1.0 == cost → eps = 0, finite for k=1
        logp, _ = d.logdensity_and_grad(np.array([0.0, 1.0]))
        assert np.isfinite(logp)

    def test_zero_gap_rejected_for_shape_above_one(self):
        d = make_density(theta0=1.5)
        logp, _ = d.logdensity_and_grad(np.array([0.0, 1.0]))
        assert logp == -np.inf

    @pytest.mark.parametrize("theta0", [1.0, 1.5])
    def test_gradient_matches_finite_differences(self, theta0):
        d = make_density(theta0=theta0)
        point = np.array([1.5, 2.5])
        logp, grad = d.logdensity_and_grad(point)
        for i in range(2):
            h = 1e-6
            pp, pm = point.copy(), point.copy()
            pp[i] += h
            pm[i] -= h
            fd = (d.logdensity_and_grad(pp)[0] - d.logdensity_and_grad(pm)[0]) / (2 * h)
            assert grad[i] == pytest.approx(fd, rel=1e-4, abs=1e-4)

    def test_site_vars_get_tight_prior(self):
        d = make_density(gamma0=1.0)
        # x is a site var (scale 1), y nuisance (scale 20)
        assert d.prior_inv_var[d.index["x"]] == pytest.approx(1.0)
        assert d.prior_inv_var[d.index["y"]] == pytest.approx(1.0 / 400.0)

    def test_truncation_floor_caps_singularity(self):
        # a zero-cost observation lets c' approach 0, where the truncation
        # normalizer 1/F(c') diverges; the floor censors it
        hyper = BayesPCHyperparams(gamma0=1.0, theta0=1.0, theta1=10.0)
        rows = [LikelihoodRow(expr=LinExpr.var("x"), cost=0.0, count=1)]

        def density(floor):
            return BayesPCDensity(["x"], rows, hyper, site_vars=["x"], truncation_floor=floor)

        point = np.array([1e-4])
        lp_tight, g_tight = density(1e-12).logdensity_and_grad(point)
        lp_capped, g_capped = density(0.5).logdensity_and_grad(point)
        assert np.isfinite(lp_capped)
        assert np.abs(g_capped).max() < np.abs(g_tight).max()
        # the capped density is much smaller near the singularity
        assert lp_tight > lp_capped

    def test_unknown_variable_in_row_rejected(self):
        hyper = BayesPCHyperparams(gamma0=1.0, theta0=1.0, theta1=1.0)
        rows = [LikelihoodRow(expr=LinExpr.var("ghost"), cost=0.0)]
        with pytest.raises(InferenceError):
            BayesPCDensity(["x"], rows, hyper, site_vars=[])

    def test_worst_case_costs(self):
        d = make_density()
        cp = d.worst_case_costs(np.array([1.0, 1.0]))
        assert cp == pytest.approx([3.0, 4.5])

    def test_counts_scale_likelihood(self):
        single = make_density()
        x = np.array([2.0, 2.0])
        logp1, _ = single.logdensity_and_grad(x)
        # doubling all counts doubles the likelihood part
        hyper = BayesPCHyperparams(gamma0=1.0, theta0=1.0, theta1=10.0)
        doubled = BayesPCDensity(
            ["x", "y"],
            [
                LikelihoodRow(expr=2 * LinExpr.var("x") + LinExpr.var("y"), cost=1.0, count=2),
                LikelihoodRow(
                    expr=LinExpr.var("x") + 3 * LinExpr.var("y") + 0.5, cost=2.0, count=4
                ),
            ],
            hyper,
            site_vars=["x"],
        )
        logp2, _ = doubled.logdensity_and_grad(x)
        prior = -0.5 * float(np.sum(single.prior_inv_var * x * x))
        assert logp2 - prior == pytest.approx(2 * (logp1 - prior))
