"""Cross-engine equivalence: ``batched`` ≡ ``perchain``, bit for bit.

The batched sampler engine (:mod:`repro.stats.batched`) stacks all
chains of a cell into one lockstep ``(n_chains, dim)`` batch; the
perchain engine runs the very same kernels one chain at a time as
batches of one.  The contract is *bit-identity*: chain ``i`` must emit
exactly the same draws, log-densities, accept statistics and rng
bit-stream under either engine — batching is a pure execution-layout
choice, never a numerical one.

These tests sweep all three samplers (HMC, NUTS, reflective HMC) over
dims × chain counts × seeds, including the fused inference densities
(BayesWC's :class:`SurvivalDensity`, BayesPC's
:class:`ScaledReducedDensity`), mid-chain checkpoint/restore under each
engine, self-healing restarts under each engine, and the
engine-in-fingerprint rule that forbids silently resuming a chain under
a different engine than the one that started it.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro import checkpoint
from repro.config import BayesWCConfig
from repro.errors import SamplerDivergenceError
from repro.inference.bayespc import BayesPCDensity, LikelihoodRow
from repro.inference.bayeswc import build_survival_model
from repro.inference.dataset import Observation, StatDataset
from repro.inference.hyperparams import BayesPCHyperparams
from repro.lp import LinExpr
from repro.stats import BATCHED, ENV_SAMPLER, PERCHAIN
from repro.stats.hmc import HMCConfig, hmc_sample_chains
from repro.stats.nuts import nuts_sample_chains
from repro.stats.polytope import AffineMap, Polytope, ReducedPolytope
from repro.stats.reflective_hmc import reflective_hmc_chains

ENGINES = (BATCHED, PERCHAIN)

CFG = HMCConfig(n_samples=25, n_warmup=15, n_leapfrog=6)


def under(engine, fn):
    """Run ``fn`` with the sampler engine pinned to ``engine``."""
    previous = os.environ.get(ENV_SAMPLER)
    os.environ[ENV_SAMPLER] = engine
    try:
        return fn()
    finally:
        if previous is None:
            os.environ.pop(ENV_SAMPLER, None)
        else:
            os.environ[ENV_SAMPLER] = previous


def both_engines(fn):
    """``fn(engine)`` under each engine; returns ``(batched, perchain)``."""
    return tuple(under(engine, lambda: fn(engine)) for engine in ENGINES)


def gaussian(dim):
    """Anisotropic unit-mode Gaussian as a plain scalar closure."""
    inv_var = 1.0 / (1.0 + 0.3 * np.arange(dim)) ** 2

    def logdensity_and_grad(x):
        return float(-0.5 * np.sum(inv_var * x * x)), -inv_var * x

    return logdensity_and_grad


def starts_for(dim, n_chains, seed):
    rng = np.random.default_rng(seed + 1000)
    return [rng.normal(size=dim) * 0.1 for _ in range(n_chains)]


def box_polytope(dim, half_width=1.0):
    A = np.vstack([np.eye(dim), -np.eye(dim)])
    b = np.full(2 * dim, float(half_width))
    return Polytope(A, b, [f"x{i}" for i in range(dim)])


def assert_hmc_equal(a, b):
    assert np.array_equal(a.samples, b.samples)
    assert np.array_equal(a.logdensities, b.logdensities)
    assert a.accept_rate == b.accept_rate
    assert a.step_size == b.step_size
    assert a.divergences == b.divergences
    assert a.retries == b.retries
    assert a.leapfrog_steps == b.leapfrog_steps
    assert a.chain_diagnostics == b.chain_diagnostics


def assert_reflective_equal(a, b):
    assert np.array_equal(a.samples, b.samples)
    assert a.accept_rate == b.accept_rate
    assert a.step_size == b.step_size
    assert a.n_reflections == b.n_reflections
    assert a.divergences == b.divergences
    assert a.retries == b.retries
    assert a.chain_diagnostics == b.chain_diagnostics


SWEEP = [(1, 1, 0), (2, 3, 1), (4, 2, 7), (3, 4, 42)]


class TestBitIdenticalSweep:
    """The headline property: engines agree chain-for-chain, bit-for-bit."""

    @pytest.mark.parametrize("dim,n_chains,seed", SWEEP)
    def test_hmc(self, dim, n_chains, seed):
        fn = gaussian(dim)
        starts = starts_for(dim, n_chains, seed)
        batched, perchain = both_engines(
            lambda _: hmc_sample_chains(fn, starts, CFG, np.random.default_rng(seed))
        )
        assert batched.samples.shape == (n_chains * CFG.n_samples, dim)
        assert_hmc_equal(batched, perchain)

    @pytest.mark.parametrize("dim,n_chains,seed", SWEEP)
    def test_reflective(self, dim, n_chains, seed):
        fn = gaussian(dim)
        polytope = box_polytope(dim)
        starts = starts_for(dim, n_chains, seed)
        batched, perchain = both_engines(
            lambda _: reflective_hmc_chains(
                fn, polytope, starts, CFG, np.random.default_rng(seed)
            )
        )
        assert batched.samples.shape == (n_chains * CFG.n_samples, dim)
        assert_reflective_equal(batched, perchain)

    # NUTS builds a data-dependent recursive tree, so both engines run the
    # identical sequential per-chain loop; the sweep still pins down that
    # the chains adapter (stream spawning, aggregation) is engine-neutral.
    @pytest.mark.parametrize("dim,n_chains,seed", [(2, 2, 3), (3, 3, 11)])
    def test_nuts(self, dim, n_chains, seed):
        fn = gaussian(dim)
        starts = starts_for(dim, n_chains, seed)
        batched, perchain = both_engines(
            lambda _: nuts_sample_chains(fn, starts, CFG, np.random.default_rng(seed))
        )
        assert batched.samples.shape == (n_chains * CFG.n_samples, dim)
        assert_hmc_equal(batched, perchain)

    @pytest.mark.parametrize("dim,n_chains,seed", [(2, 3, 5)])
    def test_single_chain_equals_its_row_in_the_batch(self, dim, n_chains, seed):
        """Chain i of an n-chain run ≡ the same chain run on its own.

        This is the batch-size-stability invariant stated directly: the
        lockstep batch must not couple chains numerically.
        """
        fn = gaussian(dim)
        starts = starts_for(dim, n_chains, seed)
        full = under(
            BATCHED,
            lambda: hmc_sample_chains(fn, starts, CFG, np.random.default_rng(seed)),
        )
        # chain i's stream is spawn i of the parent generator, so running
        # all chains but comparing per-chain blocks against one another's
        # engines is covered above; here we check block extraction shape
        per_chain = np.split(full.samples, n_chains, axis=0)
        solo_streams = under(
            PERCHAIN,
            lambda: hmc_sample_chains(fn, starts, CFG, np.random.default_rng(seed)),
        )
        for i, block in enumerate(np.split(solo_streams.samples, n_chains, axis=0)):
            assert np.array_equal(per_chain[i], block)


class TestNativeInferenceDensities:
    """The fused batched densities used by the real pipeline agree too."""

    def survival_density(self):
        observations = [
            Observation(env=(("n", i),), value=i, cost=0.7 * i + 0.5)
            for i in range(1, 9)
        ]
        model = build_survival_model(StatDataset("t", observations), BayesWCConfig())
        return model.batched_density(), model.dim

    def test_hmc_on_survival_density(self):
        density, dim = self.survival_density()
        starts = [np.full(dim, 0.5), np.full(dim, 0.8), np.full(dim, 1.1)]
        batched, perchain = both_engines(
            lambda _: hmc_sample_chains(density, starts, CFG, np.random.default_rng(2))
        )
        assert_hmc_equal(batched, perchain)
        assert np.all(np.isfinite(batched.samples))

    def scaled_reduced_density(self):
        names = ["a", "b"]
        density = BayesPCDensity(
            names,
            [
                LikelihoodRow(LinExpr({"a": 2.0, "b": 1.0}, 1.0), 0.5),
                LikelihoodRow(LinExpr({"a": 1.0}, 2.0), 1.0),
            ],
            BayesPCHyperparams(gamma0=5.0, theta0=1.0, theta1=1.0),
            site_vars=names,
        )
        # identity reduction: y-space == x-space, unit scales on one axis
        affine = AffineMap(np.zeros(2), np.eye(2))
        polytope = Polytope(
            np.vstack([np.eye(2), -np.eye(2)]),
            np.array([1.0, 1.0, 0.0, 0.0]),
            names,
        )
        reduced = ReducedPolytope(polytope, affine, names)
        fused = density.scaled_reduced_density(reduced, np.array([1.0, 1.0]))
        return fused, polytope

    def test_reflective_on_scaled_reduced_density(self):
        fused, polytope = self.scaled_reduced_density()
        starts = [np.array([0.4, 0.4]), np.array([0.6, 0.55])]
        batched, perchain = both_engines(
            lambda _: reflective_hmc_chains(
                fused, polytope, starts, CFG, np.random.default_rng(9)
            )
        )
        assert_reflective_equal(batched, perchain)
        # every draw stays inside the truncation polytope
        for result in (batched, perchain):
            assert np.all(result.samples >= -1e-9)
            assert np.all(result.samples <= 1.0 + 1e-9)


class Interrupter:
    """Log-density wrapper that dies after ``budget`` (row-)evaluations."""

    def __init__(self, fn, budget):
        self.fn = fn
        self.budget = budget
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        if self.calls > self.budget:
            raise KeyboardInterrupt
        return self.fn(x)


@pytest.mark.parametrize("engine", ENGINES)
class TestCheckpointEquivalence:
    """Mid-chain kill + resume is bit-identical under each engine."""

    DIM = 2
    N_CHAINS = 2
    SEED = 5

    def run_chains(self, sampler, fn, rng):
        starts = starts_for(self.DIM, self.N_CHAINS, self.SEED)
        if sampler == "hmc":
            return hmc_sample_chains(fn, starts, CFG, rng)
        if sampler == "nuts":
            return nuts_sample_chains(fn, starts, CFG, rng)
        return reflective_hmc_chains(fn, box_polytope(self.DIM), starts, CFG, rng)

    @pytest.mark.parametrize("sampler", ["hmc", "nuts", "reflective"])
    def test_midchain_resume_is_bit_identical(self, engine, sampler, tmp_path):
        fn = gaussian(self.DIM)
        golden = under(
            engine,
            lambda: self.run_chains(sampler, fn, np.random.default_rng(self.SEED)),
        )
        checkpoint.enable(tmp_path / "ckpt", interval=5)
        with checkpoint.task_scope("cell/equiv"):
            interrupter = Interrupter(fn, 220)
            with pytest.raises(KeyboardInterrupt):
                under(
                    engine,
                    lambda: self.run_chains(
                        sampler, interrupter, np.random.default_rng(self.SEED)
                    ),
                )
            # the kill must land mid-run, past the first snapshot
            assert interrupter.calls > interrupter.budget
            resumed = under(
                engine,
                lambda: self.run_chains(sampler, fn, np.random.default_rng(self.SEED)),
            )
        assert np.array_equal(resumed.samples, golden.samples)
        assert resumed.accept_rate == golden.accept_rate
        assert resumed.chain_diagnostics == golden.chain_diagnostics


class TestEngineFingerprint:
    """No silent engine mixing across a resume boundary."""

    def test_engine_label_joins_the_fingerprint(self, tmp_path):
        checkpoint.enable(tmp_path / "ckpt", interval=5)
        with checkpoint.task_scope("cell"):
            a = checkpoint.chain_cursor("k", CFG, np.zeros(2), engine=BATCHED)
            b = checkpoint.chain_cursor("k", CFG, np.zeros(2), engine=PERCHAIN)
            legacy = checkpoint.chain_cursor("k", CFG, np.zeros(2))
        assert a.fingerprint["engine"] == BATCHED
        assert b.fingerprint["engine"] == PERCHAIN
        assert a.fingerprint != b.fingerprint
        # distinct fingerprints live in distinct snapshot files
        assert len({a.path, b.path, legacy.path}) == 3
        assert "engine" not in legacy.fingerprint

    def test_done_chain_is_not_replayed_by_the_other_engine(self, tmp_path):
        fn = gaussian(2)
        starts = starts_for(2, 2, 5)
        checkpoint.enable(tmp_path / "ckpt", interval=5)
        with checkpoint.task_scope("cell"):
            under(
                BATCHED,
                lambda: hmc_sample_chains(fn, starts, CFG, np.random.default_rng(5)),
            )

            calls = [0]

            def counting(x):
                calls[0] += 1
                return fn(x)

            # same engine: done chains replay without a single evaluation
            under(
                BATCHED,
                lambda: hmc_sample_chains(
                    counting, starts, CFG, np.random.default_rng(5)
                ),
            )
            assert calls[0] == 0
            # other engine: the fingerprint differs, so the chain re-runs
            under(
                PERCHAIN,
                lambda: hmc_sample_chains(
                    counting, starts, CFG, np.random.default_rng(5)
                ),
            )
            assert calls[0] > 0


def hard_ball(radius):
    """Gaussian truncated to a ball: proposals outside diverge (logp −∞)."""

    def logdensity_and_grad(x):
        if float(x @ x) > radius * radius:
            return -np.inf, np.zeros_like(x)
        return -0.5 * float(x @ x), -x

    return logdensity_and_grad


class TestHealingEquivalence:
    """Self-healing restarts fire — and heal — identically under both engines."""

    def test_restarted_chains_are_bit_identical(self):
        # a tight ball plus a large initial step makes early post-warmup
        # proposals overshoot the support, accumulating divergences past
        # the zero-tolerance threshold; healing halves the step until the
        # chain stays inside.  Both engines must follow the identical
        # restart schedule and emit identical draws.
        fn = hard_ball(1.5)
        cfg = dataclasses.replace(
            CFG, initial_step_size=0.8, divergence_tolerance=0.0, max_restarts=3
        )
        starts = [np.array([0.3, -0.2]), np.array([-0.4, 0.1]), np.array([0.2, 0.2])]
        batched, perchain = both_engines(
            lambda _: hmc_sample_chains(fn, starts, cfg, np.random.default_rng(14))
        )
        assert_hmc_equal(batched, perchain)
        # the healing path must actually have been exercised
        assert any(d["retries"] > 0 for d in batched.chain_diagnostics)

    def test_zero_density_start_raises_identically(self):
        fn = hard_ball(1.0)
        cfg = dataclasses.replace(CFG, max_restarts=1)
        starts = [np.array([5.0, 5.0])]  # far outside the support
        messages = []
        for engine in ENGINES:
            with pytest.raises(SamplerDivergenceError) as excinfo:
                under(
                    engine,
                    lambda: hmc_sample_chains(
                        fn, starts, cfg, np.random.default_rng(0)
                    ),
                )
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_reflective_healing_is_bit_identical(self):
        # a narrow valley inside the box with zero divergence tolerance:
        # attempt 0's adapted step diverges, the halved restarts settle
        def valley(x):
            v = float(x[0] * x[0] / 0.02 + x[1] * x[1])
            if v > 40.0:
                return -np.inf, np.zeros_like(x)
            return -0.5 * v, -np.array([x[0] / 0.02, x[1]])

        cfg = dataclasses.replace(
            CFG, initial_step_size=0.9, divergence_tolerance=0.0, max_restarts=3
        )
        polytope = box_polytope(2)
        starts = [np.array([0.05, 0.1]), np.array([-0.03, -0.2])]
        batched, perchain = both_engines(
            lambda _: reflective_hmc_chains(
                valley, polytope, starts, cfg, np.random.default_rng(21)
            )
        )
        assert_reflective_equal(batched, perchain)
