"""Configuration and CLI tests."""

import pytest

from repro.cli import _parse_sizes, build_parser, main
from repro.config import AnalysisConfig, BayesPCConfig, BayesWCConfig, DEFAULT_CONFIG


class TestConfig:
    def test_defaults(self):
        config = AnalysisConfig()
        assert config.degree == 1
        assert config.objective == "sum"
        assert config.bayeswc.noise == "gumbel"
        assert config.bayeswc.gamma0 == 5.0  # Appendix B.1
        assert config.bayespc.gamma0 is None  # empirical Bayes
        assert config.bayespc.theta0 == 1.0

    def test_with_override(self):
        config = DEFAULT_CONFIG.with_(degree=2, num_posterior_samples=7)
        assert config.degree == 2
        assert config.num_posterior_samples == 7
        assert DEFAULT_CONFIG.degree == 1  # frozen original unchanged

    def test_frozen(self):
        with pytest.raises(Exception):
            AnalysisConfig().degree = 3

    def test_benchmark_spec_config_theta0(self):
        from repro.suite import get_benchmark

        spec = get_benchmark("MapAppend")  # theta0=1.25, theta0_hybrid=1.0
        dd = spec.config(DEFAULT_CONFIG, hybrid=False)
        hy = spec.config(DEFAULT_CONFIG, hybrid=True)
        assert dd.bayespc.theta0 == 1.25
        assert hy.bayespc.theta0 == 1.0
        assert dd.degree == spec.degree


class TestCLI:
    def test_parse_sizes(self):
        assert _parse_sizes("5") == [5]
        assert _parse_sizes("1:4") == [1, 2, 3, 4]
        assert _parse_sizes("2:10:4") == [2, 6, 10]

    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["analyze", "prog.ml", "--entry", "f"])
        assert args.command == "analyze" and args.method == "opt"

    def test_static_command(self, tmp_path):
        src = tmp_path / "p.ml"
        src.write_text(
            "let rec len xs = match xs with [] -> 0 | h :: t -> "
            "let _ = Raml.tick 1.0 in 1 + len t\n"
        )
        assert main(["static", str(src), "--entry", "len"]) == 0

    def test_static_command_failure_exit_code(self, tmp_path):
        src = tmp_path / "p.ml"
        src.write_text("let f a b = if complex_leq a b then 1 else 0\n")
        assert main(["static", str(src), "--entry", "f"]) == 1

    def test_analyze_command(self, tmp_path, capsys):
        src = tmp_path / "p.ml"
        src.write_text(
            "let rec len xs = match xs with [] -> 0 | h :: t -> "
            "let _ = Raml.tick 1.0 in 1 + len t\n"
            "let len2 xs = Raml.stat (len xs)\n"
        )
        code = main(
            [
                "analyze",
                str(src),
                "--entry",
                "len2",
                "--method",
                "opt",
                "--sizes",
                "2:20:2",
                "--samples",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bound[0]" in out

    def test_error_handling(self, tmp_path, capsys):
        src = tmp_path / "bad.ml"
        src.write_text("let f = ")
        assert main(["static", str(src), "--entry", "f"]) == 2
        assert "error" in capsys.readouterr().err
