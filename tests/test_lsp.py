"""LSP server: framing, scripted edit sessions, inlay hints."""

import io
import json

import pytest

from repro.analysis import lint_source
from repro.analysis.incremental import ArtifactStore, IncrementalEngine
from repro.analysis.lsp import LspServer, read_message, write_message

CLEAN = """let rec length xs =
  match xs with
  | [] -> 0
  | _hd :: tl -> let _ = Raml.tick 1.0 in 1 + length tl
"""

SPIN = CLEAN + "\nlet rec spin xs = let _ = Raml.tick 1.0 in spin xs\n"

URI = "file:///prog.ml"


def _session(messages, engine=None, entry=None):
    """Run a scripted message list through a server; return its output."""
    inbuf = io.BytesIO()
    for msg in messages:
        write_message(inbuf, msg)
    inbuf.seek(0)
    outbuf = io.BytesIO()
    server = LspServer(inbuf, outbuf, engine=engine, entry=entry)
    rc = server.serve_forever()
    outbuf.seek(0)
    out = []
    while True:
        msg = read_message(outbuf)
        if msg is None:
            break
        out.append(msg)
    return rc, out


def _req(method, params=None, id=None):
    msg = {"jsonrpc": "2.0", "method": method}
    if id is not None:
        msg["id"] = id
    if params is not None:
        msg["params"] = params
    return msg


def _open(text, version=1):
    return _req(
        "textDocument/didOpen",
        {
            "textDocument": {
                "uri": URI,
                "languageId": "resource-ml",
                "version": version,
                "text": text,
            }
        },
    )


def _change(text, version):
    return _req(
        "textDocument/didChange",
        {
            "textDocument": {"uri": URI, "version": version},
            "contentChanges": [{"text": text}],
        },
    )


def _diags(out):
    return [
        m["params"]["diagnostics"]
        for m in out
        if m.get("method") == "textDocument/publishDiagnostics"
    ]


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def test_framing_roundtrip():
    buf = io.BytesIO()
    write_message(buf, {"jsonrpc": "2.0", "id": 1, "method": "x"})
    write_message(buf, {"jsonrpc": "2.0", "id": 2, "method": "y"})
    buf.seek(0)
    assert read_message(buf)["id"] == 1
    assert read_message(buf)["id"] == 2
    assert read_message(buf) is None  # EOF


def test_framing_extra_headers_ignored():
    body = json.dumps({"jsonrpc": "2.0", "id": 7, "method": "z"}).encode()
    raw = (
        b"Content-Type: application/vscode-jsonrpc; charset=utf-8\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
    )
    assert read_message(io.BytesIO(raw))["id"] == 7


def test_framing_missing_length_is_protocol_error():
    with pytest.raises(ValueError):
        read_message(io.BytesIO(b"Content-Type: x\r\n\r\n{}"))


# ---------------------------------------------------------------------------
# Scripted sessions
# ---------------------------------------------------------------------------


def test_initialize_advertises_capabilities():
    rc, out = _session([_req("initialize", {}, id=1), _req("exit")])
    reply = out[0]
    caps = reply["result"]["capabilities"]
    assert caps["textDocumentSync"] == 1
    assert caps["inlayHintProvider"] is True
    assert reply["result"]["serverInfo"]["name"] == "hybrid-aara-lsp"


def test_open_change_revert_diagnostic_lifecycle():
    rc, out = _session(
        [
            _req("initialize", {}, id=1),
            _req("initialized", {}),
            _open(CLEAN),
            _change(SPIN, 2),
            _change(CLEAN, 3),
            _req("shutdown", {}, id=2),
            _req("exit"),
        ]
    )
    assert rc == 0
    published = _diags(out)
    assert len(published) == 3
    assert published[0] == []  # clean open
    # the didChange introduced exactly the R042 the linter reports, with
    # the linter's exact (0-based, end-exclusive) span
    expected = [d for d in lint_source(SPIN, path=URI).diagnostics if d.code == "R042"]
    assert len(expected) == 1
    span = expected[0].span
    r042 = [d for d in published[1] if d["code"] == "R042"]
    assert len(r042) == 1
    assert r042[0]["range"] == {
        "start": {"line": span.line - 1, "character": span.col - 1},
        "end": {"line": span.line - 1, "character": span.col - 1 + span.length},
    }
    assert r042[0]["severity"] == 1  # LSP Error
    assert r042[0]["source"] == "hybrid-aara"
    assert published[2] == []  # revert cleared it


def test_inlay_hints_carry_bounds(tmp_path):
    engine = IncrementalEngine(ArtifactStore(tmp_path / "store"))
    rc, out = _session(
        [
            _req("initialize", {}, id=1),
            _open(CLEAN),
            _req(
                "textDocument/inlayHint",
                {
                    "textDocument": {"uri": URI},
                    "range": {
                        "start": {"line": 0, "character": 0},
                        "end": {"line": 99, "character": 0},
                    },
                },
                id=2,
            ),
            _req("exit"),
        ],
        engine=engine,
    )
    hints = [m for m in out if m.get("id") == 2][0]["result"]
    assert len(hints) == 1
    assert hints[0]["label"] == ": 1*n1"
    # anchored just after the function name on its definition line
    assert hints[0]["position"]["line"] == 0
    assert hints[0]["position"]["character"] == 8 + len("length")


def test_inlay_hints_respect_range():
    rc, out = _session(
        [
            _open(CLEAN),
            _req(
                "textDocument/inlayHint",
                {
                    "textDocument": {"uri": URI},
                    "range": {
                        "start": {"line": 50, "character": 0},
                        "end": {"line": 99, "character": 0},
                    },
                },
                id=2,
            ),
            _req("exit"),
        ]
    )
    assert [m for m in out if m.get("id") == 2][0]["result"] == []


def test_did_close_clears_diagnostics():
    rc, out = _session(
        [
            _open(SPIN),
            _req("textDocument/didClose", {"textDocument": {"uri": URI}}),
            _req("exit"),
        ]
    )
    published = _diags(out)
    assert len(published) == 2
    assert published[0] != []
    assert published[1] == []


def test_unknown_request_gets_method_not_found():
    rc, out = _session([_req("workspace/symbol", {}, id=5), _req("exit")])
    reply = [m for m in out if m.get("id") == 5][0]
    assert reply["error"]["code"] == -32601


def test_exit_without_shutdown_is_nonzero():
    rc, _ = _session([_req("initialize", {}, id=1), _req("exit")])
    assert rc == 1
    rc, _ = _session([_req("initialize", {}, id=1)])  # EOF, no exit
    assert rc == 1


def test_parse_error_document_publishes_single_diagnostic():
    rc, out = _session([_open("let f x = ("), _req("exit")])
    published = _diags(out)
    assert len(published[0]) == 1
    assert published[0][0]["code"] in ("R001", "R002")


def test_session_artifacts_warm_across_server_instances(tmp_path):
    store_dir = tmp_path / "store"
    engine = IncrementalEngine(ArtifactStore(store_dir))
    _session([_open(CLEAN), _req("exit")], engine=engine)
    engine2 = IncrementalEngine(ArtifactStore(store_dir))
    server_in = io.BytesIO()
    write_message(server_in, _open(CLEAN))
    write_message(server_in, _req("exit"))
    server_in.seek(0)
    server = LspServer(server_in, io.BytesIO(), engine=engine2)
    server.serve_forever()
    result = server.results[URI]
    assert result.recomputed == 0
    assert result.reused > 0
