"""Determinism of the task-graph evaluation runner.

The paper's evaluation must be reproducible: the same ``(root_seed,
task)`` has to yield the *same posterior* no matter whether it ran
in-process, on a worker pool, or out of a warm on-disk cache.  The
runner guarantees this by deriving every per-task seed from
``(root_seed, benchmark, mode, method)`` with SHA-256 instead of
Python's per-process-salted ``hash()``.
"""

import pytest

from repro.config import AnalysisConfig
from repro.evalharness import (
    METHODS,
    MODES,
    derive_seed,
    expand_grid,
    input_seed,
    method_seed,
    run_benchmark,
)
from repro.inference.serialize import result_to_json
from repro.suite import all_benchmarks, get_benchmark

CONFIG = AnalysisConfig(num_posterior_samples=6, seed=0)
METHODS_FAST = ("opt", "bayeswc")


def _comparable(result):
    """Result JSON minus wall-clock time (the only nondeterministic field)."""
    data = result_to_json(result)
    data.pop("runtime_seconds")
    return data


@pytest.fixture(scope="module")
def serial_run():
    return run_benchmark(
        get_benchmark("Round"), CONFIG, seed=0, methods=METHODS_FAST, jobs=1
    )


class TestSeedDerivation:
    def test_derive_seed_is_stable(self):
        # fixed expectation: a changed derivation silently invalidates
        # every golden result, so pin it
        assert derive_seed(0, "Round", "inputs") == derive_seed(0, "Round", "inputs")
        assert derive_seed(0, "a", "b") != derive_seed(0, "ab", "")
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_grid_tasks_get_distinct_seeds(self):
        seeds = set()
        for spec in all_benchmarks():
            for mode in MODES:
                for method in METHODS:
                    seeds.add(method_seed(0, spec.name, mode, method))
        # 10 benchmarks x 2 modes x 3 methods, all distinct
        assert len(seeds) == len(all_benchmarks()) * len(MODES) * len(METHODS)

    def test_input_seed_differs_from_method_seeds(self):
        assert input_seed(0, "Round") != method_seed(0, "Round", "data-driven", "opt")

    def test_expand_grid_skips_missing_hybrid(self):
        spec = get_benchmark("Round")  # data-driven only
        tasks = expand_grid([spec], CONFIG, seed=0)
        assert all(t.mode != "hybrid" for t in tasks)
        kinds = [t.kind for t in tasks]
        assert kinds.count("conventional") == 1
        assert kinds.count("analysis") == len(METHODS)


class TestExecutionEquivalence:
    def test_jobs1_rerun_is_bit_identical(self, serial_run):
        again = run_benchmark(
            get_benchmark("Round"), CONFIG, seed=0, methods=METHODS_FAST, jobs=1
        )
        for key, result in serial_run.results.items():
            assert _comparable(result) == _comparable(again.results[key]), key

    def test_jobs4_matches_jobs1(self, serial_run):
        pooled = run_benchmark(
            get_benchmark("Round"), CONFIG, seed=0, methods=METHODS_FAST, jobs=4
        )
        assert set(pooled.results) == set(serial_run.results)
        for key, result in serial_run.results.items():
            assert _comparable(result) == _comparable(pooled.results[key]), key

    def test_warm_cache_matches_jobs1(self, serial_run, tmp_path):
        cold = run_benchmark(
            get_benchmark("Round"),
            CONFIG,
            seed=0,
            methods=METHODS_FAST,
            cache_dir=tmp_path,
        )
        warm = run_benchmark(
            get_benchmark("Round"),
            CONFIG,
            seed=0,
            methods=METHODS_FAST,
            cache_dir=tmp_path,
        )
        for key, result in serial_run.results.items():
            assert _comparable(result) == _comparable(cold.results[key]), key
            assert _comparable(result) == _comparable(warm.results[key]), key

    def test_different_seed_changes_posterior(self, serial_run):
        other = run_benchmark(
            get_benchmark("Round"), CONFIG, seed=7, methods=("bayeswc",), jobs=1
        )
        key = ("data-driven", "bayeswc")
        assert _comparable(other.results[key]) != _comparable(serial_run.results[key])

    def test_hybrid_task_determinism_across_backends(self):
        # Concat exercises the hybrid path (stat inside a surrounding
        # conventionally-typed program)
        spec = get_benchmark("Concat")
        a = run_benchmark(spec, CONFIG, seed=0, methods=("opt",), jobs=1)
        b = run_benchmark(spec, CONFIG, seed=0, methods=("opt",), jobs=2)
        for key in a.results:
            assert _comparable(a.results[key]) == _comparable(b.results[key]), key
