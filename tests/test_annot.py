"""Resource-annotated types: potential functions, shift, sharing, subtyping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aara.annot import (
    ABase,
    AList,
    AProd,
    binomial,
    coeffs_by_degree,
    instantiate,
    make_template,
    potential_of_env,
    potential_of_value,
    sharing,
    shift,
    superpose,
    waive,
    zero_annotation,
)
from repro.errors import StaticAnalysisError
from repro.lang import ast as A
from repro.lang.values import from_python
from repro.lp import LPProblem, LinExpr, solve_min


def const_list_ann(*coeffs, elem=None):
    return AList(tuple(LinExpr.constant(c) for c in coeffs), elem or ABase(A.INT))


class TestPotential:
    def test_base_types_have_zero_potential(self):
        assert potential_of_value(from_python(5), ABase(A.INT)).const == 0.0

    def test_linear_list_potential(self):
        ann = const_list_ann(2.0)
        assert potential_of_value(from_python([1, 2, 3]), ann).const == 6.0

    def test_quadratic_binomial_potential(self):
        ann = const_list_ann(0.0, 1.0)
        # C(4,2) = 6
        assert potential_of_value(from_python([0] * 4), ann).const == 6.0

    def test_nested_list_inner_potential(self):
        inner = const_list_ann(1.0)
        ann = AList((LinExpr.constant(0.5),), inner)
        value = from_python([[1, 2], [3]])
        # outer: 0.5*2; inner: 1*(2+1)
        assert potential_of_value(value, ann).const == pytest.approx(4.0)

    def test_tuple_potential_sums(self):
        ann = AProd((const_list_ann(1.0), const_list_ann(2.0)))
        value = from_python(([1], [1, 1]))
        assert potential_of_value(value, ann).const == pytest.approx(5.0)

    def test_mismatched_shape_raises(self):
        with pytest.raises(StaticAnalysisError):
            potential_of_value(from_python(5), const_list_ann(1.0))

    def test_env_potential(self):
        env = {"x": from_python([1, 2]), "y": from_python([3])}
        ctx = {"x": const_list_ann(1.0), "y": const_list_ann(3.0)}
        assert potential_of_env(env, ctx).const == pytest.approx(5.0)

    @given(n=st.integers(0, 60), q1=st.floats(0, 5), q2=st.floats(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_potential_matches_binomial_formula(self, n, q1, q2):
        ann = const_list_ann(q1, q2)
        expected = q1 * binomial(n, 1) + q2 * binomial(n, 2)
        got = potential_of_value(from_python([0] * n), ann).const
        assert got == pytest.approx(expected)


class TestShift:
    def test_shift_definition(self):
        coeffs = tuple(LinExpr.constant(c) for c in (1.0, 2.0, 3.0))
        shifted = shift(coeffs)
        assert [c.const for c in shifted] == [3.0, 5.0, 3.0]

    def test_shift_empty(self):
        assert shift(()) == ()

    @given(n=st.integers(1, 40), q1=st.floats(0, 3), q2=st.floats(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_shift_telescoping_identity(self, n, q1, q2):
        """Φ(v::vs : L^q) = q1 + Φ(vs : L^{⊳q}) — the paper's Eq. 4.2."""
        ann = const_list_ann(q1, q2)
        shifted_ann = AList(shift(ann.coeffs), ann.elem)
        whole = potential_of_value(from_python([0] * n), ann).const
        tail = potential_of_value(from_python([0] * (n - 1)), shifted_ann).const
        assert whole == pytest.approx(q1 + tail)


class TestTemplatesAndRelations:
    def test_template_has_fresh_coeffs(self):
        lp = LPProblem()
        ann = make_template(A.TList(A.TList(A.INT)), 2, lp)
        assert len(list(ann.coefficients())) == 4

    def test_zero_annotation(self):
        ann = zero_annotation(A.TList(A.INT), 2)
        assert all(c.const == 0 and c.is_constant() for c in ann.coefficients())

    def test_superpose_adds(self):
        a = const_list_ann(1.0, 2.0)
        b = const_list_ann(3.0, 4.0)
        s = superpose(a, b)
        assert [c.const for c in s.coeffs] == [4.0, 6.0]

    def test_superpose_shape_mismatch(self):
        with pytest.raises(StaticAnalysisError):
            superpose(const_list_ann(1.0), ABase(A.INT))

    def test_sharing_splits_potential(self):
        lp = LPProblem()
        ann = make_template(A.TList(A.INT), 1, lp, hint="orig")
        a1, a2 = sharing(ann, lp)
        # pin the original coefficient and minimize one part: the other
        # must take the remainder
        orig = next(iter(ann.coefficients()))
        lp.add_eq(orig, 5.0)
        part1 = next(iter(a1.coefficients()))
        sol = solve_min(lp, part1)
        assert sol.value(part1) + sol.value(next(iter(a2.coefficients()))) == pytest.approx(5.0)

    def test_waive_allows_discard_only(self):
        lp = LPProblem()
        frm = make_template(A.TList(A.INT), 1, lp)
        to = make_template(A.TList(A.INT), 1, lp)
        waive(frm, to, lp)
        frm_c = next(iter(frm.coefficients()))
        to_c = next(iter(to.coefficients()))
        lp.add_eq(frm_c, 2.0)
        # maximizing `to` is capped by `frm`
        lp.add_ge(to_c, 2.0)  # forces equality: feasible
        solve_min(lp, LinExpr())
        lp2 = LPProblem()
        frm2 = make_template(A.TList(A.INT), 1, lp2)
        to2 = make_template(A.TList(A.INT), 1, lp2)
        waive(frm2, to2, lp2)
        lp2.add_eq(next(iter(frm2.coefficients())), 2.0)
        lp2.add_ge(next(iter(to2.coefficients())), 3.0)  # more than available
        from repro.errors import InfeasibleError

        with pytest.raises(InfeasibleError):
            solve_min(lp2, LinExpr())

    def test_instantiate_substitutes(self):
        lp = LPProblem()
        ann = make_template(A.TList(A.INT), 1, lp, hint="k")
        name = next(iter(ann.coefficients())).variables()[0]
        concrete = instantiate(ann, {name: 7.0})
        assert next(iter(concrete.coefficients())).const == 7.0

    def test_coeffs_by_degree_nested(self):
        lp = LPProblem()
        ann = make_template(A.TList(A.TList(A.INT)), 2, lp)
        degrees = sorted(d for d, _ in coeffs_by_degree(ann))
        # outer degrees 1,2 and inner degrees 2,3 (nested one level)
        assert degrees == [1, 2, 2, 3]


class TestBinomial:
    @pytest.mark.parametrize("n,k,expected", [(5, 2, 10), (0, 1, 0), (3, 0, 1), (2, 5, 0)])
    def test_values(self, n, k, expected):
        assert binomial(n, k) == expected

    def test_negative(self):
        assert binomial(-1, 1) == 0
