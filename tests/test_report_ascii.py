"""Tests for the markdown report and ASCII plotting harness pieces."""

import pytest

from repro.config import AnalysisConfig
from repro.evalharness import (
    PAPER_CONVENTIONAL,
    PAPER_GAPS,
    PAPER_TABLE1,
    gaps_markdown,
    markdown_report,
    posterior_curve,
    render_ascii_curve,
    render_panels,
    run_benchmark,
    table1_markdown,
)
from repro.evalharness.report import _agreement
from repro.suite import benchmark_names, get_benchmark


@pytest.fixture(scope="module")
def round_run():
    spec = get_benchmark("Round")
    config = AnalysisConfig(num_posterior_samples=6, seed=0)
    return run_benchmark(spec, config, seed=0, methods=("opt", "bayeswc"))


class TestPaperReference:
    def test_all_benchmarks_covered(self):
        assert set(PAPER_TABLE1) == set(benchmark_names())
        assert set(PAPER_CONVENTIONAL) == set(benchmark_names())

    def test_methods_per_benchmark(self):
        for rows in PAPER_TABLE1.values():
            assert set(rows) == {"opt", "bayeswc", "bayespc"}

    def test_hybrid_none_matches_suite(self):
        for name, rows in PAPER_TABLE1.items():
            spec = get_benchmark(name)
            hybrid_missing = rows["opt"][1] is None
            assert hybrid_missing == (spec.hybrid_source is None)

    def test_opt_always_unsound_in_paper(self):
        for rows in PAPER_TABLE1.values():
            assert rows["opt"][0] == 0.0

    def test_gap_reference_shapes(self):
        for per_size in PAPER_GAPS.values():
            for per_method in per_size.values():
                for dd, hy in per_method.values():
                    if dd is not None:
                        assert len(dd) == 3 and dd[0] <= dd[1] <= dd[2]
                    if hy is not None:
                        assert len(hy) == 3


class TestAgreement:
    def test_same_regime(self):
        assert _agreement(0.0, 2.0) == "✓"
        assert _agreement(96.0, 100.0) == "✓"

    def test_both_missing(self):
        assert _agreement(None, None) == "—"

    def test_one_missing(self):
        assert _agreement(None, 50.0) == "✗"

    def test_disagreement(self):
        assert _agreement(98.0, 0.0) == "✗"

    def test_close_mixed(self):
        assert _agreement(40.0, 70.0) == "≈"


class TestMarkdown:
    def test_table1_markdown(self, round_run):
        text = table1_markdown([round_run])
        assert "| Round |" in text
        assert "Cannot Analyze / Cannot Analyze" in text

    def test_gaps_markdown(self, round_run):
        text = gaps_markdown(round_run)
        assert "Round" in text and "| 1000 |" in text

    def test_full_report(self, round_run):
        text = markdown_report([round_run], samples=6, seed=0)
        assert "## Table 1" in text
        assert "M = 6" in text


class TestAsciiPlot:
    def test_renders_grid_with_markers(self, round_run):
        series = posterior_curve(round_run, "data-driven", "bayeswc", [10, 50, 100, 150])
        art = render_ascii_curve(series, width=40, height=10)
        assert "T" in art or "#" in art
        assert "m" in art or "#" in art
        assert art.count("\n") >= 12  # header + borders + rows + legend

    def test_log_scale(self, round_run):
        series = posterior_curve(round_run, "data-driven", "opt", [10, 100])
        art = render_ascii_curve(series, width=30, height=8, log_y=True)
        assert "(log)" in art

    def test_panels(self, round_run):
        series = posterior_curve(round_run, "data-driven", "opt", [10, 100])
        text = render_panels([("panel A", series), ("panel B", series)])
        assert text.count("=== panel") == 2

    def test_grid_dimensions(self, round_run):
        series = posterior_curve(round_run, "data-driven", "opt", [10, 100])
        art = render_ascii_curve(series, width=25, height=7)
        rows = [line for line in art.splitlines() if line.startswith("|")]
        assert len(rows) == 7
        assert all(len(row) == 27 for row in rows)
