"""Content-addressed result cache + retry policy of the eval runner."""

import dataclasses
import json

import pytest

from repro.config import AnalysisConfig
from repro.evalharness import EvalRunner, EvalTask, ResultCache, execute_task, expand_grid
from repro.suite import get_benchmark
from repro.suite.registry import _REGISTRY

CONFIG = AnalysisConfig(num_posterior_samples=4, seed=0)


def _tasks(name="Round", methods=("opt",), config=CONFIG):
    return expand_grid([get_benchmark(name)], config, seed=0, methods=methods)


def _analysis_task(name="Concat", method="opt", config=CONFIG) -> EvalTask:
    return EvalTask(
        kind="analysis",
        benchmark=name,
        root_seed=0,
        config=config,
        mode="data-driven",
        method=method,
    )


class _CountingTaskFn:
    """In-process stand-in for execute_task that counts invocations."""

    def __init__(self):
        self.calls = 0

    def __call__(self, task):
        self.calls += 1
        return execute_task(task)


class TestCacheHitsAndMisses:
    def test_second_run_hits_cache_and_recomputes_nothing(self, tmp_path):
        counter = _CountingTaskFn()
        with EvalRunner(cache_dir=tmp_path, task_fn=counter) as runner:
            first = runner.run_tasks(_tasks())
            cold_calls = counter.calls
            assert cold_calls == len(first.outcomes) > 0
            assert all(not o["metrics"]["cache_hit"] for o in first.outcomes)

            second = runner.run_tasks(_tasks())
            assert counter.calls == cold_calls  # nothing recomputed
            assert all(o["metrics"]["cache_hit"] for o in second.outcomes)
            summary = second.metrics_json()["summary"]
            assert summary["cache_hits"] == len(second.outcomes)
            assert summary["retries"] == 0  # hits ran nothing: no retries
        # cached outcomes carry the same payload
        for a, b in zip(first.outcomes, second.outcomes):
            assert a["result"] == b["result"] and a["verdict"] == b["verdict"]

    def test_miss_on_changed_program_source(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        task = _analysis_task()
        key_before = cache.key(task)
        spec = get_benchmark("Concat")
        edited = dataclasses.replace(
            spec, data_driven_source=spec.data_driven_source + "\n"
        )
        monkeypatch.setitem(_REGISTRY, "Concat", edited)
        assert cache.key(task) != key_before

    def test_miss_on_changed_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = cache.key(_analysis_task(config=CONFIG))
        b = cache.key(_analysis_task(config=CONFIG.with_(num_posterior_samples=5)))
        assert a != b

    def test_miss_on_changed_degree(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        task = _analysis_task()
        key_before = cache.key(task)
        spec = get_benchmark("Concat")
        monkeypatch.setitem(
            _REGISTRY, "Concat", dataclasses.replace(spec, degree=spec.degree + 1)
        )
        assert cache.key(task) != key_before

    def test_miss_on_changed_seed(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = _analysis_task()
        assert cache.key(task) != cache.key(dataclasses.replace(task, root_seed=1))

    def test_execution_knobs_do_not_change_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = cache.key(_analysis_task(config=CONFIG))
        b = cache.key(_analysis_task(config=CONFIG.with_(jobs=8, cache_dir="/x")))
        assert a == b


class TestCacheRobustness:
    def test_corrupted_entry_is_deleted_and_recomputed(self, tmp_path):
        counter = _CountingTaskFn()
        with EvalRunner(cache_dir=tmp_path, task_fn=counter) as runner:
            tasks = _tasks()
            runner.run_tasks(tasks)
            cold_calls = counter.calls

            cache = ResultCache(tmp_path)
            victim = cache.path(cache.key(tasks[0]))
            assert victim.exists()
            victim.write_text("{ not json !!!")

            report = runner.run_tasks(tasks)  # must not crash
            assert counter.calls == cold_calls + 1  # only the victim reran
            hits = [o["metrics"]["cache_hit"] for o in report.outcomes]
            assert hits.count(False) == 1
        # the repaired entry round-trips again
        assert json.loads(victim.read_text())["outcome"]["ok"]

    def test_truncated_json_entry_recovers(self, tmp_path):
        with EvalRunner(cache_dir=tmp_path) as runner:
            tasks = _tasks()
            runner.run_tasks(tasks)
            cache = ResultCache(tmp_path)
            victim = cache.path(cache.key(tasks[1]))
            victim.write_text(victim.read_text()[:20])
            report = runner.run_tasks(tasks)
            assert all(o["ok"] for o in report.outcomes)

    def test_corrupted_entry_is_quarantined_not_deleted(self, tmp_path):
        with EvalRunner(cache_dir=tmp_path) as runner:
            tasks = _tasks()
            runner.run_tasks(tasks)
        cache = ResultCache(tmp_path)
        victim = cache.path(cache.key(tasks[0]))
        victim.write_text("{ not json !!!")
        assert cache.load(tasks[0]) is None
        # the evidence survives for post-mortem instead of vanishing
        quarantined = list(cache.root.glob("*.json.quarantined"))
        assert len(quarantined) == 1
        assert quarantined[0].read_text() == "{ not json !!!"

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        with EvalRunner(cache_dir=tmp_path) as runner:
            tasks = _tasks()
            runner.run_tasks(tasks)
        cache = ResultCache(tmp_path)
        victim = cache.path(cache.key(tasks[0]))
        entry = json.loads(victim.read_text())
        entry["outcome"]["result"] = {"tampered": True}  # checksum now stale
        victim.write_text(json.dumps(entry))
        assert cache.load(tasks[0]) is None
        assert len(list(cache.root.glob("*.json.quarantined"))) == 1

    def test_wipe(self, tmp_path):
        with EvalRunner(cache_dir=tmp_path) as runner:
            runner.run_tasks(_tasks())
        cache = ResultCache(tmp_path)
        (cache.root / "leftover.tmp").write_text("torn write debris")
        (cache.root / "old.json.quarantined").write_text("evidence")
        removed = cache.wipe()
        assert removed > 0
        assert not list(cache.root.glob("*.json"))
        assert not list(cache.root.glob("*.tmp"))
        assert not list(cache.root.glob("*.quarantined"))


class TestCacheGc:
    def _fill(self, tmp_path):
        with EvalRunner(cache_dir=tmp_path) as runner:
            tasks = _tasks()
            runner.run_tasks(tasks)
        return ResultCache(tmp_path), tasks

    def test_gc_removes_stale_tmp_files_only(self, tmp_path):
        cache, _ = self._fill(tmp_path)
        stale = cache.root / "dead.tmp"
        stale.write_text("x")
        import os as _os

        _os.utime(stale, (0, 0))
        fresh = cache.root / "live.tmp"
        fresh.write_text("y")  # an in-flight writer: must survive
        stats = cache.gc(tmp_age_seconds=60.0)
        assert stats["tmp_removed"] == 1
        assert not stale.exists() and fresh.exists()

    def test_gc_lru_evicts_oldest_first(self, tmp_path):
        import os as _os
        import time as _time

        cache, tasks = self._fill(tmp_path)
        entries = sorted(cache.root.glob("*.json"))
        assert len(entries) >= 2
        # make the first entry clearly least-recently-used
        _os.utime(entries[0], (_time.time() - 10_000,) * 2)
        keep_bytes = sum(p.stat().st_size for p in entries) - entries[0].stat().st_size
        stats = cache.gc(max_bytes=keep_bytes)
        assert stats["evicted"] == 1
        assert not entries[0].exists()
        assert all(p.exists() for p in entries[1:])

    def test_gc_drop_quarantined_is_opt_in(self, tmp_path):
        cache, _ = self._fill(tmp_path)
        evidence = cache.root / "bad.json.quarantined"
        evidence.write_text("{")
        assert cache.gc()["quarantined_removed"] == 0
        assert evidence.exists()
        assert cache.gc(drop_quarantined=True)["quarantined_removed"] == 1
        assert not evidence.exists()

    def test_cache_cli_gc_and_wipe(self, tmp_path, capsys):
        from repro.cli import main

        cache, _ = self._fill(tmp_path)
        (cache.root / "dead.tmp").write_text("x")
        import os as _os

        _os.utime(cache.root / "dead.tmp", (0, 0))
        assert main(["cache", "gc", str(tmp_path)]) == 0
        assert not (cache.root / "dead.tmp").exists()
        assert main(["cache", "wipe", str(tmp_path)]) == 0
        assert not list(cache.root.glob("*.json"))


class TestRetryPolicy:
    def test_transient_failures_are_retried_with_backoff(self):
        failures = {"left": 2}

        def flaky(task):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient worker failure")
            return execute_task(task)

        with EvalRunner(max_retries=2, backoff_seconds=0.0, task_fn=flaky) as runner:
            report = runner.run_tasks(_tasks(methods=("opt",))[:1])
        outcome = report.outcomes[0]
        assert outcome["ok"]
        assert outcome["metrics"]["attempts"] == 3
        assert report.metrics_json()["summary"]["retries"] == 2

    def test_exhausted_retries_become_error_outcome(self):
        def always_broken(task):
            raise OSError("worker keeps dying")

        with EvalRunner(max_retries=1, backoff_seconds=0.0, task_fn=always_broken) as runner:
            report = runner.run_tasks(_tasks(methods=("opt",))[:1])
        outcome = report.outcomes[0]
        assert not outcome["ok"]
        assert "failed after 2 attempt(s)" in outcome["error"]

    def test_deterministic_analysis_error_is_recorded_not_raised(self):
        # an unknown method raises ReproError inside the worker; the
        # runner records it as a per-cell error outcome
        task = _analysis_task(method="no-such-method")
        with EvalRunner() as runner:
            report = runner.run_tasks([task])
        outcome = report.outcomes[0]
        assert not outcome["ok"]
        assert "InferenceError" in outcome["error"]
        assert outcome["metrics"]["attempts"] == 1
