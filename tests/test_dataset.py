"""Runtime dataset and size-projection tests (Sections 3.3, 5.4)."""

import pytest

from repro.errors import DatasetError
from repro.inference import RuntimeDataset, StatDataset, collect_dataset, dataset_from_results
from repro.inference.dataset import Observation
from repro.lang import compile_program, evaluate, from_python

SRC = """
let rec helper xs =
  match xs with [] -> 0 | hd :: tl -> let _ = Raml.tick 1.0 in 1 + helper tl

let rec walk xs =
  match xs with
  | [] -> 0
  | hd :: tl -> Raml.stat (helper xs) + walk tl
"""


def make_dataset(data_lists):
    prog = compile_program(SRC)
    return collect_dataset(prog, "walk", [[from_python(d)] for d in data_lists])


class TestCollection:
    def test_labels(self):
        ds = make_dataset([[1, 2]])
        assert ds.labels() == ["walk#1"]

    def test_observation_counts(self):
        ds = make_dataset([[1, 2, 3]])
        # helper is stat'd at every suffix: 3 dynamic evaluations
        assert ds.total_observations() == 3

    def test_num_runs(self):
        ds = make_dataset([[1], [1, 2]])
        assert ds.num_runs == 2

    def test_missing_label_raises(self):
        ds = make_dataset([[1]])
        with pytest.raises(DatasetError):
            ds["nonexistent"]

    def test_no_stats_raises(self):
        prog = compile_program("let f x = x + 1")
        with pytest.raises(DatasetError):
            collect_dataset(prog, "f", [[from_python(1)]])

    def test_dataset_from_results(self):
        prog = compile_program(SRC)
        results = [evaluate(prog, "walk", [from_python([1, 2])])]
        ds = dataset_from_results(results)
        assert ds.total_observations() == 2


class TestStatDataset:
    def make(self):
        return make_dataset([[10, 20, 30], [5, 5]])["walk#1"]

    def test_size_keys(self):
        sd = self.make()
        keys = set(sd.size_keys())
        # helper's env list sizes 3,2,1 (run 1) and 2,1 (run 2)
        assert (3,) in keys and (1,) in keys

    def test_unique_sizes_order(self):
        sd = self.make()
        unique = sd.unique_sizes()
        assert len(unique) == len(set(unique))

    def test_max_costs(self):
        sd = self.make()
        maxima = sd.max_costs()
        assert maxima[(3,)] == 3.0
        assert maxima[(1,)] == 1.0

    def test_grouped_by_size(self):
        sd = self.make()
        groups = sd.grouped_by_size()
        assert len(groups[(2,)]) == 2  # one from each run

    def test_feature_dim(self):
        assert self.make().feature_dim() == 1

    def test_feature_dim_empty_raises(self):
        with pytest.raises(DatasetError):
            StatDataset("x").feature_dim()


class TestMergeAndKeys:
    def test_merge(self):
        a = make_dataset([[1]])
        b = make_dataset([[1, 2]])
        a.merge(b)
        assert a.total_observations() == 3
        assert a.num_runs == 2

    def test_observation_size_key_includes_output(self):
        obs = Observation(
            env=(("xs", from_python([1, 2])),), value=from_python([1]), cost=1.0
        )
        assert obs.size_key() == (2, 1)

    def test_env_dict(self):
        obs = Observation(env=(("a", 1),), value=2, cost=0.5)
        assert obs.env_dict() == {"a": 1}
