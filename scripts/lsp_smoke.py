#!/usr/bin/env python
"""CI smoke driver for the incremental edit-loop front ends.

Two phases, both against real subprocesses (stdlib only):

1. **LSP** — start ``hybrid-aara lsp`` on stdio and run a scripted
   session: ``initialize``; ``didOpen`` of a clean file must publish
   zero diagnostics; a ``didChange`` introducing an unboundable
   recursion must publish ``R042`` at its exact span; reverting the
   change must publish a clean report again; an ``inlayHint`` request
   must return the inferred bound.  The server must exit 0 after an
   orderly ``shutdown``/``exit``.
2. **watch** — run ``hybrid-aara lint --watch`` for two cycles against
   a shared artifact directory and touch the file (content unchanged)
   to trigger the second cycle: it must report every artifact reused
   and none recomputed.

Exit code 0 only if every assertion holds.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import threading
import time

CLEAN = """let rec length xs =
  match xs with
  | [] -> 0
  | _hd :: tl -> let _ = Raml.tick 1.0 in 1 + length tl
"""

SPIN = CLEAN + "\nlet rec spin xs = let _ = Raml.tick 1.0 in spin xs\n"

#: where the linter reports SPIN's R042 (1-based line/col, length 1)
R042_LINE, R042_COL = 6, 44

URI = "file:///smoke.ml"


def send(proc, message):
    body = json.dumps(message).encode()
    proc.stdin.write(b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n")
    proc.stdin.write(body)
    proc.stdin.flush()


def recv(proc):
    length = None
    while True:
        line = proc.stdout.readline()
        if not line:
            return None
        line = line.strip()
        if not line:
            break
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    return json.loads(proc.stdout.read(length).decode())


def wait_for_diagnostics(proc):
    while True:
        message = recv(proc)
        assert message is not None, "server closed the stream mid-session"
        if message.get("method") == "textDocument/publishDiagnostics":
            return message["params"]["diagnostics"]


def lsp_phase(cache_dir: str) -> None:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "lsp", "--cache-dir", cache_dir],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
    )
    try:
        send(proc, {"jsonrpc": "2.0", "id": 1, "method": "initialize", "params": {}})
        reply = recv(proc)
        assert reply["result"]["capabilities"]["inlayHintProvider"] is True, reply
        send(proc, {"jsonrpc": "2.0", "method": "initialized", "params": {}})

        send(
            proc,
            {
                "jsonrpc": "2.0",
                "method": "textDocument/didOpen",
                "params": {
                    "textDocument": {
                        "uri": URI,
                        "languageId": "resource-ml",
                        "version": 1,
                        "text": CLEAN,
                    }
                },
            },
        )
        diags = wait_for_diagnostics(proc)
        assert diags == [], f"clean file produced diagnostics: {diags}"
        print("lsp: didOpen(clean) -> 0 diagnostics")

        send(
            proc,
            {
                "jsonrpc": "2.0",
                "method": "textDocument/didChange",
                "params": {
                    "textDocument": {"uri": URI, "version": 2},
                    "contentChanges": [{"text": SPIN}],
                },
            },
        )
        diags = wait_for_diagnostics(proc)
        r042 = [d for d in diags if d["code"] == "R042"]
        assert len(r042) == 1, f"expected one R042, got: {diags}"
        want = {
            "start": {"line": R042_LINE - 1, "character": R042_COL - 1},
            "end": {"line": R042_LINE - 1, "character": R042_COL},
        }
        assert r042[0]["range"] == want, (r042[0]["range"], want)
        assert r042[0]["severity"] == 1, r042[0]
        print(f"lsp: didChange(spin) -> R042 at exact span {want['start']}")

        send(
            proc,
            {
                "jsonrpc": "2.0",
                "id": 2,
                "method": "textDocument/inlayHint",
                "params": {
                    "textDocument": {"uri": URI},
                    "range": {
                        "start": {"line": 0, "character": 0},
                        "end": {"line": 99, "character": 0},
                    },
                },
            },
        )
        while True:
            message = recv(proc)
            assert message is not None
            if message.get("id") == 2:
                hints = message["result"]
                break
        labels = {h["label"] for h in hints}
        assert ": 1*n1" in labels, f"expected length's bound among hints: {labels}"
        print(f"lsp: inlayHint -> {sorted(labels)}")

        send(
            proc,
            {
                "jsonrpc": "2.0",
                "method": "textDocument/didChange",
                "params": {
                    "textDocument": {"uri": URI, "version": 3},
                    "contentChanges": [{"text": CLEAN}],
                },
            },
        )
        diags = wait_for_diagnostics(proc)
        assert diags == [], f"revert left diagnostics behind: {diags}"
        print("lsp: didChange(revert) -> diagnostics cleared")

        send(proc, {"jsonrpc": "2.0", "id": 3, "method": "shutdown", "params": {}})
        assert recv(proc)["id"] == 3
        send(proc, {"jsonrpc": "2.0", "method": "exit"})
        assert proc.wait(timeout=30) == 0, "server exit code after shutdown"
        print("lsp: orderly shutdown, exit 0")
    finally:
        if proc.poll() is None:
            proc.kill()


def watch_phase(cache_dir: str) -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="lsp-smoke-watch-"))
    prog = workdir / "prog.ml"
    prog.write_text(CLEAN)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "lint",
            "--watch",
            str(prog),
            "--watch-cycles",
            "2",
            "--interval",
            "0.1",
            "--cache-dir",
            cache_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines = []

    def pump():
        for line in proc.stdout:
            lines.append(line.rstrip("\n"))

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    deadline = time.time() + 120
    # wait for the first cycle's stats line, then touch (content unchanged)
    while time.time() < deadline:
        if any("recomputed" in line for line in lines):
            break
        time.sleep(0.1)
    else:
        proc.kill()
        raise AssertionError(f"first watch cycle never completed: {lines}")
    time.sleep(0.3)
    os.utime(prog)  # no-op touch: mtime moves, content does not
    assert proc.wait(timeout=120) == 0, f"watch loop failed: {lines}"
    thread.join(timeout=10)
    stats = [line for line in lines if "recomputed" in line]
    assert len(stats) == 2, f"expected two cycles, got: {lines}"
    # the second cycle must reuse every artifact: "N reused / 0 recomputed"
    second = stats[1]
    reused = int(second.split(" reused")[0].split()[-1])
    assert "/ 0 recomputed" in second, f"no-op touch recomputed something: {second}"
    assert reused > 0, f"no artifacts were reused: {second}"
    print(f"watch: no-op touch -> {second.strip()}")


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="lsp-smoke-cache-")
    lsp_phase(cache_dir)
    # the watch loop shares the artifact directory the LSP session warmed
    watch_phase(cache_dir)
    print("lsp smoke: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
