"""Command-line driver, mirroring the paper artifact's entry point.

Each analysis run requires (Section 7, "Implementation"):
(i) a program annotated with ``Raml.tick`` and ``Raml.stat``,
(ii) inputs for runtime-cost data generation, and
(iii) a configuration (degree, technique, sampler settings).

Examples::

    hybrid-aara analyze prog.ml --entry quicksort --method bayeswc \
        --degree 2 --sizes 5:100:5 --samples 100
    hybrid-aara static prog.ml --entry quicksort --degree 2
    hybrid-aara bench QuickSort --method opt --samples 20
    hybrid-aara bench all --jobs 4 --trace /tmp/trace
    hybrid-aara trace summary /tmp/trace

Output goes through :mod:`repro.telemetry.console`: ``-q`` hides status
lines, ``-v`` adds detail, and ``REPRO_LOG=json`` turns every line into
one JSON object for CI log scraping.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from . import telemetry
from .aara import run_conventional
from .config import AnalysisConfig
from .errors import ReproError
from .inference import collect_dataset, run_analysis
from .lang import ast as A
from .lang import compile_program, from_python
from .suite import get_benchmark
from .telemetry.console import configure as configure_console, get_console


def _parse_sizes(spec: str):
    parts = [int(p) for p in spec.split(":")]
    if len(parts) == 1:
        return [parts[0]]
    if len(parts) == 2:
        return list(range(parts[0], parts[1] + 1))
    return list(range(parts[0], parts[1] + 1, parts[2]))


def _random_value(rng, typ, n):
    """Draw one random argument of type ``typ`` at size parameter ``n``."""
    if isinstance(typ, A.TList):
        if isinstance(typ.elem, (A.TInt, A.TBool, A.TUnit)):
            return from_python([_random_value(rng, typ.elem, n) for _ in range(n)])
        # structured elements (nested lists, tuples): keep totals near n
        inner = max(1, n // 2)
        return from_python([_random_value(rng, typ.elem, inner) for _ in range(n)])
    if isinstance(typ, A.TProd):
        return from_python(tuple(_random_value(rng, item, n) for item in typ.items))
    if isinstance(typ, A.TInt):
        return int(rng.integers(0, 1000))
    if isinstance(typ, A.TBool):
        return bool(rng.integers(0, 2))
    if isinstance(typ, A.TUnit):
        return from_python(None)
    raise ReproError(f"cannot generate random inputs for parameter type {typ}")


def _random_inputs(program, entry, sizes, reps, seed):
    rng = np.random.default_rng(seed)
    fun = program[entry]
    if fun.fun_type is None:
        raise ReproError(f"function {entry!r} has no inferred type")
    inputs = []
    for _ in range(reps):
        for n in sizes:
            inputs.append([_random_value(rng, typ, n) for typ in fun.fun_type.params])
    return inputs


def _load_program(path: str):
    """Read + compile a source file, caret-rendering front-end failures."""
    from .analysis import render_source_error
    from .errors import SourceError

    with open(path) as handle:
        source = handle.read()
    try:
        return source, compile_program(source)
    except SourceError as exc:
        raise ReproError(render_source_error(exc, source, path)) from exc


def cmd_collect(args) -> int:
    from .inference.serialize import save_dataset

    con = get_console()
    _source, program = _load_program(args.program)
    sizes = _parse_sizes(args.sizes)
    inputs = _random_inputs(program, args.entry, sizes, args.reps, args.seed)
    dataset = collect_dataset(program, args.entry, inputs)
    save_dataset(dataset, args.out)
    con.info(
        f"collected {dataset.total_observations()} observations at "
        f"{len(dataset.labels())} stat site(s) from {dataset.num_runs} runs "
        f"-> {args.out}",
        observations=dataset.total_observations(),
        labels=len(dataset.labels()),
        runs=dataset.num_runs,
        out=args.out,
    )
    return 0


def cmd_analyze(args) -> int:
    _source, program = _load_program(args.program)
    config = AnalysisConfig(
        degree=args.degree,
        num_posterior_samples=args.samples,
        seed=args.seed,
        objective=args.objective,
    )
    if args.data:
        from .inference.serialize import load_dataset

        dataset = load_dataset(args.data)
    else:
        sizes = _parse_sizes(args.sizes)
        inputs = _random_inputs(program, args.entry, sizes, args.reps, args.seed)
        dataset = collect_dataset(program, args.entry, inputs)
    result = run_analysis(program, args.entry, dataset, config, args.method)
    if args.save_result:
        from .inference.serialize import save_result

        save_result(result, args.save_result)
    con = get_console()
    con.result(f"method      : {result.method} ({result.mode})")
    con.result(f"bounds      : {len(result.bounds)} posterior sample(s)")
    con.result(f"runtime     : {result.runtime_seconds:.2f}s")
    if result.failures:
        con.result(f"failures    : {result.failures}")
    for key, value in result.diagnostics.items():
        con.result(f"  {key}: {value:.4g}")
    show = result.bounds[: args.show]
    for i, bound in enumerate(show):
        con.result(f"bound[{i}]    : {bound.describe()}")
    if len(result.bounds) > 1:
        med = result.median_coefficients()
        con.result("median coefficients: " + json.dumps([round(v, 4) for v in med]))
    return 0


def cmd_static(args) -> int:
    _source, program = _load_program(args.program)
    verdict = run_conventional(program, args.entry, max_degree=args.degree)
    con = get_console()
    con.result(f"status : {verdict.status}")
    if verdict.bound is not None:
        con.result(f"degree : {verdict.degree}")
        con.result(f"bound  : {verdict.bound.describe()}")
    elif verdict.detail:
        con.result(f"detail : {verdict.detail}")
    con.result(f"runtime: {verdict.runtime_seconds:.2f}s")
    return 0 if verdict.succeeded else 1


def _lint_units(args):
    """Yield ``(display_path, source, entry)`` for everything to lint.

    ``.py`` files contribute their embedded resource-language constants
    (``file.py#CONST``); ``--suite`` adds every registry benchmark in all
    its mode variants with the spec's own entry function.
    """
    from .analysis import extract_embedded_sources

    for path in args.programs:
        with open(path) as handle:
            text = handle.read()
        if path.endswith(".py"):
            for name, source in extract_embedded_sources(text):
                yield f"{path}#{name}", source, args.entry
        else:
            yield path, text, args.entry
    if args.suite:
        from .suite import all_benchmarks

        for spec in all_benchmarks():
            yield (
                f"suite:{spec.name}/data_driven",
                spec.data_driven_source,
                spec.data_driven_entry,
            )
            if spec.hybrid_source is not None:
                yield f"suite:{spec.name}/hybrid", spec.hybrid_source, spec.hybrid_entry


#: default on-disk home for incremental artifacts (watch / lsp modes)
DEFAULT_INCR_CACHE = ".hybrid-aara-cache"


def _incremental_engine(args):
    """Build the incremental engine the watch/LSP front ends share."""
    from .analysis import ArtifactStore, IncrementalEngine
    from .config import ExecutionBudget

    budget = None if getattr(args, "trusted", False) else ExecutionBudget.untrusted()
    store = None
    if not getattr(args, "no_cache", False):
        store = ArtifactStore(getattr(args, "cache_dir", None) or DEFAULT_INCR_CACHE)
    return IncrementalEngine(store, max_degree=args.degree, budget=budget)


def _render_watch_cycle(con, result, source, elapsed) -> None:
    from .analysis import render_all_text

    if result.diagnostics:
        con.result(render_all_text(result.diagnostics, {result.path: source}))
    else:
        con.result(f"{result.path}: clean")
    for name, doc in result.bounds.items():
        label = doc.get("describe") or doc.get("status") or "?"
        con.result(f"  {name} : {label}")
    con.result(
        f"{result.reused} reused / {result.recomputed} recomputed "
        f"in {elapsed * 1000.0:.0f} ms",
        reused=result.reused,
        recomputed=result.recomputed,
        ms=round(elapsed * 1000.0, 1),
    )


def _lint_watch(args) -> int:
    """Poll-mtime edit loop: re-analyze on change, artifacts make it fast."""
    import os
    import time

    if len(args.programs) != 1 or args.suite:
        raise ReproError("--watch wants exactly one program file (and no --suite)")
    path = args.programs[0]
    con = get_console()
    engine = _incremental_engine(args)
    cycles = 0
    last_sig = None
    last_errors = 0
    while True:
        try:
            st = os.stat(path)
            sig = (st.st_mtime_ns, st.st_size)
        except OSError as exc:
            con.warn(f"cannot stat {path}: {exc}")
            time.sleep(args.interval)
            continue
        if sig == last_sig:
            time.sleep(args.interval)
            continue
        last_sig = sig
        with open(path) as handle:
            source = handle.read()
        start = time.perf_counter()
        result = engine.analyze(source, path=path, entry=args.entry)
        elapsed = time.perf_counter() - start
        _render_watch_cycle(con, result, source, elapsed)
        last_errors = sum(1 for d in result.diagnostics if d.severity == "error")
        cycles += 1
        if args.watch_cycles and cycles >= args.watch_cycles:
            return 1 if last_errors else 0


def cmd_lint(args) -> int:
    from .analysis import (
        dumps_sarif,
        lint_source,
        promote_warnings,
        render_all_text,
        to_json,
    )

    if args.watch:
        return _lint_watch(args)
    con = get_console()
    units = list(_lint_units(args))
    if not units:
        raise ReproError("nothing to lint: pass program files and/or --suite")
    diagnostics = []
    sources = {}
    for path, source, entry in units:
        sources[path] = source
        result = lint_source(source, path=path, entry=entry)
        diagnostics.extend(result.diagnostics)
    if args.werror:
        diagnostics = promote_warnings(diagnostics)
    diagnostics.sort(key=lambda d: d.sort_key())

    if args.format == "json":
        rendered = json.dumps(to_json(diagnostics), indent=2, sort_keys=True)
    elif args.format == "sarif":
        rendered = dumps_sarif(diagnostics)
    else:
        rendered = render_all_text(diagnostics, sources)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        con.info(
            f"{len(diagnostics)} diagnostic(s) over {len(units)} program(s) "
            f"-> {args.out}",
            diagnostics=len(diagnostics),
            programs=len(units),
            out=args.out,
        )
    else:
        con.result(rendered)
    errors = sum(1 for d in diagnostics if d.severity == "error")
    return 1 if errors else 0


def cmd_lsp(args) -> int:
    """Speak LSP on stdio.  stdout belongs to JSON-RPC — every status
    line goes to stderr, bypassing the console (which owns stdout)."""
    from .analysis.lsp import LspServer

    def log(text: str) -> None:
        print(f"hybrid-aara lsp: {text}", file=sys.stderr, flush=True)

    server = LspServer(
        sys.stdin.buffer,
        sys.stdout.buffer,
        engine=_incremental_engine(args),
        entry=args.entry,
        log=log,
    )
    return server.serve_forever()


#: env var naming the default parent directory for run journals
ENV_RUNS_DIR = "REPRO_RUNS_DIR"


def _activate_faults(spec: str) -> None:
    """Chaos-testing mode: activate the fault plan for this process and
    every worker it forks (they inherit the environment)."""
    import os
    import tempfile

    from .faultinject import ENV_SPEC, ENV_STATE

    os.environ[ENV_SPEC] = spec
    os.environ.setdefault(ENV_STATE, tempfile.mkdtemp(prefix="repro-faults-"))


def _runs_root(args) -> str:
    import os

    return args.runs_dir or os.environ.get(ENV_RUNS_DIR) or "runs"


def _bench_execute(
    args,
    specs,
    config,
    seed: int,
    methods,
    journal=None,
    preloaded=None,
) -> int:
    """Shared core of ``bench`` and ``bench resume``: run the grid under a
    (possibly journalled) runner, render tables, export metrics/trace."""
    import os
    import shutil

    from .errors import EXIT_INTERRUPTED
    from .evalharness import (
        EvalRunner,
        RunnerReport,
        assemble_available,
        expand_grid,
        render_gap_table,
        render_table1,
    )

    con = get_console()
    trace_dir = args.trace or os.environ.get(telemetry.ENV_TRACE)
    if trace_dir:
        # the env var propagates tracing to forked pool workers (and is the
        # backup channel when a replacement pool respawns them)
        os.environ[telemetry.ENV_TRACE] = trace_dir
        telemetry.enable(trace_dir)
    tasks = expand_grid(specs, config=config, seed=seed, methods=methods)
    with EvalRunner(
        jobs=config.jobs,
        cache_dir=config.cache_dir,
        task_timeout=config.task_timeout,
        fail_fast=not config.keep_going,
        journal=journal,
    ) as runner:
        if journal is not None:
            runner.checkpoint_dir = journal.checkpoints_dir
            runner.install_signal_handlers()
        if preloaded:
            runner.preload(preloaded)
        report = runner.run_tasks(tasks)
        runs = assemble_available(specs, report, seed)
        con.result(render_table1(runs))
        failed_cells = 0
        for run in runs:
            con.result()
            con.result(render_gap_table(run))
            for key, message in run.errors.items():
                con.result(f"error {key}: {message}")
            failed_cells += len(run.failures)
        if runner.history:
            metrics = {
                "tasks": len(runner.history),
                "cache_hits": sum(
                    1 for o in runner.history if o["metrics"].get("cache_hit")
                ),
                "task_wall_seconds": round(
                    sum(o["metrics"].get("wall_seconds", 0.0) for o in runner.history), 3
                ),
            }
            con.result()
            con.info(
                f"runner: {metrics['tasks']} task(s), jobs={runner.jobs}, "
                f"{metrics['cache_hits']} cache hit(s), "
                f"{metrics['task_wall_seconds']}s task time",
                **metrics,
            )
        if args.metrics:
            report_json = RunnerReport(
                tasks=[],
                outcomes=runner.history,
                jobs=runner.jobs,
                wall_seconds=0.0,
                interrupted=report.interrupted,
                shutdown_reason=report.shutdown_reason,
            )
            try:
                report_json.write_metrics(args.metrics)
            except OSError as exc:
                raise ReproError(f"cannot write metrics to {args.metrics}: {exc}")
            con.info(f"per-task metrics -> {args.metrics}", path=args.metrics)
    if trace_dir:
        from .telemetry.chrome import write_chrome_trace

        telemetry.disable()
        try:
            n_events = write_chrome_trace(trace_dir)
        except OSError as exc:
            raise ReproError(f"cannot export trace from {trace_dir}: {exc}")
        con.info(
            f"trace: {n_events} event(s) -> {os.path.join(trace_dir, 'trace.json')} "
            f"(chrome://tracing or https://ui.perfetto.dev)",
            events=n_events,
            trace_dir=trace_dir,
        )
    if journal is not None:
        if report.interrupted:
            journal.close()
        else:
            journal.run_finish("failed-cells" if failed_cells else "ok")
            journal.close()
            # the run is complete: mid-chain checkpoints have no future use
            shutil.rmtree(journal.checkpoints_dir, ignore_errors=True)
    if report.interrupted:
        done = len(report.outcomes)
        hint = (
            f"; resume with: hybrid-aara bench resume {journal.run_id}"
            if journal is not None
            else ""
        )
        con.warn(
            f"run interrupted ({report.shutdown_reason or 'shutdown'}): "
            f"{done}/{len(tasks)} cell(s) finished{hint}"
        )
        return EXIT_INTERRUPTED
    if failed_cells:
        # Under --fail-fast a mid-run abort already surfaced as ReproError
        # (exit 2); this branch covers failures that slipped through before
        # the abort fired or when every task had already been submitted.
        if not config.keep_going:
            con.error(f"error: {failed_cells} cell(s) failed")
            return 1
        con.warn(
            f"warning: {failed_cells} cell(s) failed; remaining cells are "
            "unaffected (see footnotes above)"
        )
    return 0


def _bench_resume(args) -> int:
    """Replay a run journal and execute only its unfinished cells."""
    import os

    from .evalharness import journal as journal_mod
    from .evalharness.runner import expand_grid, run_signature
    from .evalharness import METHODS
    from .suite import all_benchmarks

    con = get_console()
    run_id = args.run_id_pos or args.run_id
    if not run_id:
        raise ReproError(
            "bench resume needs a run id: hybrid-aara bench resume <run-id>"
        )
    runs_root = _runs_root(args)
    run_dir = os.path.join(runs_root, run_id)
    if not os.path.exists(os.path.join(run_dir, journal_mod.JOURNAL_NAME)):
        raise ReproError(f"no journal found for run {run_id!r} under {runs_root!r}")
    replayed = journal_mod.replay(run_dir)
    if replayed.header is None:
        raise ReproError(f"journal for run {run_id!r} has no run-start header")
    if replayed.run_finished:
        con.info(f"run {run_id} already finished; re-rendering from its journal")
    params = replayed.params
    if args.faults:
        _activate_faults(args.faults)

    benchmark = str(params.get("benchmark", "all"))
    specs = all_benchmarks() if benchmark == "all" else [get_benchmark(benchmark)]
    method = str(params.get("method", "all"))
    methods = [method] if method != "all" else list(METHODS)
    seed = int(params.get("seed", 0))
    config = AnalysisConfig(
        num_posterior_samples=int(params.get("samples", 25)),
        seed=seed,
        jobs=args.jobs or int(params.get("jobs") or 1),
        cache_dir=args.cache or params.get("cache"),
        task_timeout=args.task_timeout or params.get("task_timeout"),
        keep_going=not params.get("fail_fast"),
    )
    signature = run_signature(config, seed, methods, [s.name for s in specs])
    if signature != replayed.signature:
        raise ReproError(
            f"refusing to resume run {run_id!r}: the config signature no longer "
            "matches the journalled run (code, config or benchmark set changed)"
        )
    grid_ids = [t.task_id for t in expand_grid(specs, config=config, seed=seed, methods=methods)]
    if grid_ids != replayed.grid:
        raise ReproError(
            f"refusing to resume run {run_id!r}: the expanded task grid differs "
            "from the journalled grid"
        )
    completed = replayed.completed_ok()
    journal = journal_mod.RunJournal(run_dir, run_id)
    journal.run_resume(len(completed), len(grid_ids) - len(completed))
    con.info(
        f"resuming run {run_id}: {len(completed)}/{len(grid_ids)} cell(s) "
        "replayed from the journal",
        completed=len(completed),
        total=len(grid_ids),
    )
    return _bench_execute(
        args, specs, config, seed, methods, journal=journal, preloaded=completed
    )


def cmd_bench(args) -> int:
    import os

    from .evalharness import journal as journal_mod
    from .evalharness.runner import expand_grid, run_signature
    from .suite import all_benchmarks

    if args.benchmark == "resume":
        return _bench_resume(args)
    if args.faults:
        _activate_faults(args.faults)
    if args.sampler_engine:
        # exported (not just recorded) so pool workers inherit the engine
        from .stats.engine import ENV_SAMPLER

        os.environ[ENV_SAMPLER] = args.sampler_engine
    if args.benchmark == "all":
        specs = all_benchmarks()
    else:
        specs = [get_benchmark(args.benchmark)]
    config = AnalysisConfig(
        num_posterior_samples=args.samples,
        seed=args.seed,
        jobs=args.jobs or 1,
        cache_dir=args.cache,
        task_timeout=args.task_timeout,
        keep_going=not args.fail_fast,
    )
    methods = [args.method] if args.method != "all" else ("opt", "bayeswc", "bayespc")
    journal = None
    if not args.no_journal:
        run_id = args.run_id or journal_mod.new_run_id()
        journal = journal_mod.RunJournal(os.path.join(_runs_root(args), run_id), run_id)
        grid_ids = [
            t.task_id
            for t in expand_grid(specs, config=config, seed=args.seed, methods=methods)
        ]
        journal.run_start(
            params={
                "benchmark": args.benchmark,
                "method": args.method,
                "samples": args.samples,
                "seed": args.seed,
                "jobs": args.jobs or 1,
                "cache": args.cache,
                "task_timeout": args.task_timeout,
                "fail_fast": args.fail_fast,
                "sampler_engine": args.sampler_engine,
            },
            signature=run_signature(
                config, args.seed, methods, [s.name for s in specs]
            ),
            grid=grid_ids,
        )
        get_console().info(
            f"run {run_id} -> {journal.run_dir}", run_id=run_id, run_dir=journal.run_dir
        )
    return _bench_execute(
        args, specs, config, args.seed, methods, journal=journal
    )


def cmd_cache(args) -> int:
    from .evalharness.runner import ResultCache

    con = get_console()
    cache = ResultCache(args.dir)
    if args.cache_command == "wipe":
        removed = cache.wipe()
        con.info(f"removed {removed} file(s) from {args.dir}", removed=removed)
        return 0
    # gc
    max_bytes = None if args.max_mb is None else int(args.max_mb * 1024 * 1024)
    stats = cache.gc(
        max_bytes=max_bytes,
        tmp_age_seconds=args.tmp_age,
        drop_quarantined=args.drop_quarantined,
    )
    con.info(
        f"cache gc: kept {stats['kept']} entry(ies) ({stats['bytes']} bytes), "
        f"evicted {stats['evicted']}, removed {stats['tmp_removed']} tmp + "
        f"{stats['quarantined_removed']} quarantined file(s)",
        **stats,
    )
    return 0


def cmd_runs(args) -> int:
    import os

    from .evalharness.journal import gc_runs

    con = get_console()
    root = args.dir or os.environ.get(ENV_RUNS_DIR) or "runs"
    max_age = None if args.max_age_days is None else args.max_age_days * 86400.0
    max_bytes = None if args.max_mb is None else int(args.max_mb * 1024 * 1024)
    if max_age is None and max_bytes is None and not args.dry_run:
        raise ReproError(
            "runs gc needs at least one of --max-age-days / --max-mb "
            "(or --dry-run to preview)"
        )
    stats = gc_runs(
        root, max_age_seconds=max_age, max_bytes=max_bytes, dry_run=args.dry_run
    )
    verb = "would remove" if args.dry_run else "removed"
    con.info(
        f"runs gc: kept {stats['kept']} run(s) ({stats['bytes']} bytes), "
        f"{verb} {stats['removed']} run(s) ({stats['bytes_removed']} bytes), "
        f"skipped {stats['skipped']} non-run entry(ies) under {root}",
        root=root,
        dry_run=args.dry_run,
        **stats,
    )
    return 0


def cmd_trace(args) -> int:
    import os

    from .telemetry.chrome import trace_files, write_chrome_trace
    from .telemetry.summary import render_summary, summarize_trace_dir

    con = get_console()
    # fail cleanly (one line, exit 2) before touching the directory: a
    # missing/empty trace dir is a usage error, not a traceback — and
    # `trace export` must never create trace.json inside a bad target
    if not os.path.isdir(args.dir):
        raise ReproError(
            f"trace directory {args.dir!r} does not exist (expected a "
            "directory produced by bench --trace / REPRO_TRACE)"
        )
    if not trace_files(args.dir):
        raise ReproError(
            f"no trace files (trace-<pid>.jsonl) in {args.dir!r}: "
            "is this really a bench --trace directory?"
        )
    if args.trace_command == "summary":
        summary = summarize_trace_dir(args.dir, top=args.top)
        if not summary.events:
            raise ReproError(f"no trace events found in {args.dir}")
        con.result(render_summary(summary, str(args.dir), top=args.top))
        return 0
    # export
    try:
        n_events = write_chrome_trace(args.dir, args.out)
    except OSError as exc:
        raise ReproError(f"cannot export trace from {args.dir}: {exc}")
    if not n_events:
        raise ReproError(f"no trace events found in {args.dir}")
    out = args.out or f"{args.dir}/trace.json"
    con.info(f"wrote {n_events} event(s) -> {out}", events=n_events, out=str(out))
    return 0


def cmd_serve(args) -> int:
    import dataclasses
    import os

    from .config import ExecutionBudget
    from .server.app import serve
    from .server.core import ServerConfig

    api_keys = []
    for pair in args.api_key or ():
        key, sep, tenant = pair.partition("=")
        if not sep or not key or not tenant:
            raise ReproError(f"--api-key wants KEY=TENANT, got {pair!r}")
        api_keys.append((key, tenant))
    budget = ExecutionBudget.untrusted()
    overrides = {
        name: getattr(args, f"budget_{name}")
        for name in (
            "max_source_chars",
            "max_tokens",
            "max_nesting_depth",
            "eval_steps",
            "eval_call_depth",
            "eval_value_size",
            "lp_variables",
            "lp_constraints",
        )
        if getattr(args, f"budget_{name}") is not None
    }
    if overrides:
        budget = dataclasses.replace(budget, **overrides)

    runs_dir = args.runs_dir or os.environ.get(ENV_RUNS_DIR) or "runs"
    config = ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_capacity=args.queue_capacity,
        rate=args.rate,
        burst=args.burst,
        default_deadline=args.deadline,
        latency_budget=args.latency_budget,
        breaker_cooldown=args.breaker_cooldown,
        max_retries=args.max_retries,
        shutdown_grace=args.grace,
        cache_dir=args.cache_dir,
        runs_dir=runs_dir,
        api_keys=tuple(api_keys),
        quota_concurrency=args.quota_concurrency,
        quota_cpu_seconds=args.quota_cpu_seconds,
        quota_window=args.quota_window,
        budget=budget,
    )
    return serve(config)


def cmd_loadgen(args) -> int:
    from .server.loadgen import LoadgenConfig, run_loadgen

    con = get_console()
    config = LoadgenConfig(
        url=args.url,
        requests=args.requests,
        rate=args.rate,
        seed=args.seed,
        benchmarks=tuple(args.benchmarks.split(",")),
        methods=tuple(args.methods.split(",")),
        samples=args.samples,
        seeds=args.seeds,
        wait_timeout=args.wait_timeout,
        out=args.out,
        check=args.check,
        hostile_dir=args.hostile,
        hostile_fraction=args.hostile_fraction,
        api_key=args.api_key,
    )
    report = run_loadgen(config)
    latency = report["latency_seconds"]
    taxonomy = ", ".join(f"{k}={v}" for k, v in report["taxonomy"].items())
    con.result(
        f"loadgen: {report['config']['requests']} request(s) in "
        f"{report['wall_seconds']:.1f}s ({taxonomy}); "
        f"p50={latency['p50'] if latency['p50'] is None else round(latency['p50'], 3)}s "
        f"p95={latency['p95'] if latency['p95'] is None else round(latency['p95'], 3)}s "
        f"p99={latency['p99'] if latency['p99'] is None else round(latency['p99'], 3)}s"
    )
    if config.out:
        con.info(f"wrote {config.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hybrid-aara",
        description="Hybrid AARA: resource bounds with static analysis and Bayesian inference",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more status output (repeatable)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="suppress status lines (results still print)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="data-driven/hybrid analysis of a program")
    analyze.add_argument("program", help="path to the annotated source file")
    analyze.add_argument("--entry", required=True, help="function to analyze")
    analyze.add_argument("--method", choices=["opt", "bayeswc", "bayespc"], default="opt")
    analyze.add_argument("--degree", type=int, default=1)
    analyze.add_argument("--sizes", default="5:50:5", help="input sizes lo:hi[:step]")
    analyze.add_argument("--reps", type=int, default=2)
    analyze.add_argument("--samples", type=int, default=50, help="posterior sample count M")
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--objective", choices=["sum", "degree"], default="sum")
    analyze.add_argument("--show", type=int, default=3, help="bounds to print")
    analyze.add_argument("--data", help="load a dataset collected with 'collect'")
    analyze.add_argument("--save-result", help="archive the posterior result as JSON")
    analyze.set_defaults(func=cmd_analyze)

    collect = sub.add_parser("collect", help="collect runtime cost data to a file")
    collect.add_argument("program")
    collect.add_argument("--entry", required=True)
    collect.add_argument("--sizes", default="5:50:5")
    collect.add_argument("--reps", type=int, default=2)
    collect.add_argument("--seed", type=int, default=0)
    collect.add_argument("--out", required=True)
    collect.set_defaults(func=cmd_collect)

    lint = sub.add_parser(
        "lint",
        help="static analysis / diagnostics for resource-language programs",
    )
    lint.add_argument(
        "programs",
        nargs="*",
        help="source files to lint (.py files contribute their embedded "
        "resource-language string constants)",
    )
    lint.add_argument(
        "--suite",
        action="store_true",
        help="also lint every registry benchmark in all its mode variants",
    )
    lint.add_argument(
        "--entry",
        default=None,
        help="entry function for reachability lints (default: last definition)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (sarif is GitHub code-scanning compatible)",
    )
    lint.add_argument("--out", default=None, help="write the report here instead of stdout")
    lint.add_argument(
        "--Werror",
        dest="werror",
        action="store_true",
        help="treat warnings as errors (notes are unaffected)",
    )
    watch = lint.add_argument_group(
        "watch mode",
        "incremental edit loop: re-analyze one file whenever it changes, "
        "reusing per-function artifacts so unrelated functions cost nothing",
    )
    watch.add_argument(
        "--watch",
        action="store_true",
        help="watch one program file and re-analyze on change",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=0.2,
        help="mtime poll interval in seconds",
    )
    watch.add_argument(
        "--watch-cycles",
        type=int,
        default=0,
        metavar="N",
        help="exit after N analysis cycles (0 = run until interrupted)",
    )
    watch.add_argument(
        "--degree", type=int, default=3, help="max AARA degree per function"
    )
    watch.add_argument(
        "--cache-dir",
        default=None,
        help=f"incremental artifact directory (default {DEFAULT_INCR_CACHE})",
    )
    watch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable artifact persistence (every cycle recomputes)",
    )
    watch.add_argument(
        "--trusted",
        action="store_true",
        help="lift the untrusted-source execution budget (suite-style files)",
    )
    lint.set_defaults(func=cmd_lint)

    lsp = sub.add_parser(
        "lsp",
        help="LSP server on stdio: push diagnostics + resource-bound inlay "
        "hints, incrementally re-analyzing on every edit",
    )
    lsp.add_argument(
        "--entry",
        default=None,
        help="entry function for reachability lints (default: last definition)",
    )
    lsp.add_argument(
        "--degree", type=int, default=3, help="max AARA degree per function"
    )
    lsp.add_argument(
        "--cache-dir",
        default=None,
        help=f"incremental artifact directory (default {DEFAULT_INCR_CACHE})",
    )
    lsp.add_argument(
        "--no-cache",
        action="store_true",
        help="disable artifact persistence (every edit recomputes its cone)",
    )
    lsp.add_argument(
        "--trusted",
        action="store_true",
        help="lift the untrusted-source execution budget",
    )
    lsp.set_defaults(func=cmd_lsp)

    static = sub.add_parser("static", help="conventional AARA only")
    static.add_argument("program")
    static.add_argument("--entry", required=True)
    static.add_argument("--degree", type=int, default=3, help="max degree to try")
    static.set_defaults(func=cmd_static)

    bench = sub.add_parser(
        "bench",
        help="run one paper benchmark (or 'all') end to end; "
        "'bench resume <run-id>' continues an interrupted run",
    )
    bench.add_argument(
        "benchmark",
        help="benchmark name, e.g. QuickSort, 'all', or 'resume' to continue "
        "a journalled run",
    )
    bench.add_argument(
        "run_id_pos",
        nargs="?",
        default=None,
        metavar="run-id",
        help="run id to resume (only with 'bench resume')",
    )
    bench.add_argument("--method", default="all")
    bench.add_argument("--samples", type=int, default=25)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default 1; resume inherits the journalled value)",
    )
    bench.add_argument("--cache", default=None, help="on-disk result cache directory")
    bench.add_argument(
        "--run-id",
        default=None,
        help="name this run's journal directory (default: generated timestamp id)",
    )
    bench.add_argument(
        "--runs-dir",
        default=None,
        help="parent directory for run journals (default: $REPRO_RUNS_DIR or ./runs)",
    )
    bench.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the write-ahead run journal (run is not resumable)",
    )
    bench.add_argument(
        "--sampler-engine",
        choices=["batched", "perchain"],
        default=None,
        help="pin the MCMC sampler engine for this run (and its workers); "
        "default: $REPRO_SAMPLER or 'batched'.  Both engines draw "
        "bit-identical chains — this only changes execution layout",
    )
    bench.add_argument("--metrics", default=None, help="write per-task metrics JSON here")
    bench.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record a cross-process execution trace into DIR (JSONL per "
        "process + merged Chrome trace.json; also enabled by REPRO_TRACE)",
    )
    bench.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task wall-clock watchdog in seconds (default: none)",
    )
    failmode = bench.add_mutually_exclusive_group()
    failmode.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the whole run on the first failed cell (exit nonzero)",
    )
    failmode.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="render partial tables with footnoted failures (default)",
    )
    bench.add_argument(
        "--faults",
        default=None,
        help="fault-injection spec (see repro.faultinject), e.g. "
        "'worker-crash:match=QuickSort/*:count=1'",
    )
    bench.set_defaults(func=cmd_bench)

    cache = sub.add_parser("cache", help="manage an on-disk result cache directory")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_gc = cache_sub.add_parser(
        "gc",
        help="evict least-recently-used entries over a size cap; sweep stale "
        "*.tmp files left by killed writers",
    )
    cache_gc.add_argument("dir", help="cache directory (from bench --cache)")
    cache_gc.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="LRU-evict entries until the cache is under this size (default: no cap)",
    )
    cache_gc.add_argument(
        "--tmp-age",
        type=float,
        default=60.0,
        help="remove *.tmp files older than this many seconds (default: 60)",
    )
    cache_gc.add_argument(
        "--drop-quarantined",
        action="store_true",
        help="also delete *.json.quarantined corruption evidence",
    )
    cache_gc.set_defaults(func=cmd_cache)
    cache_wipe = cache_sub.add_parser("wipe", help="remove every cache file")
    cache_wipe.add_argument("dir", help="cache directory (from bench --cache)")
    cache_wipe.set_defaults(func=cmd_cache)

    runs = sub.add_parser("runs", help="manage the run-journal directory")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_gc = runs_sub.add_parser(
        "gc",
        help="prune old runs/<run-id>/ directories by age and total-size cap "
        "(mirrors 'cache gc'; only directories holding a journal.jsonl are "
        "touched)",
    )
    runs_gc.add_argument(
        "dir",
        nargs="?",
        default=None,
        help="runs directory (default: $REPRO_RUNS_DIR or ./runs)",
    )
    runs_gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="remove runs whose journal is older than this many days",
    )
    runs_gc.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="evict oldest runs until the directory is under this size",
    )
    runs_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )
    runs_gc.set_defaults(func=cmd_runs)

    trace = sub.add_parser("trace", help="inspect a --trace directory")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="per-stage time breakdown + slowest spans per cell"
    )
    trace_summary.add_argument("dir", help="trace directory (from bench --trace)")
    trace_summary.add_argument(
        "--top", type=int, default=3, help="slowest spans shown per cell"
    )
    trace_summary.set_defaults(func=cmd_trace)
    trace_export = trace_sub.add_parser(
        "export", help="merge per-process JSONL files into a Chrome trace JSON"
    )
    trace_export.add_argument("dir", help="trace directory (from bench --trace)")
    trace_export.add_argument(
        "--out", default=None, help="output path (default: DIR/trace.json)"
    )
    trace_export.set_defaults(func=cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="run the bound-inference daemon (POST /analyze, GET /status/<id>, GET /healthz)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787, help="TCP port (0 picks a free one)"
    )
    serve.add_argument("--jobs", type=int, default=2, help="pool worker processes")
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=16,
        help="bounded admission queue depth (full => 429 + Retry-After)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=20.0,
        help="per-client sustained requests/second (<= 0 disables rate limiting)",
    )
    serve.add_argument(
        "--burst", type=float, default=40.0, help="per-client token-bucket burst"
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=120.0,
        help="default per-request deadline in seconds",
    )
    serve.add_argument(
        "--latency-budget",
        type=float,
        default=10.0,
        help="sampler-stage latency budget feeding the circuit breaker",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        help="seconds before the breaker decays one degradation level",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2, help="attempts per request after worker crashes"
    )
    serve.add_argument(
        "--grace",
        type=float,
        default=10.0,
        help="SIGTERM drain window for in-flight requests (exit 75)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="shared result cache; hits are served even when shedding load",
    )
    serve.add_argument(
        "--runs-dir",
        default=None,
        help=f"request journal root (default ${ENV_RUNS_DIR} or ./runs)",
    )
    serve.add_argument(
        "--api-key",
        action="append",
        metavar="KEY=TENANT",
        help="accept KEY as TENANT's credential (repeatable; unset disables auth)",
    )
    serve.add_argument(
        "--quota-concurrency",
        type=int,
        default=0,
        help="per-tenant in-flight request cap (<= 0 disables)",
    )
    serve.add_argument(
        "--quota-cpu-seconds",
        type=float,
        default=0.0,
        help="per-tenant worker cpu-seconds per quota window (<= 0 disables)",
    )
    serve.add_argument(
        "--quota-window",
        type=float,
        default=60.0,
        help="sliding window for the cpu-second quota, in seconds",
    )
    budgets = serve.add_argument_group(
        "execution budgets",
        "caps applied to ad-hoc 'source' submissions (defaults: the "
        "untrusted profile; registry benchmarks run unbudgeted)",
    )
    budgets.add_argument("--budget-max-source-chars", type=int, default=None, metavar="N")
    budgets.add_argument("--budget-max-tokens", type=int, default=None, metavar="N")
    budgets.add_argument("--budget-max-nesting-depth", type=int, default=None, metavar="N")
    budgets.add_argument("--budget-eval-steps", type=int, default=None, metavar="N")
    budgets.add_argument("--budget-eval-call-depth", type=int, default=None, metavar="N")
    budgets.add_argument("--budget-eval-value-size", type=int, default=None, metavar="N")
    budgets.add_argument("--budget-lp-variables", type=int, default=None, metavar="N")
    budgets.add_argument("--budget-lp-constraints", type=int, default=None, metavar="N")
    serve.set_defaults(func=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop load generator replaying the benchmark suite against a daemon",
    )
    loadgen.add_argument("--url", default="http://127.0.0.1:8787")
    loadgen.add_argument("--requests", type=int, default=50)
    loadgen.add_argument(
        "--rate", type=float, default=10.0, help="mean arrival rate, requests/second"
    )
    loadgen.add_argument("--seed", type=int, default=0, help="arrival-schedule seed")
    loadgen.add_argument(
        "--benchmarks",
        default=",".join(("MapAppend", "Concat")),
        help="comma-separated registry names to draw from",
    )
    loadgen.add_argument(
        "--methods",
        default="bayespc,bayeswc,opt",
        help="comma-separated methods to draw from",
    )
    loadgen.add_argument("--samples", type=int, default=10, help="posterior samples per request")
    loadgen.add_argument(
        "--seeds",
        type=int,
        default=2,
        help="distinct request seeds (small pool => repeat requests hit the cache)",
    )
    loadgen.add_argument(
        "--wait-timeout",
        type=float,
        default=120.0,
        help="per-request long-poll bound in seconds",
    )
    loadgen.add_argument(
        "--out", default="BENCH_server.json", help="latency/taxonomy report path"
    )
    loadgen.add_argument(
        "--check",
        action="store_true",
        help="exit 2 unless every request reached a terminal response",
    )
    loadgen.add_argument(
        "--hostile",
        default=None,
        metavar="DIR",
        help="mix in programs from DIR as raw 'source' submissions",
    )
    loadgen.add_argument(
        "--hostile-fraction",
        type=float,
        default=0.25,
        help="fraction of arrivals drawn from the hostile corpus",
    )
    loadgen.add_argument(
        "--api-key", default=None, help="X-Api-Key header for every request"
    )
    loadgen.set_defaults(func=cmd_loadgen)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    con = configure_console(verbosity=args.verbose - args.quiet)
    telemetry.ensure_from_env()
    try:
        return args.func(args)
    except KeyboardInterrupt:
        from .errors import EXIT_INTERRUPTED

        con.error("interrupted")
        return EXIT_INTERRUPTED
    except ReproError as exc:
        con.error(f"error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
