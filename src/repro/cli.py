"""Command-line driver, mirroring the paper artifact's entry point.

Each analysis run requires (Section 7, "Implementation"):
(i) a program annotated with ``Raml.tick`` and ``Raml.stat``,
(ii) inputs for runtime-cost data generation, and
(iii) a configuration (degree, technique, sampler settings).

Examples::

    hybrid-aara analyze prog.ml --entry quicksort --method bayeswc \
        --degree 2 --sizes 5:100:5 --samples 100
    hybrid-aara static prog.ml --entry quicksort --degree 2
    hybrid-aara bench QuickSort --method opt --samples 20
    hybrid-aara bench all --jobs 4 --trace /tmp/trace
    hybrid-aara trace summary /tmp/trace

Output goes through :mod:`repro.telemetry.console`: ``-q`` hides status
lines, ``-v`` adds detail, and ``REPRO_LOG=json`` turns every line into
one JSON object for CI log scraping.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from . import telemetry
from .aara import run_conventional
from .config import AnalysisConfig
from .errors import ReproError
from .inference import collect_dataset, run_analysis
from .lang import ast as A
from .lang import compile_program, from_python
from .suite import get_benchmark
from .telemetry.console import configure as configure_console, get_console


def _parse_sizes(spec: str):
    parts = [int(p) for p in spec.split(":")]
    if len(parts) == 1:
        return [parts[0]]
    if len(parts) == 2:
        return list(range(parts[0], parts[1] + 1))
    return list(range(parts[0], parts[1] + 1, parts[2]))


def _random_value(rng, typ, n):
    """Draw one random argument of type ``typ`` at size parameter ``n``."""
    if isinstance(typ, A.TList):
        if isinstance(typ.elem, (A.TInt, A.TBool, A.TUnit)):
            return from_python([_random_value(rng, typ.elem, n) for _ in range(n)])
        # structured elements (nested lists, tuples): keep totals near n
        inner = max(1, n // 2)
        return from_python([_random_value(rng, typ.elem, inner) for _ in range(n)])
    if isinstance(typ, A.TProd):
        return from_python(tuple(_random_value(rng, item, n) for item in typ.items))
    if isinstance(typ, A.TInt):
        return int(rng.integers(0, 1000))
    if isinstance(typ, A.TBool):
        return bool(rng.integers(0, 2))
    if isinstance(typ, A.TUnit):
        return from_python(None)
    raise ReproError(f"cannot generate random inputs for parameter type {typ}")


def _random_inputs(program, entry, sizes, reps, seed):
    rng = np.random.default_rng(seed)
    fun = program[entry]
    if fun.fun_type is None:
        raise ReproError(f"function {entry!r} has no inferred type")
    inputs = []
    for _ in range(reps):
        for n in sizes:
            inputs.append([_random_value(rng, typ, n) for typ in fun.fun_type.params])
    return inputs


def cmd_collect(args) -> int:
    from .inference.serialize import save_dataset

    con = get_console()
    with open(args.program) as handle:
        source = handle.read()
    program = compile_program(source)
    sizes = _parse_sizes(args.sizes)
    inputs = _random_inputs(program, args.entry, sizes, args.reps, args.seed)
    dataset = collect_dataset(program, args.entry, inputs)
    save_dataset(dataset, args.out)
    con.info(
        f"collected {dataset.total_observations()} observations at "
        f"{len(dataset.labels())} stat site(s) from {dataset.num_runs} runs "
        f"-> {args.out}",
        observations=dataset.total_observations(),
        labels=len(dataset.labels()),
        runs=dataset.num_runs,
        out=args.out,
    )
    return 0


def cmd_analyze(args) -> int:
    with open(args.program) as handle:
        source = handle.read()
    program = compile_program(source)
    config = AnalysisConfig(
        degree=args.degree,
        num_posterior_samples=args.samples,
        seed=args.seed,
        objective=args.objective,
    )
    if args.data:
        from .inference.serialize import load_dataset

        dataset = load_dataset(args.data)
    else:
        sizes = _parse_sizes(args.sizes)
        inputs = _random_inputs(program, args.entry, sizes, args.reps, args.seed)
        dataset = collect_dataset(program, args.entry, inputs)
    result = run_analysis(program, args.entry, dataset, config, args.method)
    if args.save_result:
        from .inference.serialize import save_result

        save_result(result, args.save_result)
    con = get_console()
    con.result(f"method      : {result.method} ({result.mode})")
    con.result(f"bounds      : {len(result.bounds)} posterior sample(s)")
    con.result(f"runtime     : {result.runtime_seconds:.2f}s")
    if result.failures:
        con.result(f"failures    : {result.failures}")
    for key, value in result.diagnostics.items():
        con.result(f"  {key}: {value:.4g}")
    show = result.bounds[: args.show]
    for i, bound in enumerate(show):
        con.result(f"bound[{i}]    : {bound.describe()}")
    if len(result.bounds) > 1:
        med = result.median_coefficients()
        con.result("median coefficients: " + json.dumps([round(v, 4) for v in med]))
    return 0


def cmd_static(args) -> int:
    with open(args.program) as handle:
        source = handle.read()
    program = compile_program(source)
    verdict = run_conventional(program, args.entry, max_degree=args.degree)
    con = get_console()
    con.result(f"status : {verdict.status}")
    if verdict.bound is not None:
        con.result(f"degree : {verdict.degree}")
        con.result(f"bound  : {verdict.bound.describe()}")
    elif verdict.detail:
        con.result(f"detail : {verdict.detail}")
    con.result(f"runtime: {verdict.runtime_seconds:.2f}s")
    return 0 if verdict.succeeded else 1


def cmd_bench(args) -> int:
    import os
    import tempfile

    from .evalharness import EvalRunner, RunnerReport, render_gap_table, render_table1, run_table1
    from .faultinject import ENV_SPEC, ENV_STATE
    from .suite import all_benchmarks

    con = get_console()
    if args.faults:
        # Chaos-testing mode: activate the fault plan for this process and
        # every worker it forks (they inherit the environment).
        os.environ[ENV_SPEC] = args.faults
        os.environ.setdefault(ENV_STATE, tempfile.mkdtemp(prefix="repro-faults-"))
    trace_dir = args.trace or os.environ.get(telemetry.ENV_TRACE)
    if trace_dir:
        # the env var propagates tracing to forked pool workers (and is the
        # backup channel when a replacement pool respawns them)
        os.environ[telemetry.ENV_TRACE] = trace_dir
        telemetry.enable(trace_dir)
    if args.benchmark == "all":
        specs = all_benchmarks()
    else:
        specs = [get_benchmark(args.benchmark)]
    config = AnalysisConfig(
        num_posterior_samples=args.samples,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache,
        task_timeout=args.task_timeout,
        keep_going=not args.fail_fast,
    )
    methods = [args.method] if args.method != "all" else ("opt", "bayeswc", "bayespc")
    with EvalRunner(
        jobs=args.jobs,
        cache_dir=args.cache,
        task_timeout=args.task_timeout,
        fail_fast=args.fail_fast,
    ) as runner:
        runs = run_table1(specs, config, seed=args.seed, methods=methods, runner=runner)
        con.result(render_table1(runs))
        failed_cells = 0
        for run in runs:
            con.result()
            con.result(render_gap_table(run))
            for key, message in run.errors.items():
                con.result(f"error {key}: {message}")
            failed_cells += len(run.failures)
        if runner.history:
            metrics = {
                "tasks": len(runner.history),
                "cache_hits": sum(
                    1 for o in runner.history if o["metrics"].get("cache_hit")
                ),
                "task_wall_seconds": round(
                    sum(o["metrics"].get("wall_seconds", 0.0) for o in runner.history), 3
                ),
            }
            con.result()
            con.info(
                f"runner: {metrics['tasks']} task(s), jobs={runner.jobs}, "
                f"{metrics['cache_hits']} cache hit(s), "
                f"{metrics['task_wall_seconds']}s task time",
                **metrics,
            )
        if args.metrics:
            report_json = RunnerReport(
                tasks=[], outcomes=runner.history, jobs=runner.jobs, wall_seconds=0.0
            )
            try:
                report_json.write_metrics(args.metrics)
            except OSError as exc:
                raise ReproError(f"cannot write metrics to {args.metrics}: {exc}")
            con.info(f"per-task metrics -> {args.metrics}", path=args.metrics)
    if trace_dir:
        from .telemetry.chrome import write_chrome_trace

        telemetry.disable()
        try:
            n_events = write_chrome_trace(trace_dir)
        except OSError as exc:
            raise ReproError(f"cannot export trace from {trace_dir}: {exc}")
        con.info(
            f"trace: {n_events} event(s) -> {os.path.join(trace_dir, 'trace.json')} "
            f"(chrome://tracing or https://ui.perfetto.dev)",
            events=n_events,
            trace_dir=trace_dir,
        )
    if failed_cells:
        # Under --fail-fast a mid-run abort already surfaced as ReproError
        # (exit 2); this branch covers failures that slipped through before
        # the abort fired or when every task had already been submitted.
        if args.fail_fast:
            con.error(f"error: {failed_cells} cell(s) failed")
            return 1
        con.warn(
            f"warning: {failed_cells} cell(s) failed; remaining cells are "
            "unaffected (see footnotes above)"
        )
    return 0


def cmd_trace(args) -> int:
    from .telemetry.chrome import write_chrome_trace
    from .telemetry.summary import render_summary, summarize_trace_dir

    con = get_console()
    if args.trace_command == "summary":
        summary = summarize_trace_dir(args.dir, top=args.top)
        if not summary.events:
            raise ReproError(f"no trace events found in {args.dir}")
        con.result(render_summary(summary, str(args.dir), top=args.top))
        return 0
    # export
    try:
        n_events = write_chrome_trace(args.dir, args.out)
    except OSError as exc:
        raise ReproError(f"cannot export trace from {args.dir}: {exc}")
    if not n_events:
        raise ReproError(f"no trace events found in {args.dir}")
    out = args.out or f"{args.dir}/trace.json"
    con.info(f"wrote {n_events} event(s) -> {out}", events=n_events, out=str(out))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hybrid-aara",
        description="Hybrid AARA: resource bounds with static analysis and Bayesian inference",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more status output (repeatable)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="suppress status lines (results still print)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="data-driven/hybrid analysis of a program")
    analyze.add_argument("program", help="path to the annotated source file")
    analyze.add_argument("--entry", required=True, help="function to analyze")
    analyze.add_argument("--method", choices=["opt", "bayeswc", "bayespc"], default="opt")
    analyze.add_argument("--degree", type=int, default=1)
    analyze.add_argument("--sizes", default="5:50:5", help="input sizes lo:hi[:step]")
    analyze.add_argument("--reps", type=int, default=2)
    analyze.add_argument("--samples", type=int, default=50, help="posterior sample count M")
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--objective", choices=["sum", "degree"], default="sum")
    analyze.add_argument("--show", type=int, default=3, help="bounds to print")
    analyze.add_argument("--data", help="load a dataset collected with 'collect'")
    analyze.add_argument("--save-result", help="archive the posterior result as JSON")
    analyze.set_defaults(func=cmd_analyze)

    collect = sub.add_parser("collect", help="collect runtime cost data to a file")
    collect.add_argument("program")
    collect.add_argument("--entry", required=True)
    collect.add_argument("--sizes", default="5:50:5")
    collect.add_argument("--reps", type=int, default=2)
    collect.add_argument("--seed", type=int, default=0)
    collect.add_argument("--out", required=True)
    collect.set_defaults(func=cmd_collect)

    static = sub.add_parser("static", help="conventional AARA only")
    static.add_argument("program")
    static.add_argument("--entry", required=True)
    static.add_argument("--degree", type=int, default=3, help="max degree to try")
    static.set_defaults(func=cmd_static)

    bench = sub.add_parser("bench", help="run one paper benchmark (or 'all') end to end")
    bench.add_argument("benchmark", help="benchmark name, e.g. QuickSort, or 'all'")
    bench.add_argument("--method", default="all")
    bench.add_argument("--samples", type=int, default=25)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--jobs", type=int, default=1, help="worker processes (1 = in-process)")
    bench.add_argument("--cache", default=None, help="on-disk result cache directory")
    bench.add_argument("--metrics", default=None, help="write per-task metrics JSON here")
    bench.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record a cross-process execution trace into DIR (JSONL per "
        "process + merged Chrome trace.json; also enabled by REPRO_TRACE)",
    )
    bench.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task wall-clock watchdog in seconds (default: none)",
    )
    failmode = bench.add_mutually_exclusive_group()
    failmode.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the whole run on the first failed cell (exit nonzero)",
    )
    failmode.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="render partial tables with footnoted failures (default)",
    )
    bench.add_argument(
        "--faults",
        default=None,
        help="fault-injection spec (see repro.faultinject), e.g. "
        "'worker-crash:match=QuickSort/*:count=1'",
    )
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser("trace", help="inspect a --trace directory")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="per-stage time breakdown + slowest spans per cell"
    )
    trace_summary.add_argument("dir", help="trace directory (from bench --trace)")
    trace_summary.add_argument(
        "--top", type=int, default=3, help="slowest spans shown per cell"
    )
    trace_summary.set_defaults(func=cmd_trace)
    trace_export = trace_sub.add_parser(
        "export", help="merge per-process JSONL files into a Chrome trace JSON"
    )
    trace_export.add_argument("dir", help="trace directory (from bench --trace)")
    trace_export.add_argument(
        "--out", default=None, help="output path (default: DIR/trace.json)"
    )
    trace_export.set_defaults(func=cmd_trace)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    con = configure_console(verbosity=args.verbose - args.quiet)
    telemetry.ensure_from_env()
    try:
        return args.func(args)
    except ReproError as exc:
        con.error(f"error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
