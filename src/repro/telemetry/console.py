"""Structured console output for the CLI (status vs results, human vs CI).

The CLI used ad-hoc ``print()`` everywhere, which made "quiet mode" and
machine-readable CI logs impossible without grepping.  This helper keeps
the default human output byte-identical while adding:

* ``-v`` / ``-q`` verbosity control — ``info`` status lines disappear
  under ``-q``, ``debug`` lines appear under ``-v``; ``result`` lines
  (tables, reports — the command's actual output) always print;
* ``REPRO_LOG=json`` — every line becomes one JSON object with
  ``level``, ``msg`` and any structured fields, for CI log scraping.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Optional, TextIO

ENV_LOG = "REPRO_LOG"


class Console:
    """Leveled writer; one instance is configured per CLI invocation."""

    def __init__(
        self,
        verbosity: int = 0,
        json_mode: Optional[bool] = None,
        stream: Optional[TextIO] = None,
        err_stream: Optional[TextIO] = None,
    ) -> None:
        self.verbosity = verbosity
        self.json_mode = (
            json_mode
            if json_mode is not None
            else os.environ.get(ENV_LOG, "").lower() == "json"
        )
        self._stream = stream
        self._err_stream = err_stream

    # streams resolved lazily so pytest's capsys redirection is honored
    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stdout

    @property
    def err_stream(self) -> TextIO:
        return self._err_stream if self._err_stream is not None else sys.stderr

    def _write(self, level: str, msg: str, stream: TextIO, fields: dict) -> None:
        if self.json_mode:
            payload = {"level": level, "msg": msg}
            payload.update(fields)
            print(json.dumps(payload, default=str), file=stream)
        else:
            print(msg, file=stream)

    def result(self, msg: str = "", **fields: Any) -> None:
        """Primary command output (tables, bounds); never suppressed."""
        self._write("result", msg, self.stream, fields)

    def info(self, msg: str, **fields: Any) -> None:
        """Status lines; hidden by ``-q``."""
        if self.verbosity >= 0:
            self._write("info", msg, self.stream, fields)

    def debug(self, msg: str, **fields: Any) -> None:
        """Extra detail; shown only with ``-v``."""
        if self.verbosity >= 1:
            self._write("debug", msg, self.stream, fields)

    def warn(self, msg: str, **fields: Any) -> None:
        """Warnings on stderr; hidden by ``-q``."""
        if self.verbosity >= 0:
            self._write("warning", msg, self.err_stream, fields)

    def error(self, msg: str, **fields: Any) -> None:
        """Errors on stderr; never suppressed."""
        self._write("error", msg, self.err_stream, fields)


#: process-wide console; reconfigured by the CLI from -v/-q flags
CONSOLE = Console()


def configure(verbosity: int = 0, json_mode: Optional[bool] = None) -> Console:
    """Reconfigure the shared console (called once by ``cli.main``)."""
    global CONSOLE
    CONSOLE = Console(verbosity=verbosity, json_mode=json_mode)
    return CONSOLE


def get_console() -> Console:
    return CONSOLE
