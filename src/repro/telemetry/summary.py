"""Trace-driven run reports: per-stage time breakdowns from a trace dir.

Turns the merged span stream of a traced run into the numbers the
ROADMAP needs before any perf work: *which pipeline stage inside which
Table 1 cell burns the time*.  Attribution walks each span's parent
chain to its root ``runner.task`` span (the worker wraps every task in
one, tagged with the cell's task id) and charges the span's **self
time** — duration minus direct children — to its stage, so the stage
totals of a cell partition the cell's wall clock exactly instead of
double-counting nested spans.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .chrome import load_events

#: cell label for spans recorded outside any runner.task root (the
#: parent process's submit/merge bookkeeping, ad-hoc spans in tests)
UNTRACKED = "(untracked)"


@dataclass
class CellTiming:
    """Aggregated timings for one benchmark×mode×method cell."""

    cell: str
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    stages: Dict[str, float] = field(default_factory=dict)
    #: (duration, span name, attrs) of the slowest spans, descending
    slowest: List[Tuple[float, str, Dict[str, Any]]] = field(default_factory=list)


@dataclass
class TraceSummary:
    """Everything ``trace summary`` renders."""

    events: int
    processes: int
    cells: Dict[str, CellTiming]
    counters: Dict[str, float]

    def stage_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for cell in self.cells.values():
            for stage, seconds in cell.stages.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals


def summarize_events(events: List[Dict[str, Any]], top: int = 3) -> TraceSummary:
    """Aggregate a merged event list into per-cell stage timings."""
    spans = [e for e in events if e.get("ev") == "span"]
    pids = {e.get("pid") for e in events}

    # parent links are only meaningful within one process's file
    by_pid: Dict[int, Dict[int, Dict[str, Any]]] = {}
    child_time: Dict[Tuple[int, int], float] = {}
    for event in spans:
        by_pid.setdefault(event["pid"], {})[event["id"]] = event
        parent = event.get("parent")
        if parent is not None:
            key = (event["pid"], parent)
            child_time[key] = child_time.get(key, 0.0) + float(event.get("dur", 0.0))

    root_cache: Dict[Tuple[int, int], str] = {}

    def cell_of(event: Dict[str, Any]) -> str:
        pid, index = event["pid"], by_pid[event["pid"]]
        key = (pid, event["id"])
        if key in root_cache:
            return root_cache[key]
        seen = []
        node: Optional[Dict[str, Any]] = event
        while node is not None:
            seen.append((pid, node["id"]))
            task = (node.get("args") or {}).get("task")
            if task is not None:
                break
            parent = node.get("parent")
            node = index.get(parent) if parent is not None else None
        cell = str((node.get("args") or {}).get("task")) if node is not None else UNTRACKED
        for k in seen:
            root_cache[k] = cell
        return cell

    cells: Dict[str, CellTiming] = {}
    for event in spans:
        cell = cells.setdefault(cell_of(event), CellTiming(cell_of(event)))
        dur = float(event.get("dur", 0.0))
        self_time = max(0.0, dur - child_time.get((event["pid"], event["id"]), 0.0))
        stage = event.get("stage", "span")
        cell.stages[stage] = cell.stages.get(stage, 0.0) + self_time
        if (event.get("args") or {}).get("task") is not None:
            cell.wall_seconds += dur
            cell.cpu_seconds += float(event.get("cpu", 0.0))
        else:
            cell.slowest.append((dur, event["name"], dict(event.get("args") or {})))

    for cell in cells.values():
        cell.slowest.sort(key=lambda item: -item[0])
        del cell.slowest[max(0, top):]
        if cell.wall_seconds == 0.0:  # no root span (ad-hoc traces)
            cell.wall_seconds = sum(cell.stages.values())

    counters: Dict[str, float] = {}
    for event in events:
        if event.get("ev") == "counter":
            counters[event["name"]] = counters.get(event["name"], 0.0) + float(
                event.get("value", 0.0)
            )
    return TraceSummary(
        events=len(events), processes=len(pids), cells=cells, counters=counters
    )


def summarize_trace_dir(trace_dir: os.PathLike, top: int = 3) -> TraceSummary:
    return summarize_events(load_events(trace_dir), top=top)


# -- rendering --------------------------------------------------------------


def render_summary(summary: TraceSummary, trace_dir: str = "", top: int = 3) -> str:
    """The ``trace summary`` report: stage bars, per-cell lines, top spans."""
    from ..evalharness.asciiplot import render_hbar_chart

    lines: List[str] = []
    title = f"== trace summary{': ' + trace_dir if trace_dir else ''} =="
    lines.append(title)
    lines.append(
        f"{summary.events} event(s) from {summary.processes} process(es), "
        f"{len(summary.cells)} cell(s)"
    )
    lines.append("")
    lines.append("per-stage wall time (span self-time, all cells)")
    totals = sorted(summary.stage_totals().items(), key=lambda kv: -kv[1])
    lines.append(render_hbar_chart([(stage, secs) for stage, secs in totals]))
    lines.append("")

    tracked = sorted(
        (c for name, c in summary.cells.items() if name != UNTRACKED),
        key=lambda c: -c.wall_seconds,
    )
    if tracked:
        lines.append("per-cell stage breakdown (slowest first)")
        for cell in tracked:
            stages = sorted(cell.stages.items(), key=lambda kv: -kv[1])
            detail = ", ".join(f"{stage} {secs:.2f}s" for stage, secs in stages)
            lines.append(f"  {cell.cell:40s} {cell.wall_seconds:8.2f}s | {detail}")
            for dur, name, args in cell.slowest[:top]:
                attrs = " ".join(f"{k}={v}" for k, v in sorted(args.items()))
                lines.append(f"      {dur:8.3f}s  {name}" + (f"  [{attrs}]" if attrs else ""))
        lines.append("")
    if summary.counters:
        lines.append("counters")
        for name, value in sorted(summary.counters.items()):
            lines.append(f"  {name:36s} {value:g}")
    return "\n".join(lines)
