"""Cross-process observability for the evaluation pipeline.

The Table 1 grid is a benchmark × method × mode matrix where each cell
runs a multi-stage pipeline (compile → data collection → AARA constraint
generation → LP solving → MCMC sampling → posterior summarization).
This module records *where inside a cell* the time goes:

* **spans** — hierarchical timed regions (``with span("lp.solve",
  variables=n):``) carrying wall and CPU time, a monotonic per-process
  id, a parent link (per-thread stack), and ``key=value`` attributes;
* **counters / gauges** — monotonic totals (leapfrog steps, LP
  fallbacks, cache hits, fault firings, …) and point-in-time values
  (acceptance rates);
* a **JSONL event sink** — every process appends complete JSON lines to
  its *own* ``trace-<pid>.jsonl`` file inside the trace directory
  (``O_APPEND`` single-write appends, so lines are atomic and a worker
  killed by the runner's watchdog leaves a valid prefix, never a torn
  file).  The parent merges the per-pid files post-run
  (:mod:`repro.telemetry.chrome`, :mod:`repro.telemetry.summary`).

Fast path
---------
Telemetry is **off** unless enabled explicitly (:func:`enable`) or via
the ``REPRO_TRACE=<dir>`` environment variable (which forked pool
workers inherit).  When off, :func:`span` returns a shared no-op
singleton (no object or dict allocated per call) and :func:`counter` /
:func:`gauge` return after a single module-global flag test, so the
instrumented pipeline is byte-identical in results *and* rng streams
whether tracing is on or off — tracing only ever observes.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

#: environment variable naming the trace directory (inherited by workers)
ENV_TRACE = "REPRO_TRACE"

#: trace file name pattern: one file per writing process
TRACE_FILE_PREFIX = "trace-"
TRACE_FILE_SUFFIX = ".jsonl"

# -- module state (the disabled fast path reads only ``_enabled``) ----------

_enabled = False
_trace_dir: Optional[str] = None
_sink_fd: Optional[int] = None
_sink_pid: Optional[int] = None
_sink_lock = threading.Lock()
_ids = itertools.count(1)  # monotonic span ids (per process)
_local = threading.local()  # .stack: active span stack; .accs: accumulators


def enabled() -> bool:
    """Is telemetry recording events?"""
    return _enabled


def enable(trace_dir: Optional[os.PathLike] = None) -> None:
    """Turn recording on, optionally writing events to ``trace_dir``.

    With ``trace_dir=None`` spans are still timed and stage accumulators
    filled (for in-process metrics) but nothing is written to disk.
    """
    global _enabled, _trace_dir, _sink_fd, _sink_pid
    with _sink_lock:
        _close_sink_locked()
        _trace_dir = str(trace_dir) if trace_dir is not None else None
        if _trace_dir is not None:
            os.makedirs(_trace_dir, exist_ok=True)
        _enabled = True


def disable() -> None:
    """Turn recording off and close the sink."""
    global _enabled, _trace_dir
    with _sink_lock:
        _close_sink_locked()
        _trace_dir = None
        _enabled = False


def ensure_from_env() -> bool:
    """Enable from ``REPRO_TRACE`` if set (cheap no-op otherwise).

    Called once per task on the worker side so pools started with any
    start method — not just fork — pick the trace directory up.
    """
    if _enabled:
        return True
    trace_dir = os.environ.get(ENV_TRACE)
    if trace_dir:
        enable(trace_dir)
        return True
    return False


def trace_path() -> Optional[str]:
    """This process's trace file path (None when not writing to disk)."""
    if _trace_dir is None:
        return None
    return os.path.join(_trace_dir, f"{TRACE_FILE_PREFIX}{os.getpid()}{TRACE_FILE_SUFFIX}")


def _close_sink_locked() -> None:
    global _sink_fd, _sink_pid
    if _sink_fd is not None:
        try:
            os.close(_sink_fd)
        except OSError:
            pass
    _sink_fd = None
    _sink_pid = None


def _emit(event: Dict[str, Any]) -> None:
    """Append one event line to this process's trace file.

    A forked pool worker inherits the parent's open fd; the pid check
    reopens a per-worker file so processes never interleave writes.
    Each event is one ``os.write`` on an ``O_APPEND`` fd — atomic for
    these line sizes, so a SIGKILLed worker cannot tear the file.
    """
    global _sink_fd, _sink_pid
    if _trace_dir is None:
        return
    pid = os.getpid()
    if _sink_fd is None or _sink_pid != pid:
        with _sink_lock:
            if _sink_fd is None or _sink_pid != pid:
                _close_sink_locked()
                try:
                    _sink_fd = os.open(
                        trace_path(), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                    )
                    _sink_pid = pid
                except OSError:
                    return
    try:
        os.write(_sink_fd, (json.dumps(event, default=str) + "\n").encode())
    except OSError:
        pass


# -- spans ------------------------------------------------------------------


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def stage_of(name: str) -> str:
    """A span's pipeline stage: its first dotted name component."""
    return name.split(".", 1)[0]


class _NullSpan:
    """The disabled fast path: one shared, stateless, reusable no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One timed region; use as a context manager."""

    __slots__ = ("name", "stage", "args", "id", "parent", "ts", "_t0", "_cpu0", "child_time")

    def __init__(self, name: str, args: Dict[str, Any]):
        self.name = name
        self.stage = str(args.pop("stage", None) or stage_of(name))
        self.args = args
        self.id = next(_ids)
        self.parent: Optional[int] = None
        self.ts = 0.0
        self._t0 = 0.0
        self._cpu0 = 0.0
        self.child_time = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (counts, sizes, …)."""
        self.args.update(attrs)

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self.parent = stack[-1].id
        stack.append(self)
        self.ts = time.time()
        self._cpu0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        dur = time.perf_counter() - self._t0
        cpu = time.process_time() - self._cpu0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].child_time += dur
        self_time = max(0.0, dur - self.child_time)
        for acc in getattr(_local, "accs", ()):
            acc.add(self.stage, self_time)
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        _emit(
            {
                "ev": "span",
                "name": self.name,
                "stage": self.stage,
                "ts": self.ts,
                "dur": dur,
                "cpu": cpu,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "id": self.id,
                "parent": self.parent,
                "args": self.args,
            }
        )
        return False


def span(name: str, **attrs):
    """A timed region; the shared no-op singleton when telemetry is off."""
    if not _enabled:
        return NULL_SPAN
    return Span(name, attrs)


def counter(name: str, value: float = 1, **attrs) -> None:
    """Record a monotonic increment (one flag test when disabled)."""
    if not _enabled:
        return
    _emit_metric("counter", name, value, attrs)


def gauge(name: str, value: float, **attrs) -> None:
    """Record a point-in-time value (one flag test when disabled)."""
    if not _enabled:
        return
    _emit_metric("gauge", name, value, attrs)


def _emit_metric(kind: str, name: str, value: float, attrs: Dict[str, Any]) -> None:
    stack = _stack()
    _emit(
        {
            "ev": kind,
            "name": name,
            "value": float(value),
            "ts": time.time(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "parent": stack[-1].id if stack else None,
            "args": attrs,
        }
    )


# -- per-stage wall-clock accumulation (metrics_json's stage aggregates) ----


class StageAccumulator:
    """Sums span *self* times per stage while registered.

    Self time (duration minus direct children) makes the stage totals
    partition the enclosing span exactly: their sum equals the root
    span's duration, so per-cell stage breakdowns add up to the cell's
    wall clock instead of double-counting nested spans.
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}

    def add(self, stage: str, seconds: float) -> None:
        self.totals[stage] = self.totals.get(stage, 0.0) + seconds

    def __enter__(self) -> "StageAccumulator":
        accs = getattr(_local, "accs", None)
        if accs is None:
            accs = _local.accs = []
        accs.append(self)
        return self

    def __exit__(self, *_exc) -> bool:
        accs = getattr(_local, "accs", [])
        if self in accs:
            accs.remove(self)
        return False


def stage_totals() -> Optional[StageAccumulator]:
    """An accumulator context when enabled, else None (zero-cost path)."""
    if not _enabled:
        return None
    return StageAccumulator()
