"""Merge per-process trace files and export Chrome ``trace_event`` JSON.

Each process in a traced run appends events to its own
``trace-<pid>.jsonl`` (see :mod:`repro.telemetry`); this module merges
them and converts to the Trace Event Format understood by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev):

* spans become complete events (``"ph": "X"``) with microsecond
  timestamps and durations, the span's stage as the category, and its
  attributes (plus id/parent links and CPU time) under ``args``;
* counters and gauges become counter events (``"ph": "C"``);
* each pid gets a ``process_name`` metadata event so the Perfetto track
  list reads "repro <pid>" instead of bare numbers.

A worker killed mid-run (watchdog, injected crash) leaves a valid
prefix of lines; :func:`load_events` skips anything unparsable, so one
dead worker can never poison the merged trace.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from . import TRACE_FILE_PREFIX, TRACE_FILE_SUFFIX

#: microseconds per second (trace_event timestamps are in µs)
_US = 1e6


def trace_files(trace_dir: os.PathLike) -> List[Path]:
    """All per-process trace files in a trace directory, sorted by name."""
    root = Path(trace_dir)
    return sorted(root.glob(f"{TRACE_FILE_PREFIX}*{TRACE_FILE_SUFFIX}"))


def load_events(trace_dir: os.PathLike) -> List[Dict[str, Any]]:
    """Merge every per-pid file into one time-ordered event list.

    Unparsable lines (a worker killed at the wrong instant, disk-full
    truncation) are skipped, not fatal.
    """
    events: List[Dict[str, Any]] = []
    for path in trace_files(trace_dir):
        try:
            text = path.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict) and "ev" in event:
                events.append(event)
    events.sort(key=lambda e: e.get("ts", 0.0))
    return events


def chrome_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert merged events to a Chrome ``trace_event`` document."""
    out: List[Dict[str, Any]] = []
    pids = []
    for event in events:
        pid = int(event.get("pid", 0))
        if pid not in pids:
            pids.append(pid)
        tid = int(event.get("tid", 0)) % 2**31  # thread idents overflow int32
        ts = float(event.get("ts", 0.0)) * _US
        if event["ev"] == "span":
            args = dict(event.get("args") or {})
            args["id"] = event.get("id")
            args["parent"] = event.get("parent")
            args["cpu_ms"] = round(float(event.get("cpu", 0.0)) * 1e3, 3)
            out.append(
                {
                    "ph": "X",
                    "name": event["name"],
                    "cat": event.get("stage", "span"),
                    "ts": ts,
                    "dur": float(event.get("dur", 0.0)) * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif event["ev"] in ("counter", "gauge"):
            out.append(
                {
                    "ph": "C",
                    "name": event["name"],
                    "cat": event["ev"],
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": {event["name"]: float(event.get("value", 0.0))},
                }
            )
    for pid in pids:
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro {pid}"},
            }
        )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    trace_dir: os.PathLike, out_path: Optional[os.PathLike] = None
) -> int:
    """Merge ``trace_dir`` and write ``trace.json``; returns event count.

    The write is atomic (temp file + ``os.replace``) so re-merging over
    a previous export can never leave a half-written document.
    """
    document = chrome_trace(load_events(trace_dir))
    out = Path(out_path) if out_path is not None else Path(trace_dir) / "trace.json"
    tmp = out.with_suffix(out.suffix + ".tmp")
    tmp.write_text(json.dumps(document))
    os.replace(tmp, out)
    return len(document["traceEvents"])
