"""A minimal Language Server Protocol server over the incremental engine.

Stdlib-only JSON-RPC 2.0 with ``Content-Length`` framing on arbitrary
binary streams (stdin/stdout under ``hybrid-aara lsp``, in-memory pipes
in tests).  Scope is deliberately small: full-text document sync, push
diagnostics after every open/change/save, and inlay hints carrying each
function's inferred resource bound — enough for an edit loop in any
LSP-capable editor.

Every analysis goes through
:class:`~repro.analysis.incremental.IncrementalEngine`, so the cost of a
keystroke is proportional to the call-graph cone the edit touched, and a
server pointed at a persistent artifact directory starts warm.
Untrusted-source execution budgets apply by default: a hostile document
degrades to ``R001``/``R002``/``R004`` diagnostics instead of stalling
the editor.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO, Callable, Dict, Optional

from .. import telemetry
from .incremental import IncrementalEngine, IncrementalResult

#: LSP DiagnosticSeverity: Error=1, Warning=2, Information=3, Hint=4
_SEVERITY = {"error": 1, "warning": 2, "note": 3}

_PARSE_ERROR = -32700
_METHOD_NOT_FOUND = -32601
_INVALID_REQUEST = -32600


def read_message(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one Content-Length-framed JSON-RPC message; None on EOF."""
    length: Optional[int] = None
    while True:
        line = stream.readline()
        if not line:
            return None
        line = line.strip()
        if not line:
            break
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    if length is None:
        raise ValueError("missing Content-Length header")
    body = stream.read(length)
    if len(body) < length:
        return None
    return json.loads(body.decode("utf-8"))


def write_message(stream: BinaryIO, message: Dict[str, Any]) -> None:
    body = json.dumps(message).encode("utf-8")
    stream.write(b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n")
    stream.write(body)
    stream.flush()


def _diag_to_lsp(d) -> Dict[str, Any]:
    if d.span is None:
        start = {"line": 0, "character": 0}
        end = {"line": 0, "character": 0}
    else:
        start = {"line": d.span.line - 1, "character": d.span.col - 1}
        end = {
            "line": d.span.line - 1,
            "character": d.span.col - 1 + max(d.span.length, 1),
        }
    out = {
        "range": {"start": start, "end": end},
        "severity": _SEVERITY.get(d.severity, 3),
        "code": d.code,
        "source": "hybrid-aara",
        "message": d.message,
    }
    if d.notes:
        out["message"] = d.message + "\n" + "\n".join(f"note: {n}" for n in d.notes)
    return out


class LspServer:
    """One server instance bound to a reader/writer stream pair."""

    def __init__(
        self,
        reader: BinaryIO,
        writer: BinaryIO,
        engine: Optional[IncrementalEngine] = None,
        entry: Optional[str] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.engine = engine or IncrementalEngine()
        self.entry = entry
        self.log = log or (lambda text: None)
        self.documents: Dict[str, str] = {}
        #: uri -> last analysis (diagnostics published, hints served from it)
        self.results: Dict[str, IncrementalResult] = {}
        self._shutdown = False
        self._running = False

    # -- transport ----------------------------------------------------------

    def _reply(self, msg_id: Any, result: Any) -> None:
        write_message(self.writer, {"jsonrpc": "2.0", "id": msg_id, "result": result})

    def _reply_error(self, msg_id: Any, code: int, message: str) -> None:
        write_message(
            self.writer,
            {"jsonrpc": "2.0", "id": msg_id, "error": {"code": code, "message": message}},
        )

    def _notify(self, method: str, params: Dict[str, Any]) -> None:
        write_message(
            self.writer, {"jsonrpc": "2.0", "method": method, "params": params}
        )

    # -- analysis -----------------------------------------------------------

    def _analyze(self, uri: str) -> None:
        source = self.documents.get(uri)
        if source is None:
            return
        with telemetry.span("lsp.analyze", uri=uri):
            result = self.engine.analyze(source, path=uri, entry=self.entry)
        self.results[uri] = result
        self._notify(
            "textDocument/publishDiagnostics",
            {
                "uri": uri,
                "diagnostics": [_diag_to_lsp(d) for d in result.diagnostics],
            },
        )
        self.log(
            f"analyzed {uri}: {len(result.diagnostics)} diagnostic(s), "
            f"{result.reused} reused / {result.recomputed} recomputed"
        )

    def _inlay_hints(self, params: Dict[str, Any]) -> list:
        uri = params.get("textDocument", {}).get("uri")
        result = self.results.get(uri)
        if result is None:
            return []
        rng = params.get("range") or {}
        lo = rng.get("start", {}).get("line", 0)
        hi = rng.get("end", {}).get("line", 1 << 30)
        hints = []
        for name, doc in result.bounds.items():
            pos = result.positions.get(name)
            if pos is None:
                continue
            line = pos[0] - 1
            if not (lo <= line <= hi):
                continue
            label = doc.get("describe") or doc.get("status") or "?"
            hints.append(
                {
                    "position": {
                        "line": line,
                        "character": pos[1] - 1 + len(name),
                    },
                    "label": f": {label}",
                    "kind": 1,  # Type
                    "paddingLeft": True,
                }
            )
        return hints

    # -- dispatch -----------------------------------------------------------

    def _handle(self, message: Dict[str, Any]) -> bool:
        """Process one message; returns False when the loop should stop."""
        method = message.get("method")
        msg_id = message.get("id")
        params = message.get("params") or {}
        if method == "initialize":
            self._reply(
                msg_id,
                {
                    "capabilities": {
                        "textDocumentSync": 1,  # full-document sync
                        "inlayHintProvider": True,
                    },
                    "serverInfo": {"name": "hybrid-aara-lsp", "version": "1"},
                },
            )
        elif method == "initialized":
            pass
        elif method == "shutdown":
            self._shutdown = True
            self._reply(msg_id, None)
        elif method == "exit":
            return False
        elif method == "textDocument/didOpen":
            doc = params["textDocument"]
            self.documents[doc["uri"]] = doc.get("text", "")
            self._analyze(doc["uri"])
        elif method == "textDocument/didChange":
            uri = params["textDocument"]["uri"]
            changes = params.get("contentChanges") or []
            if changes:
                # full sync: the last change carries the whole document
                self.documents[uri] = changes[-1].get("text", "")
            self._analyze(uri)
        elif method == "textDocument/didSave":
            uri = params["textDocument"]["uri"]
            if "text" in params:
                self.documents[uri] = params["text"]
            self._analyze(uri)
        elif method == "textDocument/didClose":
            uri = params["textDocument"]["uri"]
            self.documents.pop(uri, None)
            self.results.pop(uri, None)
            self._notify(
                "textDocument/publishDiagnostics", {"uri": uri, "diagnostics": []}
            )
        elif method == "textDocument/inlayHint":
            self._reply(msg_id, self._inlay_hints(params))
        elif method == "$/cancelRequest":
            pass
        elif msg_id is not None:
            self._reply_error(msg_id, _METHOD_NOT_FOUND, f"unsupported method {method!r}")
        return True

    def serve_forever(self) -> int:
        """Pump messages until ``exit`` or EOF; LSP exit-code semantics
        (0 after an orderly ``shutdown``, 1 otherwise)."""
        self._running = True
        self.log("hybrid-aara LSP server listening")
        while True:
            try:
                message = read_message(self.reader)
            except (ValueError, json.JSONDecodeError) as exc:
                self.log(f"protocol error: {exc}")
                return 1
            if message is None:
                return 0 if self._shutdown else 1
            if not self._handle(message):
                return 0 if self._shutdown else 1
