"""Between-stage IR verifier for the normalizer (``repro.analysis.verify_ir``).

The normalizer promises three invariants, one per stage:

* after **uniquify** every binder name is bound exactly once (``V001``),
* after **anf** constructors/destructors/calls take variables (``V002``),
* after **share** every variable is consumed at most once, branches
  counting as alternatives (``V003``).

``check_expr`` is wired into :func:`repro.lang.normalize.normalize_expr`
behind the ``REPRO_VERIFY_IR`` environment variable (the test suite turns
it on; production runs pay nothing).  Violations are reported as
diagnostics wrapped in :class:`repro.errors.IRVerificationError` — not
asserts — so the harness records them with ``failure_stage="normalize"``
and the CLI can render them like any other finding.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..errors import IRVerificationError
from ..lang import ast as A
from .diagnostics import Diagnostic, Span

#: environment variable that enables verification inside normalize
ENV_FLAG = "REPRO_VERIFY_IR"


def verification_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def _span(pos: Optional[A.Pos]) -> Optional[Span]:
    if pos is None or pos.line <= 0:
        return None
    return Span(pos.line, pos.col, 1)


def _binders(expr: A.Expr):
    """(name, pos) for every binder introduced by ``expr`` itself."""
    if isinstance(expr, A.Let):
        return [(expr.name, expr.pos)]
    if isinstance(expr, A.Share):
        return [(expr.name1, expr.pos), (expr.name2, expr.pos)]
    if isinstance(expr, A.MatchList):
        return [(expr.head_var, expr.pos), (expr.tail_var, expr.pos)]
    if isinstance(expr, A.MatchSum):
        return [(expr.left_var, expr.pos), (expr.right_var, expr.pos)]
    if isinstance(expr, A.MatchTuple):
        return [(name, expr.pos) for name in expr.names]
    return []


def _check_unique_binders(expr: A.Expr, context: str) -> List[Diagnostic]:
    seen: Dict[str, int] = {}
    diags: List[Diagnostic] = []
    for node in expr.walk():
        for name, pos in _binders(node):
            seen[name] = seen.get(name, 0) + 1
            if seen[name] == 2:
                diags.append(
                    Diagnostic(
                        code="V001",
                        severity="error",
                        message=f"binder '{name}' is bound more than once",
                        span=_span(pos),
                        function=context or None,
                    )
                )
    return diags


def _atomic_operands(node: A.Expr):
    if isinstance(node, A.Cons):
        return [node.head, node.tail]
    if isinstance(node, A.TupleExpr):
        return list(node.items)
    if isinstance(node, (A.Inl, A.Inr)):
        return [node.operand]
    if isinstance(node, A.App):
        return list(node.args)
    if isinstance(node, A.BinOp):
        return [node.left, node.right]
    if isinstance(node, A.Neg):
        return [node.operand]
    if isinstance(node, A.If):
        return [node.cond]
    if isinstance(node, (A.MatchList, A.MatchSum, A.MatchTuple)):
        return [node.scrutinee]
    return []


def _check_atomic(expr: A.Expr, context: str) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for node in expr.walk():
        for operand in _atomic_operands(node):
            if isinstance(operand, A.Var):
                continue
            diags.append(
                Diagnostic(
                    code="V002",
                    severity="error",
                    message=(
                        f"{type(node).__name__} has a non-variable operand "
                        f"({type(operand).__name__}) after ANF"
                    ),
                    span=_span(operand.pos or node.pos),
                    function=context or None,
                )
            )
    return diags


def _check_affine(expr: A.Expr, context: str) -> List[Diagnostic]:
    from ..lang.normalize import sequential_parts

    diags: List[Diagnostic] = []

    def count_uses(e: A.Expr, mult: Dict[str, int]) -> None:
        if isinstance(e, A.Var):
            mult[e.name] = mult.get(e.name, 0) + 1
            return
        if isinstance(e, A.Share):
            mult[e.name] = mult.get(e.name, 0) + 1
            count_uses(e.body, mult)
            return
        parts = sequential_parts(e)
        if parts is None:
            return
        groups, _rebuild = parts
        for group in groups:
            branch_max: Dict[str, int] = {}
            for sub in group:
                local: Dict[str, int] = {}
                count_uses(sub, local)
                for var, k in local.items():
                    branch_max[var] = max(branch_max.get(var, 0), k)
            for var, k in branch_max.items():
                mult[var] = mult.get(var, 0) + k

    counts: Dict[str, int] = {}
    count_uses(expr, counts)
    for var in sorted(v for v, k in counts.items() if k > 1):
        diags.append(
            Diagnostic(
                code="V003",
                severity="error",
                message=(
                    f"variable '{var}' is used {counts[var]} times after "
                    "share insertion (must be affine)"
                ),
                span=_span(expr.pos),
                function=context or None,
            )
        )
    return diags


#: which invariants hold after each normalize stage
_STAGE_CHECKS = {
    "uniquify": (_check_unique_binders,),
    "anf": (_check_unique_binders, _check_atomic),
    "share": (_check_unique_binders, _check_atomic, _check_affine),
}


def verify_expr(expr: A.Expr, stage: str, context: str = "") -> List[Diagnostic]:
    """Diagnostics for every invariant violated at ``stage`` (no raise)."""
    checks = _STAGE_CHECKS.get(stage)
    if checks is None:
        raise ValueError(f"unknown normalize stage {stage!r}")
    diags: List[Diagnostic] = []
    for check in checks:
        diags.extend(check(expr, context))
    return diags


def check_expr(expr: A.Expr, stage: str, context: str = "") -> None:
    """Raise :class:`IRVerificationError` if ``stage`` invariants fail."""
    diags = verify_expr(expr, stage, context)
    if not diags:
        return
    where = f" in '{context}'" if context else ""
    summary = "; ".join(d.message for d in diags[:3])
    if len(diags) > 3:
        summary += f"; and {len(diags) - 3} more"
    raise IRVerificationError(
        f"IR verification failed after {stage}{where}: {summary}",
        diagnostics=diags,
    )
