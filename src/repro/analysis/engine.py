"""The lint pass manager: one entry point over the pre-normalization AST.

``lint_source`` parses (keeping the parser's lint side-channel), runs the
ordered passes, and returns a sorted :class:`LintResult`.  Each pass is
timed under a ``lint.<pass>`` telemetry span — the first dotted component
is the stage, so ``trace summary`` buckets all lint cost under ``lint`` —
and contributes to the ``lint.diagnostics`` counter.

Lexer and parser failures do not abort linting with a traceback: they
become a single ``R001``/``R002`` diagnostic so every front-end finding
flows through one rendering path.
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .. import telemetry
from ..errors import LexError, ParseError
from ..lang.parser import parse_program_ex
from .deadcode import deadcode_diagnostics
from .diagnostics import Diagnostic, from_source_error
from .recursion import recursion_diagnostics
from .resolve import resolve_diagnostics
from .statlint import statlint_diagnostics
from .usage import usage_diagnostics


@dataclass
class LintResult:
    path: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    source: Optional[str] = None

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def notes(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "note"]

    def clean(self) -> bool:
        """No errors and no warnings (notes do not spoil cleanliness)."""
        return not self.errors() and not self.warnings()


#: ordered pass registry: (name, runner(parse_result, entry, path) -> diags)
PASSES: Tuple[Tuple[str, Callable], ...] = (
    ("resolve", lambda pr, entry, path: resolve_diagnostics(pr.functions, path)),
    ("usage", lambda pr, entry, path: usage_diagnostics(pr.functions, path)),
    (
        "deadcode",
        lambda pr, entry, path: deadcode_diagnostics(
            pr.functions, pr.match_records, entry=entry, path=path
        ),
    ),
    (
        "statlint",
        lambda pr, entry, path: statlint_diagnostics(pr.functions, entry=entry, path=path),
    ),
    ("recursion", lambda pr, entry, path: recursion_diagnostics(pr.functions, path)),
)


def lint_source(
    source: str, path: str = "<input>", entry: Optional[str] = None, budget=None
) -> LintResult:
    """Run every lint pass over one program source.

    ``budget`` (an :class:`~repro.config.ExecutionBudget`) caps source
    size, token count, and nesting depth for untrusted input; breaches
    surface as ordinary diagnostics (R001/R004), never exceptions.
    """
    try:
        with telemetry.span("lint.parse", path=path):
            parsed = parse_program_ex(
                source,
                max_chars=getattr(budget, "max_source_chars", None),
                max_tokens=getattr(budget, "max_tokens", None),
                max_depth=getattr(budget, "max_nesting_depth", None),
            )
    except (LexError, ParseError) as exc:
        return LintResult(
            path=path, diagnostics=[from_source_error(exc, path)], source=source
        )

    diags: List[Diagnostic] = []
    for name, runner in PASSES:
        with telemetry.span(f"lint.{name}", path=path):
            found = runner(parsed, entry, path)
        if found:
            telemetry.counter("lint.diagnostics", len(found), lint_pass=name)
        diags.extend(found)
    diags.sort(key=lambda d: d.sort_key())
    return LintResult(path=path, diagnostics=diags, source=source)


# ---------------------------------------------------------------------------
# Embedded-program extraction (examples/*.py carry sources as str constants)
# ---------------------------------------------------------------------------


def _const_str(node: pyast.AST, consts: dict) -> Optional[str]:
    """Evaluate a restricted constant-string expression, else None."""
    if isinstance(node, pyast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, pyast.Name):
        return consts.get(node.id)
    if isinstance(node, pyast.BinOp) and isinstance(node.op, pyast.Add):
        left = _const_str(node.left, consts)
        right = _const_str(node.right, consts)
        if left is not None and right is not None:
            return left + right
        return None
    if (
        isinstance(node, pyast.Call)
        and isinstance(node.func, pyast.Attribute)
        and node.func.attr == "replace"
        and len(node.args) == 2
        and not node.keywords
    ):
        base = _const_str(node.func.value, consts)
        old = _const_str(node.args[0], consts)
        new = _const_str(node.args[1], consts)
        if base is not None and old is not None and new is not None:
            return base.replace(old, new)
    return None


def extract_embedded_sources(py_source: str) -> List[Tuple[str, str]]:
    """``(name, program_source)`` for resource-language programs embedded
    as module-level string constants of a Python file.

    A constant counts as a program if it contains a top-level ``let``
    definition.  Assignments are folded left-to-right, so constants built
    from earlier ones (concatenation, ``.replace``) are resolved too.
    """
    tree = pyast.parse(py_source)
    consts: dict = {}
    programs: List[Tuple[str, str]] = []
    for node in tree.body:
        targets = []
        value = None
        if isinstance(node, pyast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, pyast.Name)]
            value = node.value
        elif isinstance(node, pyast.AnnAssign) and isinstance(node.target, pyast.Name):
            targets = [node.target.id]
            value = node.value
        if not targets or value is None:
            continue
        text = _const_str(value, consts)
        if text is None:
            continue
        for name in targets:
            consts[name] = text
        if "let " in text:
            for name in targets:
                programs.append((name, text))
    return programs


def lint_embedded(
    py_source: str, path: str = "<input>"
) -> List[LintResult]:
    """Lint every embedded program of a Python source file."""
    results = []
    for name, text in extract_embedded_sources(py_source):
        results.append(lint_source(text, path=f"{path}#{name}"))
    return results
