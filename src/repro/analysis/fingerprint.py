"""Content fingerprints for the incremental analysis pipeline.

Every per-function artifact (lint bucket, AARA bound) is keyed by what it
actually depends on, so an edit invalidates exactly the artifacts whose
inputs changed:

* the **local fingerprint** of a function hashes its normalized source
  slice (per-line ``rstrip``, blank edge lines dropped) — whitespace-only
  edits and edits to *other* functions leave it untouched;
* the **cone fingerprint** hashes the ordered ``(name, local_fp)`` pairs
  of every function reachable through the call graph (computed by
  :func:`repro.analysis.callgraph.call_graph`), which is the exact input
  set of the AARA constraint build for that root.  All members of a
  strongly connected component reach each other, so an SCC invalidates
  as a unit by construction;
* the **interface fingerprint** hashes the ordered ``(name, arity, rec)``
  triples of the whole program — the cross-function facts the resolve
  pass consults (arity checks, forward-reference messages, name-set
  hints) without reading any body.

Slicing relies on the exact ``pos``/``name_pos`` spans the parser records
(:func:`repro.lang.parser.function_line_spans`); programs that cannot be
sliced unambiguously (duplicate top-level names, missing positions) get
``fingerprint_functions() -> None`` and the incremental engine falls back
to whole-program granularity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..lang.parser import ParseResult, function_line_spans
from .callgraph import call_graph, reachable, tarjan_scc

#: bump whenever a fingerprint-affecting change should invalidate every
#: persisted incremental artifact (the artifact store embeds this)
FINGERPRINT_VERSION = 1


def _digest(*parts: object) -> str:
    blob = json.dumps(parts, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def normalize_slice(text: str) -> str:
    """Normalize one function's source slice for fingerprinting.

    Line endings become LF, trailing whitespace per line is dropped, and
    blank edge lines are trimmed — the same canonicalization
    :func:`repro.evalharness.adhoc.normalize_source` applies to whole
    programs, so a reformat that cannot change parse output cannot
    change the fingerprint either.
    """
    lines = [ln.rstrip() for ln in text.replace("\r\n", "\n").replace("\r", "\n").split("\n")]
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"


def program_fingerprint(source: str) -> str:
    """Whole-program content fingerprint (normalized source)."""
    from ..evalharness.adhoc import normalize_source

    return _digest("program", FINGERPRINT_VERSION, normalize_source(source))


@dataclass
class Fingerprints:
    """Per-function fingerprints plus the call-graph facts keyed off them."""

    program_fp: str
    interface_fp: str
    #: function name -> fingerprint of its own normalized slice
    local: Dict[str, str] = field(default_factory=dict)
    #: function name -> fingerprint of its reachable cone (ordered
    #: ``(name, local_fp)`` pairs in source order, the constraint build's
    #: exact input); SCC members share their cone set
    cone: Dict[str, str] = field(default_factory=dict)
    #: function name -> sorted names of its reachable cone
    cone_members: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    graph: Dict[str, Set[str]] = field(default_factory=dict)
    sccs: List[List[str]] = field(default_factory=list)
    #: source-order function names
    order: Tuple[str, ...] = ()


def fingerprint_functions(source: str, parsed: ParseResult) -> Optional[Fingerprints]:
    """Compute every fingerprint for one parsed program.

    Returns ``None`` when per-function slicing is ambiguous (duplicate
    top-level names or missing position spans) — callers fall back to
    whole-program artifacts keyed by :func:`program_fingerprint`.
    """
    functions = list(parsed.functions)
    spans = function_line_spans(functions, source)
    if spans is None:
        return None
    lines = source.split("\n")
    order = tuple(f.name for f in functions)
    local: Dict[str, str] = {}
    for name in order:
        start, end = spans[name]
        text = "\n".join(lines[start - 1 : end])
        local[name] = _digest("fn", FINGERPRINT_VERSION, name, normalize_slice(text))
    interface_fp = _digest(
        "interface",
        FINGERPRINT_VERSION,
        [(f.name, len(f.params), bool(f.recursive)) for f in functions],
    )
    graph = call_graph(functions)
    fps = Fingerprints(
        program_fp=program_fingerprint(source),
        interface_fp=interface_fp,
        local=local,
        graph=graph,
        sccs=tarjan_scc(graph),
        order=order,
    )
    for name in order:
        members = reachable(graph, [name]) | {name}
        ordered = tuple(n for n in order if n in members)
        fps.cone_members[name] = ordered
        fps.cone[name] = _digest(
            "cone", FINGERPRINT_VERSION, name, [(n, local[n]) for n in ordered]
        )
    return fps
