"""Call graph, Tarjan SCCs, reachability, and tick propagation.

Shared by the dead-code, stat-placement and recursion-shape passes, and
by the pre-LP guard in :func:`repro.aara.analyze.run_conventional`.  All
functions accept a plain list of :class:`~repro.lang.ast.FunDef` so they
work on both the pre-normalization surface AST and normalized programs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from ..lang import ast as A


def call_graph(functions: Sequence[A.FunDef]) -> Dict[str, Set[str]]:
    """``caller -> set(callee)`` over user-defined functions only."""
    names = {f.name for f in functions}
    graph: Dict[str, Set[str]] = {}
    for fdef in functions:
        callees: Set[str] = set()
        for node in fdef.body.walk():
            if isinstance(node, A.App) and node.fname in names:
                callees.add(node.fname)
        graph[fdef.name] = callees
    return graph


def tarjan_scc(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components in reverse topological order.

    Iterative (explicit stack) so deep call chains cannot hit Python's
    recursion limit.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        # frames: (node, iterator over successors)
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def reachable(graph: Dict[str, Set[str]], roots: Iterable[str]) -> Set[str]:
    """Functions reachable from ``roots`` (including the roots)."""
    seen: Set[str] = set()
    todo = [r for r in roots if r in graph]
    while todo:
        name = todo.pop()
        if name in seen:
            continue
        seen.add(name)
        todo.extend(graph.get(name, ()))
    return seen


def may_tick(functions: Sequence[A.FunDef], graph: Dict[str, Set[str]]) -> Set[str]:
    """Functions that can incur strictly positive tick cost, transitively.

    Builtins never tick (``analyzable=False`` builtins are opaque to the
    static analysis but cost-free at runtime), so only ``Tick`` nodes and
    calls to other may-tick functions propagate.
    """
    by_name = {f.name: f for f in functions}
    direct = {
        name
        for name, fdef in by_name.items()
        if any(isinstance(n, A.Tick) and n.amount > 0 for n in fdef.body.walk())
    }
    ticking = set(direct)
    changed = True
    while changed:
        changed = False
        for name, callees in graph.items():
            if name not in ticking and callees & ticking:
                ticking.add(name)
                changed = True
    return ticking
