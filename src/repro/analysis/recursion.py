"""Recursion-shape pass: predict LP infeasibility before running the LP.

Univariate AARA pays for recursion out of the potential stored in the
*shrinking* structure.  A self-call whose arguments never structurally
decrease — every argument is a parameter passed through unchanged
(possibly permuted or shared) or a cons-extension of one — can only be
bounded if the cycle is cost-free.  If, additionally, some path through
such a call site incurs strictly positive tick cost, the linear program
is provably infeasible at *every* degree: no polynomial in the input
sizes covers unboundedly repeated positive cost.

This pass reports that situation as ``R042`` ("AARA will report
Infeasible here") with a per-argument explanation, and mutual recursion
(SCCs with more than one function) as ``R043``, which the univariate
reproduction does not attempt to bound.

The argument classification:

* ``PARAM`` — a function parameter, passed through (any position),
* ``GROW``  — a cons-chain whose spine ends in a PARAM/GROW variable,
* ``DESC``  — obtained by destructing a parameter (match head/tail,
  tuple/sum components), transitively through let-aliases and shares,
* ``OTHER`` — anything else (arithmetic, constants, other calls …).

A call site is a candidate iff every argument is PARAM or GROW.  DESC
disqualifies (structural recursion), and OTHER is given the benefit of
the doubt.  The classification works on both the surface AST and
share-let normal form, so :func:`repro.aara.analyze.run_conventional`
can reuse it as a pre-LP guard.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lang import ast as A
from .callgraph import call_graph, may_tick, tarjan_scc
from .diagnostics import Diagnostic, Span

PARAM = "param"
GROW = "grow"
DESC = "desc"
OTHER = "other"


def _span(pos: Optional[A.Pos]) -> Optional[Span]:
    if pos is None or pos.line <= 0:
        return None
    return Span(pos.line, pos.col, 1)


def class_of_expr(expr: A.Expr, env: Dict[str, str]) -> str:
    """Classify an argument expression under a variable classification."""
    if isinstance(expr, A.Var):
        return env.get(expr.name, OTHER)
    if isinstance(expr, A.Cons):
        tail = class_of_expr(expr.tail, env)
        return GROW if tail in (PARAM, GROW) else OTHER
    return OTHER


class _SiteCollector:
    """Scoped walk recording every self-call with its argument classes."""

    def __init__(self, fdef: A.FunDef):
        self.fdef = fdef
        #: (App node, [class per argument])
        self.sites: List[Tuple[A.App, List[str]]] = []

    def run(self) -> List[Tuple[A.App, List[str]]]:
        env = {p: PARAM for p in self.fdef.params}
        self.walk(self.fdef.body, env)
        return self.sites

    def _derived(self, env: Dict[str, str], scrutinee: A.Expr) -> str:
        """Class of variables bound by destructing ``scrutinee``."""
        cls = class_of_expr(scrutinee, env)
        return DESC if cls in (PARAM, DESC, GROW) else OTHER

    def walk(self, expr: A.Expr, env: Dict[str, str]) -> None:
        if isinstance(expr, A.App):
            for arg in expr.args:
                self.walk(arg, env)
            if expr.fname == self.fdef.name:
                self.sites.append(
                    (expr, [class_of_expr(arg, env) for arg in expr.args])
                )
            return
        if isinstance(expr, A.Let):
            self.walk(expr.bound, env)
            child = dict(env)
            child[expr.name] = class_of_expr(expr.bound, env)
            self.walk(expr.body, child)
            return
        if isinstance(expr, A.Share):
            child = dict(env)
            child[expr.name1] = child[expr.name2] = env.get(expr.name, OTHER)
            self.walk(expr.body, child)
            return
        if isinstance(expr, A.MatchList):
            self.walk(expr.scrutinee, env)
            self.walk(expr.nil_branch, env)
            child = dict(env)
            child[expr.head_var] = child[expr.tail_var] = self._derived(
                env, expr.scrutinee
            )
            self.walk(expr.cons_branch, child)
            return
        if isinstance(expr, A.MatchSum):
            self.walk(expr.scrutinee, env)
            derived = self._derived(env, expr.scrutinee)
            left = dict(env)
            left[expr.left_var] = derived
            self.walk(expr.left_branch, left)
            right = dict(env)
            right[expr.right_var] = derived
            self.walk(expr.right_branch, right)
            return
        if isinstance(expr, A.MatchTuple):
            self.walk(expr.scrutinee, env)
            derived = self._derived(env, expr.scrutinee)
            child = dict(env)
            for name in expr.names:
                child[name] = derived
            self.walk(expr.body, child)
            return
        for sub in expr.children():
            self.walk(sub, env)


# -- path-sensitive "does positive cost flow through a candidate call?" -----

#: abstract path fact: (reaches a candidate call, some path has both a
#: candidate call and positive cost, incurs positive cost)
_Fact = Tuple[bool, bool, bool]
_ZERO: _Fact = (False, False, False)


def _seq(a: _Fact, b: _Fact) -> _Fact:
    return (
        a[0] or b[0],
        a[1] or b[1] or (a[0] and b[2]) or (a[2] and b[0]),
        a[2] or b[2],
    )


def _alt(a: _Fact, b: _Fact) -> _Fact:
    return (a[0] or b[0], a[1] or b[1], a[2] or b[2])


def _cost_through_sites(
    body: A.Expr,
    site_ids: set,
    scc: set,
    ticking: set,
) -> bool:
    """True iff some control path hits a candidate site *and* a positive tick.

    Calls to functions outside the SCC contribute cost via the transitive
    ``may_tick`` set; calls to SCC members are ignored as cost sources
    (their cost is what the cycle is being asked to pay for).
    """

    def analyze(expr: A.Expr) -> _Fact:
        if isinstance(expr, A.Tick):
            return (False, False, expr.amount > 0)
        if isinstance(expr, A.App):
            fact = _ZERO
            for arg in expr.args:
                fact = _seq(fact, analyze(arg))
            if id(expr) in site_ids:
                fact = _seq(fact, (True, False, False))
            elif expr.fname not in scc and expr.fname in ticking:
                fact = _seq(fact, (False, False, True))
            return fact
        if isinstance(expr, A.If):
            return _seq(
                analyze(expr.cond),
                _alt(analyze(expr.then_branch), analyze(expr.else_branch)),
            )
        if isinstance(expr, A.MatchList):
            return _seq(
                analyze(expr.scrutinee),
                _alt(analyze(expr.nil_branch), analyze(expr.cons_branch)),
            )
        if isinstance(expr, A.MatchSum):
            return _seq(
                analyze(expr.scrutinee),
                _alt(analyze(expr.left_branch), analyze(expr.right_branch)),
            )
        fact = _ZERO
        for sub in expr.children():
            fact = _seq(fact, analyze(sub))
        return fact

    return analyze(body)[1]


def _describe(classes: Sequence[str]) -> List[str]:
    notes = []
    for i, cls in enumerate(classes, start=1):
        if cls == PARAM:
            notes.append(f"argument {i} is a parameter passed through unchanged")
        elif cls == GROW:
            notes.append(f"argument {i} grows the input (cons onto a parameter)")
    notes.append(
        "no argument structurally decreases, and the cycle carries positive "
        "tick cost: the AARA linear program is infeasible at every degree"
    )
    return notes


def recursion_diagnostics(
    functions: Sequence[A.FunDef], path: str = "<input>"
) -> List[Diagnostic]:
    functions = list(functions)
    graph = call_graph(functions)
    ticking = may_tick(functions, graph)
    diags: List[Diagnostic] = []
    by_name = {f.name: f for f in functions}

    for component in tarjan_scc(graph):
        if len(component) > 1:
            members = ", ".join(f"'{n}'" for n in sorted(component))
            for name in sorted(component):
                fdef = by_name[name]
                diags.append(
                    Diagnostic(
                        code="R043",
                        severity="error",
                        message=(
                            f"'{name}' is mutually recursive with "
                            f"{members}; univariate AARA cannot bound "
                            "mutual recursion"
                        ),
                        span=_span(fdef.name_pos or fdef.pos),
                        path=path,
                        function=name,
                    )
                )
            continue

        name = component[0]
        if name not in graph.get(name, ()):  # not self-recursive
            continue
        fdef = by_name[name]
        sites = _SiteCollector(fdef).run()
        candidates = [
            (node, classes)
            for node, classes in sites
            if classes and all(c in (PARAM, GROW) for c in classes)
        ]
        if not candidates:
            continue
        site_ids = {id(node) for node, _classes in candidates}
        if not _cost_through_sites(fdef.body, site_ids, set(component), ticking):
            continue
        for node, classes in candidates:
            diags.append(
                Diagnostic(
                    code="R042",
                    severity="error",
                    message=(
                        f"recursive call to '{name}' never decreases its "
                        "input; AARA will report Infeasible here"
                    ),
                    span=_span(node.pos),
                    path=path,
                    function=name,
                    notes=tuple(_describe(classes)),
                )
            )
    return diags
