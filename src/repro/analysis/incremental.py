"""Fingerprint-keyed incremental analysis: lint + AARA bounds per function.

The batch pipeline re-parses, re-lints and re-solves a whole program on
every invocation.  This module makes the *edit loop* cheap instead: each
function's lint bucket and conventional-AARA verdict is an artifact keyed
by the fingerprints of exactly what it depends on
(:mod:`repro.analysis.fingerprint`), persisted in the same on-disk layout
as the harness's :class:`~repro.evalharness.runner.ResultCache` (atomic
temp+rename publish, SHA-256 payload checksums, quarantine on
corruption), under its own versioned key family.  Editing one function
therefore recomputes only its strongly connected component and its
reverse-call-graph dependents; everything else is served from disk,
byte-identical to a cold run.

Artifact soundness per stage:

* **lint buckets** — a function's diagnostics are keyed by its cone
  fingerprint (own slice + every reachable callee, SCCs as a unit: the
  usage/recursion passes read nothing else), the program interface
  fingerprint (the resolve pass checks arities and name order without
  reading bodies), the resolved entry root and the function's
  reachability from it (the only cross-function facts the deadcode and
  statlint passes consult).  Program-level diagnostics (``R016``) get
  their own bucket keyed by interface + entry.
* **bound artifacts** — keyed by the cone fingerprint, the degree cap and
  the LP-size budget caps;
  :func:`repro.aara.analyze.run_conventional_function` restricts the
  program to the cone before normalize/typecheck/LP so the verdict is a
  pure function of exactly those inputs.

Programs that cannot be sliced per function (duplicate top-level names,
missing spans) or that fail to parse fall back to whole-program
granularity — still correct, just not incremental.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import LexError, ParseError, ReproError, SourceError
from ..lang.parser import ParseResult, parse_program_ex
from .deadcode import entry_function
from .callgraph import reachable
from .diagnostics import Diagnostic, Span, from_source_error, to_json
from .engine import PASSES
from .fingerprint import FINGERPRINT_VERSION, Fingerprints, fingerprint_functions

#: bump to invalidate every persisted incremental artifact
ARTIFACT_VERSION = 1

#: key-family marker baked into every artifact key and payload, keeping
#: the family disjoint from EvalTask result keys sharing the directory
ARTIFACT_FAMILY = "incremental"


def artifact_key(stage: str, payload: Dict[str, Any]) -> str:
    """Content hash for one artifact; the family/version are part of it."""
    doc = {
        "family": ARTIFACT_FAMILY,
        "artifact_version": ARTIFACT_VERSION,
        "fingerprint_version": FINGERPRINT_VERSION,
        "stage": stage,
        **payload,
    }
    return hashlib.sha256(json.dumps(doc, sort_keys=True, default=str).encode()).hexdigest()


class ArtifactStore:
    """On-disk incremental artifacts, in the ``ResultCache`` file layout.

    One ``<key>.json`` per artifact in the shared cache directory —
    ``cache gc`` sweeps and LRU-evicts them exactly like task results.
    Entries embed a payload checksum; a corrupt entry is quarantined
    (``*.json.quarantined``) and treated as a miss, so bit rot degrades
    to recomputation, never to a wrong answer.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @staticmethod
    def _digest(value: Any) -> str:
        return hashlib.sha256(json.dumps(value, sort_keys=True).encode()).hexdigest()

    def load(self, key: str) -> Optional[Any]:
        path = self.path(key)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("entry is not a JSON object")
            if (
                payload.get("family") != ARTIFACT_FAMILY
                or payload.get("artifact_version") != ARTIFACT_VERSION
            ):
                # an older code version's format, not corruption
                try:
                    path.unlink()
                except OSError:
                    pass
                self.misses += 1
                return None
            if payload.get("key") != key:
                raise ValueError("key mismatch")
            if "value" not in payload:
                raise ValueError("malformed entry")
            if payload.get("sha256") != self._digest(payload["value"]):
                raise ValueError("payload checksum mismatch")
        except ValueError:
            try:
                os.replace(path, path.with_name(path.name + ".quarantined"))
            except OSError:
                pass
            telemetry.counter("incr.quarantined", 1)
            self.misses += 1
            return None
        self.hits += 1
        return payload["value"]

    def store(self, key: str, value: Any) -> None:
        payload = {
            "family": ARTIFACT_FAMILY,
            "artifact_version": ARTIFACT_VERSION,
            "key": key,
            "sha256": self._digest(value),
            "value": value,
        }
        blob = json.dumps(payload)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=key[:16], suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# ---------------------------------------------------------------------------
# Diagnostic / verdict (de)serialization
# ---------------------------------------------------------------------------


def _diag_doc(d: Diagnostic) -> Dict[str, Any]:
    """Path-independent JSON for one diagnostic (path is rehydrated on
    load so one artifact serves the same content at any display path)."""
    return {
        "code": d.code,
        "severity": d.severity,
        "message": d.message,
        "line": None if d.span is None else d.span.line,
        "col": None if d.span is None else d.span.col,
        "length": None if d.span is None else d.span.length,
        "function": d.function,
        "notes": list(d.notes),
    }


def _diag_from_doc(doc: Dict[str, Any], path: str) -> Diagnostic:
    span = None
    if doc.get("line") is not None:
        span = Span(int(doc["line"]), int(doc["col"]), int(doc.get("length") or 1))
    return Diagnostic(
        code=doc["code"],
        severity=doc["severity"],
        message=doc["message"],
        span=span,
        path=path,
        function=doc.get("function"),
        notes=tuple(doc.get("notes") or ()),
    )


def _diag_order(d: Diagnostic) -> Tuple:
    """A total order over diagnostics, so cache-assembled and freshly
    computed lists agree even among same-position ties."""
    return (*d.sort_key(), d.severity, d.message, d.function or "", d.notes)


def _verdict_doc(verdict) -> Dict[str, Any]:
    """Deterministic JSON for a :class:`ConventionalVerdict` (timing
    dropped — artifacts must be byte-identical across runs)."""
    from ..inference.serialize import bound_to_json

    return {
        "status": verdict.status,
        "degree": verdict.degree,
        "detail": verdict.detail,
        "feasible_degrees": list(verdict.feasible_degrees),
        "bound": None if verdict.bound is None else bound_to_json(verdict.bound),
        "describe": None if verdict.bound is None else verdict.bound.describe(),
    }


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class StageStats:
    reused: Tuple[str, ...] = ()
    recomputed: Tuple[str, ...] = ()


@dataclass
class IncrementalResult:
    """One analysis cycle's output plus exact artifact reuse accounting."""

    path: str
    entry: Optional[str]
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: function name -> verdict doc (source order); see :func:`_verdict_doc`
    bounds: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    lint: StageStats = field(default_factory=StageStats)
    bound_stage: StageStats = field(default_factory=StageStats)
    #: 'function' | 'program' (unsliceable fallback) | 'parse-error'
    granularity: str = "function"
    fingerprints: Optional[Fingerprints] = None
    #: function name -> 1-based (line, col) of its name token (hint anchors)
    positions: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def reused(self) -> int:
        return len(self.lint.reused) + len(self.bound_stage.reused)

    @property
    def recomputed(self) -> int:
        return len(self.lint.recomputed) + len(self.bound_stage.recomputed)

    def document(self) -> Dict[str, Any]:
        """The byte-comparable product: diagnostics JSON + bounds."""
        return {"diagnostics": to_json(self.diagnostics), "bounds": self.bounds}


#: sentinel bucket name for program-level diagnostics (R016 &c.)
_PROGRAM_BUCKET = "<program>"


class IncrementalEngine:
    """Per-function incremental lint + conventional-AARA bounds.

    ``store=None`` disables persistence — every stage recomputes, which
    is exactly the "cold full analysis" the byte-identity tests compare
    against.  ``budget`` caps the front end (R001/R002/R004 diagnostics
    instead of hangs on hostile files) and the LP size; both are part of
    the artifact keys they influence.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        max_degree: int = 3,
        budget=None,
    ) -> None:
        self.store = store
        self.max_degree = int(max_degree)
        self.budget = budget

    # -- artifact keys ------------------------------------------------------

    def _lp_caps(self) -> Optional[List[Optional[int]]]:
        if self.budget is None:
            return None
        return [
            getattr(self.budget, "lp_variables", None),
            getattr(self.budget, "lp_constraints", None),
        ]

    def _lint_fn_key(self, fps: Fingerprints, name: str, root, live) -> str:
        return artifact_key(
            "lint-fn",
            {
                "fn": name,
                "cone": fps.cone[name],
                "interface": fps.interface_fp,
                "root": root,
                "reachable": name in live,
            },
        )

    def _lint_prog_key(self, fps: Fingerprints, entry, root) -> str:
        return artifact_key(
            "lint-prog",
            {"interface": fps.interface_fp, "entry": entry, "root": root},
        )

    def _bound_key(self, fps: Fingerprints, name: str) -> str:
        return artifact_key(
            "bound",
            {
                "fn": name,
                "cone": fps.cone[name],
                "max_degree": self.max_degree,
                "lp_caps": self._lp_caps(),
            },
        )

    # -- pipeline -----------------------------------------------------------

    def analyze(
        self,
        source: str,
        path: str = "<input>",
        entry: Optional[str] = None,
        want_bounds: bool = True,
    ) -> IncrementalResult:
        with telemetry.span("incr.parse", path=path):
            try:
                parsed = parse_program_ex(
                    source,
                    max_chars=getattr(self.budget, "max_source_chars", None),
                    max_tokens=getattr(self.budget, "max_tokens", None),
                    max_depth=getattr(self.budget, "max_nesting_depth", None),
                )
            except (LexError, ParseError) as exc:
                return IncrementalResult(
                    path=path,
                    entry=entry,
                    diagnostics=[from_source_error(exc, path)],
                    granularity="parse-error",
                )
        positions = {
            f.name: (f.name_pos.line, f.name_pos.col)
            for f in parsed.functions
            if f.name_pos is not None
        }
        fps = fingerprint_functions(source, parsed)
        if fps is None:
            result = self._analyze_whole(parsed, path, entry, want_bounds)
            result.positions = positions
            return result
        root = entry_function(parsed.functions, entry)
        live = reachable(fps.graph, [root]) if root is not None else set()
        result = IncrementalResult(
            path=path,
            entry=entry,
            granularity="function",
            fingerprints=fps,
            positions=positions,
        )
        self._lint_stage(parsed, fps, path, entry, root, live, result)
        if want_bounds:
            self._bound_stage(parsed, fps, result)
        telemetry.counter("incr.reused", result.reused)
        telemetry.counter("incr.recomputed", result.recomputed)
        return result

    def _run_passes(self, parsed: ParseResult, entry, path) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for name, runner in PASSES:
            with telemetry.span(f"lint.{name}", path=path):
                diags.extend(runner(parsed, entry, path))
        diags.sort(key=_diag_order)
        return diags

    def _analyze_whole(
        self, parsed: ParseResult, path: str, entry, want_bounds: bool
    ) -> IncrementalResult:
        """Unsliceable program: whole-program recompute, no artifacts."""
        result = IncrementalResult(path=path, entry=entry, granularity="program")
        result.diagnostics = self._run_passes(parsed, entry, path)
        names = tuple(dict.fromkeys(f.name for f in parsed.functions))
        result.lint = StageStats(recomputed=names + (_PROGRAM_BUCKET,))
        if want_bounds:
            result.bound_stage = StageStats(recomputed=names)
            for name in names:
                result.bounds[name] = self._compute_bound(
                    parsed, name, self._cone_errors(result.diagnostics, None, name)
                )
        return result

    # -- lint stage ---------------------------------------------------------

    def _lint_stage(
        self, parsed: ParseResult, fps: Fingerprints, path, entry, root, live, result
    ) -> None:
        with telemetry.span("incr.lint", path=path):
            keys = {
                name: self._lint_fn_key(fps, name, root, live) for name in fps.order
            }
            prog_key = self._lint_prog_key(fps, entry, root)
            cached: Dict[str, Any] = {}
            if self.store is not None:
                for name, key in keys.items():
                    value = self.store.load(key)
                    if value is not None:
                        cached[name] = value
                prog_cached = self.store.load(prog_key)
            else:
                prog_cached = None
            if len(cached) == len(keys) and prog_cached is not None:
                diags: List[Diagnostic] = []
                for name in fps.order:
                    diags.extend(_diag_from_doc(doc, path) for doc in cached[name])
                diags.extend(_diag_from_doc(doc, path) for doc in prog_cached)
                diags.sort(key=_diag_order)
                result.diagnostics = diags
                result.lint = StageStats(
                    reused=tuple(fps.order) + (_PROGRAM_BUCKET,)
                )
                return
            # at least one bucket missed: run the (cheap, whole-program)
            # passes once and refresh exactly the missing buckets
            diags = self._run_passes(parsed, entry, path)
            result.diagnostics = diags
            buckets: Dict[str, List[Dict[str, Any]]] = {name: [] for name in fps.order}
            prog_bucket: List[Dict[str, Any]] = []
            for d in diags:
                if d.function in buckets:
                    buckets[d.function].append(_diag_doc(d))
                else:
                    prog_bucket.append(_diag_doc(d))
            reused = tuple(name for name in fps.order if name in cached)
            recomputed = tuple(name for name in fps.order if name not in cached)
            if prog_cached is None:
                recomputed = recomputed + (_PROGRAM_BUCKET,)
            else:
                reused = reused + (_PROGRAM_BUCKET,)
            result.lint = StageStats(reused=reused, recomputed=recomputed)
            if self.store is not None:
                for name in fps.order:
                    if name not in cached:
                        self.store.store(keys[name], buckets[name])
                if prog_cached is None:
                    self.store.store(prog_key, prog_bucket)

    # -- bound stage --------------------------------------------------------

    @staticmethod
    def _cone_errors(
        diagnostics: Sequence[Diagnostic], cone: Optional[Sequence[str]], name: str
    ) -> List[Diagnostic]:
        """Fatal front-end errors inside ``name``'s cone (R042/R043 are the
        conventional analyzer's own verdict to make, so they don't count)."""
        members = set(cone) if cone is not None else None
        return [
            d
            for d in diagnostics
            if d.severity == "error"
            and d.code not in ("R042", "R043")
            and (members is None or d.function is None or d.function in members)
        ]

    def _compute_bound(
        self, parsed: ParseResult, name: str, fatal: List[Diagnostic]
    ) -> Dict[str, Any]:
        from ..aara.analyze import run_conventional_function

        if fatal:
            first = fatal[0]
            return {
                "status": "front-end-error",
                "degree": 0,
                "detail": f"[{first.code}] {first.message}",
                "feasible_degrees": [],
                "bound": None,
                "describe": None,
            }
        try:
            verdict = run_conventional_function(
                parsed.functions, name, max_degree=self.max_degree, budget=self.budget
            )
        except SourceError as exc:
            d = from_source_error(exc)
            return {
                "status": "front-end-error",
                "degree": 0,
                "detail": f"[{d.code}] {d.message}",
                "feasible_degrees": [],
                "bound": None,
                "describe": None,
            }
        except ReproError as exc:
            return {
                "status": "front-end-error",
                "degree": 0,
                "detail": f"{type(exc).__name__}: {exc}",
                "feasible_degrees": [],
                "bound": None,
                "describe": None,
            }
        return _verdict_doc(verdict)

    def _bound_stage(
        self, parsed: ParseResult, fps: Fingerprints, result: IncrementalResult
    ) -> None:
        with telemetry.span("incr.bounds", path=result.path):
            reused: List[str] = []
            recomputed: List[str] = []
            for name in fps.order:
                key = self._bound_key(fps, name)
                value = self.store.load(key) if self.store is not None else None
                if value is not None:
                    result.bounds[name] = value
                    reused.append(name)
                    continue
                fatal = self._cone_errors(
                    result.diagnostics, fps.cone_members[name], name
                )
                value = self._compute_bound(parsed, name, fatal)
                result.bounds[name] = value
                recomputed.append(name)
                if self.store is not None:
                    self.store.store(key, value)
            result.bound_stage = StageStats(
                reused=tuple(reused), recomputed=tuple(recomputed)
            )


# ---------------------------------------------------------------------------
# Server fast path
# ---------------------------------------------------------------------------


def peek_conventional_verdict(
    store: ArtifactStore,
    source: str,
    entry: Optional[str] = None,
    max_degree: int = 3,
    budget=None,
) -> Optional[Dict[str, Any]]:
    """A warm conventional verdict for ``source``'s entry, or ``None``.

    The admission-path probe behind ``POST /analyze {"source": ...}``:
    one budgeted parse plus one artifact read — never an LP solve — so a
    hit costs milliseconds and a miss costs nothing but the parse the
    lint gate already paid for.  Returns the verdict in the batch
    harness's ``_verdict_to_json`` shape (``runtime_seconds`` pinned to
    0.0: the work was done in a previous editor/watch session).
    """
    engine = IncrementalEngine(store, max_degree=max_degree, budget=budget)
    try:
        parsed = parse_program_ex(
            source,
            max_chars=getattr(budget, "max_source_chars", None),
            max_tokens=getattr(budget, "max_tokens", None),
            max_depth=getattr(budget, "max_nesting_depth", None),
        )
    except (LexError, ParseError):
        return None
    fps = fingerprint_functions(source, parsed)
    if fps is None:
        return None
    root = entry_function(parsed.functions, entry)
    if root is None:
        return None
    value = store.load(engine._bound_key(fps, root))
    if value is None or value.get("status") == "front-end-error":
        return None
    return {
        "status": value["status"],
        "degree": value.get("degree", 0),
        "detail": value.get("detail", ""),
        "runtime_seconds": 0.0,
        "feasible_degrees": list(value.get("feasible_degrees") or ()),
        "bound": value.get("bound"),
    }
