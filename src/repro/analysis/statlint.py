"""Tick / stat placement lints (``statlint``).

``Raml.tick q`` spends ``q`` resource units; ``Raml.stat e`` marks the
call in ``e`` for data-driven (Bayesian) analysis.  Both are easy to
misplace in ways the pipeline accepts silently:

* ``W010`` a negative tick *refunds* potential — legal, but usually a
  typo for a positive cost,
* ``W011`` ``stat`` wrapping a non-application has nothing to analyze,
* ``W012`` nested ``stat`` — the inner annotation is subsumed,
* ``W013`` a ``stat`` in a function unreachable from the entry point
  never produces runtime data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..lang import ast as A
from .callgraph import call_graph, reachable
from .deadcode import entry_function
from .diagnostics import Diagnostic, Span


def _span(pos: Optional[A.Pos]) -> Optional[Span]:
    if pos is None or pos.line <= 0:
        return None
    return Span(pos.line, pos.col, 1)


def statlint_diagnostics(
    functions: Sequence[A.FunDef],
    entry: Optional[str] = None,
    path: str = "<input>",
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    root = entry_function(functions, entry)
    live = None
    if root is not None:
        live = reachable(call_graph(functions), [root])

    for fdef in functions:
        for node in fdef.body.walk():
            if isinstance(node, A.Tick) and node.amount < 0:
                diags.append(
                    Diagnostic(
                        code="W010",
                        severity="warning",
                        message=f"negative tick ({node.amount:g}) refunds potential",
                        span=_span(node.pos),
                        path=path,
                        function=fdef.name,
                        notes=(
                            "make sure the refund is intentional; costs are "
                            "usually non-negative",
                        ),
                    )
                )
            if not isinstance(node, A.Stat):
                continue
            target = node.body
            if not isinstance(target, A.App):
                diags.append(
                    Diagnostic(
                        code="W011",
                        severity="warning",
                        message=(
                            "'stat' should wrap a function application; "
                            f"got {type(target).__name__}"
                        ),
                        span=_span(node.pos),
                        path=path,
                        function=fdef.name,
                        notes=(
                            "data-driven analysis estimates the cost of the "
                            "wrapped call",
                        ),
                    )
                )
            for inner in target.walk():
                if isinstance(inner, A.Stat):
                    diags.append(
                        Diagnostic(
                            code="W012",
                            severity="warning",
                            message=f"nested 'stat' ({inner.label}) inside '{node.label}'",
                            span=_span(inner.pos or node.pos),
                            path=path,
                            function=fdef.name,
                            notes=("the outer annotation subsumes the inner one",),
                        )
                    )
            if live is not None and fdef.name not in live:
                diags.append(
                    Diagnostic(
                        code="W013",
                        severity="warning",
                        message=(
                            f"'stat' site '{node.label}' is unreachable from "
                            f"entry '{root}' and collects no data"
                        ),
                        span=_span(node.pos),
                        path=path,
                        function=fdef.name,
                    )
                )
    return diags
