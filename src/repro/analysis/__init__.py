"""``repro.analysis`` — static analyzer and diagnostics engine.

Multi-pass linter over the *pre-normalization* AST (resolution, affine
usage, dead code, tick/stat placement, recursion shape), a rustc-style
diagnostics engine with text/JSON/SARIF renderers, and a between-stage
IR verifier for the normalizer.  See ``repro lint --help`` for the CLI.
"""

from .diagnostics import (
    CODES,
    SEVERITIES,
    Diagnostic,
    Span,
    dumps_sarif,
    from_source_error,
    promote_warnings,
    render_all_text,
    render_source_error,
    render_text,
    to_json,
    to_sarif,
)
from .engine import (
    PASSES,
    LintResult,
    extract_embedded_sources,
    lint_embedded,
    lint_source,
)
from .fingerprint import (
    FINGERPRINT_VERSION,
    Fingerprints,
    fingerprint_functions,
    program_fingerprint,
)
from .incremental import (
    ARTIFACT_VERSION,
    ArtifactStore,
    IncrementalEngine,
    IncrementalResult,
    peek_conventional_verdict,
)
from .recursion import recursion_diagnostics
from .verify_ir import check_expr, verification_enabled, verify_expr

__all__ = [
    "CODES",
    "SEVERITIES",
    "Diagnostic",
    "Span",
    "LintResult",
    "PASSES",
    "lint_source",
    "lint_embedded",
    "extract_embedded_sources",
    "FINGERPRINT_VERSION",
    "Fingerprints",
    "fingerprint_functions",
    "program_fingerprint",
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "IncrementalEngine",
    "IncrementalResult",
    "peek_conventional_verdict",
    "recursion_diagnostics",
    "promote_warnings",
    "render_text",
    "render_all_text",
    "render_source_error",
    "from_source_error",
    "to_json",
    "to_sarif",
    "dumps_sarif",
    "check_expr",
    "verify_expr",
    "verification_enabled",
]
