"""The diagnostics engine: stable codes, severities, and renderers.

Every front-end finding — lexer/parser failures, lint pass results, IR
verifier violations — is a :class:`Diagnostic`: a stable code (``R0xx``
errors, ``W0xx`` warnings, ``N0xx`` notes, ``V0xx`` IR invariants), a
severity, a source span, and optional secondary notes.  Diagnostics render
three ways:

* ``text`` — rustc-style caret snippets cut from the original source,
* ``json`` — one flat object per diagnostic for scripting,
* ``sarif`` — SARIF 2.1.0, consumable by GitHub code scanning.

The renderers never need the AST; they only need the diagnostic list and
(for carets) the original source text, so errors raised deep inside
``normalize``/``typecheck`` can be rendered identically to lint findings.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import (
    LexError,
    NestingDepthError,
    ParseError,
    SourceError,
    TypeMismatchError,
)

#: severity names, most severe first (used for sorting and for --Werror)
SEVERITIES = ("error", "warning", "note")

#: the stable code registry: code -> one-line rule description.  This is
#: the single source of truth for the README table and the SARIF rule
#: metadata; tests assert every emitted diagnostic uses a registered code.
CODES: Dict[str, str] = {
    "R001": "lexical error",
    "R002": "syntax error",
    "R003": "type error",
    "R004": "nesting depth limit exceeded",
    "R010": "unbound variable",
    "R011": "unknown function",
    "R012": "wrong number of arguments",
    "R013": "duplicate parameter",
    "R014": "duplicate function definition",
    "R015": "recursive call to a function not declared 'rec'",
    "R016": "entry function not found",
    "R042": "recursion shape unboundable by univariate AARA",
    "R043": "mutual recursion beyond cost-free resource polymorphism",
    "W001": "binder shadows an enclosing binding",
    "W002": "unused let-bound variable",
    "W003": "function unreachable from the entry point",
    "W004": "unreachable match arm",
    "W005": "non-exhaustive match",
    "W010": "negative tick amount",
    "W011": "stat applied to a non-application",
    "W012": "nested stat annotation",
    "W013": "stat site unreachable from the entry point",
    "N001": "implicit duplication (share-let will split potential)",
    "N002": "unused pattern binder",
    "V001": "IR invariant: binder bound more than once",
    "V002": "IR invariant: non-variable operand after ANF",
    "V003": "IR invariant: variable used more than once after share",
}


@dataclass(frozen=True)
class Span:
    """A 1-based source location with a caret width in columns."""

    line: int
    col: int
    length: int = 1


@dataclass(frozen=True)
class Diagnostic:
    code: str
    severity: str  # 'error' | 'warning' | 'note'
    message: str
    span: Optional[Span] = None
    path: str = "<input>"
    function: Optional[str] = None
    notes: Tuple[str, ...] = field(default_factory=tuple)

    def sort_key(self):
        span = self.span or Span(0, 0)
        return (self.path, span.line, span.col, self.code)

    def location(self) -> str:
        if self.span is None:
            return self.path
        return f"{self.path}:{self.span.line}:{self.span.col}"


def promote_warnings(diags: Sequence[Diagnostic]) -> List[Diagnostic]:
    """--Werror: every warning becomes an error (notes are untouched)."""
    return [
        dataclasses.replace(d, severity="error") if d.severity == "warning" else d
        for d in diags
    ]


# ---------------------------------------------------------------------------
# Text rendering (rustc-style caret snippets)
# ---------------------------------------------------------------------------


def render_text(diag: Diagnostic, source: Optional[str] = None) -> str:
    """One diagnostic as a caret snippet::

        warning[W002]: unused variable `x`
          --> prog.ml:3:7
          3 |   let x = 5 in body
            |       ^
          = note: ...
    """
    lines = [f"{diag.severity}[{diag.code}]: {diag.message}"]
    span = diag.span
    if span is not None:
        lines.append(f"  --> {diag.location()}")
        src_line = _source_line(source, span.line)
        if src_line is not None:
            gutter = str(span.line)
            pad = " " * len(gutter)
            caret_col = max(span.col, 1) - 1
            carets = "^" * max(span.length, 1)
            lines.append(f"  {gutter} | {src_line}")
            lines.append(f"  {pad} | {' ' * caret_col}{carets}")
    else:
        lines.append(f"  --> {diag.path}")
    for note in diag.notes:
        lines.append(f"  = note: {note}")
    return "\n".join(lines)


def render_all_text(
    diags: Sequence[Diagnostic], sources: Optional[Dict[str, str]] = None
) -> str:
    """Render a diagnostic list plus a one-line totals summary."""
    sources = sources or {}
    blocks = [render_text(d, sources.get(d.path)) for d in diags]
    counts = {sev: 0 for sev in SEVERITIES}
    for d in diags:
        counts[d.severity] = counts.get(d.severity, 0) + 1
    summary = (
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['note']} note(s)"
    )
    return "\n\n".join(blocks + [summary]) if blocks else summary


def _source_line(source: Optional[str], line: int) -> Optional[str]:
    if source is None or line < 1:
        return None
    lines = source.splitlines()
    if line > len(lines):
        return None
    return lines[line - 1]


# ---------------------------------------------------------------------------
# JSON / SARIF rendering
# ---------------------------------------------------------------------------


def to_json(diags: Sequence[Diagnostic]) -> Dict:
    return {
        "version": 1,
        "diagnostics": [
            {
                "code": d.code,
                "severity": d.severity,
                "message": d.message,
                "path": d.path,
                "line": None if d.span is None else d.span.line,
                "col": None if d.span is None else d.span.col,
                "length": None if d.span is None else d.span.length,
                "function": d.function,
                "notes": list(d.notes),
            }
            for d in diags
        ],
    }


def to_sarif(diags: Sequence[Diagnostic]) -> Dict:
    """SARIF 2.1.0 log (GitHub code-scanning compatible)."""
    used = sorted({d.code for d in diags} | set())
    rules = [
        {
            "id": code,
            "shortDescription": {"text": CODES.get(code, code)},
            "fullDescription": {
                "text": f"{code}: {CODES.get(code, code)} "
                "(see the diagnostics table in the repository README)"
            },
        }
        for code in used
    ]
    results = []
    for d in diags:
        result = {
            "ruleId": d.code,
            "level": "note" if d.severity == "note" else d.severity,
            "message": {"text": d.message},
        }
        if d.span is not None:
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {
                            "startLine": d.span.line,
                            "startColumn": d.span.col,
                            # spans never cross lines, so the region ends
                            # on the line it starts on
                            "endLine": d.span.line,
                            "endColumn": d.span.col + max(d.span.length, 1),
                        },
                    }
                }
            ]
        results.append(result)
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "README.md#static-analysis--linting",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def dumps_sarif(diags: Sequence[Diagnostic]) -> str:
    return json.dumps(to_sarif(diags), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# Bridging the exception hierarchy
# ---------------------------------------------------------------------------

# subclasses before their bases: the first isinstance match wins
_SOURCE_ERROR_CODES = (
    (LexError, "R001"),
    (NestingDepthError, "R004"),
    (ParseError, "R002"),
    (TypeMismatchError, "R003"),
)


def from_source_error(exc: SourceError, path: str = "<input>") -> Diagnostic:
    """Wrap a located front-end exception as a diagnostic.

    ``SourceError`` prefixes its message with ``line:col:`` for bare
    string consumers; strip that here since the span carries the location.
    """
    code = "R002"
    for cls, cls_code in _SOURCE_ERROR_CODES:
        if isinstance(exc, cls):
            code = cls_code
            break
    message = str(exc)
    if exc.line is not None:
        prefix = f"{exc.line}:{exc.col if exc.col is not None else '?'}: "
        if message.startswith(prefix):
            message = message[len(prefix) :]
    span = None
    if exc.line is not None:
        span = Span(exc.line, exc.col if exc.col is not None else 1)
    return Diagnostic(code=code, severity="error", message=message, span=span, path=path)


def render_source_error(exc: SourceError, source: str, path: str) -> str:
    """Caret-render a LexError/ParseError/TypeMismatchError (CLI helper)."""
    return render_text(from_source_error(exc, path), source)
