"""Dead-code pass: unused variables, unreachable functions and arms.

* ``W002`` a ``let``-bound variable is never used,
* ``N002`` an unused *pattern* binder (match-arm or tuple component) —
  a note, not a warning, because naming all components of a destructured
  value is idiomatic in the benchmark sources,
* ``W003`` a function unreachable from the analysis entry point,
* ``W004`` a match arm no decision-tree leaf can select,
* ``W005`` a non-exhaustive match / refutable ``let`` pattern,
* ``R016`` the requested entry function does not exist.

Arm reachability comes from the parser's pattern-matrix compiler
(:class:`repro.lang.parser.MatchRecord`); it cannot be recovered from
the compiled core AST.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..lang import ast as A
from ..lang.parser import MatchRecord
from .callgraph import call_graph, reachable
from .diagnostics import Diagnostic, Span


def _span(pos: Optional[A.Pos]) -> Optional[Span]:
    if pos is None or pos.line <= 0:
        return None
    return Span(pos.line, pos.col, 1)


def _ignorable(name: str) -> bool:
    return name.startswith("$") or name.startswith("_")


def entry_function(
    functions: Sequence[A.FunDef], entry: Optional[str]
) -> Optional[str]:
    """Resolve the analysis root: explicit entry, else the last definition."""
    names = [f.name for f in functions]
    if entry is not None:
        return entry if entry in names else None
    return names[-1] if names else None


def deadcode_diagnostics(
    functions: Sequence[A.FunDef],
    match_records: Sequence[MatchRecord] = (),
    entry: Optional[str] = None,
    path: str = "<input>",
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []

    root = entry_function(functions, entry)
    if entry is not None and root is None:
        diags.append(
            Diagnostic(
                code="R016",
                severity="error",
                message=f"entry function '{entry}' is not defined",
                path=path,
                notes=("defined: " + ", ".join(f.name for f in functions),),
            )
        )

    # unused let/pattern binders -------------------------------------------
    for fdef in functions:
        for node in fdef.body.walk():
            if isinstance(node, A.Let):
                if node.name in A.free_vars(node.body) or _ignorable(node.name):
                    continue
                from_pattern = isinstance(node.bound, A.Var) and node.bound.name.startswith("$")
                diags.append(
                    Diagnostic(
                        code="N002" if from_pattern else "W002",
                        severity="note" if from_pattern else "warning",
                        message=(
                            f"pattern binder '{node.name}' is never used"
                            if from_pattern
                            else f"variable '{node.name}' is bound but never used"
                        ),
                        span=_span(node.pos),
                        path=path,
                        function=fdef.name,
                        notes=("prefix with '_' to silence",),
                    )
                )
            elif isinstance(node, A.MatchTuple):
                body_free = A.free_vars(node.body)
                for name in node.names:
                    if name in body_free or _ignorable(name):
                        continue
                    diags.append(
                        Diagnostic(
                            code="N002",
                            severity="note",
                            message=f"pattern binder '{name}' is never used",
                            span=_span(node.pos),
                            path=path,
                            function=fdef.name,
                            notes=("prefix with '_' to silence",),
                        )
                    )

    # unreachable functions -------------------------------------------------
    if root is not None:
        graph = call_graph(functions)
        live = reachable(graph, [root])
        for fdef in functions:
            if fdef.name in live:
                continue
            diags.append(
                Diagnostic(
                    code="W003",
                    severity="warning",
                    message=(
                        f"function '{fdef.name}' is unreachable from "
                        f"entry '{root}'"
                    ),
                    span=_span(fdef.name_pos or fdef.pos),
                    path=path,
                    function=fdef.name,
                )
            )

    # match-arm reachability / exhaustiveness -------------------------------
    for record in match_records:
        if record.kind == "match":
            for arm in range(len(record.arm_pos)):
                if arm in record.used:
                    continue
                diags.append(
                    Diagnostic(
                        code="W004",
                        severity="warning",
                        message="this match arm is unreachable",
                        span=_span(record.arm_pos[arm]),
                        path=path,
                        function=record.fun,
                        notes=("earlier arms already cover every value it matches",),
                    )
                )
        if record.nonexhaustive:
            if record.kind == "match":
                message = "this match does not cover all cases"
            else:
                message = "refutable 'let' pattern may fail at runtime"
            diags.append(
                Diagnostic(
                    code="W005",
                    severity="warning",
                    message=message,
                    span=_span(record.pos),
                    path=path,
                    function=record.fun,
                    notes=("a runtime match failure raises an error",),
                )
            )
    return diags
