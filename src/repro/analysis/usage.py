"""Affine-usage / share-discipline pass (``usage``).

AARA's type system is affine: a variable may be consumed once.  The
normalizer silently repairs multiple uses with explicit ``share`` nodes,
which *split* the potential of the shared value.  That is sound but can
surprise: a list consumed by two sequential calls only carries half the
potential into each.  This pass surfaces every implicit duplication as an
``N001`` note at the node whose sub-expressions both consume the
variable, using the exact sequential/parallel grouping the normalizer
itself uses (:func:`repro.lang.normalize.sequential_parts`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..lang import ast as A
from ..lang.normalize import sequential_parts
from .diagnostics import Diagnostic, Span


def _group_free_vars(expr: A.Expr) -> Optional[List[Set[str]]]:
    """Free variables of each sequential group, minus binders of ``expr``.

    Binders introduced *at* this node (a ``let`` name, match-arm
    variables) are removed from their group so that shadowing does not
    masquerade as duplication — the outer and inner variable merely share
    a spelling.
    """
    parts = sequential_parts(expr)
    if parts is None:
        return None
    if isinstance(expr, A.Let):
        return [A.free_vars(expr.bound), A.free_vars(expr.body) - {expr.name}]
    if isinstance(expr, A.MatchList):
        cons = A.free_vars(expr.cons_branch) - {expr.head_var, expr.tail_var}
        return [A.free_vars(expr.scrutinee), A.free_vars(expr.nil_branch) | cons]
    if isinstance(expr, A.MatchSum):
        left = A.free_vars(expr.left_branch) - {expr.left_var}
        right = A.free_vars(expr.right_branch) - {expr.right_var}
        return [A.free_vars(expr.scrutinee), left | right]
    if isinstance(expr, A.MatchTuple):
        return [
            A.free_vars(expr.scrutinee),
            A.free_vars(expr.body) - set(expr.names),
        ]
    if isinstance(expr, A.Share):
        # explicit duplication — exactly what N001 is *not* about
        return None
    groups, _rebuild = parts
    out: List[Set[str]] = []
    for group in groups:
        used: Set[str] = set()
        for sub in group:
            used |= A.free_vars(sub)
        out.append(used)
    return out


def usage_diagnostics(
    functions: Sequence[A.FunDef], path: str = "<input>"
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for fdef in functions:
        reported: Set[str] = set()
        for node in fdef.body.walk():
            group_vars = _group_free_vars(node)
            if not group_vars:
                continue
            counts = {}
            for used in group_vars:
                for var in used:
                    counts[var] = counts.get(var, 0) + 1
            for var in sorted(v for v, k in counts.items() if k > 1):
                if var.startswith("$") or var in reported:
                    continue
                reported.add(var)
                span = None
                if node.pos is not None and node.pos.line > 0:
                    span = Span(node.pos.line, node.pos.col, 1)
                diags.append(
                    Diagnostic(
                        code="N001",
                        severity="note",
                        message=(
                            f"'{var}' is consumed more than once; "
                            "normalization inserts an implicit share"
                        ),
                        span=span,
                        path=path,
                        function=fdef.name,
                        notes=(
                            "AARA splits the potential of a shared value "
                            "between its uses",
                        ),
                    )
                )
    return diags
