"""Name, arity and recursion-marker resolution (pass ``resolve``).

Reports the hard errors a program must not have before any later pass
(or the analysis itself) can trust its shape:

* ``R010`` unbound variable (with a hint when the name is a function),
* ``R011`` unknown or forward function reference,
* ``R012`` wrong number of arguments,
* ``R013`` duplicate parameter name,
* ``R014`` duplicate top-level definition,
* ``R015`` recursive call in a function not marked ``rec``,

plus the ``W001`` shadowing warning, which is a frequent source of
accidental implicit duplication downstream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..lang import ast as A
from ..lang.builtins import get_builtin, is_builtin
from .diagnostics import Diagnostic, Span


def _span(pos: Optional[A.Pos], length: int = 1) -> Optional[Span]:
    if pos is None or pos.line <= 0:
        return None
    return Span(pos.line, pos.col, length)


def _synthetic(name: str) -> bool:
    """Compiler-introduced or deliberately-ignored names are exempt."""
    return name.startswith("$") or name.startswith("_")


class _Resolver:
    def __init__(self, functions: Sequence[A.FunDef], path: str):
        self.functions = list(functions)
        self.path = path
        self.diags: List[Diagnostic] = []
        self.fun: Optional[A.FunDef] = None
        #: functions visible at the current definition (earlier + self)
        self.visible: Dict[str, A.FunDef] = {}
        self.all_names = {f.name for f in self.functions}

    def emit(self, code: str, severity: str, message: str, pos, notes=()) -> None:
        length = 1
        self.diags.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                span=_span(pos, length),
                path=self.path,
                function=self.fun.name if self.fun else None,
                notes=tuple(notes),
            )
        )

    # -- top level ----------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        seen: Dict[str, A.FunDef] = {}
        for fdef in self.functions:
            if fdef.name in seen:
                first = seen[fdef.name]
                where = f"{first.pos.line}:{first.pos.col}" if first.pos else "earlier"
                self.fun = fdef
                self.emit(
                    "R014",
                    "error",
                    f"function '{fdef.name}' is defined more than once",
                    fdef.name_pos or fdef.pos,
                    notes=(f"first definition is at {where}; the later one wins",),
                )
            else:
                seen[fdef.name] = fdef
            self.fun = fdef
            self.check_fundef(fdef)
            self.visible[fdef.name] = fdef
        self.fun = None
        return self.diags

    def check_fundef(self, fdef: A.FunDef) -> None:
        env: Dict[str, str] = {}
        for idx, pname in enumerate(fdef.params):
            ppos = None
            if fdef.param_pos and idx < len(fdef.param_pos):
                ppos = fdef.param_pos[idx]
            if pname in env and not _synthetic(pname):
                self.emit(
                    "R013",
                    "error",
                    f"duplicate parameter '{pname}' in function '{fdef.name}'",
                    ppos or fdef.pos,
                )
            env[pname] = "param"
        self.check_expr(fdef.body, env)

    # -- expressions --------------------------------------------------------

    def bind(self, env: Dict[str, str], name: str, pos) -> Dict[str, str]:
        if name in env and not _synthetic(name):
            kind = "parameter" if env[name] == "param" else "earlier binding"
            self.emit(
                "W001",
                "warning",
                f"'{name}' shadows a {kind} of the same name",
                pos,
                notes=("the outer value becomes unreachable in this scope",),
            )
        child = dict(env)
        child[name] = "local"
        return child

    def check_call(self, node: A.App) -> None:
        name = node.fname
        if is_builtin(name):
            want = get_builtin(name).arity
            if len(node.args) != want:
                self.emit(
                    "R012",
                    "error",
                    f"builtin '{name}' expects {want} argument(s), got {len(node.args)}",
                    node.pos,
                )
            return
        if self.fun is not None and name == self.fun.name:
            if not self.fun.recursive:
                self.emit(
                    "R015",
                    "error",
                    f"recursive call to '{name}' but the definition is not marked 'rec'",
                    node.pos,
                    notes=("write 'let rec' to allow self-reference",),
                )
            want = len(self.fun.params)
            if len(node.args) != want:
                self.emit(
                    "R012",
                    "error",
                    f"function '{name}' expects {want} argument(s), got {len(node.args)}",
                    node.pos,
                )
            return
        target = self.visible.get(name)
        if target is None:
            if name in self.all_names:
                self.emit(
                    "R011",
                    "error",
                    f"function '{name}' is defined later in the file",
                    node.pos,
                    notes=("functions may only reference earlier definitions",),
                )
            else:
                self.emit("R011", "error", f"unknown function '{name}'", node.pos)
            return
        want = len(target.params)
        if len(node.args) != want:
            self.emit(
                "R012",
                "error",
                f"function '{name}' expects {want} argument(s), got {len(node.args)}",
                node.pos,
            )

    def check_expr(self, expr: A.Expr, env: Dict[str, str]) -> None:
        if isinstance(expr, A.Var):
            if expr.name not in env:
                notes = ()
                if expr.name in self.all_names or is_builtin(expr.name):
                    notes = (
                        f"'{expr.name}' is a function; functions are not "
                        "first-class and must be fully applied",
                    )
                self.emit(
                    "R010", "error", f"unbound variable '{expr.name}'", expr.pos, notes
                )
            return
        if isinstance(expr, A.App):
            self.check_call(expr)
            for arg in expr.args:
                self.check_expr(arg, env)
            return
        if isinstance(expr, A.Let):
            self.check_expr(expr.bound, env)
            self.check_expr(expr.body, self.bind(env, expr.name, expr.pos))
            return
        if isinstance(expr, A.Share):
            self.check_expr(A.Var(expr.name, pos=expr.pos), env)
            child = dict(env)
            child[expr.name1] = "local"
            child[expr.name2] = "local"
            self.check_expr(expr.body, child)
            return
        if isinstance(expr, A.MatchList):
            self.check_expr(expr.scrutinee, env)
            self.check_expr(expr.nil_branch, env)
            child = env
            for name in (expr.head_var, expr.tail_var):
                child = self.bind(child, name, expr.pos)
            self.check_expr(expr.cons_branch, child)
            return
        if isinstance(expr, A.MatchSum):
            self.check_expr(expr.scrutinee, env)
            self.check_expr(expr.left_branch, self.bind(env, expr.left_var, expr.pos))
            self.check_expr(expr.right_branch, self.bind(env, expr.right_var, expr.pos))
            return
        if isinstance(expr, A.MatchTuple):
            self.check_expr(expr.scrutinee, env)
            child = env
            for name in expr.names:
                child = self.bind(child, name, expr.pos)
            self.check_expr(expr.body, child)
            return
        for child_expr in expr.children():
            self.check_expr(child_expr, env)


def resolve_diagnostics(
    functions: Sequence[A.FunDef], path: str = "<input>"
) -> List[Diagnostic]:
    """Run the resolution pass over source-order function definitions."""
    return _Resolver(functions, path).run()
