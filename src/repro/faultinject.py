"""Deterministic fault injection for the evaluation pipeline.

Long statistical runs fail in practice in a handful of characteristic
ways: worker processes crash or hang, samplers walk into NaN
log-densities, ``scipy.linprog`` reports spurious numerical failures on
degenerate LPs, and parallel jobs tear cache files.  This module injects
exactly those faults — deterministically — so the fault-tolerance layer
(runner watchdog, sampler self-healing, LP fallback chain, cache
recovery) can be proven to work under test.

Activation
----------
Injection is off unless a fault *plan* is active.  A plan comes from
either

* the ``REPRO_FAULTS`` environment variable (propagates to forked pool
  workers), optionally paired with ``REPRO_FAULTS_STATE=<dir>`` so that
  firing counters are shared *across processes* via atomically-claimed
  token files; or
* :func:`install`, for in-process programmatic use (tests).

With no plan active every hook is a near-no-op (one env lookup for the
coarse hooks; :func:`wrap_logdensity` returns the original function
unwrapped, so samplers pay literally nothing per iteration).

Spec format
-----------
``REPRO_FAULTS`` is a ``;``-separated list of clauses::

    site[:key=value]*

where ``site`` is one of

``worker-crash``
    the worker raises :class:`InjectedFault` (``action=raise``, default)
    or dies hard with ``os._exit(13)`` (``action=exit``) before running
    its task — exercising the runner's retry / pool-replacement path.
``worker-hang``
    the worker sleeps ``delay`` seconds (default 3600) — exercising the
    ``--task-timeout`` watchdog.
``nan-logdensity``
    the sampler's log-density returns NaN (value and gradient) —
    exercising divergence detection and chain self-healing.
``lp-fail``
    ``scipy.linprog`` reports a numerical failure — exercising the LP
    fallback chain.
``cache-torn``
    the result cache writes a truncated (torn) entry at the final path —
    exercising corrupt-entry recovery.
``parent-signal``
    the *dispatching* process signals itself mid-grid, before the matched
    task runs: ``action=term`` (default) sends SIGTERM — exercising
    graceful shutdown + ``bench resume`` — while ``action=kill`` sends
    SIGKILL, proving the write-ahead journal alone suffices.
``journal-enospc``
    the run journal's append raises ENOSPC — exercising its warn-once
    degraded mode (the run must finish; only resumability is lost).
``cache-bitflip``
    the result cache flips one payload byte before writing — exercising
    the checksum + quarantine integrity layer.

and the options are

``match=<fnmatch pattern>``
    which keys the clause targets (task ids for crash/hang/cache-torn,
    sampler context keys for nan-logdensity, the linprog method name for
    lp-fail).  Default ``*``.
``count=<n>``
    arm only the first ``n`` matching invocations (``-1`` = unlimited).
    Default ``1``.  With ``REPRO_FAULTS_STATE`` set, the invocation
    counter is shared across processes, so "fire once" means once per
    *run*, not once per worker.
``prob=<p>`` / ``seed=<s>``
    fire an armed invocation only with probability ``p``, decided by a
    SHA-256 hash of ``(seed, clause, invocation#)`` — deterministic, no
    global RNG state touched.  Default ``prob=1``.
``delay=<seconds>``
    sleep length for ``worker-hang``.  Default 3600.
``action=raise|exit|term|kill``
    crash flavour.  ``raise``/``exit`` apply to ``worker-crash`` (``exit``
    only makes sense for pool workers — it terminates the process);
    ``term``/``kill`` apply to ``parent-signal`` and pick the signal.

Example: crash the Round/data-driven/opt cell once and tear the first
two cache writes::

    REPRO_FAULTS='worker-crash:match=Round/data-driven/opt:count=1;cache-torn:count=2'
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from . import telemetry
from .errors import ReproError

#: injection sites
WORKER_CRASH = "worker-crash"
WORKER_HANG = "worker-hang"
NAN_LOGDENSITY = "nan-logdensity"
LP_FAIL = "lp-fail"
CACHE_TORN = "cache-torn"
PARENT_SIGNAL = "parent-signal"
JOURNAL_ENOSPC = "journal-enospc"
CACHE_BITFLIP = "cache-bitflip"

SITES = (
    WORKER_CRASH,
    WORKER_HANG,
    NAN_LOGDENSITY,
    LP_FAIL,
    CACHE_TORN,
    PARENT_SIGNAL,
    JOURNAL_ENOSPC,
    CACHE_BITFLIP,
)

ENV_SPEC = "REPRO_FAULTS"
ENV_STATE = "REPRO_FAULTS_STATE"


class InjectedFault(RuntimeError):
    """Raised by an injected ``worker-crash`` fault (``action=raise``).

    Deliberately *not* a :class:`~repro.errors.ReproError`: the runner
    must treat it like any other unexpected worker death (retry with
    backoff), not like a recorded per-cell analysis outcome.
    """


@dataclass
class FaultClause:
    """One parsed clause of a fault spec."""

    site: str
    match: str = "*"
    count: int = 1  # armed matching invocations; -1 = unlimited
    prob: float = 1.0
    seed: int = 0
    delay: float = 3600.0  # worker-hang sleep seconds
    #: worker-crash: 'raise' | 'exit'; parent-signal: 'term' | 'kill'
    action: str = "raise"


def parse_spec(spec: str) -> List[FaultClause]:
    """Parse a ``REPRO_FAULTS`` string into clauses (raises on nonsense)."""
    clauses: List[FaultClause] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        site = parts[0].strip()
        if site not in SITES:
            raise ReproError(
                f"unknown fault site {site!r} (known: {', '.join(SITES)})"
            )
        kwargs: dict = {}
        for part in parts[1:]:
            if "=" not in part:
                raise ReproError(
                    f"malformed fault option {part!r} in {chunk!r} (expected key=value)"
                )
            key, value = (s.strip() for s in part.split("=", 1))
            if key == "match":
                kwargs["match"] = value
            elif key == "count":
                kwargs["count"] = int(value)
            elif key == "prob":
                kwargs["prob"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key == "delay":
                kwargs["delay"] = float(value)
            elif key == "action":
                if value not in ("raise", "exit", "term", "kill"):
                    raise ReproError(
                        f"unknown crash action {value!r} (raise|exit|term|kill)"
                    )
                kwargs["action"] = value
            else:
                raise ReproError(f"unknown fault option {key!r} in {chunk!r}")
        clauses.append(FaultClause(site=site, **kwargs))
    if not clauses:
        raise ReproError("empty fault spec")
    return clauses


def _u01(seed: int, clause_index: int, invocation: int) -> float:
    """Deterministic uniform in [0, 1) — SHA-256, no RNG state."""
    digest = hashlib.sha256(f"{seed}/{clause_index}/{invocation}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultPlan:
    """A set of clauses plus per-clause invocation counters.

    Counters are in-memory by default; with ``state_dir`` they are
    token files claimed with ``O_CREAT | O_EXCL``, which makes firing
    counts exact across forked pool workers and replaced pools.
    """

    def __init__(self, clauses: List[FaultClause], state_dir: Optional[str] = None):
        self.clauses = list(clauses)
        self.state_dir = str(state_dir) if state_dir else None
        self._counters = [0] * len(self.clauses)
        if self.state_dir:
            os.makedirs(self.state_dir, exist_ok=True)

    @classmethod
    def parse(cls, spec: str, state_dir: Optional[str] = None) -> "FaultPlan":
        return cls(parse_spec(spec), state_dir=state_dir)

    def targets(self, site: str, key: str) -> bool:
        """Does any clause (armed or spent) target this site + key?"""
        return any(
            c.site == site and fnmatch.fnmatchcase(key, c.match) for c in self.clauses
        )

    def _next_invocation(self, idx: int, clause: FaultClause) -> int:
        if self.state_dir is None:
            n = self._counters[idx]
            self._counters[idx] = n + 1
            return n
        # cross-process: claim the lowest unclaimed token for this clause;
        # start from the local cursor so repeated firings stay O(1)
        n = self._counters[idx]
        while True:
            if clause.count >= 0 and n >= clause.count:
                return n  # clause is spent: no need to claim anything
            token = os.path.join(self.state_dir, f"clause{idx}.{n}.tok")
            try:
                fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                self._counters[idx] = n + 1
                return n
            except FileExistsError:
                n += 1

    def fire(self, site: str, key: str = "") -> Optional[FaultClause]:
        """First armed clause that fires for this invocation, else None."""
        for idx, clause in enumerate(self.clauses):
            if clause.site != site or not fnmatch.fnmatchcase(key, clause.match):
                continue
            n = self._next_invocation(idx, clause)
            if clause.count >= 0 and n >= clause.count:
                continue
            if clause.prob < 1.0 and _u01(clause.seed, idx, n) >= clause.prob:
                continue
            return clause
        return None


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------

_INSTALLED: Optional[FaultPlan] = None
_ENV_PLAN: Optional[FaultPlan] = None
_ENV_SPEC_SEEN: Optional[str] = None
_ENV_STATE_SEEN: Optional[str] = None


def install(plan: FaultPlan) -> None:
    """Activate a plan programmatically (overrides the environment)."""
    global _INSTALLED
    _INSTALLED = plan


def uninstall() -> None:
    """Deactivate injection and drop any cached env-derived plan."""
    global _INSTALLED, _ENV_PLAN, _ENV_SPEC_SEEN, _ENV_STATE_SEEN
    _INSTALLED = None
    _ENV_PLAN = None
    _ENV_SPEC_SEEN = None
    _ENV_STATE_SEEN = None


def active_plan() -> Optional[FaultPlan]:
    """The active plan, if any (installed first, else from the env)."""
    if _INSTALLED is not None:
        return _INSTALLED
    spec = os.environ.get(ENV_SPEC) or ""
    state = os.environ.get(ENV_STATE) or None
    global _ENV_PLAN, _ENV_SPEC_SEEN, _ENV_STATE_SEEN
    if spec != _ENV_SPEC_SEEN or state != _ENV_STATE_SEEN:
        _ENV_SPEC_SEEN = spec
        _ENV_STATE_SEEN = state
        _ENV_PLAN = FaultPlan.parse(spec, state_dir=state) if spec else None
    return _ENV_PLAN


# ---------------------------------------------------------------------------
# Injection hooks
# ---------------------------------------------------------------------------


def fault_point(site: str, key: str = "") -> bool:
    """Evaluate one injection point.

    Side-effectful sites act here (crash raises / exits, hang sleeps);
    for caller-handled sites (``lp-fail``, ``cache-torn``) the return
    value tells the caller to misbehave.  Returns False when inactive.
    """
    plan = active_plan()
    if plan is None:
        return False
    clause = plan.fire(site, key)
    if clause is None:
        return False
    # record before acting: os.write is unbuffered, so the event survives
    # even the action=exit hard kill
    telemetry.counter("faultinject.fired", 1, site=site, key=key)
    if site == WORKER_CRASH:
        if clause.action == "exit":
            os._exit(13)
        raise InjectedFault(f"injected worker crash at {key!r}")
    if site == WORKER_HANG:
        time.sleep(clause.delay)
        return True
    if site == PARENT_SIGNAL:
        signum = signal.SIGKILL if clause.action == "kill" else signal.SIGTERM
        os.kill(os.getpid(), signum)
        return True
    return True


def wrap_logdensity(fn: Callable, key: str = "") -> Callable:
    """Wrap a log-density-and-gradient callable with NaN injection.

    Returns ``fn`` unchanged unless an active clause targets
    ``nan-logdensity`` for this key, so the sampler hot loop pays zero
    overhead in normal operation.
    """
    plan = active_plan()
    if plan is None or not plan.targets(NAN_LOGDENSITY, key):
        return fn

    def wrapped(x):
        if plan.fire(NAN_LOGDENSITY, key) is not None:
            telemetry.counter("faultinject.fired", 1, site=NAN_LOGDENSITY, key=key)
            arr = np.asarray(x, dtype=float)
            return float("nan"), np.full_like(arr, float("nan"))
        return fn(x)

    return wrapped
