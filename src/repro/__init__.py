"""Hybrid AARA — reproduction of "Robust Resource Bounds with Static
Analysis and Bayesian Inference" (Pham, Saad, Hoffmann; PLDI 2024).

Quickstart::

    from repro import compile_program, collect_dataset, run_analysis, AnalysisConfig
    from repro.lang import from_python

    prog = compile_program(source_with_raml_annotations)
    dataset = collect_dataset(prog, "quicksort", inputs)
    result = run_analysis(prog, "quicksort", dataset,
                          AnalysisConfig(degree=2), method="bayeswc")
    for bound in result.bounds:
        print(bound.describe())
"""

from .aara import ResourceBound, analyze_program, run_conventional
from .config import AnalysisConfig, BayesPCConfig, BayesWCConfig, SamplerConfig
from .errors import ReproError
from .inference import (
    PosteriorResult,
    RuntimeDataset,
    collect_dataset,
    run_analysis,
    run_bayespc,
    run_bayeswc,
    run_opt,
)
from .lang import compile_program, evaluate

__version__ = "1.0.0"

__all__ = [
    "ResourceBound",
    "analyze_program",
    "run_conventional",
    "AnalysisConfig",
    "BayesPCConfig",
    "BayesWCConfig",
    "SamplerConfig",
    "ReproError",
    "PosteriorResult",
    "RuntimeDataset",
    "collect_dataset",
    "run_analysis",
    "run_bayespc",
    "run_bayeswc",
    "run_opt",
    "compile_program",
    "evaluate",
    "__version__",
]
