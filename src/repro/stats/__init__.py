"""Bayesian inference substrate: distributions, HMC, polytope samplers."""

from .densities import BatchedDensity, LoopDensity, as_batched
from .diagnostics import effective_sample_size, percentile_bands, split_rhat
from .engine import BATCHED, ENV_SAMPLER, PERCHAIN, spawn_streams
from .engine import current as current_engine
from .distributions import (
    GumbelMin,
    HalfNormal,
    Logistic,
    Normal,
    Weibull,
    sample_truncated,
    truncated_logpdf,
)
from .hmc import HMCConfig, HMCResult, hmc_sample, hmc_sample_chains, leapfrog
from .nuts import nuts_sample, nuts_sample_chains
from .polytope import (
    AffineMap,
    Polytope,
    ReducedPolytope,
    chebyshev_center,
    interior_point,
    polytope_from_lp,
    random_interior_points,
)
from .reflective_hmc import (
    ReflectiveHMCResult,
    reflective_hmc_chains,
    reflective_hmc_sample,
)

__all__ = [
    "BatchedDensity",
    "LoopDensity",
    "as_batched",
    "BATCHED",
    "ENV_SAMPLER",
    "PERCHAIN",
    "spawn_streams",
    "current_engine",
    "effective_sample_size",
    "percentile_bands",
    "split_rhat",
    "GumbelMin",
    "HalfNormal",
    "Logistic",
    "Normal",
    "Weibull",
    "sample_truncated",
    "truncated_logpdf",
    "HMCConfig",
    "HMCResult",
    "hmc_sample",
    "hmc_sample_chains",
    "leapfrog",
    "nuts_sample",
    "nuts_sample_chains",
    "AffineMap",
    "Polytope",
    "ReducedPolytope",
    "chebyshev_center",
    "interior_point",
    "polytope_from_lp",
    "random_interior_points",
    "ReflectiveHMCResult",
    "reflective_hmc_chains",
    "reflective_hmc_sample",
]
