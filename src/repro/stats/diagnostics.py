"""MCMC diagnostics: effective sample size and split R-hat."""

from __future__ import annotations

import numpy as np


def effective_sample_size(chain: np.ndarray, max_lag: int | None = None) -> float:
    """ESS of a 1-D chain via the initial-positive-sequence estimator."""
    chain = np.asarray(chain, dtype=float).ravel()
    n = chain.size
    if n < 4:
        return float(n)
    centered = chain - chain.mean()
    var0 = float(centered @ centered) / n
    if var0 == 0:
        return float(n)
    max_lag = max_lag or min(n - 2, 1000)
    rho_sum = 0.0
    for lag in range(1, max_lag + 1):
        rho = float(centered[:-lag] @ centered[lag:]) / ((n - lag) * var0)
        if rho <= 0.0:
            break
        rho_sum += rho
    return n / (1.0 + 2.0 * rho_sum)


def split_rhat(chains: np.ndarray) -> float:
    """Split R-hat for an array of shape (n_chains, n_draws)."""
    chains = np.asarray(chains, dtype=float)
    if chains.ndim == 1:
        chains = chains.reshape(1, -1)
    n_chains, n_draws = chains.shape
    half = n_draws // 2
    if half < 2:
        return float("nan")
    halves = np.concatenate([chains[:, :half], chains[:, half : 2 * half]], axis=0)
    m, n = halves.shape
    chain_means = halves.mean(axis=1)
    chain_vars = halves.var(axis=1, ddof=1)
    between = n * chain_means.var(ddof=1)
    within = chain_vars.mean()
    if within == 0:
        return 1.0
    var_hat = (n - 1) / n * within + between / n
    return float(np.sqrt(var_hat / within))


def percentile_bands(samples: np.ndarray, percentiles=(5, 50, 95)) -> dict:
    """Convenience: named percentile summaries of an array of draws."""
    samples = np.asarray(samples, dtype=float)
    return {f"p{p}": float(np.percentile(samples, p)) for p in percentiles}
