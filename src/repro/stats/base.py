"""Shared sampler substrate: configs, results, healing, legacy kernels.

Split out of ``hmc.py`` so that the batched engine core
(:mod:`repro.stats.batched`) and the per-sampler adapter modules
(``hmc.py``, ``nuts.py``, ``reflective_hmc.py``) can share the
config/result dataclasses and the self-healing restart driver without a
circular import.  The public names are still re-exported from their
historical homes.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..errors import InferenceError, SamplerDivergenceError

LogDensityAndGrad = Callable[[np.ndarray], Tuple[float, np.ndarray]]


@dataclass
class HMCConfig:
    n_samples: int = 1000
    n_warmup: int = 500
    n_leapfrog: int = 24
    initial_step_size: float = 0.1
    target_accept: float = 0.8
    max_step_size: float = 2.0
    jitter_steps: bool = True
    #: self-healing: restart a divergent chain with a halved initial step
    #: at most this many times …
    max_restarts: int = 3
    #: … when more than this fraction of post-warmup draws diverged
    divergence_tolerance: float = 0.25
    #: which self-healing attempt this config belongs to (0 = first try);
    #: distinguishes checkpoint fingerprints between restart attempts
    restart_index: int = 0


@dataclass
class HMCResult:
    samples: np.ndarray  # (n_samples, dim)
    accept_rate: float
    step_size: float
    logdensities: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: post-warmup iterations whose proposal was rejected outright
    #: (non-finite trajectory or an energy error past float underflow)
    divergences: int = 0
    #: self-healing restarts spent producing this result
    retries: int = 0
    #: total leapfrog integration steps taken (warmup included)
    leapfrog_steps: int = 0
    #: per-chain diagnostics when this result aggregates several chains
    chain_diagnostics: List[Dict[str, float]] = field(default_factory=list)


@dataclass
class ReflectiveHMCResult:
    samples: np.ndarray
    accept_rate: float
    step_size: float
    n_reflections: int
    #: post-warmup iterations whose proposal was rejected outright
    divergences: int = 0
    #: self-healing restarts spent producing this result
    retries: int = 0
    #: per-chain diagnostics when this result aggregates several chains
    chain_diagnostics: List[Dict[str, float]] = field(default_factory=list)


class _DualAveraging:
    """Nesterov dual averaging of log step size (Hoffman & Gelman 2014).

    Scalar variant, used by the NUTS chain loop; the lockstep engine uses
    the vectorized :class:`repro.stats.batched._BatchedDualAveraging`.
    """

    def __init__(self, initial_step: float, target: float):
        self.mu = math.log(10.0 * initial_step)
        self.target = target
        self.log_step = math.log(initial_step)
        self.log_step_bar = 0.0
        self.h_bar = 0.0
        self.gamma = 0.05
        self.t0 = 10.0
        self.kappa = 0.75
        self.iteration = 0

    def update(self, accept_prob: float) -> float:
        self.iteration += 1
        m = self.iteration
        eta = 1.0 / (m + self.t0)
        self.h_bar = (1.0 - eta) * self.h_bar + eta * (self.target - accept_prob)
        self.log_step = self.mu - math.sqrt(m) / self.gamma * self.h_bar
        weight = m**-self.kappa
        self.log_step_bar = weight * self.log_step + (1.0 - weight) * self.log_step_bar
        return math.exp(self.log_step)

    def final(self) -> float:
        return math.exp(self.log_step_bar)

    def state(self) -> Dict[str, float]:
        """JSON-safe snapshot of the adapter (for chain checkpoints)."""
        return {
            "mu": self.mu,
            "target": self.target,
            "log_step": self.log_step,
            "log_step_bar": self.log_step_bar,
            "h_bar": self.h_bar,
            "gamma": self.gamma,
            "t0": self.t0,
            "kappa": self.kappa,
            "iteration": self.iteration,
        }

    def restore(self, state: Dict[str, float]) -> None:
        for name, value in state.items():
            setattr(self, name, value)


def leapfrog(
    position: np.ndarray,
    momentum: np.ndarray,
    grad: np.ndarray,
    step_size: float,
    n_steps: int,
    logdensity_and_grad: LogDensityAndGrad,
):
    """Standard leapfrog integration; returns (q, p, logp, grad).

    Scalar variant (one chain); the engines integrate whole batches via
    :func:`repro.stats.batched.leapfrog_batch`.
    """
    q = position.copy()
    with np.errstate(over="ignore", invalid="ignore"):
        p = momentum + 0.5 * step_size * grad
        logp = -np.inf
        g = grad
        for step in range(n_steps):
            q = q + step_size * p
            if not np.all(np.isfinite(q)):
                return q, p, -np.inf, g
            logp, g = logdensity_and_grad(q)
            if not np.all(np.isfinite(g)) or not np.isfinite(logp):
                return q, p, -np.inf, g
            if step < n_steps - 1:
                p = p + step_size * g
        p = p + 0.5 * step_size * g
    return q, p, logp, g


def _find_initial_step_unconstrained(
    logdensity_and_grad: LogDensityAndGrad,
    q: np.ndarray,
    logp: float,
    grad: np.ndarray,
    rng: np.random.Generator,
    start: float,
) -> float:
    """Stan's heuristic: scale the step so one leapfrog step accepts ≈ 1/2."""
    step = start
    momentum = rng.normal(size=q.size)
    h0 = -logp + 0.5 * float(momentum @ momentum)

    def accept_prob(step_size: float) -> float:
        qn, pn, lpn, _gn = leapfrog(
            q.copy(), momentum.copy(), grad, step_size, 1, logdensity_and_grad
        )
        if not np.isfinite(lpn):
            return 0.0
        h1 = -lpn + 0.5 * float(pn @ pn)
        return math.exp(min(0.0, h0 - h1))

    a = accept_prob(step)
    direction = 1 if a > 0.5 else -1
    for _ in range(60):
        step_next = step * (2.0 if direction == 1 else 0.5)
        a_next = accept_prob(step_next)
        if (direction == 1 and a_next < 0.5) or (direction == -1 and a_next > 0.5):
            return step_next if direction == -1 else step
        step = step_next
        if step < 1e-14 or step > 1e6:
            break
    return step


def sample_with_healing(sample_fn, config, rng):
    """Run one chain with bounded self-healing restarts.

    ``sample_fn(cfg, rng)`` runs the chain and returns a result with
    ``divergences`` / ``retries`` attributes (HMCResult, NUTSResult or
    ReflectiveHMCResult).  When the chain raises :class:`InferenceError`
    or more than ``config.divergence_tolerance × config.n_samples`` of
    its draws diverged, it is restarted with a halved initial step, at
    most ``config.max_restarts`` times.  The happy path calls
    ``sample_fn`` exactly once with the unmodified config, so fault-free
    runs consume the rng stream identically to the pre-healing code.

    The lockstep engine runs attempt 0 for all chains in one batch and
    feeds each chain's outcome to :func:`heal_continue`, which applies
    the identical restart schedule — so healing behaves the same under
    both engines (each restart's checkpoint fingerprint is keyed by the
    config's ``restart_index`` *and* the engine name; see
    :func:`repro.checkpoint.chain_cursor`).

    Raises :class:`SamplerDivergenceError` when every restart still
    produced a fully divergent (or crashing) chain.
    """
    result = None
    error: Optional[InferenceError] = None
    try:
        result = sample_fn(config, rng)
    except SamplerDivergenceError:
        raise
    except InferenceError as exc:
        error = exc
    return heal_continue(sample_fn, config, rng, result, error)


def heal_continue(sample_fn, config, rng, result, error):
    """The restart schedule of :func:`sample_with_healing`, continued from
    a pre-computed attempt-0 outcome (``result`` or ``error``)."""
    step = config.initial_step_size
    retries = 0
    best = None
    last_error: Optional[InferenceError] = error
    while True:
        if result is not None:
            if result.divergences <= config.divergence_tolerance * config.n_samples:
                result.retries = retries
                return result
            if best is None or result.divergences < best.divergences:
                best = result
        if retries >= config.max_restarts:
            break
        retries += 1
        step *= 0.5
        cfg = dataclasses.replace(config, initial_step_size=step, restart_index=retries)
        result = None
        try:
            result = sample_fn(cfg, rng)
        except SamplerDivergenceError:
            raise
        except InferenceError as exc:
            last_error = exc
    if best is not None and best.divergences < config.n_samples:
        # degraded but usable: some draws are real; surface the retry count
        best.retries = retries
        return best
    raise SamplerDivergenceError(
        f"chain fully divergent after {retries} restart(s)"
        + (f": {last_error}" if last_error is not None else "")
    )


def count_gradient_evals(logdensity_and_grad: LogDensityAndGrad):
    """Observation-only wrapper counting calls; rng streams are untouched.

    Returns ``(wrapped, counts)`` where ``counts[0]`` is the running call
    count.  Applied only when telemetry is enabled, so the disabled path
    pays nothing (not even an extra frame per gradient evaluation).
    """
    counts = [0]

    def wrapped(q: np.ndarray) -> Tuple[float, np.ndarray]:
        counts[0] += 1
        return logdensity_and_grad(q)

    return wrapped, counts


def _sampler_counters(
    kind: str,
    accept_rate: float,
    divergences: int,
    retries: int,
    leapfrog_steps: int,
    grad_evals,
) -> None:
    """Shared per-run sampler metrics (used by HMC, NUTS and reflective HMC)."""
    telemetry.gauge("sampler.accept_rate", round(accept_rate, 4), sampler=kind)
    if leapfrog_steps:
        telemetry.counter("sampler.leapfrog_steps", leapfrog_steps, sampler=kind)
    if grad_evals is not None and grad_evals[0]:
        telemetry.counter("sampler.gradient_evals", grad_evals[0], sampler=kind)
    if divergences:
        telemetry.counter("sampler.divergences", divergences, sampler=kind)
    if retries:
        telemetry.counter("sampler.healing_restarts", retries, sampler=kind)
