"""Reflective Hamiltonian Monte Carlo over convex polytopes.

Implements the sampler BayesPC needs (Remark 5.3 / Section 6.2): leapfrog
trajectories whose position updates reflect off the facets of
``{z : A z ≤ b}`` (Afshar & Domke 2015; Chalkis et al. 2023 — the
algorithm behind the Volesti library the paper uses).  Between
reflections the dynamics are standard HMC, so the stationary distribution
is the target density restricted to the polytope.

Sampling runs on the lockstep batched core (:mod:`repro.stats.batched`):
:func:`reflective_hmc_sample` is a batch-of-one adapter and
:func:`reflective_hmc_chains` stacks a cell's chains into one batch under
the default ``batched`` engine (``REPRO_SAMPLER=perchain`` restores
chain-at-a-time execution, bit-identically).  The scalar drift/leapfrog
kernels below are kept as the reference implementation the property
tests compare the batched geometry against, and for the warm-start
helpers (:func:`map_estimate` etc.) that don't sample at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import batched
from . import engine as engine_mod
from .base import (  # noqa: F401  (re-exported public/historical API)
    HMCConfig,
    ReflectiveHMCResult,
    _DualAveraging,
    _sampler_counters,
    count_gradient_evals,
    sample_with_healing,
)
from .densities import CountingDensity, LoopDensity, as_batched
from .polytope import Polytope
from .. import faultinject, telemetry

LogDensityAndGrad = Callable[[np.ndarray], Tuple[float, np.ndarray]]

#: maximum wall reflections within a single leapfrog position update
MAX_REFLECTIONS = batched.MAX_REFLECTIONS


class _DriftEngine:
    """Precomputed reflection geometry for one polytope (scalar reference).

    Caches the Gram matrix ``G = A Aᵀ`` so that, inside a drift, the facet
    products ``A·p`` and the slacks are updated *incrementally*: a
    reflection off facet ``h`` changes ``A·p`` by ``-2α·G[:,h]`` (O(m))
    instead of requiring a fresh O(m·n) matvec.  The samplers use the
    batched :class:`repro.stats.batched.BatchedDriftEngine`; this scalar
    twin is the oracle the property tests check it against.
    """

    def __init__(self, polytope: Polytope):
        self.polytope = polytope
        self.A = polytope.A
        self.b = polytope.b
        m = self.A.shape[0]
        if m:
            self.gram = self.A @ self.A.T
            self.row_sq = np.einsum("ij,ij->i", self.A, self.A)
        else:
            self.gram = np.zeros((0, 0))
            self.row_sq = np.zeros(0)

    def drift(self, q: np.ndarray, p: np.ndarray, dt: float):
        """Advance ``q`` by time ``dt`` along ``p``, reflecting at facets.

        Returns (q', p', #reflections, ok); ``ok`` is False when the
        reflection budget is exhausted (the proposal is then rejected).
        """
        A, b = self.A, self.b
        if A.shape[0] == 0:
            return q + dt * p, p, 0, True
        remaining = dt
        reflections = 0
        Ap = A @ p
        slack = b - A @ q
        while remaining > 1e-14:
            with np.errstate(divide="ignore", invalid="ignore"):
                times = np.where(Ap > 1e-13, slack / Ap, np.inf)
            times = np.where(times >= -1e-12, np.maximum(times, 0.0), np.inf)
            hit = int(np.argmin(times))
            t_hit = float(times[hit])
            if t_hit >= remaining:
                q = q + remaining * p
                return q, p, reflections, True
            # advance to the wall; update q/slack and reflect p incrementally
            q = q + t_hit * p
            slack = slack - t_hit * Ap
            slack[hit] = 0.0
            alpha = 2.0 * Ap[hit] / self.row_sq[hit]
            p = p - alpha * A[hit]
            Ap = Ap - alpha * self.gram[hit]
            remaining -= t_hit
            reflections += 1
            if reflections > MAX_REFLECTIONS:
                return q, p, reflections, False
        return q, p, reflections, True


def _reflective_drift(
    q: np.ndarray,
    p: np.ndarray,
    dt: float,
    polytope: Polytope,
) -> Tuple[np.ndarray, np.ndarray, int, bool]:
    """Uncached single drift (kept for tests; samplers use the batched engine)."""
    return _DriftEngine(polytope).drift(q, p, dt)


def _leapfrog_reflective(
    q: np.ndarray,
    p: np.ndarray,
    grad: np.ndarray,
    step_size: float,
    n_steps: int,
    logdensity_and_grad: LogDensityAndGrad,
    polytope_or_engine,
):
    """Scalar reflective leapfrog (reference for the property tests)."""
    drift_engine = (
        polytope_or_engine
        if isinstance(polytope_or_engine, _DriftEngine)
        else _DriftEngine(polytope_or_engine)
    )
    polytope = drift_engine.polytope
    total_reflections = 0
    p = p + 0.5 * step_size * grad
    logp, g = -np.inf, grad
    for step in range(n_steps):
        q, p, refl, ok = drift_engine.drift(q, p, step_size)
        total_reflections += refl
        # require the proposal to stay inside: accepting a state even
        # marginally outside the polytope wedges the chain forever
        if not ok or not polytope.contains(q, tol=0.0):
            return q, p, -np.inf, g, total_reflections
        logp, g = logdensity_and_grad(q)
        if not np.isfinite(logp) or not np.all(np.isfinite(g)):
            return q, p, -np.inf, g, total_reflections
        if step < n_steps - 1:
            p = p + step_size * g
    p = p + 0.5 * step_size * g
    return q, p, logp, g, total_reflections


def _find_initial_step(
    logdensity_and_grad: LogDensityAndGrad,
    polytope_or_engine,
    q: np.ndarray,
    logp: float,
    grad: np.ndarray,
    rng: np.random.Generator,
    start: float,
) -> float:
    """Stan-style heuristic: scale the step until a single leapfrog step has
    acceptance probability near 1/2.  Prevents dual averaging from having to
    recover from a catastrophically mis-scaled initial step."""
    step = start
    momentum = rng.normal(size=q.size)
    h0 = -logp + 0.5 * float(momentum @ momentum)

    def accept_prob(step_size: float) -> float:
        qn, pn, lpn, _gn, _r = _leapfrog_reflective(
            q.copy(), momentum.copy(), grad, step_size, 1, logdensity_and_grad, polytope_or_engine
        )
        if not np.isfinite(lpn):
            return 0.0
        h1 = -lpn + 0.5 * float(pn @ pn)
        return math.exp(min(0.0, h0 - h1))

    a = accept_prob(step)
    direction = 1 if a > 0.5 else -1
    for _ in range(60):
        step_next = step * (2.0 if direction == 1 else 0.5)
        a_next = accept_prob(step_next)
        if (direction == 1 and a_next < 0.5) or (direction == -1 and a_next > 0.5):
            return step_next if direction == -1 else step
        step = step_next
        if step < 1e-14 or step > 1e6:
            break
    return step


def reflective_hmc_sample(
    logdensity_and_grad: LogDensityAndGrad,
    polytope: Polytope,
    initial: np.ndarray,
    config: HMCConfig,
    rng: np.random.Generator,
    checkpoint_key: Optional[str] = None,
) -> ReflectiveHMCResult:
    """Sample the target restricted to ``polytope`` starting from an interior point.

    Checkpoints chain state at iteration boundaries when
    :mod:`repro.checkpoint` is active; the drift engine is rebuilt
    deterministically from the polytope, but the step clamp (derived from
    the rng-consuming initial-step search) is part of the snapshot.
    """
    return batched.single_reflective(
        as_batched(logdensity_and_grad),
        polytope,
        np.asarray(initial, dtype=float),
        config,
        rng,
        checkpoint_key,
        engine_mod.current(),
    )


def map_estimate(
    logdensity_and_grad: LogDensityAndGrad,
    polytope: Polytope,
    initial: np.ndarray,
    taus=(10.0, 1.0, 0.1, 0.01),
    maxiter: int = 400,
) -> np.ndarray:
    """Approximate MAP inside the polytope via an interior-point method.

    Maximizes ``logp(z) + τ·Σ log slack_i(z)`` with L-BFGS-B for a
    decreasing barrier schedule τ.  The log-barrier keeps iterates strictly
    interior (where the BayesPC density and its gradient are finite) and
    regularizes the narrow channels near facets that defeat plain
    projected/backtracking ascent.
    """
    from scipy.optimize import minimize

    A, b = polytope.A, polytope.b
    z = np.asarray(initial, dtype=float).copy()
    best_z, best_logp = z.copy(), logdensity_and_grad(z)[0]
    if not np.isfinite(best_logp):
        return z

    for tau in taus:

        def objective(point):
            slack = b - A @ point
            bad = slack <= 0
            if np.any(bad):
                # a sloped penalty so the line search can find its way back
                violation = float(np.sum(-slack[bad]))
                return 1e8 * (1.0 + violation), 1e8 * (A.T @ bad.astype(float))
            logp, grad = logdensity_and_grad(point)
            if not np.isfinite(logp):
                return 1e8, np.zeros_like(point)
            value = -(logp + tau * float(np.sum(np.log(slack))))
            gradient = -(grad - tau * (A.T @ (1.0 / slack)))
            return value, gradient

        result = minimize(
            objective,
            z,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": maxiter, "maxcor": 30},
        )
        candidate = result.x
        if polytope.contains(candidate, tol=-1e-12):
            logp, _ = logdensity_and_grad(candidate)
            if np.isfinite(logp):
                z = candidate
                if logp > best_logp:
                    best_logp, best_z = logp, candidate.copy()
    return best_z


def diagonal_preconditioner(
    logdensity_and_grad: LogDensityAndGrad,
    point: np.ndarray,
    polytope: Polytope,
    fd_step: float = 1e-5,
    cap: float = 1e8,
) -> np.ndarray:
    """Per-coordinate scales 1/sqrt(curvature) from a finite-difference
    diagonal Hessian of the negative log-density at ``point``."""
    dim = point.size
    scales = np.ones(dim)
    _logp0, grad0 = logdensity_and_grad(point)
    for i in range(dim):
        for step in (fd_step, 10 * fd_step, 100 * fd_step):
            probe = point.copy()
            probe[i] += step
            if not polytope.contains(probe, tol=-1e-12):
                probe = point.copy()
                probe[i] -= step
                if not polytope.contains(probe, tol=-1e-12):
                    continue
                logp, grad = logdensity_and_grad(probe)
                if np.isfinite(logp):
                    curvature = (grad0[i] - grad[i]) / step
                    break
                continue
            logp, grad = logdensity_and_grad(probe)
            if np.isfinite(logp):
                curvature = (grad[i] - grad0[i]) / step
                break
        else:
            curvature = -1.0
        curvature = -curvature  # negative log-density curvature
        curvature = min(max(curvature, 1.0 / cap), cap)
        scales[i] = 1.0 / math.sqrt(curvature)
    return scales


@dataclass
class ScaledProblem:
    """A coordinate-rescaled target: y = z / scales."""

    polytope: Polytope
    logdensity_and_grad: LogDensityAndGrad
    scales: np.ndarray

    def to_z(self, y: np.ndarray) -> np.ndarray:
        return self.scales * y

    def from_z(self, z: np.ndarray) -> np.ndarray:
        return z / self.scales


def rescale_problem(
    logdensity_and_grad: LogDensityAndGrad,
    polytope: Polytope,
    scales: np.ndarray,
) -> ScaledProblem:
    """Re-parameterize so every coordinate has comparable curvature."""
    A_scaled = polytope.A * scales[None, :]
    scaled_polytope = Polytope(A_scaled, polytope.b.copy(), list(polytope.names))

    def scaled_density(y: np.ndarray) -> Tuple[float, np.ndarray]:
        logp, grad = logdensity_and_grad(scales * y)
        return logp, scales * grad

    return ScaledProblem(scaled_polytope, scaled_density, scales)


def reflective_hmc_chains(
    logdensity_and_grad: LogDensityAndGrad,
    polytope: Polytope,
    initial_points: List[np.ndarray],
    config: HMCConfig,
    rng: np.random.Generator,
    fault_key: str = "bayespc",
) -> ReflectiveHMCResult:
    """Several self-healing chains, concatenated draws.

    Chains draw from independent per-chain rng streams spawned off
    ``rng``, which is what lets the ``batched`` engine advance them in
    lockstep.  Fault-injected densities force the ``perchain`` engine so
    injected-clause counters fire in chain order.
    """
    raw = logdensity_and_grad
    wrapped = faultinject.wrap_logdensity(raw, fault_key)
    mode = engine_mod.current()
    if wrapped is not raw:
        mode = engine_mod.PERCHAIN
        density = LoopDensity(wrapped)
    else:
        density = as_batched(raw)
    grad_evals = None
    if telemetry.enabled():
        grad_evals = [0]
        density = CountingDensity(density, grad_evals)
    with telemetry.span(
        "sampler.reflective",
        n_samples=config.n_samples,
        n_warmup=config.n_warmup,
        facets=int(polytope.A.shape[0]),
        engine=mode,
    ) as tspan:
        starts = [np.asarray(p, dtype=float) for p in initial_points]
        streams = engine_mod.spawn_streams(rng, len(starts))
        keys = [f"reflective/{fault_key}/chain{i}" for i in range(len(starts))]
        results = batched.run_reflective_batch(
            density, polytope, starts, config, streams, keys, mode
        )
        chains = []
        rates = []
        reflections = 0
        diagnostics: List[Dict[str, float]] = []
        divergences = 0
        retries = 0
        for chain_index, result in enumerate(results):
            chains.append(result.samples)
            rates.append(result.accept_rate)
            reflections += result.n_reflections
            divergences += result.divergences
            retries += result.retries
            diagnostics.append(
                {
                    "chain": float(chain_index),
                    "divergences": float(result.divergences),
                    "retries": float(result.retries),
                    "step_size": float(result.step_size),
                    "accept_rate": float(result.accept_rate),
                }
            )
        accept_rate = float(np.mean(rates))
        tspan.set(
            chains=len(chains),
            divergences=divergences,
            retries=retries,
            reflections=reflections,
        )
        _sampler_counters("reflective", accept_rate, divergences, retries, 0, grad_evals)
        if reflections:
            telemetry.counter("sampler.reflections", reflections, sampler="reflective")
        return ReflectiveHMCResult(
            np.concatenate(chains, axis=0),
            accept_rate,
            0.0,
            reflections,
            divergences=divergences,
            retries=retries,
            chain_diagnostics=diagnostics,
        )
