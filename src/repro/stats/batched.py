"""Lockstep batched core for the HMC-family samplers.

All chains of a cell are stacked into ``(n_chains, dim)`` state arrays and
advanced together: momentum draws, leapfrog integration, reflection off
polytope facets, Metropolis accepts and dual-averaging step-size
adaptation all run as batched array ops, and the log-density + gradient
closure is evaluated once per step for the whole batch (see
:mod:`repro.stats.densities`).

**Bit-identity contract.**  The ``perchain`` engine runs the *same* code
with batches of size one, and the two engines must produce bit-identical
draws chain-for-chain.  Everything here is therefore built from
batch-size-stable primitives only:

* elementwise ufuncs and per-row gathers/scatters — trivially stable;
* reductions always along the **last** axis (``(x * y).sum(axis=-1)``),
  whose pairwise summation order per row is independent of the number of
  rows — verified by property tests;
* no BLAS in any value-producing path (``A @ x`` for 1-D ``x`` dispatches
  dgemv while the 2-D batch would use dgemm, and the two may disagree in
  the last ulp — enough to flip a wall-contact sign test and split the
  engines);
* chains never share randomness: each chain owns a private Generator
  stream (:func:`repro.stats.engine.spawn_streams`) and draws from it in
  a fixed per-iteration order, so the per-stream bit consumption is
  independent of batch grouping.

Masks (``np.where``) freeze chains that finish a jittered trajectory (or
fail it) early; a frozen row passes through the remaining substeps
bit-unchanged, so lockstep iteration count never leaks between rows.

Checkpoint snapshots are saved per chain at iteration boundaries exactly
as the historical per-chain loops did.  A batch that finds *any* saved
snapshot on entry resumes its chains sequentially (batch size one) —
resumption is rare, and per-chain resume is bit-identical to lockstep by
the contract above.  Fault-injected runs are routed to the ``perchain``
engine by the chain wrappers so clause counters fire in the historical
per-chain evaluation order.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .base import (
    HMCConfig,
    HMCResult,
    ReflectiveHMCResult,
    heal_continue,
    sample_with_healing,
)
from .densities import BatchedDensity, rowmat
from .engine import BATCHED
from .polytope import Polytope
from .. import checkpoint
from ..errors import InferenceError

#: maximum wall reflections within a single leapfrog position update
MAX_REFLECTIONS = 64


class _BatchedDualAveraging:
    """Vectorized Nesterov dual averaging — one adapter row per chain.

    Bit-compatible with the scalar :class:`repro.stats.base._DualAveraging`
    row-for-row: every update is elementwise over the chain axis.  The
    iteration counter is shared — lockstep batches always update all rows
    at every warmup iteration.
    """

    _KEYS = ("mu", "target", "log_step", "log_step_bar", "h_bar")

    def __init__(self, initial_step: np.ndarray, target: float):
        self.mu = np.log(10.0 * initial_step)
        self.target = target
        self.log_step = np.log(initial_step)
        self.log_step_bar = np.zeros_like(self.mu)
        self.h_bar = np.zeros_like(self.mu)
        self.gamma = 0.05
        self.t0 = 10.0
        self.kappa = 0.75
        self.iteration = 0

    def update(self, accept_prob: np.ndarray) -> np.ndarray:
        self.iteration += 1
        m = self.iteration
        eta = 1.0 / (m + self.t0)
        self.h_bar = (1.0 - eta) * self.h_bar + eta * (self.target - accept_prob)
        self.log_step = self.mu - math.sqrt(m) / self.gamma * self.h_bar
        weight = m**-self.kappa
        self.log_step_bar = weight * self.log_step + (1.0 - weight) * self.log_step_bar
        return np.exp(self.log_step)

    def final(self) -> np.ndarray:
        return np.exp(self.log_step_bar)

    def state(self, row: int) -> dict:
        """Per-chain JSON snapshot, schema-compatible with the scalar class."""
        return {
            "mu": float(self.mu[row]),
            "target": float(self.target),
            "log_step": float(self.log_step[row]),
            "log_step_bar": float(self.log_step_bar[row]),
            "h_bar": float(self.h_bar[row]),
            "gamma": self.gamma,
            "t0": self.t0,
            "kappa": self.kappa,
            "iteration": self.iteration,
        }

    def restore(self, row: int, state: dict) -> None:
        for key in self._KEYS:
            if key == "target":
                self.target = float(state[key])
            else:
                getattr(self, key)[row] = float(state[key])
        self.gamma = float(state["gamma"])
        self.t0 = float(state["t0"])
        self.kappa = float(state["kappa"])
        self.iteration = int(state["iteration"])


class BatchedDriftEngine:
    """Reflection geometry for one polytope, batched over chains.

    Same incremental-update scheme as the scalar ``_DriftEngine`` (the
    Gram matrix turns each reflection into an O(m) update of ``A·p`` and
    the slacks), applied row-wise to a ``(rows, dim)`` batch with masks
    freezing rows that finish their drift early.
    """

    def __init__(self, polytope: Polytope):
        self.polytope = polytope
        self.A = polytope.A
        self.b = polytope.b
        m = self.A.shape[0]
        if m:
            self.gram = self.A @ self.A.T
            self.row_sq = np.einsum("ij,ij->i", self.A, self.A)
        else:
            self.gram = np.zeros((0, 0))
            self.row_sq = np.zeros(0)
        self._const_cache = {}

    def _consts(self, rows: int):
        """Shared ``(zeros, ones)`` rows-sized results for the no-reflection
        exits.  Callers must treat drift results as read-only (they do)."""
        cached = self._const_cache.get(rows)
        if cached is None:
            cached = (np.zeros(rows, int), np.ones(rows, bool))
            self._const_cache[rows] = cached
        return cached

    def contains(self, Q: np.ndarray, tol: float) -> np.ndarray:
        """Row-wise ``A q ≤ b + tol`` via the batch-stable matvec."""
        if self.A.shape[0] == 0:
            return np.ones(Q.shape[0], dtype=bool)
        return np.all(rowmat(self.A, Q) <= self.b[None, :] + tol, axis=-1)

    def drift(self, Q: np.ndarray, P: np.ndarray, dt: np.ndarray):
        """Advance each row by its ``dt`` along ``P``, reflecting at facets.

        Returns ``(Q', P', reflections, ok, inside)``: ``ok[i]`` is False
        when row ``i`` exhausted the reflection budget (its proposal is
        rejected) and ``inside`` is the zero-tolerance containment of the
        returned positions, saving callers a separate matvec.  Results may
        alias the inputs or engine-owned constants — treat them read-only.
        """
        rows = Q.shape[0]
        zeros_i, ones_b = self._consts(rows)
        if self.A.shape[0] == 0:
            return Q + dt[:, None] * P, P, zeros_i, ones_b, ones_b
        remaining = np.asarray(dt, dtype=float)
        # direct path, decided PER ROW so one reflecting chain cannot
        # change another's trajectory: the polytope is convex, so the
        # straight segment between two interior points never crosses a
        # facet — a row whose full-step endpoint lies inside drifts right
        # there.  (Any facet "hit" the time machinery would report for
        # such a segment is tolerance fuzz from a grazing contact.)
        Q_direct = Q + remaining[:, None] * P
        direct = (rowmat(self.A, Q_direct) <= self.b[None, :]).all(axis=-1)
        if bool(direct.all()):
            return Q_direct, P, zeros_i, ones_b, ones_b
        refl = np.zeros(rows, int)
        ok = np.ones(rows, bool)
        inside = direct.copy()
        # reflecting rows run a scalar incremental loop ONE ROW AT A TIME:
        # reflections desynchronize the chains (one row may bounce dozens
        # of times while its batch-mate coasts), so masked lockstep would
        # spend full-batch dispatches per bounce on mostly-frozen rows.
        # A per-row computation is trivially batch-size stable — the row's
        # result cannot depend on what else sits in the batch.
        Qout = Q_direct.copy()
        Pout = P.copy()
        for i in np.flatnonzero(~direct):
            q, p, n_refl, row_ok = self._drift_row(Q[i], P[i], float(remaining[i]))
            Qout[i] = q
            Pout[i] = p
            refl[i] = n_refl
            ok[i] = row_ok
            inside[i] = bool(np.all(self.A @ q <= self.b))
        return Qout, Pout, refl, ok, inside

    def _drift_row(self, q: np.ndarray, p: np.ndarray, remaining: float):
        """One row's reflective drift (incremental O(m) slack/Ap updates)."""
        A, b = self.A, self.b
        reflections = 0
        Ap = A @ p
        slack = b - A @ q
        while remaining > 1e-14:
            with np.errstate(divide="ignore", invalid="ignore"):
                times = np.where(Ap > 1e-13, slack / Ap, np.inf)
            times = np.where(times >= -1e-12, np.maximum(times, 0.0), np.inf)
            hit = int(np.argmin(times))
            t_hit = float(times[hit])
            if t_hit >= remaining:
                return q + remaining * p, p, reflections, True
            q = q + t_hit * p
            slack = slack - t_hit * Ap
            slack[hit] = 0.0
            alpha = 2.0 * Ap[hit] / self.row_sq[hit]
            p = p - alpha * A[hit]
            Ap = Ap - alpha * self.gram[hit]
            remaining -= t_hit
            reflections += 1
            if reflections > MAX_REFLECTIONS:
                return q, p, reflections, False
        return q, p, reflections, True


def leapfrog_batch(
    density: BatchedDensity,
    Q0: np.ndarray,
    P0: np.ndarray,
    G0: np.ndarray,
    step: np.ndarray,
    n_steps: np.ndarray,
):
    """Batched leapfrog with per-row step counts; returns (Q, P, logp, G).

    Rows whose trajectory leaves the finite domain report ``logp = -inf``
    (their positions/momenta are then discarded by the accept step, as in
    the scalar integrator).  The density is evaluated only on rows still
    integrating, so gradient-eval counts match per-chain execution.
    """
    q = Q0.copy()
    rows = q.shape[0]
    with np.errstate(over="ignore", invalid="ignore"):
        p = P0 + 0.5 * step[:, None] * G0
        g = G0.copy()
        logp = np.full(rows, -np.inf)
        alive = np.ones(rows, bool)
        alive_all = True
        max_steps = int(n_steps.max())
        min_steps = int(n_steps.min())
        step_col = step[:, None]
        # kick_all[s] == np.where(s == n_steps - 1, 0.5, 1.0) * step
        kick_all = (
            np.where(np.arange(max_steps)[:, None] == (n_steps - 1)[None, :], 0.5, 1.0)
            * step[None, :]
        )
        for s in range(max_steps):
            # fast path: every row is still integrating, so the act masks
            # are all-true and np.where(mask, new, old) == new bit for bit
            # — evaluate the plain updates and skip the mask machinery
            if alive_all and s < min_steps:
                q = q + step_col * p
                ok_q = np.isfinite(q).all(axis=-1)
                if ok_q.all():
                    l_rows, g_rows = density.batched(q)
                    ok_rows = np.isfinite(l_rows) & np.isfinite(g_rows).all(axis=-1)
                    if ok_rows.all():
                        logp = l_rows
                        g = g_rows
                        kick = kick_all[s]
                        p = p + kick[:, None] * g
                        continue
                    logp = np.where(ok_rows, l_rows, -np.inf)
                    g = np.where(ok_rows[:, None], g_rows, g)
                    alive = ok_rows.copy()
                    alive_all = False
                    kick = kick_all[s]
                    p = np.where(alive[:, None], p + kick[:, None] * g, p)
                    continue
                alive = ok_q.copy()
                alive_all = False
                act = alive.copy()
            else:
                act = alive & (s < n_steps)
                if not act.any():
                    break
                q = np.where(act[:, None], q + step_col * p, q)
                ok_q = np.all(np.isfinite(q), axis=-1)
                alive = alive & (ok_q | ~act)
                alive_all = False
                act = act & alive
            idx = np.flatnonzero(act)
            if idx.size:
                l_rows, g_rows = density.batched(q[idx])
                ok_rows = np.isfinite(l_rows) & np.all(np.isfinite(g_rows), axis=-1)
                logp[idx] = np.where(ok_rows, l_rows, -np.inf)
                good = idx[ok_rows]
                g[good] = g_rows[ok_rows]
                alive[idx[~ok_rows]] = False
                act = act & alive
            kick = kick_all[s]
            p = np.where(act[:, None], p + kick[:, None] * g, p)
    logp = np.where(alive, logp, -np.inf)
    return q, p, logp, g


def leapfrog_reflective_batch(
    density: BatchedDensity,
    drift: BatchedDriftEngine,
    Q0: np.ndarray,
    P0: np.ndarray,
    G0: np.ndarray,
    step: np.ndarray,
    n_steps: np.ndarray,
):
    """Batched reflective leapfrog; returns (Q, P, logp, G, reflections).

    Mirrors the scalar integrator: a drift that exhausts its reflection
    budget — or lands even marginally outside the polytope on the fresh
    containment check — marks the row divergent (``logp = -inf``).
    """
    q = Q0.copy()
    rows = q.shape[0]
    refl_total = np.zeros(rows, int)
    with np.errstate(over="ignore", invalid="ignore"):
        p = P0 + 0.5 * step[:, None] * G0
        g = G0.copy()
        logp = np.full(rows, -np.inf)
        alive = np.ones(rows, bool)
        alive_all = True
        max_steps = int(n_steps.max())
        min_steps = int(n_steps.min())
        # kick_all[s] == np.where(s == n_steps - 1, 0.5, 1.0) * step
        kick_all = (
            np.where(np.arange(max_steps)[:, None] == (n_steps - 1)[None, :], 0.5, 1.0)
            * step[None, :]
        )
        for s in range(max_steps):
            # fast path: all rows still integrating — run the drift and
            # the density on the whole batch, skipping the compression /
            # scatter machinery (identical arithmetic, see leapfrog_batch)
            if alive_all and s < min_steps:
                qd, pd, refl_d, ok_d, inside_d = drift.drift(q, p, step)
                q = qd
                p = pd
                refl_total = refl_total + refl_d
                okd = ok_d & inside_d
                if okd.all():
                    l_rows, g_rows = density.batched(q)
                    ok_rows = np.isfinite(l_rows) & np.isfinite(g_rows).all(axis=-1)
                    if ok_rows.all():
                        logp = l_rows
                        g = g_rows
                        kick = kick_all[s]
                        p = p + kick[:, None] * g
                        continue
                    logp = np.where(ok_rows, l_rows, -np.inf)
                    g = np.where(ok_rows[:, None], g_rows, g)
                    alive = ok_rows.copy()
                    alive_all = False
                    kick = kick_all[s]
                    p = np.where(alive[:, None], p + kick[:, None] * g, p)
                    continue
                alive = okd.copy()
                alive_all = False
                act = alive.copy()
                idx = np.flatnonzero(act)
            else:
                act = alive & (s < n_steps)
                if not act.any():
                    break
                idx = np.flatnonzero(act)
                qd, pd, refl_d, ok_d, inside = drift.drift(q[idx], p[idx], step[idx])
                q[idx] = qd
                p[idx] = pd
                refl_total[idx] += refl_d
                # require the proposal to stay inside: accepting a state
                # even marginally outside the polytope wedges the chain
                alive[idx[~(ok_d & inside)]] = False
                alive_all = False
                act = act & alive
                idx = np.flatnonzero(act)
            if idx.size:
                l_rows, g_rows = density.batched(q[idx])
                ok_rows = np.isfinite(l_rows) & np.all(np.isfinite(g_rows), axis=-1)
                logp[idx] = np.where(ok_rows, l_rows, -np.inf)
                good = idx[ok_rows]
                g[good] = g_rows[ok_rows]
                alive[idx[~ok_rows]] = False
                act = act & alive
            kick = kick_all[s]
            p = np.where(act[:, None], p + kick[:, None] * g, p)
    logp = np.where(alive, logp, -np.inf)
    return q, p, logp, g, refl_total


def _find_initial_step_row(
    density: BatchedDensity,
    drift: Optional[BatchedDriftEngine],
    q: np.ndarray,
    logp: float,
    grad: np.ndarray,
    rng: np.random.Generator,
    start: float,
) -> float:
    """Stan's heuristic, per chain: scale the step so one leapfrog step
    accepts ≈ 1/2.  Runs through the batched kernels with a single row so
    its arithmetic is identical under both engines."""
    step = start
    momentum = rng.normal(size=q.size)
    h0 = -logp + 0.5 * float((momentum * momentum).sum())
    one = np.ones(1, dtype=int)

    def accept_prob(step_size: float) -> float:
        eps = np.array([step_size])
        if drift is None:
            _qn, pn, lpn, _gn = leapfrog_batch(
                density, q[None, :], momentum[None, :], grad[None, :], eps, one
            )
        else:
            _qn, pn, lpn, _gn, _r = leapfrog_reflective_batch(
                density, drift, q[None, :], momentum[None, :], grad[None, :], eps, one
            )
        if not np.isfinite(lpn[0]):
            return 0.0
        h1 = -float(lpn[0]) + 0.5 * float((pn[0] * pn[0]).sum())
        return math.exp(min(0.0, h0 - h1))

    a = accept_prob(step)
    direction = 1 if a > 0.5 else -1
    for _ in range(60):
        step_next = step * (2.0 if direction == 1 else 0.5)
        a_next = accept_prob(step_next)
        if (direction == 1 and a_next < 0.5) or (direction == -1 and a_next > 0.5):
            return step_next if direction == -1 else step
        step = step_next
        if step < 1e-14 or step > 1e6:
            break
    return step


def _uniform_rows(streams: Sequence[np.random.Generator]) -> np.ndarray:
    return np.array([stream.uniform() for stream in streams])


def _normal_rows(streams: Sequence[np.random.Generator], dim: int) -> np.ndarray:
    out = np.empty((len(streams), dim))
    for i, stream in enumerate(streams):
        out[i] = stream.normal(size=dim)
    return out


def _jitter_rows(
    streams: Sequence[np.random.Generator], config: HMCConfig
) -> np.ndarray:
    if not config.jitter_steps:
        return np.full(len(streams), config.n_leapfrog, dtype=int)
    return np.array(
        [
            max(1, int(round(config.n_leapfrog * stream.uniform(0.6, 1.4))))
            for stream in streams
        ],
        dtype=int,
    )


def attempt_hmc(
    density: BatchedDensity,
    starts: Sequence[np.ndarray],
    config: HMCConfig,
    streams: Sequence[np.random.Generator],
    keys: Sequence[Optional[str]],
    engine_label: str,
) -> List[object]:
    """One healing attempt of unconstrained HMC over a batch of chains.

    Returns one outcome per chain: an :class:`HMCResult`, or the
    :class:`InferenceError` a per-chain run would have raised (a chain
    whose start has zero density).  Other exceptions propagate.
    """
    starts = [np.asarray(s, dtype=float).copy() for s in starts]
    n_chains = len(starts)
    dim = starts[0].size
    cursors = [
        checkpoint.chain_cursor(key, config, s, engine=engine_label)
        for key, s in zip(keys, starts)
    ]
    loads = [cur.load() if cur is not None else None for cur in cursors]
    if n_chains > 1 and any(saved is not None for saved in loads):
        # some chain has a snapshot: resume chains one at a time (batch
        # size one is bit-identical to lockstep, and resumption is rare)
        return [
            attempt_hmc(density, [s], config, [r], [k], engine_label)[0]
            for s, r, k in zip(starts, streams, keys)
        ]
    saved = loads[0] if n_chains == 1 else None
    if saved is not None and saved["status"] == "done":
        # the whole chain already ran; replay its result and leave the rng
        # exactly where the uninterrupted chain would have left it
        checkpoint.restore_rng(streams[0], saved["rng"])
        return [
            HMCResult(
                np.asarray(saved["samples"], dtype=float).reshape(config.n_samples, dim),
                saved["accept_rate"],
                saved["step_size"],
                np.asarray(saved["logdensities"], dtype=float),
                divergences=saved["divergences"],
                leapfrog_steps=saved["leapfrog_steps"],
            )
        ]

    outcomes: List[object] = [None] * n_chains
    start_iteration = 0
    if saved is not None:
        live = [0]
        Q = np.asarray(saved["position"], dtype=float)[None, :]
        logp = np.array([float(saved["logp"])])
        G = np.asarray(saved["grad"], dtype=float)[None, :]
        step = np.array([float(saved["step_size"])])
        adapter = _BatchedDualAveraging(
            np.full(1, config.initial_step_size), config.target_accept
        )
        adapter.restore(0, saved["adapter"])
        samples = np.empty((1, config.n_samples, dim))
        logdens = np.empty((1, config.n_samples))
        collected = int(saved["collected"])
        if collected:
            samples[0, :collected] = np.asarray(saved["samples"], dtype=float).reshape(
                collected, dim
            )
            logdens[0, :collected] = np.asarray(saved["logdensities"], dtype=float)
        accepted = np.array([float(saved["accepted"])])
        total_post = np.array([int(saved["total_post_warmup"])])
        divergences = np.array([int(saved["divergences"])])
        lf_steps = np.array([int(saved["leapfrog_steps"])])
        start_iteration = int(saved["iteration"])
        checkpoint.restore_rng(streams[0], saved["rng"])
    else:
        Q_all = np.stack(starts)
        logp_all, G_all = density.batched(Q_all)
        bad = ~np.isfinite(logp_all)
        for c in np.flatnonzero(bad):
            outcomes[c] = InferenceError("HMC initial position has zero density")
        live = [c for c in range(n_chains) if not bad[c]]
        if not live:
            return outcomes
        Q = Q_all[live]
        logp = logp_all[live]
        G = G_all[live]
        step = np.array(
            [
                _find_initial_step_row(
                    density, None, Q[i], float(logp[i]), G[i], streams[c],
                    config.initial_step_size,
                )
                for i, c in enumerate(live)
            ]
        )
        adapter = _BatchedDualAveraging(step.copy(), config.target_accept)
        rows = len(live)
        samples = np.empty((rows, config.n_samples, dim))
        logdens = np.empty((rows, config.n_samples))
        accepted = np.zeros(rows)
        total_post = np.zeros(rows, dtype=int)
        divergences = np.zeros(rows, dtype=int)
        lf_steps = np.zeros(rows, dtype=int)

    row_streams = [streams[c] for c in live]
    row_cursors = [cursors[c] for c in live]
    rows = len(live)
    n_total = config.n_warmup + config.n_samples
    for iteration in range(start_iteration, n_total):
        for i in range(rows):
            cur = row_cursors[i]
            if cur is not None and cur.due(iteration):
                collected = max(0, iteration - config.n_warmup)
                cur.save(
                    {
                        "status": "running",
                        "iteration": iteration,
                        "position": Q[i].tolist(),
                        "logp": float(logp[i]),
                        "grad": G[i].tolist(),
                        "step_size": float(step[i]),
                        "adapter": adapter.state(i),
                        "collected": collected,
                        "samples": samples[i, :collected].tolist(),
                        "logdensities": logdens[i, :collected].tolist(),
                        "accepted": float(accepted[i]),
                        "total_post_warmup": int(total_post[i]),
                        "divergences": int(divergences[i]),
                        "leapfrog_steps": int(lf_steps[i]),
                        "rng": checkpoint.rng_state(row_streams[i]),
                    }
                )
        P = _normal_rows(row_streams, dim)
        current_h = -logp + 0.5 * (P * P).sum(axis=-1)
        n_steps = _jitter_rows(row_streams, config)
        lf_steps = lf_steps + n_steps
        Qn, Pn, logp_n, Gn = leapfrog_batch(density, Q, P, G, step, n_steps)
        finite = np.isfinite(logp_n)
        with np.errstate(over="ignore", invalid="ignore"):
            proposal_h = -logp_n + 0.5 * (Pn * Pn).sum(axis=-1)
            accept_prob = np.where(
                finite, np.exp(np.minimum(0.0, current_h - proposal_h)), 0.0
            )
        accept = _uniform_rows(row_streams) < accept_prob
        Q = np.where(accept[:, None], Qn, Q)
        logp = np.where(accept, logp_n, logp)
        G = np.where(accept[:, None], Gn, G)
        if iteration < config.n_warmup:
            step = np.minimum(adapter.update(accept_prob), config.max_step_size)
            if iteration == config.n_warmup - 1:
                step = np.minimum(adapter.final(), config.max_step_size)
        else:
            idx = iteration - config.n_warmup
            samples[:, idx] = Q
            logdens[:, idx] = logp
            total_post = total_post + 1
            accepted = accepted + accept_prob
            divergences = divergences + (accept_prob == 0.0)

    for i, c in enumerate(live):
        accept_rate = float(accepted[i]) / max(1, int(total_post[i]))
        cur = row_cursors[i]
        if cur is not None:
            cur.save(
                {
                    "status": "done",
                    "iteration": n_total,
                    "samples": samples[i].tolist(),
                    "logdensities": logdens[i].tolist(),
                    "accept_rate": accept_rate,
                    "step_size": float(step[i]),
                    "divergences": int(divergences[i]),
                    "leapfrog_steps": int(lf_steps[i]),
                    "rng": checkpoint.rng_state(row_streams[i]),
                }
            )
        outcomes[c] = HMCResult(
            samples[i],
            accept_rate,
            float(step[i]),
            logdens[i],
            divergences=int(divergences[i]),
            leapfrog_steps=int(lf_steps[i]),
        )
    return outcomes


def attempt_reflective(
    density: BatchedDensity,
    polytope: Polytope,
    starts: Sequence[np.ndarray],
    config: HMCConfig,
    streams: Sequence[np.random.Generator],
    keys: Sequence[Optional[str]],
    engine_label: str,
) -> List[object]:
    """One healing attempt of reflective HMC over a batch of chains.

    Outcome semantics match :func:`attempt_hmc`; the two per-chain error
    cases are a non-interior start and a zero-density start."""
    starts = [np.asarray(s, dtype=float).copy() for s in starts]
    n_chains = len(starts)
    dim = starts[0].size
    cursors = [
        checkpoint.chain_cursor(key, config, s, engine=engine_label)
        for key, s in zip(keys, starts)
    ]
    loads = [cur.load() if cur is not None else None for cur in cursors]
    if n_chains > 1 and any(saved is not None for saved in loads):
        return [
            attempt_reflective(density, polytope, [s], config, [r], [k], engine_label)[0]
            for s, r, k in zip(starts, streams, keys)
        ]
    saved = loads[0] if n_chains == 1 else None
    if saved is not None and saved["status"] == "done":
        checkpoint.restore_rng(streams[0], saved["rng"])
        return [
            ReflectiveHMCResult(
                np.asarray(saved["samples"], dtype=float).reshape(config.n_samples, dim),
                saved["accept_rate"],
                saved["step_size"],
                saved["n_reflections"],
                divergences=saved["divergences"],
            )
        ]

    drift = BatchedDriftEngine(polytope)
    outcomes: List[object] = [None] * n_chains
    start_iteration = 0
    if saved is not None:
        live = [0]
        Q = np.asarray(saved["position"], dtype=float)[None, :]
        logp = np.array([float(saved["logp"])])
        G = np.asarray(saved["grad"], dtype=float)[None, :]
        step = np.array([float(saved["step_size"])])
        step_floor = np.array([float(saved["step_floor"])])
        step_cap = np.array([float(saved["step_cap"])])
        adapter = _BatchedDualAveraging(
            np.full(1, config.initial_step_size), config.target_accept
        )
        adapter.restore(0, saved["adapter"])
        samples = np.empty((1, config.n_samples, dim))
        collected = int(saved["collected"])
        if collected:
            samples[0, :collected] = np.asarray(saved["samples"], dtype=float).reshape(
                collected, dim
            )
        accepted = np.array([float(saved["accepted"])])
        n_reflections = np.array([int(saved["n_reflections"])])
        divergences = np.array([int(saved["divergences"])])
        start_iteration = int(saved["iteration"])
        checkpoint.restore_rng(streams[0], saved["rng"])
    else:
        Q_all = np.stack(starts)
        interior = drift.contains(Q_all, 1e-9)
        for c in np.flatnonzero(~interior):
            outcomes[c] = InferenceError(
                "reflective HMC must start from an interior point"
            )
        inner = [c for c in range(n_chains) if interior[c]]
        if not inner:
            return outcomes
        logp_in, G_in = density.batched(Q_all[inner])
        bad = ~np.isfinite(logp_in)
        for i in np.flatnonzero(bad):
            outcomes[inner[i]] = InferenceError("initial point has zero density")
        live = [c for i, c in enumerate(inner) if not bad[i]]
        if not live:
            return outcomes
        keep = np.flatnonzero(~bad)
        Q = Q_all[live]
        logp = logp_in[keep]
        G = G_in[keep]
        step = np.array(
            [
                _find_initial_step_row(
                    density, drift, Q[i], float(logp[i]), G[i], streams[c],
                    config.initial_step_size,
                )
                for i, c in enumerate(live)
            ]
        )
        # clamp adaptation so one burst of hard rejections (e.g. a corner of
        # the polytope) cannot spiral the step size into oblivion
        step_floor = step * 1e-4
        step_cap = np.minimum(step * 1e4, config.max_step_size)
        adapter = _BatchedDualAveraging(step.copy(), config.target_accept)
        rows = len(live)
        samples = np.empty((rows, config.n_samples, dim))
        accepted = np.zeros(rows)
        n_reflections = np.zeros(rows, dtype=int)
        divergences = np.zeros(rows, dtype=int)

    row_streams = [streams[c] for c in live]
    row_cursors = [cursors[c] for c in live]
    rows = len(live)
    n_total = config.n_warmup + config.n_samples
    for iteration in range(start_iteration, n_total):
        for i in range(rows):
            cur = row_cursors[i]
            if cur is not None and cur.due(iteration):
                collected = max(0, iteration - config.n_warmup)
                cur.save(
                    {
                        "status": "running",
                        "iteration": iteration,
                        "position": Q[i].tolist(),
                        "logp": float(logp[i]),
                        "grad": G[i].tolist(),
                        "step_size": float(step[i]),
                        "step_floor": float(step_floor[i]),
                        "step_cap": float(step_cap[i]),
                        "adapter": adapter.state(i),
                        "collected": collected,
                        "samples": samples[i, :collected].tolist(),
                        "accepted": float(accepted[i]),
                        "n_reflections": int(n_reflections[i]),
                        "divergences": int(divergences[i]),
                        "rng": checkpoint.rng_state(row_streams[i]),
                    }
                )
        P = _normal_rows(row_streams, dim)
        current_h = -logp + 0.5 * (P * P).sum(axis=-1)
        n_steps = _jitter_rows(row_streams, config)
        Qn, Pn, logp_n, Gn, refl = leapfrog_reflective_batch(
            density, drift, Q, P, G, step, n_steps
        )
        n_reflections = n_reflections + refl
        finite = np.isfinite(logp_n)
        with np.errstate(over="ignore", invalid="ignore"):
            proposal_h = -logp_n + 0.5 * (Pn * Pn).sum(axis=-1)
            accept_prob = np.where(
                finite, np.exp(np.minimum(0.0, current_h - proposal_h)), 0.0
            )
        accept = _uniform_rows(row_streams) < accept_prob
        Q = np.where(accept[:, None], Qn, Q)
        logp = np.where(accept, logp_n, logp)
        G = np.where(accept[:, None], Gn, G)
        if iteration < config.n_warmup:
            step = np.clip(adapter.update(accept_prob), step_floor, step_cap)
            if iteration == config.n_warmup - 1:
                step = np.clip(adapter.final(), step_floor, step_cap)
        else:
            samples[:, iteration - config.n_warmup] = Q
            accepted = accepted + accept_prob
            divergences = divergences + (accept_prob == 0.0)

    for i, c in enumerate(live):
        accept_rate = float(accepted[i]) / max(1, config.n_samples)
        cur = row_cursors[i]
        if cur is not None:
            cur.save(
                {
                    "status": "done",
                    "iteration": n_total,
                    "samples": samples[i].tolist(),
                    "accept_rate": accept_rate,
                    "step_size": float(step[i]),
                    "n_reflections": int(n_reflections[i]),
                    "divergences": int(divergences[i]),
                    "rng": checkpoint.rng_state(row_streams[i]),
                }
            )
        outcomes[c] = ReflectiveHMCResult(
            samples[i],
            accept_rate,
            float(step[i]),
            int(n_reflections[i]),
            divergences=int(divergences[i]),
        )
    return outcomes


def single_hmc(
    density: BatchedDensity,
    start: np.ndarray,
    config: HMCConfig,
    rng: np.random.Generator,
    key: Optional[str],
    engine_label: str,
) -> HMCResult:
    """One chain as a batch of one; raises the chain's InferenceError."""
    out = attempt_hmc(density, [start], config, [rng], [key], engine_label)[0]
    if isinstance(out, InferenceError):
        raise out
    return out


def single_reflective(
    density: BatchedDensity,
    polytope: Polytope,
    start: np.ndarray,
    config: HMCConfig,
    rng: np.random.Generator,
    key: Optional[str],
    engine_label: str,
) -> ReflectiveHMCResult:
    """One chain as a batch of one; raises the chain's InferenceError."""
    out = attempt_reflective(
        density, polytope, [start], config, [rng], [key], engine_label
    )[0]
    if isinstance(out, InferenceError):
        raise out
    return out


def _heal_outcomes(outcomes, single_fns, config, streams):
    """Feed lockstep attempt-0 outcomes into the per-chain healing driver."""
    results = []
    for c, out in enumerate(outcomes):
        if isinstance(out, InferenceError):
            result, error = None, out
        else:
            result, error = out, None
        results.append(
            heal_continue(single_fns[c], config, streams[c], result, error)
        )
    return results


def run_hmc_batch(
    density: BatchedDensity,
    starts: Sequence[np.ndarray],
    config: HMCConfig,
    streams: Sequence[np.random.Generator],
    keys: Sequence[Optional[str]],
    mode: str,
) -> List[HMCResult]:
    """All chains of a cell, healing included, under the selected engine.

    ``batched`` runs attempt 0 as one lockstep batch and the (rare)
    healing restarts per chain; ``perchain`` runs everything chain by
    chain.  Identical restart schedule, identical rng consumption —
    bit-identical results.
    """
    starts = [np.asarray(s, dtype=float) for s in starts]

    def single(c):
        return lambda cfg, r, _s=starts[c], _k=keys[c]: single_hmc(
            density, _s, cfg, r, _k, mode
        )

    if mode == BATCHED and len(starts) > 1:
        outcomes = attempt_hmc(density, starts, config, streams, keys, mode)
        return _heal_outcomes(
            outcomes, [single(c) for c in range(len(starts))], config, streams
        )
    return [
        sample_with_healing(single(c), config, streams[c])
        for c in range(len(starts))
    ]


def run_reflective_batch(
    density: BatchedDensity,
    polytope: Polytope,
    starts: Sequence[np.ndarray],
    config: HMCConfig,
    streams: Sequence[np.random.Generator],
    keys: Sequence[Optional[str]],
    mode: str,
) -> List[ReflectiveHMCResult]:
    """Reflective counterpart of :func:`run_hmc_batch`."""
    starts = [np.asarray(s, dtype=float) for s in starts]

    def single(c):
        return lambda cfg, r, _s=starts[c], _k=keys[c]: single_reflective(
            density, polytope, _s, cfg, r, _k, mode
        )

    if mode == BATCHED and len(starts) > 1:
        outcomes = attempt_reflective(
            density, polytope, starts, config, streams, keys, mode
        )
        return _heal_outcomes(
            outcomes, [single(c) for c in range(len(starts))], config, streams
        )
    return [
        sample_with_healing(single(c), config, streams[c])
        for c in range(len(starts))
    ]
