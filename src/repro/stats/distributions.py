"""Probability distributions used by BayesWC and BayesPC (Section 5).

All densities expose ``logpdf`` and, where inference needs them, gradients;
sampling goes through explicit ``numpy.random.Generator`` objects so every
analysis run is reproducible from a seed.

The survival-analysis likelihood of BayesWC (Eq. 5.12) uses a *minimum*
Gumbel noise distribution, under which ``exp(β0 + β1·n + |σ|·ε)`` is
Weibull-distributed with scale ``exp(β0 + β1·n)`` and shape ``1/|σ|`` —
the log-location-scale family standard in survival analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InferenceError

_LOG_2PI = math.log(2.0 * math.pi)


# ---------------------------------------------------------------------------
# Normal / half-normal
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Normal:
    loc: float = 0.0
    scale: float = 1.0

    def logpdf(self, x):
        z = (np.asarray(x, dtype=float) - self.loc) / self.scale
        return -0.5 * (z * z + _LOG_2PI) - math.log(self.scale)

    def grad_logpdf(self, x):
        return -(np.asarray(x, dtype=float) - self.loc) / (self.scale**2)

    def sample(self, rng: np.random.Generator, size=None):
        return rng.normal(self.loc, self.scale, size=size)

    def cdf(self, x):
        z = (np.asarray(x, dtype=float) - self.loc) / (self.scale * math.sqrt(2.0))
        from scipy.special import erf

        return 0.5 * (1.0 + erf(z))


@dataclass(frozen=True)
class HalfNormal:
    """|X| for X ~ Normal(0, scale); the paper's Normal≥0(0, γ0) prior."""

    scale: float = 1.0

    def logpdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(
            x >= 0,
            math.log(2.0) - 0.5 * ((x / self.scale) ** 2 + _LOG_2PI) - math.log(self.scale),
            -np.inf,
        )
        return out

    def grad_logpdf(self, x):
        return -np.asarray(x, dtype=float) / (self.scale**2)

    def sample(self, rng: np.random.Generator, size=None):
        return np.abs(rng.normal(0.0, self.scale, size=size))


# ---------------------------------------------------------------------------
# Gumbel (minimum convention) — survival-analysis noise
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GumbelMin:
    """Standard minimum-Gumbel: CDF(z) = 1 - exp(-exp(z))."""

    loc: float = 0.0
    scale: float = 1.0

    def _z(self, x):
        return (np.asarray(x, dtype=float) - self.loc) / self.scale

    def logpdf(self, x):
        z = self._z(x)
        return z - np.exp(z) - math.log(self.scale)

    def grad_logpdf(self, x):
        z = self._z(x)
        return (1.0 - np.exp(z)) / self.scale

    def cdf(self, x):
        return 1.0 - np.exp(-np.exp(self._z(x)))

    def logsf(self, x):
        """log(1 - CDF) = -exp(z); numerically exact for all z."""
        return -np.exp(self._z(x))

    def ppf(self, u):
        u = np.asarray(u, dtype=float)
        return self.loc + self.scale * np.log(-np.log1p(-u))

    def sample(self, rng: np.random.Generator, size=None):
        return self.ppf(rng.uniform(size=size))


@dataclass(frozen=True)
class Logistic:
    loc: float = 0.0
    scale: float = 1.0

    def _z(self, x):
        return (np.asarray(x, dtype=float) - self.loc) / self.scale

    def logpdf(self, x):
        z = self._z(x)
        return -z - 2.0 * np.logaddexp(0.0, -z) - math.log(self.scale)

    def grad_logpdf(self, x):
        z = self._z(x)
        return -np.tanh(z / 2.0) / self.scale

    def cdf(self, x):
        return 1.0 / (1.0 + np.exp(-self._z(x)))

    def ppf(self, u):
        u = np.asarray(u, dtype=float)
        return self.loc + self.scale * (np.log(u) - np.log1p(-u))

    def sample(self, rng: np.random.Generator, size=None):
        return self.ppf(rng.uniform(size=size))


# ---------------------------------------------------------------------------
# Weibull
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Weibull:
    shape: float
    scale: float

    def __post_init__(self):
        if self.shape <= 0 or self.scale <= 0:
            raise InferenceError("Weibull parameters must be positive")

    def logpdf(self, x):
        x = np.asarray(x, dtype=float)
        k, lam = self.shape, self.scale
        with np.errstate(divide="ignore", invalid="ignore"):
            core = (
                math.log(k)
                - k * math.log(lam)
                + (k - 1.0) * np.log(x)
                - (x / lam) ** k
            )
        return np.where(x > 0, core, -np.inf)

    def grad_logpdf(self, x):
        x = np.asarray(x, dtype=float)
        k, lam = self.shape, self.scale
        return (k - 1.0) / x - (k / lam) * (x / lam) ** (k - 1.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x > 0, 1.0 - np.exp(-((np.maximum(x, 0.0) / self.scale) ** self.shape)), 0.0)

    def logcdf(self, x):
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore"):
            t = (np.maximum(x, 0.0) / self.scale) ** self.shape
            out = np.where(x > 0, np.log(-np.expm1(-t)), -np.inf)
        return out

    def ppf(self, u):
        u = np.asarray(u, dtype=float)
        return self.scale * (-np.log1p(-u)) ** (1.0 / self.shape)

    def sample(self, rng: np.random.Generator, size=None):
        return self.ppf(rng.uniform(size=size))


# ---------------------------------------------------------------------------
# Generic truncation (Eq. 5.11)
# ---------------------------------------------------------------------------


def sample_truncated(dist, low: float, high: float, rng: np.random.Generator, size=None):
    """Sample ``dist`` restricted to ``[low, high]`` by inverse-CDF.

    Implements the restriction operator ``g~(x; ...) ∝ g(x)·I[x ∈ U]`` of
    Eq. (5.11).  ``high`` may be ``inf``.
    """
    lo = float(dist.cdf(low)) if np.isfinite(low) else 0.0
    hi = float(dist.cdf(high)) if np.isfinite(high) else 1.0
    if hi <= lo:
        # the interval carries (numerically) zero mass; degenerate at `low`
        if size is None:
            return float(low)
        return np.full(size, float(low))
    u = rng.uniform(lo, hi, size=size)
    # clip away from exactly 1.0 to keep ppf finite
    u = np.clip(u, lo, min(hi, 1.0 - 1e-15))
    return dist.ppf(u)


def truncated_logpdf(dist, x, low: float, high: float):
    """Log-density of ``dist`` truncated to ``[low, high]``."""
    x = np.asarray(x, dtype=float)
    lo = float(dist.cdf(low)) if np.isfinite(low) else 0.0
    hi = float(dist.cdf(high)) if np.isfinite(high) else 1.0
    mass = hi - lo
    if mass <= 0:
        return np.full_like(x, -np.inf)
    inside = (x >= low) & (x <= high)
    return np.where(inside, dist.logpdf(x) - math.log(mass), -np.inf)
