"""Sampler engine selection: ``REPRO_SAMPLER=batched|perchain``.

The MCMC samplers run on a shared batched core (:mod:`repro.stats.batched`)
that advances all chains of a cell in lockstep over ``(n_chains, dim)``
state arrays.  The *engine* only decides how chains are grouped into
batches:

* ``batched`` (default) — one lockstep batch per cell;
* ``perchain`` — each chain runs as its own batch of size one, matching
  the historical chain-at-a-time execution order.

Because both engines execute the exact same kernel code — and the kernels
use only batch-size-stable primitives (elementwise ufuncs, last-axis
reductions, per-row gathers; never BLAS matvecs whose reduction order can
shift with the operand rank) — the two engines produce **bit-identical
draws chain-for-chain**.  ``tests/test_sampler_equivalence.py`` enforces
this.

Chain independence is what makes lockstep grouping possible: every chain
owns a private :class:`numpy.random.Generator` stream derived
deterministically from the cell's parent generator (see
:func:`spawn_streams`), so no chain's draws depend on how far another
chain has advanced.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

#: environment variable selecting the engine (workers inherit it)
ENV_SAMPLER = "REPRO_SAMPLER"
BATCHED = "batched"
PERCHAIN = "perchain"
_VALID = (BATCHED, PERCHAIN)


def current() -> str:
    """The engine selected by ``REPRO_SAMPLER`` (default ``batched``)."""
    value = os.environ.get(ENV_SAMPLER, "").strip().lower() or BATCHED
    if value not in _VALID:
        raise ValueError(
            f"invalid {ENV_SAMPLER}={value!r}; expected one of {', '.join(_VALID)}"
        )
    return value


def spawn_streams(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent per-chain generators from ``rng``.

    Uses :meth:`numpy.random.Generator.spawn` (child streams keyed off the
    parent's seed sequence; the parent's bit stream is untouched).  For
    generators without a spawnable seed sequence — e.g. one rebuilt from a
    raw bit-generator state — falls back to seeding children from parent
    draws, which is equally deterministic.

    Both engines call this once per cell *before* dispatch, so stream
    derivation is engine-invariant by construction.
    """
    if n <= 0:
        return []
    try:
        return list(rng.spawn(n))
    except (AttributeError, TypeError, ValueError):
        seeds = rng.integers(0, 2**63 - 1, size=(n, 4))
        return [np.random.default_rng([int(s) for s in row]) for row in seeds]
