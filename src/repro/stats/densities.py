"""Batched log-density protocol for the sampler engines.

The batched sampler core (:mod:`repro.stats.batched`) evaluates the
target on a ``(rows, dim)`` matrix of positions at once.  A *batched
density* is any object with

    ``batched(Q) -> (logp, grad)``   # ``(rows,)`` and ``(rows, dim)``

whose row ``i`` depends only on ``Q[i]`` — **batch-size stability**: the
result of a row must be bit-identical whether it is evaluated alone or
stacked with other rows.  That property is what makes the ``batched``
and ``perchain`` engines produce identical draws, so native
implementations must avoid rank-dependent reduction orders (no BLAS
matvecs over the batch; use broadcast-multiply + last-axis sums).

:func:`as_batched` adapts any legacy scalar ``f(q) -> (logp, grad)``
closure via a row loop — trivially batch-stable, and it preserves the
scalar call order that fault-injection clause counters depend on.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

LogDensityAndGrad = Callable[[np.ndarray], Tuple[float, np.ndarray]]


class BatchedDensity:
    """Base class: scalar calls route through the batched path."""

    def __call__(self, q: np.ndarray) -> Tuple[float, np.ndarray]:
        logp, grad = self.batched(np.asarray(q, dtype=float)[None, :])
        return float(logp[0]), grad[0]

    def batched(self, Q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class LoopDensity(BatchedDensity):
    """Row-loop adapter over a scalar log-density closure."""

    def __init__(self, fn: LogDensityAndGrad):
        self.fn = fn

    def __call__(self, q: np.ndarray) -> Tuple[float, np.ndarray]:
        return self.fn(q)

    def batched(self, Q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        rows = Q.shape[0]
        logp = np.empty(rows)
        grad = np.empty_like(Q, dtype=float)
        for i in range(rows):
            value, g = self.fn(Q[i])
            logp[i] = value
            grad[i] = np.asarray(g, dtype=float)
        return logp, grad


class CountingDensity(BatchedDensity):
    """Observation-only wrapper counting evaluated rows (telemetry).

    Rows, not calls: one lockstep call on ``k`` active chains counts the
    same as ``k`` per-chain calls, so gradient-eval counters agree across
    engines.
    """

    def __init__(self, base: BatchedDensity, counts):
        self.base = base
        self.counts = counts

    def __call__(self, q: np.ndarray) -> Tuple[float, np.ndarray]:
        self.counts[0] += 1
        return self.base(q)

    def batched(self, Q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self.counts[0] += Q.shape[0]
        return self.base.batched(Q)


def as_batched(fn) -> BatchedDensity:
    """Adapt ``fn`` to the batched protocol (no-op for native objects)."""
    if isinstance(fn, BatchedDensity):
        return fn
    if hasattr(fn, "batched"):
        return fn
    return LoopDensity(fn)


# Operator size (elements of M) above which a per-row dgemv loop beats a
# single einsum.  The choice only depends on M's shape — identical for every
# batch size of the same model — so both engines always take the same path.
_ROWMAT_BLAS_CUTOVER = 8192


def rowmat(M: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Batch-stable matvec: ``rowmat(M, X)[i] == M @ X[i]``, each row's bits
    independent of the batch size.  Two batch-stable implementations:

    * ``einsum`` computes each output element with its own sequential
      sum-of-products, so row results never depend on the batch size
      (unlike a single dgemm over the batch, whose blocking differs with
      operand rank) — and it skips the ``(rows, m, dim)`` broadcast
      temporary a multiply-then-sum needs.  Best for small operators.
    * a per-row dgemv loop: one BLAS call *per row* sees only that row,
      so its bits cannot depend on what else is in the batch.  BLAS wins
      by ~2x once ``M`` is large enough to amortise the loop dispatch.
    """
    if M.size >= _ROWMAT_BLAS_CUTOVER:
        out = np.empty((X.shape[0], M.shape[0]))
        for i in range(X.shape[0]):
            np.matmul(M, X[i], out=out[i])
        return out
    return np.einsum("rd,md->rm", X, M)
