"""No-U-Turn Sampler (Hoffman & Gelman 2014, Algorithm 3).

An optional drop-in replacement for plain HMC in BayesWC's unconstrained
survival posterior (the paper's "innovations from the sampling algorithm
literature").  Implements the slice-variant recursive tree doubling with
dual-averaging step-size adaptation during warmup.

NUTS is the one sampler the lockstep batched engine does not stack: the
recursive tree consumes the rng a data-dependent number of times per
iteration, so chains cannot share a batched density evaluation without
changing their bit-streams.  Both engines therefore run the same
sequential per-chain loop below — trivially bit-identical — over the
same per-chain rng streams (:func:`repro.stats.engine.spawn_streams`)
that HMC and reflective HMC use, so a cell's chain ``i`` sees the same
stream regardless of algorithm choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import engine as engine_mod
from .base import (
    HMCConfig,
    HMCResult,
    _DualAveraging,
    _find_initial_step_unconstrained,
    _sampler_counters,
    count_gradient_evals,
    sample_with_healing,
)
from .. import checkpoint, faultinject, telemetry
from ..errors import InferenceError

LogDensityAndGrad = Callable[[np.ndarray], Tuple[float, np.ndarray]]

#: maximum tree depth (2^10 = 1024 leapfrog steps per iteration at most)
MAX_TREE_DEPTH = 10
#: slice boundary tolerance (Hoffman & Gelman's Δ_max)
DELTA_MAX = 1000.0


@dataclass
class _Tree:
    q_minus: np.ndarray
    p_minus: np.ndarray
    g_minus: np.ndarray
    q_plus: np.ndarray
    p_plus: np.ndarray
    g_plus: np.ndarray
    q_proposal: np.ndarray
    logp_proposal: float
    g_proposal: np.ndarray
    n_valid: int
    keep_going: bool
    alpha: float
    n_alpha: int


def _leapfrog_one(q, p, g, eps, logdensity_and_grad):
    with np.errstate(over="ignore", invalid="ignore"):
        p_half = p + 0.5 * eps * g
        q_new = q + eps * p_half
        if not np.all(np.isfinite(q_new)):
            return q_new, p_half, -np.inf, g
        logp, g_new = logdensity_and_grad(q_new)
        if not np.isfinite(logp) or not np.all(np.isfinite(g_new)):
            return q_new, p_half, -np.inf, g_new
        p_new = p_half + 0.5 * eps * g_new
    return q_new, p_new, logp, g_new


def _build_tree(q, p, g, log_u, direction, depth, eps, h0, logdensity_and_grad, rng):
    if depth == 0:
        q1, p1, logp1, g1 = _leapfrog_one(q, p, g, direction * eps, logdensity_and_grad)
        joint = logp1 - 0.5 * float(p1 @ p1) if np.isfinite(logp1) else -np.inf
        n_valid = int(log_u <= joint)
        keep_going = log_u < joint + DELTA_MAX
        alpha = min(1.0, math.exp(min(0.0, joint - h0))) if np.isfinite(joint) else 0.0
        return _Tree(q1, p1, g1, q1, p1, g1, q1, logp1, g1, n_valid, keep_going, alpha, 1)

    half = _build_tree(q, p, g, log_u, direction, depth - 1, eps, h0, logdensity_and_grad, rng)
    if not half.keep_going:
        return half
    if direction == -1:
        other = _build_tree(
            half.q_minus, half.p_minus, half.g_minus, log_u, direction, depth - 1, eps, h0, logdensity_and_grad, rng
        )
        q_minus, p_minus, g_minus = other.q_minus, other.p_minus, other.g_minus
        q_plus, p_plus, g_plus = half.q_plus, half.p_plus, half.g_plus
    else:
        other = _build_tree(
            half.q_plus, half.p_plus, half.g_plus, log_u, direction, depth - 1, eps, h0, logdensity_and_grad, rng
        )
        q_minus, p_minus, g_minus = half.q_minus, half.p_minus, half.g_minus
        q_plus, p_plus, g_plus = other.q_plus, other.p_plus, other.g_plus

    total = half.n_valid + other.n_valid
    if other.n_valid > 0 and rng.uniform() < other.n_valid / max(total, 1):
        proposal = (other.q_proposal, other.logp_proposal, other.g_proposal)
    else:
        proposal = (half.q_proposal, half.logp_proposal, half.g_proposal)

    span = q_plus - q_minus
    no_u_turn = (span @ p_minus) >= 0 and (span @ p_plus) >= 0
    return _Tree(
        q_minus,
        p_minus,
        g_minus,
        q_plus,
        p_plus,
        g_plus,
        proposal[0],
        proposal[1],
        proposal[2],
        total,
        other.keep_going and no_u_turn,
        half.alpha + other.alpha,
        half.n_alpha + other.n_alpha,
    )


def nuts_sample(
    logdensity_and_grad: LogDensityAndGrad,
    initial: np.ndarray,
    config: HMCConfig,
    rng: np.random.Generator,
    checkpoint_key: Optional[str] = None,
) -> HMCResult:
    """Run one NUTS chain; warmup adapts the step size via dual averaging.

    Checkpoints at iteration boundaries when :mod:`repro.checkpoint` is
    active — tree building consumes the rng heavily inside one
    iteration, but the per-iteration state (position, step, adapter, rng
    bit-generator) is all a resumed chain needs to replay identically.
    """
    q = np.asarray(initial, dtype=float).copy()
    dim = q.size
    cursor = checkpoint.chain_cursor(
        checkpoint_key, config, q, engine=engine_mod.current()
    )
    saved = cursor.load() if cursor is not None else None
    if saved is not None and saved["status"] == "done":
        checkpoint.restore_rng(rng, saved["rng"])
        return HMCResult(
            np.asarray(saved["samples"], dtype=float).reshape(config.n_samples, dim),
            saved["accept_rate"],
            saved["step_size"],
            np.asarray(saved["logdensities"], dtype=float),
            divergences=saved["divergences"],
        )

    samples = np.empty((config.n_samples, dim))
    logdensities = np.empty(config.n_samples)
    start_iteration = 0
    if saved is not None:
        q = np.asarray(saved["position"], dtype=float)
        logp = float(saved["logp"])
        g = np.asarray(saved["grad"], dtype=float)
        step = float(saved["step_size"])
        adapter = _DualAveraging(config.initial_step_size, config.target_accept)
        adapter.restore(saved["adapter"])
        collected = int(saved["collected"])
        if collected:
            samples[:collected] = np.asarray(saved["samples"], dtype=float).reshape(
                collected, dim
            )
            logdensities[:collected] = np.asarray(saved["logdensities"], dtype=float)
        accept_stat = saved["accept_stat"]
        divergences = saved["divergences"]
        start_iteration = int(saved["iteration"])
        checkpoint.restore_rng(rng, saved["rng"])
    else:
        logp, g = logdensity_and_grad(q)
        if not np.isfinite(logp):
            raise InferenceError("NUTS initial position has zero density")
        step = _find_initial_step_unconstrained(
            logdensity_and_grad, q, logp, g, rng, config.initial_step_size
        )
        adapter = _DualAveraging(step, config.target_accept)
        accept_stat = 0.0
        divergences = 0

    n_total = config.n_warmup + config.n_samples
    for iteration in range(start_iteration, n_total):
        if cursor is not None and cursor.due(iteration):
            collected = max(0, iteration - config.n_warmup)
            cursor.save(
                {
                    "status": "running",
                    "iteration": iteration,
                    "position": q.tolist(),
                    "logp": logp,
                    "grad": g.tolist(),
                    "step_size": step,
                    "adapter": adapter.state(),
                    "collected": collected,
                    "samples": samples[:collected].tolist(),
                    "logdensities": logdensities[:collected].tolist(),
                    "accept_stat": accept_stat,
                    "divergences": divergences,
                    "rng": checkpoint.rng_state(rng),
                }
            )
        p0 = rng.normal(size=dim)
        joint0 = logp - 0.5 * float(p0 @ p0)
        log_u = joint0 - rng.exponential()

        q_minus = q.copy()
        q_plus = q.copy()
        p_minus = p0.copy()
        p_plus = p0.copy()
        g_minus = g.copy()
        g_plus = g.copy()
        n_valid = 1
        keep_going = True
        depth = 0
        alpha, n_alpha = 0.0, 1

        while keep_going and depth < MAX_TREE_DEPTH:
            direction = 1 if rng.uniform() < 0.5 else -1
            if direction == -1:
                tree = _build_tree(
                    q_minus, p_minus, g_minus, log_u, direction, depth, step, joint0, logdensity_and_grad, rng
                )
                q_minus, p_minus, g_minus = tree.q_minus, tree.p_minus, tree.g_minus
            else:
                tree = _build_tree(
                    q_plus, p_plus, g_plus, log_u, direction, depth, step, joint0, logdensity_and_grad, rng
                )
                q_plus, p_plus, g_plus = tree.q_plus, tree.p_plus, tree.g_plus

            if tree.keep_going and tree.n_valid > 0:
                if rng.uniform() < tree.n_valid / max(n_valid, 1):
                    q, logp, g = tree.q_proposal, tree.logp_proposal, tree.g_proposal
            n_valid += tree.n_valid
            span = q_plus - q_minus
            keep_going = (
                tree.keep_going and (span @ p_minus) >= 0 and (span @ p_plus) >= 0
            )
            alpha, n_alpha = tree.alpha, tree.n_alpha
            depth += 1

        accept_prob = alpha / max(n_alpha, 1)
        if iteration < config.n_warmup:
            step = min(adapter.update(accept_prob), config.max_step_size)
            if iteration == config.n_warmup - 1:
                step = min(adapter.final(), config.max_step_size)
        else:
            idx = iteration - config.n_warmup
            samples[idx] = q
            logdensities[idx] = logp
            accept_stat += accept_prob
            if accept_prob == 0.0:
                divergences += 1

    accept_rate = accept_stat / max(1, config.n_samples)
    if cursor is not None:
        cursor.save(
            {
                "status": "done",
                "iteration": n_total,
                "samples": samples.tolist(),
                "logdensities": logdensities.tolist(),
                "accept_rate": accept_rate,
                "step_size": step,
                "divergences": divergences,
                "rng": checkpoint.rng_state(rng),
            }
        )
    return HMCResult(
        samples,
        accept_rate,
        step,
        logdensities,
        divergences=divergences,
    )


def nuts_sample_chains(
    logdensity_and_grad: LogDensityAndGrad,
    initial_points,
    config: HMCConfig,
    rng: np.random.Generator,
    fault_key: str = "nuts",
) -> HMCResult:
    logdensity_and_grad = faultinject.wrap_logdensity(logdensity_and_grad, fault_key)
    grad_evals = None
    if telemetry.enabled():
        logdensity_and_grad, grad_evals = count_gradient_evals(logdensity_and_grad)
    with telemetry.span(
        "sampler.nuts",
        n_samples=config.n_samples,
        n_warmup=config.n_warmup,
        engine=engine_mod.current(),
    ) as tspan:
        starts = [np.asarray(p, float) for p in initial_points]
        streams = engine_mod.spawn_streams(rng, len(starts))
        chains, logps, rates = [], [], []
        diagnostics: List[Dict[str, float]] = []
        divergences = 0
        retries = 0
        for chain_index, start in enumerate(starts):
            ckpt_key = f"nuts/{fault_key}/chain{chain_index}"
            result = sample_with_healing(
                lambda cfg, r, _start=start, _key=ckpt_key: nuts_sample(
                    logdensity_and_grad, _start, cfg, r, checkpoint_key=_key
                ),
                config,
                streams[chain_index],
            )
            chains.append(result.samples)
            logps.append(result.logdensities)
            rates.append(result.accept_rate)
            divergences += result.divergences
            retries += result.retries
            diagnostics.append(
                {
                    "chain": float(chain_index),
                    "divergences": float(result.divergences),
                    "retries": float(result.retries),
                    "step_size": float(result.step_size),
                    "accept_rate": float(result.accept_rate),
                }
            )
        accept_rate = float(np.mean(rates))
        tspan.set(chains=len(chains), divergences=divergences, retries=retries)
        _sampler_counters("nuts", accept_rate, divergences, retries, 0, grad_evals)
        return HMCResult(
            np.concatenate(chains, axis=0),
            accept_rate,
            0.0,
            np.concatenate(logps),
            divergences=divergences,
            retries=retries,
            chain_diagnostics=diagnostics,
        )
