"""Convex polytopes for constrained posterior inference (Section 6.2).

Hybrid BayesPC restricts its probabilistic model to the convex polytope
defined by the AARA constraint set ``C0`` (Eq. 6.3).  This module converts
an :class:`~repro.lp.LPProblem` into an explicit H-representation
``{x : A x ≤ b}`` over the named coefficient variables, eliminating
equality constraints by re-parameterizing over an affine subspace
``x = x0 + N z`` (``N`` a nullspace basis), and computes interior starting
points via the Chebyshev center.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.linalg import null_space
from scipy.optimize import linprog

from ..errors import InferenceError
from ..lp import LPProblem


@dataclass
class Polytope:
    """H-representation ``{x : A x ≤ b}`` with named coordinates."""

    A: np.ndarray  # (m, n)
    b: np.ndarray  # (m,)
    names: List[str]

    @property
    def dim(self) -> int:
        return self.A.shape[1]

    def contains(self, x: np.ndarray, tol: float = 1e-7) -> bool:
        return bool(np.all(self.A @ x <= self.b + tol))

    def slack(self, x: np.ndarray) -> np.ndarray:
        return self.b - self.A @ x

    def index_of(self, name: str) -> int:
        return self.names.index(name)


@dataclass
class AffineMap:
    """``x = x0 + N z`` — parameterization of an equality subspace."""

    x0: np.ndarray  # (n,)
    N: np.ndarray  # (n, k)

    def embed(self, z: np.ndarray) -> np.ndarray:
        return self.x0 + self.N @ z

    def pull_gradient(self, grad_x: np.ndarray) -> np.ndarray:
        return self.N.T @ grad_x

    @property
    def reduced_dim(self) -> int:
        return self.N.shape[1]


@dataclass
class ReducedPolytope:
    """A polytope over reduced coordinates plus the map back to x-space."""

    polytope: Polytope  # over z
    affine: AffineMap
    names: List[str]  # x-space variable names

    def to_x(self, z: np.ndarray) -> np.ndarray:
        return self.affine.embed(z)

    def assignment(self, z: np.ndarray) -> Dict[str, float]:
        x = self.to_x(z)
        return {name: float(v) for name, v in zip(self.names, x)}


def _reduce_once(A_ub, b_ub, A_eq, b_eq, n):
    """Eliminate equalities; returns (A_z, b_z, x0, N, kept_row_indices)."""
    if A_eq.size:
        x0, *_ = np.linalg.lstsq(A_eq, b_eq, rcond=None)
        if not np.allclose(A_eq @ x0 - b_eq, 0.0, atol=1e-6):
            raise InferenceError("equality constraints are inconsistent")
        N = null_space(A_eq)
        if N.size == 0:
            N = np.zeros((n, 0))
    else:
        x0 = np.zeros(n)
        N = np.eye(n)
    A_z = A_ub @ N
    b_z = b_ub - A_ub @ x0
    row_norms = np.linalg.norm(A_z, axis=1) if A_z.size else np.zeros(0)
    keep = row_norms > 1e-12
    violated = (~keep) & (b_z < -1e-7)
    if np.any(violated):
        raise InferenceError("polytope is empty (fixed directions violate bounds)")
    return A_z[keep], b_z[keep], x0, N, np.where(keep)[0]


def _max_row_slack(A_sparse, b, row_vec, b_row, n):
    """Maximize min(slack_row, 1) over {z : A z ≤ b}; returns (opt, z*)."""
    from scipy.sparse import csr_matrix, hstack as sp_hstack, vstack as sp_vstack

    m = b.size
    # variables: (z, t); maximize t s.t. A z ≤ b, a_row z + t ≤ b_row, t ≤ 1
    c = np.zeros(n + 1)
    c[-1] = -1.0
    extra = csr_matrix(np.concatenate([row_vec, [1.0]]).reshape(1, -1))
    A_lp = sp_vstack([sp_hstack([A_sparse, csr_matrix((m, 1))]), extra], format="csr")
    b_lp = np.concatenate([b, [b_row]])
    bounds = [(None, None)] * n + [(None, 1.0)]
    result = linprog(c, A_ub=A_lp, b_ub=b_lp, bounds=bounds, method="highs")
    if result.status == 2:
        raise InferenceError("polytope is empty")
    if result.status != 0 or result.x is None:
        raise InferenceError(f"slack LP failed: {result.message}")
    return float(result.x[-1]), result.x[:n]


def _max_sum_slack(A_sparse, b, rows, n, cap: float = 1.0):
    """Maximize Σ_i min(slack_i, cap) over ``rows`` — bulk-clears every row
    that is not an implied equality in a single LP."""
    from scipy.sparse import csr_matrix, hstack as sp_hstack, vstack as sp_vstack

    m = b.size
    k = len(rows)
    rows_arr = np.asarray(rows)
    # variables: (z, t_1..t_k); max Σt  s.t.  A z ≤ b,  a_i z + t_i ≤ b_i
    c = np.concatenate([np.zeros(n), -np.ones(k)])
    sel = csr_matrix((np.ones(k), (np.arange(k), rows_arr)), shape=(k, m))
    eye_k = csr_matrix((np.ones(k), (np.arange(k), np.arange(k))), shape=(k, k))
    extra = sp_hstack([sel @ A_sparse, eye_k], format="csr")
    base = sp_hstack([A_sparse, csr_matrix((m, k))], format="csr")
    A_lp = sp_vstack([base, extra], format="csr")
    b_lp = np.concatenate([b, b[rows_arr]])
    bounds = [(None, None)] * n + [(0.0, cap)] * k
    result = linprog(c, A_ub=A_lp, b_ub=b_lp, bounds=bounds, method="highs")
    if result.status == 2:
        raise InferenceError("polytope is empty")
    if result.status != 0 or result.x is None:
        return None
    return result.x[:n]


def find_implied_equalities(A, b, tol: float = 1e-9):
    """Facial reduction: inequality rows that hold with equality everywhere.

    A bulk pass first maximizes the capped slack sum, giving positive slack
    to (and thereby clearing) every jointly-relaxable row at once; the
    per-row certification LPs then only run for the remaining suspects,
    which are mostly the genuinely implied equalities.  Returns
    (implied_row_indices, relative_interior_point or None).
    """
    from scipy.sparse import csr_matrix

    m, n = A.shape
    if m == 0:
        return [], None
    A_sparse = csr_matrix(A)
    unknown = set(range(m))
    implied = []
    points = []

    z_bulk = _max_sum_slack(A_sparse, b, sorted(unknown), n)
    if z_bulk is not None:
        points.append(z_bulk)
        slack = b - A @ z_bulk
        unknown -= {i for i in range(m) if slack[i] > tol}

    while unknown:
        row = next(iter(unknown))
        opt, z = _max_row_slack(A_sparse, b, A[row], b[row], n)
        if opt <= tol:
            implied.append(row)
            unknown.discard(row)
            continue
        points.append(z)
        slack = b - A @ z
        cleared = {i for i in unknown if slack[i] > tol}
        cleared.add(row)
        unknown -= cleared
    interior = np.mean(points, axis=0) if points else None
    return sorted(implied), interior


def polytope_from_lp(
    problem: LPProblem,
    nonneg: bool = True,
    var_order: Optional[Sequence[str]] = None,
    max_facial_rounds: int = 4,
) -> ReducedPolytope:
    """Convert an LP's feasible region into a *full-dimensional* polytope.

    Equality constraints are eliminated exactly (``x = x0 + N z`` with
    ``N`` a nullspace basis).  Inequalities that hold with equality on the
    whole feasible region — AARA constraint systems produce many, e.g.
    chains forced to zero by the pinned root output — are detected by
    facial reduction and promoted to equalities, until the reduced
    polytope has nonempty interior.  This matches the preprocessing that
    polytope samplers such as Volesti perform before reflective HMC.
    """
    A_ub, b_ub, A_eq, b_eq, index = problem.to_matrices(extra_vars=var_order or ())
    names = [None] * len(index)
    for name, col in index.items():
        names[col] = name
    n = len(names)
    if nonneg:
        A_ub = np.vstack([A_ub, -np.eye(n)]) if A_ub.size else -np.eye(n)
        b_ub = np.concatenate([b_ub, np.zeros(n)]) if b_ub.size else np.zeros(n)

    for _round in range(max_facial_rounds):
        A_z, b_z, x0, N, kept = _reduce_once(A_ub, b_ub, A_eq, b_eq, n)
        if N.shape[1] == 0:
            reduced = Polytope(np.zeros((0, 0)), np.zeros(0), [])
            return ReducedPolytope(reduced, AffineMap(x0, N), names)
        implied, _interior = find_implied_equalities(A_z, b_z)
        if not implied:
            break
        # promote implied-equality rows (in original x-space) to equalities
        original_rows = kept[implied]
        A_eq = np.vstack([A_eq, A_ub[original_rows]]) if A_eq.size else A_ub[original_rows]
        b_eq = np.concatenate([b_eq, b_ub[original_rows]]) if b_eq.size else b_ub[original_rows]
        mask = np.ones(A_ub.shape[0], dtype=bool)
        mask[original_rows] = False
        A_ub, b_ub = A_ub[mask], b_ub[mask]
    else:
        raise InferenceError("facial reduction did not converge")

    reduced = Polytope(A_z, b_z, [f"z{i}" for i in range(N.shape[1])])
    return ReducedPolytope(reduced, AffineMap(x0, N), names)


def chebyshev_center(polytope: Polytope, radius_cap: float = 1e6):
    """Center and radius of the largest inscribed ball (LP).

    For unbounded polytopes the radius is capped so the LP stays bounded.
    Returns ``(center, radius)``; raises when the polytope is empty.
    """
    A, b = polytope.A, polytope.b
    m, n = A.shape
    if m == 0:
        return np.zeros(n), float(radius_cap)
    norms = np.linalg.norm(A, axis=1)
    # variables: (x ∈ R^n, r ≥ 0); maximize r s.t. A x + norms r ≤ b
    c = np.zeros(n + 1)
    c[-1] = -1.0
    A_lp = np.hstack([A, norms.reshape(-1, 1)])
    bounds = [(None, None)] * n + [(0, radius_cap)]
    result = linprog(c, A_ub=A_lp, b_ub=b, bounds=bounds, method="highs")
    if result.status != 0 or result.x is None:
        raise InferenceError(f"Chebyshev center LP failed: {result.message}")
    center = result.x[:n]
    radius = float(result.x[-1])
    if radius <= 1e-10:
        raise InferenceError("polytope has empty interior")
    return center, radius


def interior_point(polytope: Polytope) -> np.ndarray:
    center, _radius = chebyshev_center(polytope)
    return center


def max_min_slack(polytope: Polytope, cap: float = 1.0, absolute: bool = False):
    """Largest achievable minimum slack t ≤ cap; returns (t*, witness point).

    With ``absolute=False`` slack is measured in Euclidean distance
    (normalized by row norms); with ``absolute=True`` it is measured in raw
    inequality units ``b_i − a_i·x`` — the natural units for constraints
    that encode cost gaps.
    """
    A, b = polytope.A, polytope.b
    m, n = A.shape
    if m == 0:
        return cap, np.zeros(n)
    norms = np.ones(m) if absolute else np.linalg.norm(A, axis=1)
    c = np.zeros(n + 1)
    c[-1] = -1.0
    A_lp = np.hstack([A, norms.reshape(-1, 1)])
    bounds = [(None, None)] * n + [(0, cap)]
    result = linprog(c, A_ub=A_lp, b_ub=b, bounds=bounds, method="highs")
    if result.status != 0 or result.x is None:
        raise InferenceError(f"slack LP failed: {result.message}")
    return float(result.x[-1]), result.x[:n]


def low_norm_interior_point(
    reduced: "ReducedPolytope", margin: float = 1e-6
) -> np.ndarray:
    """An interior point whose x-space coordinates are small.

    The Chebyshev center of an *unbounded* polytope can sit arbitrarily far
    out along the recession cone, which puts HMC chains in regions of
    astronomically low posterior density.  Instead we (1) compute the best
    achievable normalized slack t*, (2) minimize the sum of the
    (non-negative) x-coordinates over the polytope shrunk by a *small
    absolute* Euclidean margin from every facet.  The result is strictly
    interior yet close to the prior mode — a good HMC starting point.
    """
    polytope = reduced.polytope
    A, b = polytope.A, polytope.b
    n = polytope.dim
    if n == 0:
        return np.zeros(0)
    # margin is measured in raw inequality units so that data-constraint
    # slacks (= cost gaps ε_i) stay comfortably positive at the start
    t_star, witness = max_min_slack(polytope, cap=10.0 * margin, absolute=True)
    if t_star <= 1e-12:
        raise InferenceError("polytope has empty interior")
    distance = min(margin, 0.5 * t_star)
    b_shrunk = b - distance
    # minimize 1ᵀ x = 1ᵀ(x0 + N z): linear in z, bounded below since x ≥ 0
    c = reduced.affine.N.sum(axis=0)
    result = linprog(c, A_ub=A, b_ub=b_shrunk, bounds=[(None, None)] * n, method="highs")
    if result.status != 0 or result.x is None:
        return witness
    return result.x


def random_interior_points(
    polytope: Polytope, count: int, rng: np.random.Generator, scale: float = 0.3
) -> List[np.ndarray]:
    """A few interior points near the Chebyshev center (chain starts)."""
    center, radius = chebyshev_center(polytope)
    points = [center]
    attempts = 0
    while len(points) < count and attempts < 100 * count:
        attempts += 1
        direction = rng.normal(size=polytope.dim)
        norm = np.linalg.norm(direction)
        if norm == 0:
            continue
        candidate = center + direction / norm * radius * scale * rng.uniform()
        if polytope.contains(candidate, tol=-1e-9):
            points.append(candidate)
    while len(points) < count:
        points.append(center)
    return points
