"""Hamiltonian Monte Carlo with dual-averaging step-size adaptation.

Used for the unconstrained posterior of BayesWC's survival model
(Eq. 5.12).  Plain leapfrog HMC with a diagonal unit mass matrix and the
Hoffman–Gelman dual-averaging schedule for the step size during warmup.

This module is a thin adapter over the lockstep batched core
(:mod:`repro.stats.batched`): a single chain runs as a batch of one, and
:func:`hmc_sample_chains` stacks all chains of a cell into one lockstep
batch under the default ``batched`` engine (``REPRO_SAMPLER=perchain``
restores chain-at-a-time execution; the two are bit-identical — see
:mod:`repro.stats.engine`).  The shared dataclasses and the healing
driver live in :mod:`repro.stats.base` and are re-exported here under
their historical names.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from . import batched, engine
from .base import (  # noqa: F401  (re-exported public/historical API)
    HMCConfig,
    HMCResult,
    LogDensityAndGrad,
    _DualAveraging,
    _find_initial_step_unconstrained,
    _sampler_counters,
    count_gradient_evals,
    heal_continue,
    leapfrog,
    sample_with_healing,
)
from .densities import CountingDensity, LoopDensity, as_batched
from .. import faultinject, telemetry


def hmc_sample(
    logdensity_and_grad: LogDensityAndGrad,
    initial: np.ndarray,
    config: HMCConfig,
    rng: np.random.Generator,
    checkpoint_key: Optional[str] = None,
) -> HMCResult:
    """Run one HMC chain; warmup iterations adapt the step size and are discarded.

    With checkpointing active (see :mod:`repro.checkpoint`) and a
    ``checkpoint_key``, the chain periodically snapshots its full state —
    position, step size, adapter, collected draws and the rng
    bit-generator — and transparently resumes mid-chain on rerun,
    producing draws identical to an uninterrupted chain.
    """
    return batched.single_hmc(
        as_batched(logdensity_and_grad),
        np.asarray(initial, dtype=float),
        config,
        rng,
        checkpoint_key,
        engine.current(),
    )


def hmc_sample_chains(
    logdensity_and_grad: LogDensityAndGrad,
    initial_points,
    config: HMCConfig,
    rng: np.random.Generator,
    fault_key: str = "hmc",
) -> HMCResult:
    """Run several self-healing chains from different starts; concatenates draws.

    Chains draw from independent per-chain rng streams spawned off
    ``rng`` (see :func:`repro.stats.engine.spawn_streams`), which is what
    lets the ``batched`` engine advance them in lockstep.  Fault-injected
    densities force the ``perchain`` engine so injected-clause counters
    fire in chain order.
    """
    raw = logdensity_and_grad
    wrapped = faultinject.wrap_logdensity(raw, fault_key)
    mode = engine.current()
    if wrapped is not raw:
        mode = engine.PERCHAIN
        density = LoopDensity(wrapped)
    else:
        density = as_batched(raw)
    grad_evals = None
    if telemetry.enabled():
        grad_evals = [0]
        density = CountingDensity(density, grad_evals)
    with telemetry.span(
        "sampler.hmc",
        n_samples=config.n_samples,
        n_warmup=config.n_warmup,
        engine=mode,
    ) as tspan:
        starts = [np.asarray(p, dtype=float) for p in initial_points]
        streams = engine.spawn_streams(rng, len(starts))
        keys = [f"hmc/{fault_key}/chain{i}" for i in range(len(starts))]
        results = batched.run_hmc_batch(density, starts, config, streams, keys, mode)
        chains = []
        rates = []
        logps = []
        diagnostics: List[Dict[str, float]] = []
        divergences = 0
        retries = 0
        leapfrog_steps = 0
        for chain_index, result in enumerate(results):
            chains.append(result.samples)
            logps.append(result.logdensities)
            rates.append(result.accept_rate)
            divergences += result.divergences
            retries += result.retries
            leapfrog_steps += result.leapfrog_steps
            diagnostics.append(
                {
                    "chain": float(chain_index),
                    "divergences": float(result.divergences),
                    "retries": float(result.retries),
                    "step_size": float(result.step_size),
                    "accept_rate": float(result.accept_rate),
                }
            )
        accept_rate = float(np.mean(rates))
        tspan.set(chains=len(chains), divergences=divergences, retries=retries)
        _sampler_counters(
            "hmc", accept_rate, divergences, retries, leapfrog_steps, grad_evals
        )
        return HMCResult(
            np.concatenate(chains, axis=0),
            accept_rate,
            0.0,
            np.concatenate(logps),
            divergences=divergences,
            retries=retries,
            leapfrog_steps=leapfrog_steps,
            chain_diagnostics=diagnostics,
        )
