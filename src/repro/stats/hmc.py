"""Hamiltonian Monte Carlo with dual-averaging step-size adaptation.

Used for the unconstrained posterior of BayesWC's survival model
(Eq. 5.12).  Plain leapfrog HMC with a diagonal unit mass matrix and the
Hoffman–Gelman dual-averaging schedule for the step size during warmup.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import checkpoint, faultinject, telemetry
from ..errors import InferenceError, SamplerDivergenceError

LogDensityAndGrad = Callable[[np.ndarray], Tuple[float, np.ndarray]]


@dataclass
class HMCConfig:
    n_samples: int = 1000
    n_warmup: int = 500
    n_leapfrog: int = 24
    initial_step_size: float = 0.1
    target_accept: float = 0.8
    max_step_size: float = 2.0
    jitter_steps: bool = True
    #: self-healing: restart a divergent chain with a halved initial step
    #: at most this many times …
    max_restarts: int = 3
    #: … when more than this fraction of post-warmup draws diverged
    divergence_tolerance: float = 0.25
    #: which self-healing attempt this config belongs to (0 = first try);
    #: distinguishes checkpoint fingerprints between restart attempts
    restart_index: int = 0


@dataclass
class HMCResult:
    samples: np.ndarray  # (n_samples, dim)
    accept_rate: float
    step_size: float
    logdensities: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: post-warmup iterations whose proposal was rejected outright
    #: (non-finite trajectory or an energy error past float underflow)
    divergences: int = 0
    #: self-healing restarts spent producing this result
    retries: int = 0
    #: total leapfrog integration steps taken (warmup included)
    leapfrog_steps: int = 0
    #: per-chain diagnostics when this result aggregates several chains
    chain_diagnostics: List[Dict[str, float]] = field(default_factory=list)


class _DualAveraging:
    """Nesterov dual averaging of log step size (Hoffman & Gelman 2014)."""

    def __init__(self, initial_step: float, target: float):
        self.mu = math.log(10.0 * initial_step)
        self.target = target
        self.log_step = math.log(initial_step)
        self.log_step_bar = 0.0
        self.h_bar = 0.0
        self.gamma = 0.05
        self.t0 = 10.0
        self.kappa = 0.75
        self.iteration = 0

    def update(self, accept_prob: float) -> float:
        self.iteration += 1
        m = self.iteration
        eta = 1.0 / (m + self.t0)
        self.h_bar = (1.0 - eta) * self.h_bar + eta * (self.target - accept_prob)
        self.log_step = self.mu - math.sqrt(m) / self.gamma * self.h_bar
        weight = m**-self.kappa
        self.log_step_bar = weight * self.log_step + (1.0 - weight) * self.log_step_bar
        return math.exp(self.log_step)

    def final(self) -> float:
        return math.exp(self.log_step_bar)

    def state(self) -> Dict[str, float]:
        """JSON-safe snapshot of the adapter (for chain checkpoints)."""
        return {
            "mu": self.mu,
            "target": self.target,
            "log_step": self.log_step,
            "log_step_bar": self.log_step_bar,
            "h_bar": self.h_bar,
            "gamma": self.gamma,
            "t0": self.t0,
            "kappa": self.kappa,
            "iteration": self.iteration,
        }

    def restore(self, state: Dict[str, float]) -> None:
        for name, value in state.items():
            setattr(self, name, value)


def leapfrog(
    position: np.ndarray,
    momentum: np.ndarray,
    grad: np.ndarray,
    step_size: float,
    n_steps: int,
    logdensity_and_grad: LogDensityAndGrad,
):
    """Standard leapfrog integration; returns (q, p, logp, grad)."""
    q = position.copy()
    with np.errstate(over="ignore", invalid="ignore"):
        p = momentum + 0.5 * step_size * grad
        logp = -np.inf
        g = grad
        for step in range(n_steps):
            q = q + step_size * p
            if not np.all(np.isfinite(q)):
                return q, p, -np.inf, g
            logp, g = logdensity_and_grad(q)
            if not np.all(np.isfinite(g)) or not np.isfinite(logp):
                return q, p, -np.inf, g
            if step < n_steps - 1:
                p = p + step_size * g
        p = p + 0.5 * step_size * g
    return q, p, logp, g


def _find_initial_step_unconstrained(
    logdensity_and_grad: LogDensityAndGrad,
    q: np.ndarray,
    logp: float,
    grad: np.ndarray,
    rng: np.random.Generator,
    start: float,
) -> float:
    """Stan's heuristic: scale the step so one leapfrog step accepts ≈ 1/2."""
    step = start
    momentum = rng.normal(size=q.size)
    h0 = -logp + 0.5 * float(momentum @ momentum)

    def accept_prob(step_size: float) -> float:
        qn, pn, lpn, _gn = leapfrog(
            q.copy(), momentum.copy(), grad, step_size, 1, logdensity_and_grad
        )
        if not np.isfinite(lpn):
            return 0.0
        h1 = -lpn + 0.5 * float(pn @ pn)
        return math.exp(min(0.0, h0 - h1))

    a = accept_prob(step)
    direction = 1 if a > 0.5 else -1
    for _ in range(60):
        step_next = step * (2.0 if direction == 1 else 0.5)
        a_next = accept_prob(step_next)
        if (direction == 1 and a_next < 0.5) or (direction == -1 and a_next > 0.5):
            return step_next if direction == -1 else step
        step = step_next
        if step < 1e-14 or step > 1e6:
            break
    return step


def hmc_sample(
    logdensity_and_grad: LogDensityAndGrad,
    initial: np.ndarray,
    config: HMCConfig,
    rng: np.random.Generator,
    checkpoint_key: Optional[str] = None,
) -> HMCResult:
    """Run one HMC chain; warmup iterations adapt the step size and are discarded.

    With checkpointing active (see :mod:`repro.checkpoint`) and a
    ``checkpoint_key``, the chain periodically snapshots its full state —
    position, step size, adapter, collected draws and the rng
    bit-generator — and transparently resumes mid-chain on rerun,
    producing draws identical to an uninterrupted chain.
    """
    position = np.asarray(initial, dtype=float).copy()
    dim = position.size
    cursor = checkpoint.chain_cursor(checkpoint_key, config, position)
    saved = cursor.load() if cursor is not None else None
    if saved is not None and saved["status"] == "done":
        # the whole chain already ran; replay its result and leave the rng
        # exactly where the uninterrupted chain would have left it
        checkpoint.restore_rng(rng, saved["rng"])
        return HMCResult(
            np.asarray(saved["samples"], dtype=float).reshape(config.n_samples, dim),
            saved["accept_rate"],
            saved["step_size"],
            np.asarray(saved["logdensities"], dtype=float),
            divergences=saved["divergences"],
            leapfrog_steps=saved["leapfrog_steps"],
        )

    samples = np.empty((config.n_samples, dim))
    logdensities = np.empty(config.n_samples)
    start_iteration = 0
    if saved is not None:
        position = np.asarray(saved["position"], dtype=float)
        logp = float(saved["logp"])
        grad = np.asarray(saved["grad"], dtype=float)
        step_size = float(saved["step_size"])
        adapter = _DualAveraging(config.initial_step_size, config.target_accept)
        adapter.restore(saved["adapter"])
        collected = int(saved["collected"])
        if collected:
            samples[:collected] = np.asarray(saved["samples"], dtype=float).reshape(
                collected, dim
            )
            logdensities[:collected] = np.asarray(saved["logdensities"], dtype=float)
        accepted = saved["accepted"]
        total_post_warmup = saved["total_post_warmup"]
        divergences = saved["divergences"]
        leapfrog_steps = saved["leapfrog_steps"]
        start_iteration = int(saved["iteration"])
        checkpoint.restore_rng(rng, saved["rng"])
    else:
        logp, grad = logdensity_and_grad(position)
        if not np.isfinite(logp):
            raise InferenceError("HMC initial position has zero density")
        step_size = _find_initial_step_unconstrained(
            logdensity_and_grad, position, logp, grad, rng, config.initial_step_size
        )
        adapter = _DualAveraging(step_size, config.target_accept)
        accepted = 0
        total_post_warmup = 0
        divergences = 0
        leapfrog_steps = 0

    n_total = config.n_warmup + config.n_samples
    for iteration in range(start_iteration, n_total):
        if cursor is not None and cursor.due(iteration):
            collected = max(0, iteration - config.n_warmup)
            cursor.save(
                {
                    "status": "running",
                    "iteration": iteration,
                    "position": position.tolist(),
                    "logp": logp,
                    "grad": grad.tolist(),
                    "step_size": step_size,
                    "adapter": adapter.state(),
                    "collected": collected,
                    "samples": samples[:collected].tolist(),
                    "logdensities": logdensities[:collected].tolist(),
                    "accepted": accepted,
                    "total_post_warmup": total_post_warmup,
                    "divergences": divergences,
                    "leapfrog_steps": leapfrog_steps,
                    "rng": checkpoint.rng_state(rng),
                }
            )
        momentum = rng.normal(size=dim)
        current_h = -logp + 0.5 * float(momentum @ momentum)
        n_steps = config.n_leapfrog
        if config.jitter_steps:
            n_steps = max(1, int(round(config.n_leapfrog * rng.uniform(0.6, 1.4))))
        leapfrog_steps += n_steps
        q, p, new_logp, new_grad = leapfrog(
            position, momentum, grad, step_size, n_steps, logdensity_and_grad
        )
        if np.isfinite(new_logp):
            proposal_h = -new_logp + 0.5 * float(p @ p)
            log_accept = current_h - proposal_h
            accept_prob = min(1.0, math.exp(min(0.0, log_accept)))
        else:
            accept_prob = 0.0
        if rng.uniform() < accept_prob:
            position, logp, grad = q, new_logp, new_grad
        if iteration < config.n_warmup:
            step_size = min(adapter.update(accept_prob), config.max_step_size)
            if iteration == config.n_warmup - 1:
                step_size = min(adapter.final(), config.max_step_size)
        else:
            idx = iteration - config.n_warmup
            samples[idx] = position
            logdensities[idx] = logp
            total_post_warmup += 1
            accepted += accept_prob
            if accept_prob == 0.0:
                divergences += 1
    accept_rate = accepted / max(1, total_post_warmup)
    if cursor is not None:
        cursor.save(
            {
                "status": "done",
                "iteration": n_total,
                "samples": samples.tolist(),
                "logdensities": logdensities.tolist(),
                "accept_rate": accept_rate,
                "step_size": step_size,
                "divergences": divergences,
                "leapfrog_steps": leapfrog_steps,
                "rng": checkpoint.rng_state(rng),
            }
        )
    return HMCResult(
        samples,
        accept_rate,
        step_size,
        logdensities,
        divergences=divergences,
        leapfrog_steps=leapfrog_steps,
    )


def sample_with_healing(sample_fn, config, rng):
    """Run one chain with bounded self-healing restarts.

    ``sample_fn(cfg, rng)`` runs the chain and returns a result with
    ``divergences`` / ``retries`` attributes (HMCResult, NUTSResult or
    ReflectiveHMCResult).  When the chain raises :class:`InferenceError`
    or more than ``config.divergence_tolerance × config.n_samples`` of
    its draws diverged, it is restarted with a halved initial step, at
    most ``config.max_restarts`` times.  The happy path calls
    ``sample_fn`` exactly once with the unmodified config, so fault-free
    runs consume the rng stream identically to the pre-healing code.

    Raises :class:`SamplerDivergenceError` when every restart still
    produced a fully divergent (or crashing) chain.
    """
    step = config.initial_step_size
    retries = 0
    best = None
    last_error: Optional[InferenceError] = None
    while True:
        cfg = (
            dataclasses.replace(config, initial_step_size=step, restart_index=retries)
            if retries
            else config
        )
        result = None
        try:
            result = sample_fn(cfg, rng)
        except SamplerDivergenceError:
            raise
        except InferenceError as exc:
            last_error = exc
        if result is not None:
            if result.divergences <= config.divergence_tolerance * config.n_samples:
                result.retries = retries
                return result
            if best is None or result.divergences < best.divergences:
                best = result
        if retries >= config.max_restarts:
            break
        retries += 1
        step *= 0.5
    if best is not None and best.divergences < config.n_samples:
        # degraded but usable: some draws are real; surface the retry count
        best.retries = retries
        return best
    raise SamplerDivergenceError(
        f"chain fully divergent after {retries} restart(s)"
        + (f": {last_error}" if last_error is not None else "")
    )


def count_gradient_evals(logdensity_and_grad: LogDensityAndGrad):
    """Observation-only wrapper counting calls; rng streams are untouched.

    Returns ``(wrapped, counts)`` where ``counts[0]`` is the running call
    count.  Applied only when telemetry is enabled, so the disabled path
    pays nothing (not even an extra frame per gradient evaluation).
    """
    counts = [0]

    def wrapped(q: np.ndarray) -> Tuple[float, np.ndarray]:
        counts[0] += 1
        return logdensity_and_grad(q)

    return wrapped, counts


def hmc_sample_chains(
    logdensity_and_grad: LogDensityAndGrad,
    initial_points,
    config: HMCConfig,
    rng: np.random.Generator,
    fault_key: str = "hmc",
) -> HMCResult:
    """Run several self-healing chains from different starts; concatenates draws."""
    logdensity_and_grad = faultinject.wrap_logdensity(logdensity_and_grad, fault_key)
    grad_evals = None
    if telemetry.enabled():
        logdensity_and_grad, grad_evals = count_gradient_evals(logdensity_and_grad)
    with telemetry.span(
        "sampler.hmc", n_samples=config.n_samples, n_warmup=config.n_warmup
    ) as tspan:
        chains = []
        rates = []
        logps = []
        diagnostics: List[Dict[str, float]] = []
        divergences = 0
        retries = 0
        leapfrog_steps = 0
        for chain_index, initial in enumerate(initial_points):
            start = np.asarray(initial, float)
            ckpt_key = f"hmc/{fault_key}/chain{chain_index}"
            result = sample_with_healing(
                lambda cfg, r, _start=start, _key=ckpt_key: hmc_sample(
                    logdensity_and_grad, _start, cfg, r, checkpoint_key=_key
                ),
                config,
                rng,
            )
            chains.append(result.samples)
            logps.append(result.logdensities)
            rates.append(result.accept_rate)
            divergences += result.divergences
            retries += result.retries
            leapfrog_steps += result.leapfrog_steps
            diagnostics.append(
                {
                    "chain": float(chain_index),
                    "divergences": float(result.divergences),
                    "retries": float(result.retries),
                    "step_size": float(result.step_size),
                    "accept_rate": float(result.accept_rate),
                }
            )
        accept_rate = float(np.mean(rates))
        tspan.set(chains=len(chains), divergences=divergences, retries=retries)
        _sampler_counters(
            "hmc", accept_rate, divergences, retries, leapfrog_steps, grad_evals
        )
        return HMCResult(
            np.concatenate(chains, axis=0),
            accept_rate,
            0.0,
            np.concatenate(logps),
            divergences=divergences,
            retries=retries,
            leapfrog_steps=leapfrog_steps,
            chain_diagnostics=diagnostics,
        )


def _sampler_counters(
    kind: str,
    accept_rate: float,
    divergences: int,
    retries: int,
    leapfrog_steps: int,
    grad_evals,
) -> None:
    """Shared per-run sampler metrics (used by HMC, NUTS and reflective HMC)."""
    telemetry.gauge("sampler.accept_rate", round(accept_rate, 4), sampler=kind)
    if leapfrog_steps:
        telemetry.counter("sampler.leapfrog_steps", leapfrog_steps, sampler=kind)
    if grad_evals is not None and grad_evals[0]:
        telemetry.counter("sampler.gradient_evals", grad_evals[0], sampler=kind)
    if divergences:
        telemetry.counter("sampler.divergences", divergences, sampler=kind)
    if retries:
        telemetry.counter("sampler.healing_restarts", retries, sampler=kind)
