"""Simple type inference for the first-order language.

Unification-based inference (monomorphic, first-order).  Works on both
surface and normalized ASTs; annotates every expression node with its
resolved type and every function with its :class:`~repro.lang.ast.FunType`.
Residual unification variables (types unconstrained by usage) default to
``int``, which is always sound for the resource analysis because ``int``
carries no potential.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from . import ast as A
from .builtins import BUILTINS
from ..errors import TypeMismatchError


class _Unifier:
    def __init__(self) -> None:
        self.bindings: Dict[str, A.Type] = {}
        self.counter = itertools.count()

    def fresh(self) -> A.TVar:
        return A.TVar(f"t{next(self.counter)}")

    def resolve(self, ty: A.Type) -> A.Type:
        """Follow bindings one level."""
        while isinstance(ty, A.TVar) and ty.name in self.bindings:
            ty = self.bindings[ty.name]
        return ty

    def zonk(self, ty: A.Type, default_int: bool = True) -> A.Type:
        """Fully resolve a type; unresolved variables become int."""
        ty = self.resolve(ty)
        if isinstance(ty, A.TVar):
            return A.INT if default_int else ty
        if isinstance(ty, A.TList):
            return A.TList(self.zonk(ty.elem, default_int))
        if isinstance(ty, A.TProd):
            return A.TProd(tuple(self.zonk(t, default_int) for t in ty.items))
        if isinstance(ty, A.TSum):
            return A.TSum(self.zonk(ty.left, default_int), self.zonk(ty.right, default_int))
        return ty

    def occurs(self, name: str, ty: A.Type) -> bool:
        ty = self.resolve(ty)
        if isinstance(ty, A.TVar):
            return ty.name == name
        if isinstance(ty, A.TList):
            return self.occurs(name, ty.elem)
        if isinstance(ty, A.TProd):
            return any(self.occurs(name, t) for t in ty.items)
        if isinstance(ty, A.TSum):
            return self.occurs(name, ty.left) or self.occurs(name, ty.right)
        return False

    def unify(self, t1: A.Type, t2: A.Type, pos: Optional[A.Pos] = None) -> None:
        t1 = self.resolve(t1)
        t2 = self.resolve(t2)
        if t1 == t2:
            return
        if isinstance(t1, A.TVar):
            if self.occurs(t1.name, t2):
                raise TypeMismatchError(
                    f"occurs check failed: {t1} in {t2}",
                    pos.line if pos else None,
                    pos.col if pos else None,
                )
            self.bindings[t1.name] = t2
            return
        if isinstance(t2, A.TVar):
            self.unify(t2, t1, pos)
            return
        if isinstance(t1, A.TList) and isinstance(t2, A.TList):
            self.unify(t1.elem, t2.elem, pos)
            return
        if isinstance(t1, A.TProd) and isinstance(t2, A.TProd) and len(t1.items) == len(t2.items):
            for a, b in zip(t1.items, t2.items):
                self.unify(a, b, pos)
            return
        if isinstance(t1, A.TSum) and isinstance(t2, A.TSum):
            self.unify(t1.left, t2.left, pos)
            self.unify(t1.right, t2.right, pos)
            return
        raise TypeMismatchError(
            f"cannot unify {t1} with {t2}",
            pos.line if pos else None,
            pos.col if pos else None,
        )


class TypeChecker:
    """Infers simple types for a whole program."""

    def __init__(self, program: A.Program):
        self.program = program
        self.uni = _Unifier()
        self.fun_types: Dict[str, A.FunType] = {}

    def run(self) -> A.Program:
        # Pre-declare every function with fresh type variables so that
        # (mutually) recursive references unify consistently.
        for fdef in self.program:
            params = tuple(self.uni.fresh() for _ in fdef.params)
            self.fun_types[fdef.name] = A.FunType(params, self.uni.fresh())
        for fdef in self.program:
            env = dict(zip(fdef.params, self.fun_types[fdef.name].params))
            result = self.infer(fdef.body, env)
            self.uni.unify(result, self.fun_types[fdef.name].result, fdef.pos)
        # zonk all annotations
        for fdef in self.program:
            sig = self.fun_types[fdef.name]
            fdef.fun_type = A.FunType(
                tuple(self.uni.zonk(t) for t in sig.params), self.uni.zonk(sig.result)
            )
            for node in fdef.body.walk():
                if node.type is not None:
                    node.type = self.uni.zonk(node.type)
        return self.program

    # -- expression inference -----------------------------------------------

    def infer(self, expr: A.Expr, env: Dict[str, A.Type]) -> A.Type:
        ty = self._infer(expr, env)
        expr.type = ty
        return ty

    def _infer(self, expr: A.Expr, env: Dict[str, A.Type]) -> A.Type:
        uni = self.uni
        if isinstance(expr, A.Var):
            if expr.name not in env:
                raise TypeMismatchError(
                    f"unbound variable {expr.name!r}",
                    expr.pos.line if expr.pos else None,
                    expr.pos.col if expr.pos else None,
                )
            return env[expr.name]
        if isinstance(expr, A.UnitLit):
            return A.UNIT
        if isinstance(expr, A.IntLit):
            return A.INT
        if isinstance(expr, A.BoolLit):
            return A.BOOL
        if isinstance(expr, A.Tick):
            return A.UNIT
        if isinstance(expr, A.ErrorExpr):
            return uni.fresh()
        if isinstance(expr, A.BinOp):
            lt = self.infer(expr.left, env)
            rt = self.infer(expr.right, env)
            if expr.op in A.ARITH_OPS:
                uni.unify(lt, A.INT, expr.pos)
                uni.unify(rt, A.INT, expr.pos)
                return A.INT
            if expr.op in A.CMP_OPS:
                uni.unify(lt, rt, expr.pos)
                return A.BOOL
            if expr.op in A.BOOL_OPS:
                uni.unify(lt, A.BOOL, expr.pos)
                uni.unify(rt, A.BOOL, expr.pos)
                return A.BOOL
            raise TypeMismatchError(f"unknown operator {expr.op!r}")
        if isinstance(expr, A.Neg):
            ot = self.infer(expr.operand, env)
            if expr.op == "-":
                uni.unify(ot, A.INT, expr.pos)
                return A.INT
            uni.unify(ot, A.BOOL, expr.pos)
            return A.BOOL
        if isinstance(expr, A.Inl):
            inner = self.infer(expr.operand, env)
            return A.TSum(inner, uni.fresh())
        if isinstance(expr, A.Inr):
            inner = self.infer(expr.operand, env)
            return A.TSum(uni.fresh(), inner)
        if isinstance(expr, A.TupleExpr):
            return A.TProd(tuple(self.infer(e, env) for e in expr.items))
        if isinstance(expr, A.Nil):
            return A.TList(uni.fresh())
        if isinstance(expr, A.Cons):
            head = self.infer(expr.head, env)
            tail = self.infer(expr.tail, env)
            uni.unify(tail, A.TList(head), expr.pos)
            return tail
        if isinstance(expr, A.MatchList):
            scrut = self.infer(expr.scrutinee, env)
            elem = uni.fresh()
            uni.unify(scrut, A.TList(elem), expr.pos)
            nil_ty = self.infer(expr.nil_branch, env)
            cons_env = dict(env)
            cons_env[expr.head_var] = elem
            cons_env[expr.tail_var] = A.TList(elem)
            cons_ty = self.infer(expr.cons_branch, cons_env)
            uni.unify(nil_ty, cons_ty, expr.pos)
            return nil_ty
        if isinstance(expr, A.MatchSum):
            scrut = self.infer(expr.scrutinee, env)
            lt, rt = uni.fresh(), uni.fresh()
            uni.unify(scrut, A.TSum(lt, rt), expr.pos)
            left_env = dict(env)
            left_env[expr.left_var] = lt
            left_ty = self.infer(expr.left_branch, left_env)
            right_env = dict(env)
            right_env[expr.right_var] = rt
            right_ty = self.infer(expr.right_branch, right_env)
            uni.unify(left_ty, right_ty, expr.pos)
            return left_ty
        if isinstance(expr, A.MatchTuple):
            scrut = self.infer(expr.scrutinee, env)
            comps = tuple(uni.fresh() for _ in expr.names)
            uni.unify(scrut, A.TProd(comps), expr.pos)
            body_env = dict(env)
            body_env.update(zip(expr.names, comps))
            return self.infer(expr.body, body_env)
        if isinstance(expr, A.If):
            cond = self.infer(expr.cond, env)
            uni.unify(cond, A.BOOL, expr.pos)
            then_ty = self.infer(expr.then_branch, env)
            else_ty = self.infer(expr.else_branch, env)
            uni.unify(then_ty, else_ty, expr.pos)
            return then_ty
        if isinstance(expr, A.App):
            sig = self._signature_of(expr)
            if len(sig.params) != len(expr.args):
                raise TypeMismatchError(
                    f"{expr.fname} expects {len(sig.params)} arguments, got {len(expr.args)}",
                    expr.pos.line if expr.pos else None,
                    expr.pos.col if expr.pos else None,
                )
            for arg, param_ty in zip(expr.args, sig.params):
                arg_ty = self.infer(arg, env)
                uni.unify(arg_ty, param_ty, expr.pos)
            return sig.result
        if isinstance(expr, A.Let):
            bound = self.infer(expr.bound, env)
            body_env = dict(env)
            body_env[expr.name] = bound
            return self.infer(expr.body, body_env)
        if isinstance(expr, A.Share):
            if expr.name not in env:
                raise TypeMismatchError(f"unbound variable {expr.name!r} in share")
            ty = env[expr.name]
            body_env = dict(env)
            body_env[expr.name1] = ty
            body_env[expr.name2] = ty
            return self.infer(expr.body, body_env)
        if isinstance(expr, A.Stat):
            return self.infer(expr.body, env)
        raise TypeMismatchError(f"cannot type node {type(expr).__name__}")

    def _signature_of(self, expr: A.App) -> A.FunType:
        if expr.fname in self.fun_types:
            return self.fun_types[expr.fname]
        if expr.fname in BUILTINS:
            return BUILTINS[expr.fname].fun_type
        raise TypeMismatchError(
            f"unknown function {expr.fname!r}",
            expr.pos.line if expr.pos else None,
            expr.pos.col if expr.pos else None,
        )


def typecheck_program(program: A.Program) -> A.Program:
    """Infer and annotate simple types; raises TypeMismatchError on error."""
    return TypeChecker(program).run()
