"""Runtime values of the AARA language and helpers to convert Python data.

Values mirror the grammar in Section 3.2 of the paper:

``v ::= <> | n | true | false | left v | right v | (v1,...,vk) | [] | v::v``

Lists are represented as Python tuples for O(1) hashing and cheap structural
sharing; this keeps datasets compact and lets values serve as dict keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from . import ast as A
from ..errors import EvalError


@dataclass(frozen=True)
class VUnit:
    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class VInl:
    value: "Value"

    def __str__(self) -> str:
        return f"Left {self.value}"


@dataclass(frozen=True)
class VInr:
    value: "Value"

    def __str__(self) -> str:
        return f"Right {self.value}"


@dataclass(frozen=True)
class VTuple:
    items: Tuple["Value", ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(v) for v in self.items) + ")"


@dataclass(frozen=True)
class VList:
    items: Tuple["Value", ...]

    def __str__(self) -> str:
        return "[" + "; ".join(str(v) for v in self.items) + "]"

    def __len__(self) -> int:
        return len(self.items)


Value = Union[int, bool, VUnit, VInl, VInr, VTuple, VList]

UNIT_VALUE = VUnit()


def from_python(obj) -> Value:
    """Convert nested Python data (ints, bools, lists, tuples) to a Value."""
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, int):
        return obj
    if obj is None:
        return UNIT_VALUE
    if isinstance(obj, VUnit) or isinstance(obj, (VInl, VInr, VTuple, VList)):
        return obj
    if isinstance(obj, list):
        return VList(tuple(from_python(x) for x in obj))
    if isinstance(obj, tuple):
        return VTuple(tuple(from_python(x) for x in obj))
    raise EvalError(f"cannot convert {obj!r} to a language value")


def to_python(value: Value):
    """Inverse of :func:`from_python` (sums map to tagged pairs)."""
    if isinstance(value, bool) or isinstance(value, int):
        return value
    if isinstance(value, VUnit):
        return None
    if isinstance(value, VList):
        return [to_python(v) for v in value.items]
    if isinstance(value, VTuple):
        return tuple(to_python(v) for v in value.items)
    if isinstance(value, VInl):
        return ("left", to_python(value.value))
    if isinstance(value, VInr):
        return ("right", to_python(value.value))
    raise EvalError(f"unknown value {value!r}")


def type_of_value(value: Value) -> A.Type:
    """Best-effort simple type of a closed value (lists need a witness)."""
    if isinstance(value, bool):
        return A.BOOL
    if isinstance(value, int):
        return A.INT
    if isinstance(value, VUnit):
        return A.UNIT
    if isinstance(value, VTuple):
        return A.TProd(tuple(type_of_value(v) for v in value.items))
    if isinstance(value, VList):
        if value.items:
            return A.TList(type_of_value(value.items[0]))
        return A.TList(A.INT)
    if isinstance(value, VInl):
        return A.TSum(type_of_value(value.value), A.INT)
    if isinstance(value, VInr):
        return A.TSum(A.INT, type_of_value(value.value))
    raise EvalError(f"unknown value {value!r}")


def sizes_of(value: Value) -> tuple:
    """Flattened size statistics used by size projections φ (Section 5.4).

    Returns a tuple whose entries depend on the type shape:

    * ints/bools/unit contribute nothing;
    * a list contributes its length followed by the statistics of the
      *concatenation* of its elements (so a nested list contributes
      ``(outer length, total inner length, ...)``);
    * tuples contribute the concatenation of their components' statistics.
    """
    if isinstance(value, (bool, int, VUnit)):
        return ()
    if isinstance(value, VTuple):
        out: tuple = ()
        for item in value.items:
            out += sizes_of(item)
        return out
    if isinstance(value, VList):
        out = (len(value.items),)
        # aggregate statistics of elements (sum over positions)
        agg = None
        for item in value.items:
            stats = sizes_of(item)
            if stats:
                agg = stats if agg is None else tuple(a + b for a, b in zip(agg, stats))
        if agg is not None:
            out += agg
        elif value.items and isinstance(value.items[0], (VList, VTuple)):
            out += (0,)
        return out
    if isinstance(value, (VInl, VInr)):
        return sizes_of(value.value)
    raise EvalError(f"unknown value {value!r}")
