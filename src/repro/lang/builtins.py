"""Builtin operations of the language.

The registry distinguishes *analyzable* builtins (conventional AARA knows a
resource-annotated signature for them) from *opaque* ones.  Opaque builtins
model the paper's statically-intractable code fragments — e.g. OCaml's
polymorphic structural comparator or the ``compare_dist`` closure over a
reference cell (Section 2).  The interpreter executes them normally, but
conventional AARA aborts with :class:`~repro.errors.UnanalyzableError` when
one occurs outside a ``stat`` region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from . import ast as A
from ..errors import EvalError


@dataclass(frozen=True)
class BuiltinSpec:
    name: str
    params: Tuple[A.Type, ...]
    result: A.Type
    impl: Callable
    #: False for builtins that conventional AARA must refuse to analyze.
    analyzable: bool = True
    doc: str = ""

    @property
    def arity(self) -> int:
        return len(self.params)

    @property
    def fun_type(self) -> A.FunType:
        return A.FunType(self.params, self.result)


def _complex_leq(a: int, b: int) -> bool:
    if not isinstance(a, int) or not isinstance(b, int):
        raise EvalError("complex_leq expects integers")
    return a <= b


def _complex_lt(a: int, b: int) -> bool:
    if not isinstance(a, int) or not isinstance(b, int):
        raise EvalError("complex_lt expects integers")
    return a < b


def _complex_eq(a: int, b: int) -> bool:
    if not isinstance(a, int) or not isinstance(b, int):
        raise EvalError("complex_eq expects integers")
    return a == b


BUILTINS = {
    spec.name: spec
    for spec in [
        BuiltinSpec(
            "complex_leq",
            (A.INT, A.INT),
            A.BOOL,
            _complex_leq,
            analyzable=False,
            doc=(
                "A `<=` comparison whose implementation is opaque to static "
                "analysis (models OCaml's polymorphic comparator / "
                "compare_dist from Section 2 of the paper)."
            ),
        ),
        BuiltinSpec(
            "complex_lt",
            (A.INT, A.INT),
            A.BOOL,
            _complex_lt,
            analyzable=False,
            doc="A `<` comparison opaque to static analysis.",
        ),
        BuiltinSpec(
            "complex_eq",
            (A.INT, A.INT),
            A.BOOL,
            _complex_eq,
            analyzable=False,
            doc="An `=` comparison opaque to static analysis.",
        ),
    ]
}


def is_builtin(name: str) -> bool:
    return name in BUILTINS


def get_builtin(name: str) -> BuiltinSpec:
    return BUILTINS[name]
