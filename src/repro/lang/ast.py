"""Abstract syntax for the first-order AARA language (paper Listing 2).

The same node classes represent both the surface program produced by the
parser and the *share-let normal form* consumed by the resource analysis
(:mod:`repro.lang.normalize` performs the translation).  In normal form

* every variable is used at most once (explicit ``share`` duplicates),
* constructors and destructors are applied to variables only, and
* function arguments are variables.

Positions are carried for error messages but excluded from structural
equality so that tests can compare trees directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

# ---------------------------------------------------------------------------
# Types (simple types; resource-annotated types live in repro.aara.annot)
# ---------------------------------------------------------------------------


class Type:
    """Base class of simple (unannotated) datatypes."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


@dataclass(frozen=True)
class TUnit(Type):
    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class TInt(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class TBool(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class TSum(Type):
    left: Type
    right: Type

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class TProd(Type):
    items: Tuple[Type, ...]

    def __str__(self) -> str:
        return "(" + " * ".join(str(t) for t in self.items) + ")"


@dataclass(frozen=True)
class TList(Type):
    elem: Type

    def __str__(self) -> str:
        return f"{self.elem} list"


@dataclass(frozen=True)
class TVar(Type):
    """Unification variable used only during simple type inference."""

    name: str

    def __str__(self) -> str:
        return f"'{self.name}"


@dataclass(frozen=True)
class FunType:
    """First-order function type ``(t1, ..., tn) -> r``."""

    params: Tuple[Type, ...]
    result: Type

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.params)
        return f"({args}) -> {self.result}"


UNIT = TUnit()
INT = TInt()
BOOL = TBool()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Pos:
    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


def _pos_field():
    return field(default=None, compare=False, repr=False)


class Expr:
    """Base class of expressions.

    Subclasses are dataclasses; ``pos`` never participates in equality.
    After simple type checking, every node carries its inferred ``type``
    (also excluded from equality so normalization tests stay readable).
    """

    pos: Optional[Pos]
    type: Optional[Type]

    def children(self) -> Iterator["Expr"]:
        """Iterate over direct sub-expressions (used by generic walks)."""
        for fname in getattr(self, "__dataclass_fields__", {}):
            value = getattr(self, fname)
            if isinstance(value, Expr):
                yield value
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Expr):
                        yield item

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the whole subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class Var(Expr):
    name: str
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class UnitLit(Expr):
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class IntLit(Expr):
    value: int
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class BoolLit(Expr):
    value: bool
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


#: Integer-valued binary operators (cost-free, potential-free).
ARITH_OPS = ("+", "-", "*", "/", "mod")
#: Boolean-valued comparison operators on integers.
CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")
#: Boolean connectives.
BOOL_OPS = ("&&", "||")


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class Neg(Expr):
    """Unary integer negation / boolean not (op in {'-', 'not'})."""

    op: str
    operand: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class Inl(Expr):
    operand: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class Inr(Expr):
    operand: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class TupleExpr(Expr):
    items: Tuple[Expr, ...]
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class Nil(Expr):
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class Cons(Expr):
    head: Expr
    tail: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class MatchList(Expr):
    scrutinee: Expr
    nil_branch: Expr
    head_var: str
    tail_var: str
    cons_branch: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class MatchSum(Expr):
    scrutinee: Expr
    left_var: str
    left_branch: Expr
    right_var: str
    right_branch: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class MatchTuple(Expr):
    scrutinee: Expr
    names: Tuple[str, ...]
    body: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class If(Expr):
    cond: Expr
    then_branch: Expr
    else_branch: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class App(Expr):
    """Fully applied call of a top-level function or builtin."""

    fname: str
    args: Tuple[Expr, ...]
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class Let(Expr):
    name: str
    bound: Expr
    body: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class Share(Expr):
    """``share x as x1, x2 in e`` — explicit duplication of an affine var."""

    name: str
    name1: str
    name2: str
    body: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class Tick(Expr):
    amount: float
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class Stat(Expr):
    """``stat(e)`` — analyze ``e`` with data-driven analysis.

    Labels uniquely identify stat sites; the parser assigns fresh labels in
    source order when the program does not name them explicitly.
    """

    label: str
    body: Expr
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


@dataclass
class ErrorExpr(Expr):
    """``error "msg"`` — abort evaluation (models OCaml ``raise``)."""

    message: str
    pos: Optional[Pos] = _pos_field()
    type: Optional[Type] = _pos_field()


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass
class FunDef:
    name: str
    params: Tuple[str, ...]
    body: Expr
    recursive: bool = False
    #: filled by the type checker
    fun_type: Optional[FunType] = field(default=None, compare=False)
    pos: Optional[Pos] = _pos_field()
    #: position of the name token / of each parameter token (parser-filled;
    #: excluded from equality like ``pos``)
    name_pos: Optional[Pos] = _pos_field()
    param_pos: Optional[Tuple[Pos, ...]] = _pos_field()


@dataclass
class Program:
    """A program: ordered top-level function definitions.

    Functions may only reference functions defined earlier, except that a
    ``let rec`` group may reference itself (mutual recursion is expressed
    with ``and``).
    """

    functions: dict  # name -> FunDef, insertion-ordered

    def __init__(self, functions):
        if isinstance(functions, dict):
            self.functions = dict(functions)
        else:
            self.functions = {f.name: f for f in functions}

    def __getitem__(self, name: str) -> FunDef:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self):
        return iter(self.functions.values())

    def function_names(self):
        return list(self.functions.keys())

    def stat_labels(self) -> list:
        """All stat labels in source order."""
        labels = []
        for fdef in self:
            for node in fdef.body.walk():
                if isinstance(node, Stat):
                    labels.append(node.label)
        return labels

    def has_stat(self) -> bool:
        return bool(self.stat_labels())


def free_vars(expr: Expr) -> set:
    """Free variables of an expression."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Let):
        return free_vars(expr.bound) | (free_vars(expr.body) - {expr.name})
    if isinstance(expr, Share):
        inner = free_vars(expr.body) - {expr.name1, expr.name2}
        return inner | {expr.name}
    if isinstance(expr, MatchList):
        cons = free_vars(expr.cons_branch) - {expr.head_var, expr.tail_var}
        return free_vars(expr.scrutinee) | free_vars(expr.nil_branch) | cons
    if isinstance(expr, MatchSum):
        left = free_vars(expr.left_branch) - {expr.left_var}
        right = free_vars(expr.right_branch) - {expr.right_var}
        return free_vars(expr.scrutinee) | left | right
    if isinstance(expr, MatchTuple):
        body = free_vars(expr.body) - set(expr.names)
        return free_vars(expr.scrutinee) | body
    result: set = set()
    for child in expr.children():
        result |= free_vars(child)
    return result
