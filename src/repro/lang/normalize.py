"""Share-let normalization (Section 3.1 of the paper).

The resource type system operates on programs in *share-let normal form*:

1. every binder is unique (alpha-renaming),
2. constructors, destructors, conditionals, operators and function
   arguments are applied to **variables** (A-normal form), and
3. every variable is used **at most once**; duplicated uses go through
   explicit ``share x as x1, x2 in e`` nodes so that the potential stored
   in ``x`` is split, never double-counted.

Branches of ``if``/``match`` are alternatives, so a variable free in
several branches counts as a single use; uses in *sequential* positions
(e.g. the bound expression and the body of a ``let``) require ``share``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from . import ast as A
from .builtins import is_builtin
from ..errors import ReproError


class _Fresh:
    def __init__(self) -> None:
        self.counter = 0

    def var(self, hint: str = "v") -> str:
        self.counter += 1
        base = hint.split("%")[0].split("$")[-1] or "v"
        return f"${base}%{self.counter}"


# ---------------------------------------------------------------------------
# Pass 1: alpha-rename all binders to unique names
# ---------------------------------------------------------------------------


def _uniquify(expr: A.Expr, env: Dict[str, str], fresh: _Fresh) -> A.Expr:
    if isinstance(expr, A.Var):
        name = env.get(expr.name, expr.name)
        return A.Var(name, pos=expr.pos)
    if isinstance(expr, A.Let):
        bound = _uniquify(expr.bound, env, fresh)
        new = fresh.var(expr.name)
        body = _uniquify(expr.body, {**env, expr.name: new}, fresh)
        return A.Let(new, bound, body, pos=expr.pos)
    if isinstance(expr, A.Share):
        n1 = fresh.var(expr.name1)
        n2 = fresh.var(expr.name2)
        body = _uniquify(expr.body, {**env, expr.name1: n1, expr.name2: n2}, fresh)
        return A.Share(env.get(expr.name, expr.name), n1, n2, body, pos=expr.pos)
    if isinstance(expr, A.MatchList):
        scrut = _uniquify(expr.scrutinee, env, fresh)
        nil_branch = _uniquify(expr.nil_branch, env, fresh)
        h = fresh.var(expr.head_var)
        t = fresh.var(expr.tail_var)
        cons_env = {**env, expr.head_var: h, expr.tail_var: t}
        cons_branch = _uniquify(expr.cons_branch, cons_env, fresh)
        return A.MatchList(scrut, nil_branch, h, t, cons_branch, pos=expr.pos)
    if isinstance(expr, A.MatchSum):
        scrut = _uniquify(expr.scrutinee, env, fresh)
        lv = fresh.var(expr.left_var)
        rv = fresh.var(expr.right_var)
        left = _uniquify(expr.left_branch, {**env, expr.left_var: lv}, fresh)
        right = _uniquify(expr.right_branch, {**env, expr.right_var: rv}, fresh)
        return A.MatchSum(scrut, lv, left, rv, right, pos=expr.pos)
    if isinstance(expr, A.MatchTuple):
        scrut = _uniquify(expr.scrutinee, env, fresh)
        names = tuple(fresh.var(n) for n in expr.names)
        body_env = dict(env)
        body_env.update({old: new for old, new in zip(expr.names, names)})
        body = _uniquify(expr.body, body_env, fresh)
        return A.MatchTuple(scrut, names, body, pos=expr.pos)
    # structural cases
    return _map_children(expr, lambda child: _uniquify(child, env, fresh))


def _map_children(expr: A.Expr, f) -> A.Expr:
    if isinstance(expr, A.BinOp):
        return A.BinOp(expr.op, f(expr.left), f(expr.right), pos=expr.pos)
    if isinstance(expr, A.Neg):
        return A.Neg(expr.op, f(expr.operand), pos=expr.pos)
    if isinstance(expr, A.Inl):
        return A.Inl(f(expr.operand), pos=expr.pos)
    if isinstance(expr, A.Inr):
        return A.Inr(f(expr.operand), pos=expr.pos)
    if isinstance(expr, A.TupleExpr):
        return A.TupleExpr(tuple(f(e) for e in expr.items), pos=expr.pos)
    if isinstance(expr, A.Cons):
        return A.Cons(f(expr.head), f(expr.tail), pos=expr.pos)
    if isinstance(expr, A.If):
        return A.If(f(expr.cond), f(expr.then_branch), f(expr.else_branch), pos=expr.pos)
    if isinstance(expr, A.App):
        return A.App(expr.fname, tuple(f(e) for e in expr.args), pos=expr.pos)
    if isinstance(expr, A.Stat):
        return A.Stat(expr.label, f(expr.body), pos=expr.pos)
    if isinstance(expr, (A.Nil, A.UnitLit, A.IntLit, A.BoolLit, A.Tick, A.ErrorExpr)):
        return expr
    raise ReproError(f"unexpected node {type(expr).__name__} in normalization")


# ---------------------------------------------------------------------------
# Pass 2: A-normal form
# ---------------------------------------------------------------------------


def _anf(expr: A.Expr, fresh: _Fresh) -> A.Expr:
    """A-normalize: operands of constructors/destructors/calls become vars."""

    def atomize(sub: A.Expr, binders: List[Tuple[str, A.Expr]], hint: str) -> A.Expr:
        sub = _anf(sub, fresh)
        if isinstance(sub, A.Var):
            return sub
        name = fresh.var(hint)
        binders.append((name, sub))
        return A.Var(name, pos=sub.pos)

    def wrap(binders: List[Tuple[str, A.Expr]], body: A.Expr) -> A.Expr:
        for name, bound in reversed(binders):
            body = A.Let(name, bound, body, pos=body.pos)
        return body

    if isinstance(expr, (A.Var, A.UnitLit, A.IntLit, A.BoolLit, A.Nil, A.Tick, A.ErrorExpr)):
        return expr
    if isinstance(expr, A.Let):
        return A.Let(expr.name, _anf(expr.bound, fresh), _anf(expr.body, fresh), pos=expr.pos)
    if isinstance(expr, A.Share):
        return A.Share(expr.name, expr.name1, expr.name2, _anf(expr.body, fresh), pos=expr.pos)
    if isinstance(expr, A.Cons):
        binders: List[Tuple[str, A.Expr]] = []
        head = atomize(expr.head, binders, "hd")
        tail = atomize(expr.tail, binders, "tl")
        return wrap(binders, A.Cons(head, tail, pos=expr.pos))
    if isinstance(expr, A.TupleExpr):
        binders = []
        items = tuple(atomize(e, binders, "x") for e in expr.items)
        return wrap(binders, A.TupleExpr(items, pos=expr.pos))
    if isinstance(expr, (A.Inl, A.Inr)):
        binders = []
        operand = atomize(expr.operand, binders, "x")
        cls = A.Inl if isinstance(expr, A.Inl) else A.Inr
        return wrap(binders, cls(operand, pos=expr.pos))
    if isinstance(expr, A.App):
        binders = []
        args = tuple(atomize(e, binders, "a") for e in expr.args)
        return wrap(binders, A.App(expr.fname, args, pos=expr.pos))
    if isinstance(expr, A.BinOp):
        binders = []
        left = atomize(expr.left, binders, "o")
        right = atomize(expr.right, binders, "o")
        return wrap(binders, A.BinOp(expr.op, left, right, pos=expr.pos))
    if isinstance(expr, A.Neg):
        binders = []
        operand = atomize(expr.operand, binders, "o")
        return wrap(binders, A.Neg(expr.op, operand, pos=expr.pos))
    if isinstance(expr, A.If):
        binders = []
        cond = atomize(expr.cond, binders, "c")
        return wrap(
            binders,
            A.If(cond, _anf(expr.then_branch, fresh), _anf(expr.else_branch, fresh), pos=expr.pos),
        )
    if isinstance(expr, A.MatchList):
        binders = []
        scrut = atomize(expr.scrutinee, binders, "s")
        return wrap(
            binders,
            A.MatchList(
                scrut,
                _anf(expr.nil_branch, fresh),
                expr.head_var,
                expr.tail_var,
                _anf(expr.cons_branch, fresh),
                pos=expr.pos,
            ),
        )
    if isinstance(expr, A.MatchSum):
        binders = []
        scrut = atomize(expr.scrutinee, binders, "s")
        return wrap(
            binders,
            A.MatchSum(
                scrut,
                expr.left_var,
                _anf(expr.left_branch, fresh),
                expr.right_var,
                _anf(expr.right_branch, fresh),
                pos=expr.pos,
            ),
        )
    if isinstance(expr, A.MatchTuple):
        binders = []
        scrut = atomize(expr.scrutinee, binders, "s")
        return wrap(binders, A.MatchTuple(scrut, expr.names, _anf(expr.body, fresh), pos=expr.pos))
    if isinstance(expr, A.Stat):
        return A.Stat(expr.label, _anf(expr.body, fresh), pos=expr.pos)
    raise ReproError(f"unexpected node {type(expr).__name__} in ANF")


# ---------------------------------------------------------------------------
# Pass 3: affine variables via explicit share
# ---------------------------------------------------------------------------


def _substitute(expr: A.Expr, mapping: Dict[str, str]) -> A.Expr:
    """Capture-free renaming of free variables (binders already unique)."""
    if not mapping:
        return expr
    if isinstance(expr, A.Var):
        return A.Var(mapping.get(expr.name, expr.name), pos=expr.pos)
    if isinstance(expr, A.Let):
        return A.Let(expr.name, _substitute(expr.bound, mapping), _substitute(expr.body, mapping), pos=expr.pos)
    if isinstance(expr, A.Share):
        return A.Share(
            mapping.get(expr.name, expr.name),
            expr.name1,
            expr.name2,
            _substitute(expr.body, mapping),
            pos=expr.pos,
        )
    if isinstance(expr, A.MatchList):
        return A.MatchList(
            _substitute(expr.scrutinee, mapping),
            _substitute(expr.nil_branch, mapping),
            expr.head_var,
            expr.tail_var,
            _substitute(expr.cons_branch, mapping),
            pos=expr.pos,
        )
    if isinstance(expr, A.MatchSum):
        return A.MatchSum(
            _substitute(expr.scrutinee, mapping),
            expr.left_var,
            _substitute(expr.left_branch, mapping),
            expr.right_var,
            _substitute(expr.right_branch, mapping),
            pos=expr.pos,
        )
    if isinstance(expr, A.MatchTuple):
        return A.MatchTuple(_substitute(expr.scrutinee, mapping), expr.names, _substitute(expr.body, mapping), pos=expr.pos)
    return _map_children(expr, lambda child: _substitute(child, mapping))


def _sequential_parts(expr: A.Expr):
    """Sequential sub-expression groups of a node.

    Returns (groups, rebuild) where ``groups`` is a list of *parallel
    groups*: within one group the sub-expressions are alternatives (only
    one runs), across groups they run sequentially.  ``rebuild`` takes the
    flattened list of rewritten sub-expressions in order.
    """
    if isinstance(expr, A.Let):
        return (
            [[expr.bound], [expr.body]],
            lambda parts: A.Let(expr.name, parts[0], parts[1], pos=expr.pos),
        )
    if isinstance(expr, A.Cons):
        return (
            [[expr.head], [expr.tail]],
            lambda parts: A.Cons(parts[0], parts[1], pos=expr.pos),
        )
    if isinstance(expr, A.TupleExpr):
        return (
            [[e] for e in expr.items],
            lambda parts: A.TupleExpr(tuple(parts), pos=expr.pos),
        )
    if isinstance(expr, A.BinOp):
        return (
            [[expr.left], [expr.right]],
            lambda parts: A.BinOp(expr.op, parts[0], parts[1], pos=expr.pos),
        )
    if isinstance(expr, A.Neg):
        return ([[expr.operand]], lambda parts: A.Neg(expr.op, parts[0], pos=expr.pos))
    if isinstance(expr, (A.Inl, A.Inr)):
        cls = A.Inl if isinstance(expr, A.Inl) else A.Inr
        return ([[expr.operand]], lambda parts: cls(parts[0], pos=expr.pos))
    if isinstance(expr, A.App):
        return (
            [[e] for e in expr.args],
            lambda parts: A.App(expr.fname, tuple(parts), pos=expr.pos),
        )
    if isinstance(expr, A.If):
        return (
            [[expr.cond], [expr.then_branch, expr.else_branch]],
            lambda parts: A.If(parts[0], parts[1], parts[2], pos=expr.pos),
        )
    if isinstance(expr, A.MatchList):
        return (
            [[expr.scrutinee], [expr.nil_branch, expr.cons_branch]],
            lambda parts: A.MatchList(parts[0], parts[1], expr.head_var, expr.tail_var, parts[2], pos=expr.pos),
        )
    if isinstance(expr, A.MatchSum):
        return (
            [[expr.scrutinee], [expr.left_branch, expr.right_branch]],
            lambda parts: A.MatchSum(parts[0], expr.left_var, parts[1], expr.right_var, parts[2], pos=expr.pos),
        )
    if isinstance(expr, A.MatchTuple):
        return (
            [[expr.scrutinee], [expr.body]],
            lambda parts: A.MatchTuple(parts[0], expr.names, parts[1], pos=expr.pos),
        )
    if isinstance(expr, A.Stat):
        return ([[expr.body]], lambda parts: A.Stat(expr.label, parts[0], pos=expr.pos))
    if isinstance(expr, A.Share):
        return (
            [[expr.body]],
            lambda parts: A.Share(expr.name, expr.name1, expr.name2, parts[0], pos=expr.pos),
        )
    return None


def _share(expr: A.Expr, fresh: _Fresh) -> A.Expr:
    """Insert ``share`` nodes so every variable is used at most once."""
    parts_info = _sequential_parts(expr)
    if parts_info is None:
        return expr
    groups, rebuild = parts_info

    # which variables does each sequential group use (free vars)?
    group_vars = []
    for group in groups:
        used: set = set()
        for sub in group:
            used |= A.free_vars(sub)
        group_vars.append(used)

    # find variables used by more than one sequential group
    shares: List[Tuple[str, List[int]]] = []
    seen: Dict[str, List[int]] = {}
    for gi, used in enumerate(group_vars):
        for var in used:
            seen.setdefault(var, []).append(gi)
    for var, gis in seen.items():
        if len(gis) > 1:
            shares.append((var, gis))

    new_groups = [list(group) for group in groups]
    share_chain: List[Tuple[str, str, str]] = []
    for var, gis in sorted(shares):
        # split var into len(gis) copies with a chain of binary shares
        current = var
        names: List[str] = []
        for k in range(len(gis) - 1):
            n1 = fresh.var(var)
            n2 = fresh.var(var)
            share_chain.append((current, n1, n2))
            names.append(n1)
            current = n2
        names.append(current)
        for name, gi in zip(names, gis):
            new_groups[gi] = [
                _substitute(sub, {var: name}) for sub in new_groups[gi]
            ]

    flat = []
    for group in new_groups:
        for sub in group:
            flat.append(_share(sub, fresh))
    result = rebuild(flat)
    for src, n1, n2 in reversed(share_chain):
        result = A.Share(src, n1, n2, result, pos=expr.pos)
    return result


# ---------------------------------------------------------------------------
# Public interface
# ---------------------------------------------------------------------------


#: public alias for the lint passes (repro.analysis) — the grouping of a
#: node's sub-expressions into sequential/parallel groups is exactly the
#: structure both ``_share`` and the affine-usage lint reason about
sequential_parts = _sequential_parts


def _maybe_verify(expr: A.Expr, stage: str, context: str) -> None:
    """Run the between-stage IR verifier when REPRO_VERIFY_IR is set.

    Imported lazily: ``repro.analysis`` sits above ``repro.lang`` in the
    layering, so the dependency must not exist at import time.
    """
    import os

    if os.environ.get("REPRO_VERIFY_IR", "") in ("", "0"):
        return
    from ..analysis.verify_ir import check_expr

    check_expr(expr, stage, context=context)


def normalize_expr(expr: A.Expr, fresh: _Fresh | None = None, context: str = "") -> A.Expr:
    fresh = fresh or _Fresh()
    expr = _uniquify(expr, {}, fresh)
    _maybe_verify(expr, "uniquify", context)
    expr = _anf(expr, fresh)
    _maybe_verify(expr, "anf", context)
    expr = _share(expr, fresh)
    _maybe_verify(expr, "share", context)
    return expr


def normalize_program(program: A.Program) -> A.Program:
    """Convert every function body to share-let normal form."""
    fresh = _Fresh()
    functions = []
    for fdef in program:
        # keep parameter names; they are unique per function by construction
        seen = set()
        for p in fdef.params:
            if p in seen:
                raise ReproError(f"duplicate parameter {p!r} in {fdef.name}")
            seen.add(p)
        body = normalize_expr(fdef.body, fresh, context=fdef.name)
        functions.append(
            A.FunDef(
                fdef.name,
                fdef.params,
                body,
                recursive=fdef.recursive,
                pos=fdef.pos,
                name_pos=fdef.name_pos,
                param_pos=fdef.param_pos,
            )
        )
    for fdef in functions:
        _check_normal_form(fdef.body)
    return A.Program(functions)


def _check_normal_form(expr: A.Expr) -> None:
    """Internal invariant check: affine variables + atomic operands."""
    counts: Dict[str, int] = {}

    def count_uses(e: A.Expr, mult: Dict[str, int]) -> None:
        if isinstance(e, A.Var):
            mult[e.name] = mult.get(e.name, 0) + 1
            return
        if isinstance(e, A.Share):
            mult[e.name] = mult.get(e.name, 0) + 1
            count_uses(e.body, mult)
            return
        parts_info = _sequential_parts(e)
        if parts_info is None:
            return
        groups, _rebuild = parts_info
        for group in groups:
            branch_maxima: Dict[str, int] = {}
            for sub in group:
                local: Dict[str, int] = {}
                count_uses(sub, local)
                for var, k in local.items():
                    branch_maxima[var] = max(branch_maxima.get(var, 0), k)
            for var, k in branch_maxima.items():
                mult[var] = mult.get(var, 0) + k

    count_uses(expr, counts)
    for var, k in counts.items():
        if k > 1:
            raise ReproError(f"normal-form violation: {var!r} used {k} times")

    for node in expr.walk():
        for atomic in _atomic_operands(node):
            if not isinstance(atomic, A.Var):
                raise ReproError(
                    f"normal-form violation: non-variable operand {type(atomic).__name__}"
                )


def _atomic_operands(node: A.Expr):
    if isinstance(node, A.Cons):
        return [node.head, node.tail]
    if isinstance(node, A.TupleExpr):
        return list(node.items)
    if isinstance(node, (A.Inl, A.Inr)):
        return [node.operand]
    if isinstance(node, A.App):
        return list(node.args)
    if isinstance(node, A.BinOp):
        return [node.left, node.right]
    if isinstance(node, A.Neg):
        return [node.operand]
    if isinstance(node, A.If):
        return [node.cond]
    if isinstance(node, (A.MatchList, A.MatchSum, A.MatchTuple)):
        return [node.scrutinee]
    return []
