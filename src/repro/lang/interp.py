"""Big-step cost semantics and runtime-data collection (Sections 3.2–3.3).

The interpreter evaluates *normalized* programs, accumulating the tick
cost, and records one :class:`StatRecord` per dynamic evaluation of every
``stat``-labelled subexpression: the environment restricted to the free
variables of the labelled expression, the resulting value, and the cost
incurred inside the expression.  This is exactly the data-collection
judgment ``(V_i |- e ⇓^c v_i) | D`` of Eq. (3.3).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import ast as A
from .builtins import BUILTINS
from .values import UNIT_VALUE, VInl, VInr, VList, VTuple, Value
from ..errors import BudgetExceededError, EvalError

RECURSION_LIMIT = 100_000

#: integer bit-length cap while a value-size budget is active: arithmetic
#: like ``f (x * x)`` squares magnitudes, doubling the bit length every
#: step, so a step budget alone cannot stop the memory blowup
INT_BIT_LIMIT = 4096


@dataclass(frozen=True)
class StatRecord:
    """One runtime measurement ``(V, v, c)`` at a stat site ``label``."""

    label: str
    env: Tuple[Tuple[str, Value], ...]  # sorted (name, value) pairs
    value: Value
    cost: float

    def env_dict(self) -> Dict[str, Value]:
        return dict(self.env)


@dataclass
class EvalResult:
    value: Value
    cost: float
    stat_records: List[StatRecord] = field(default_factory=list)


@contextmanager
def _deep_recursion():
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, RECURSION_LIMIT))
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


def _trunc_div(a: int, b: int) -> int:
    """OCaml integer division truncates toward zero."""
    if b == 0:
        raise EvalError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _trunc_mod(a: int, b: int) -> int:
    """OCaml ``mod``: sign follows the dividend."""
    if b == 0:
        raise EvalError("modulo by zero")
    return a - _trunc_div(a, b) * b


class Interpreter:
    """Evaluates normalized programs under the tick cost metric."""

    def __init__(
        self,
        program: A.Program,
        collect_stats: bool = True,
        max_steps: Optional[int] = None,
        max_call_depth: Optional[int] = None,
        max_value_size: Optional[int] = None,
    ):
        self.program = program
        self.collect_stats = collect_stats
        self.cost = 0.0
        self.records: List[StatRecord] = []
        self._stat_free_vars: Dict[int, frozenset] = {}
        #: fuel budgets for untrusted programs (None = uncapped): step
        #: fuel and call depth are per-:meth:`run`, value size per value
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.max_value_size = max_value_size
        self._fuel: Optional[int] = None
        self._call_depth = 0
        #: lifetime work counters (not reset by :meth:`run`) — cheap enough
        #: to keep unconditionally; surfaced as telemetry by collect_dataset
        self.eval_steps = 0
        self.tick_ops = 0

    # -- public API ----------------------------------------------------------

    def run(self, fname: str, args: List[Value]) -> EvalResult:
        """Evaluate ``fname(args)`` from a fresh cost counter."""
        if fname not in self.program:
            raise EvalError(f"unknown function {fname!r}")
        fdef = self.program[fname]
        if len(args) != len(fdef.params):
            raise EvalError(
                f"{fname} expects {len(fdef.params)} arguments, got {len(args)}"
            )
        self.cost = 0.0
        self.records = []
        self._fuel = self.max_steps
        self._call_depth = 0
        with _deep_recursion():
            frame = dict(zip(fdef.params, args))
            value = self.eval(fdef.body, frame)
        return EvalResult(value, self.cost, list(self.records))

    # -- evaluation ----------------------------------------------------------

    def eval(self, expr: A.Expr, env: Dict[str, Value]) -> Value:
        self.eval_steps += 1
        if self._fuel is not None:
            self._fuel -= 1
            if self._fuel < 0:
                raise BudgetExceededError(
                    f"evaluation exceeded the {self.max_steps}-step budget",
                    kind="steps",
                    limit=self.max_steps,
                )
        if isinstance(expr, A.Var):
            try:
                return env[expr.name]
            except KeyError:
                raise EvalError(f"unbound variable {expr.name!r}") from None
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.BoolLit):
            return expr.value
        if isinstance(expr, A.UnitLit):
            return UNIT_VALUE
        if isinstance(expr, A.Nil):
            return VList(())
        if isinstance(expr, A.Tick):
            self.cost += expr.amount
            self.tick_ops += 1
            return UNIT_VALUE
        if isinstance(expr, A.ErrorExpr):
            raise EvalError(f"program error: {expr.message}")
        if isinstance(expr, A.Cons):
            head = self.eval(expr.head, env)
            tail = self.eval(expr.tail, env)
            if not isinstance(tail, VList):
                raise EvalError("cons onto a non-list")
            if (
                self.max_value_size is not None
                and len(tail.items) + 1 > self.max_value_size
            ):
                raise BudgetExceededError(
                    f"constructed value exceeds the {self.max_value_size}-cell budget",
                    kind="value-size",
                    limit=self.max_value_size,
                )
            return VList((head,) + tail.items)
        if isinstance(expr, A.TupleExpr):
            return VTuple(tuple(self.eval(e, env) for e in expr.items))
        if isinstance(expr, A.Inl):
            return VInl(self.eval(expr.operand, env))
        if isinstance(expr, A.Inr):
            return VInr(self.eval(expr.operand, env))
        if isinstance(expr, A.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, A.Neg):
            operand = self.eval(expr.operand, env)
            if expr.op == "-":
                return -operand
            return not operand
        if isinstance(expr, A.If):
            cond = self.eval(expr.cond, env)
            if not isinstance(cond, bool):
                raise EvalError("if condition is not a boolean")
            branch = expr.then_branch if cond else expr.else_branch
            return self.eval(branch, env)
        if isinstance(expr, A.Let):
            env[expr.name] = self.eval(expr.bound, env)
            return self.eval(expr.body, env)
        if isinstance(expr, A.Share):
            value = env[expr.name]
            env[expr.name1] = value
            env[expr.name2] = value
            return self.eval(expr.body, env)
        if isinstance(expr, A.MatchList):
            scrut = self.eval(expr.scrutinee, env)
            if not isinstance(scrut, VList):
                raise EvalError("match on a non-list")
            if not scrut.items:
                return self.eval(expr.nil_branch, env)
            env[expr.head_var] = scrut.items[0]
            env[expr.tail_var] = VList(scrut.items[1:])
            return self.eval(expr.cons_branch, env)
        if isinstance(expr, A.MatchSum):
            scrut = self.eval(expr.scrutinee, env)
            if isinstance(scrut, VInl):
                env[expr.left_var] = scrut.value
                return self.eval(expr.left_branch, env)
            if isinstance(scrut, VInr):
                env[expr.right_var] = scrut.value
                return self.eval(expr.right_branch, env)
            raise EvalError("match on a non-sum value")
        if isinstance(expr, A.MatchTuple):
            scrut = self.eval(expr.scrutinee, env)
            if not isinstance(scrut, VTuple) or len(scrut.items) != len(expr.names):
                raise EvalError("tuple match arity mismatch")
            for name, item in zip(expr.names, scrut.items):
                env[name] = item
            return self.eval(expr.body, env)
        if isinstance(expr, A.App):
            return self._eval_app(expr, env)
        if isinstance(expr, A.Stat):
            return self._eval_stat(expr, env)
        raise EvalError(f"cannot evaluate node {type(expr).__name__}")

    def _eval_binop(self, expr: A.BinOp, env: Dict[str, Value]) -> Value:
        op = expr.op
        if op == "&&":
            left = self.eval(expr.left, env)
            if not left:
                return False
            return bool(self.eval(expr.right, env))
        if op == "||":
            left = self.eval(expr.left, env)
            if left:
                return True
            return bool(self.eval(expr.right, env))
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op in ("+", "-", "*") and self.max_value_size is not None:
            if (
                isinstance(left, int)
                and isinstance(right, int)
                and max(left.bit_length(), right.bit_length()) > INT_BIT_LIMIT
            ):
                raise BudgetExceededError(
                    f"integer operand exceeds the {INT_BIT_LIMIT}-bit budget",
                    kind="value-size",
                    limit=INT_BIT_LIMIT,
                )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return _trunc_div(left, right)
        if op == "mod":
            return _trunc_mod(left, right)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise EvalError(f"unknown operator {op!r}")

    def _eval_app(self, expr: A.App, env: Dict[str, Value]) -> Value:
        args = [self.eval(arg, env) for arg in expr.args]
        if expr.fname in self.program:
            fdef = self.program[expr.fname]
            frame = dict(zip(fdef.params, args))
            self._call_depth += 1
            if (
                self.max_call_depth is not None
                and self._call_depth > self.max_call_depth
            ):
                self._call_depth -= 1
                raise BudgetExceededError(
                    f"call depth exceeds the {self.max_call_depth}-frame budget",
                    kind="call-depth",
                    limit=self.max_call_depth,
                )
            try:
                return self.eval(fdef.body, frame)
            finally:
                self._call_depth -= 1
        if expr.fname in BUILTINS:
            return BUILTINS[expr.fname].impl(*args)
        raise EvalError(f"unknown function {expr.fname!r}")

    def _eval_stat(self, expr: A.Stat, env: Dict[str, Value]) -> Value:
        if not self.collect_stats:
            return self.eval(expr.body, env)
        key = id(expr)
        fv = self._stat_free_vars.get(key)
        if fv is None:
            fv = frozenset(A.free_vars(expr.body))
            self._stat_free_vars[key] = fv
        before = self.cost
        value = self.eval(expr.body, env)
        cost = self.cost - before
        restricted = tuple(sorted((name, env[name]) for name in fv if name in env))
        self.records.append(StatRecord(expr.label, restricted, value, cost))
        return value


def evaluate(
    program: A.Program,
    fname: str,
    args: List[Value],
    collect_stats: bool = True,
) -> EvalResult:
    """Convenience wrapper: evaluate ``fname(args)`` on ``program``."""
    return Interpreter(program, collect_stats=collect_stats).run(fname, args)


def run_on_inputs(
    program: A.Program,
    fname: str,
    inputs: List[List[Value]],
    collect_stats: bool = True,
) -> List[EvalResult]:
    """Sweep through a list of argument vectors (data collection driver)."""
    interp = Interpreter(program, collect_stats=collect_stats)
    results = []
    for args in inputs:
        results.append(interp.run(fname, args))
    return results
