"""Recursive-descent parser for the OCaml-like surface syntax.

The grammar covers the fragment used by the paper's benchmarks
(Appendix C): top-level ``let``/``let rec`` function definitions, list and
tuple pattern matching (including nested patterns, compiled to the core
``MatchList``/``MatchTuple``/``MatchSum`` forms), ``if``/``let``/``match``
expressions, integer arithmetic and comparisons, ``Raml.tick`` and
``Raml.stat`` annotations, and ``raise``.

Pattern matches with nested or multiple refutable patterns are compiled to
a decision tree by :func:`_compile_match` (a small instance of the classic
pattern-matrix algorithm).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import ast as A
from .builtins import is_builtin
from .lexer import Token, tokenize
from ..errors import NestingDepthError, ParseError

#: default expression/pattern nesting-depth cap.  Always finite: unbounded
#: nesting used to escape as a raw Python ``RecursionError``; now it is a
#: :class:`NestingDepthError` (R004) at a depth no real program reaches.
#: List-literal sugar (``[a; b; …]`` desugars to nested cons) charges one
#: level per element, so the cap also bounds the depth of the AST handed
#: to normalize/typecheck, whose recursion would otherwise be unbounded.
DEFAULT_MAX_DEPTH = 400

#: Python stack frames consumed per counted nesting level (the full
#: precedence chain parse_expr→…→parse_atom is ~12 frames), used to size
#: the temporary recursion-limit raise while parsing.
_FRAMES_PER_LEVEL = 32

# ---------------------------------------------------------------------------
# Patterns (surface only; compiled away before the AST leaves this module)
# ---------------------------------------------------------------------------


@dataclass
class PVar:
    name: str  # "_" means wildcard


@dataclass
class PUnit:
    pass


@dataclass
class PNil:
    pass


@dataclass
class PCons:
    head: "Pattern"
    tail: "Pattern"


@dataclass
class PTuple:
    items: Tuple["Pattern", ...]


@dataclass
class PInl:
    inner: "Pattern"


@dataclass
class PInr:
    inner: "Pattern"


Pattern = object


def _is_irrefutable(pat) -> bool:
    if isinstance(pat, (PVar, PUnit)):
        return True
    if isinstance(pat, PTuple):
        return all(_is_irrefutable(p) for p in pat.items)
    return False


class _FreshNames:
    """Generates hygienic temporaries (``$m1`` etc. cannot be user idents)."""

    def __init__(self) -> None:
        self.counter = 0

    def fresh(self, hint: str = "m") -> str:
        self.counter += 1
        return f"${hint}{self.counter}"


@dataclass
class MatchRecord:
    """Bookkeeping about one surface ``match`` (or ``let``-pattern).

    The pattern-matrix compiler marks which arms were selected in at
    least one decision-tree leaf (``used``) and whether some leaf fell
    through to a compiled-in match-failure (``nonexhaustive``); the lint
    passes turn those into unreachable-arm / non-exhaustive diagnostics.
    """

    pos: A.Pos
    kind: str  # 'match' | 'let'
    arm_pos: List[A.Pos]
    fun: Optional[str] = None
    used: Set[int] = field(default_factory=set)
    nonexhaustive: bool = False


def _compile_match(scrut_var: str, arms, fresh: "_FreshNames", pos, record=None) -> A.Expr:
    """Compile ``match scrut_var with arms`` to core destructors.

    ``arms`` is a list of ``(pattern, rhs_expr)``.  Implements the pattern
    matrix algorithm over obligation lists ``[(var, pattern), ...]``; each
    row additionally carries the index of the surface arm it came from so
    arm reachability can be recorded on ``record``.
    """
    matrix = [([(scrut_var, pat)], rhs, arm) for arm, (pat, rhs) in enumerate(arms)]
    return _compile_matrix(matrix, fresh, pos, record)


def _arm_pos(record, arm, pos):
    """Best source position for a row: its surface arm's pattern if known."""
    if record is not None and arm is not None and arm < len(record.arm_pos):
        return record.arm_pos[arm]
    return pos


def _compile_matrix(matrix, fresh: "_FreshNames", pos, record=None) -> A.Expr:
    if not matrix:
        if record is not None:
            record.nonexhaustive = True
        return A.ErrorExpr("match failure", pos=pos)
    obligations, rhs, arm = matrix[0]

    # Discharge leading irrefutable obligations of the first row.
    for idx, (var, pat) in enumerate(obligations):
        if isinstance(pat, (PVar, PUnit)):
            continue
        if isinstance(pat, PTuple) and _is_irrefutable(pat):
            continue
        return _branch_on(idx, matrix, fresh, pos, record)

    # Whole first row is irrefutable: bind and ignore remaining rows.
    if record is not None and arm is not None:
        record.used.add(arm)
    body = rhs
    bind_pos = _arm_pos(record, arm, pos)
    for var, pat in reversed(obligations):
        body = _bind_irrefutable(var, pat, body, fresh, bind_pos)
    return body


def _bind_irrefutable(var: str, pat, body: A.Expr, fresh: "_FreshNames", pos) -> A.Expr:
    if isinstance(pat, PVar):
        if pat.name == "_":
            return body
        return A.Let(pat.name, A.Var(var, pos=pos), body, pos=pos)
    if isinstance(pat, PUnit):
        return body
    if isinstance(pat, PTuple):
        names = []
        inner = body
        binders = []
        for item in pat.items:
            if isinstance(item, PVar):
                names.append(item.name)
            else:
                tmp = fresh.fresh("t")
                names.append(tmp)
                binders.append((tmp, item))
        for tmp, item in reversed(binders):
            inner = _bind_irrefutable(tmp, item, inner, fresh, pos)
        return A.MatchTuple(A.Var(var, pos=pos), tuple(names), inner, pos=pos)
    raise ParseError(f"pattern {pat} is refutable", pos.line if pos else None)


def _branch_on(idx: int, matrix, fresh: "_FreshNames", pos, record=None) -> A.Expr:
    """Branch on the constructor of obligation ``idx`` of the first row."""
    var = matrix[0][0][idx][0]
    pivot = matrix[0][0][idx][1]

    if isinstance(pivot, (PNil, PCons)):
        return _branch_list(idx, var, matrix, fresh, pos, record)
    if isinstance(pivot, PTuple):
        return _branch_tuple(idx, var, matrix, fresh, pos, record)
    if isinstance(pivot, (PInl, PInr)):
        return _branch_sum(idx, var, matrix, fresh, pos, record)
    raise ParseError(f"unsupported pattern {pivot}")


def _row_obligation_on(row, var):
    """Find the obligation index on ``var`` in ``row``, or None."""
    for k, (v, _p) in enumerate(row[0]):
        if v == var:
            return k
    return None


def _branch_list(idx: int, var: str, matrix, fresh: "_FreshNames", pos, record=None) -> A.Expr:
    head_var = fresh.fresh("h")
    tail_var = fresh.fresh("t")
    nil_rows = []
    cons_rows = []
    for obligations, rhs, arm in matrix:
        k = _row_obligation_on((obligations, rhs), var)
        if k is None:
            nil_rows.append((list(obligations), rhs, arm))
            cons_rows.append((list(obligations), rhs, arm))
            continue
        pat = obligations[k][1]
        rest = obligations[:k] + obligations[k + 1 :]
        if isinstance(pat, PNil):
            nil_rows.append((rest, rhs, arm))
        elif isinstance(pat, PCons):
            cons_rows.append(
                (rest + [(head_var, pat.head), (tail_var, pat.tail)], rhs, arm)
            )
        elif isinstance(pat, PVar):
            # variable matches both; rebind the scrutinee variable
            bound_nil = rest if pat.name == "_" else rest + [(var, pat)]
            nil_rows.append((bound_nil, rhs, arm))
            cons_rows.append((list(bound_nil), rhs, arm))
        else:
            raise ParseError("list and non-list patterns mixed in match")
    nil_branch = _compile_matrix(nil_rows, fresh, pos, record)
    cons_branch = _compile_matrix(cons_rows, fresh, pos, record)
    return A.MatchList(A.Var(var, pos=pos), nil_branch, head_var, tail_var, cons_branch, pos=pos)


def _branch_tuple(idx: int, var: str, matrix, fresh: "_FreshNames", pos, record=None) -> A.Expr:
    width = len(matrix[0][0][idx][1].items)
    comp_vars = [fresh.fresh("c") for _ in range(width)]
    rows = []
    for obligations, rhs, arm in matrix:
        k = _row_obligation_on((obligations, rhs), var)
        if k is None:
            rows.append((list(obligations), rhs, arm))
            continue
        pat = obligations[k][1]
        rest = obligations[:k] + obligations[k + 1 :]
        if isinstance(pat, PTuple):
            if len(pat.items) != width:
                raise ParseError("tuple pattern arity mismatch")
            rows.append((rest + list(zip(comp_vars, pat.items)), rhs, arm))
        elif isinstance(pat, PVar):
            rows.append((rest + ([] if pat.name == "_" else [(var, pat)]), rhs, arm))
        else:
            raise ParseError("tuple and non-tuple patterns mixed in match")
    body = _compile_matrix(rows, fresh, pos, record)
    return A.MatchTuple(A.Var(var, pos=pos), tuple(comp_vars), body, pos=pos)


def _branch_sum(idx: int, var: str, matrix, fresh: "_FreshNames", pos, record=None) -> A.Expr:
    lvar = fresh.fresh("l")
    rvar = fresh.fresh("r")
    left_rows = []
    right_rows = []
    for obligations, rhs, arm in matrix:
        k = _row_obligation_on((obligations, rhs), var)
        if k is None:
            left_rows.append((list(obligations), rhs, arm))
            right_rows.append((list(obligations), rhs, arm))
            continue
        pat = obligations[k][1]
        rest = obligations[:k] + obligations[k + 1 :]
        if isinstance(pat, PInl):
            left_rows.append((rest + [(lvar, pat.inner)], rhs, arm))
        elif isinstance(pat, PInr):
            right_rows.append((rest + [(rvar, pat.inner)], rhs, arm))
        elif isinstance(pat, PVar):
            bound = rest if pat.name == "_" else rest + [(var, pat)]
            left_rows.append((bound, rhs, arm))
            right_rows.append((list(bound), rhs, arm))
        else:
            raise ParseError("sum and non-sum patterns mixed in match")
    left_branch = _compile_matrix(left_rows, fresh, pos, record)
    right_branch = _compile_matrix(right_rows, fresh, pos, record)
    return A.MatchSum(A.Var(var, pos=pos), lvar, left_branch, rvar, right_branch, pos=pos)


# ---------------------------------------------------------------------------
# The parser proper
# ---------------------------------------------------------------------------


class Parser:
    def __init__(
        self,
        source: str,
        max_chars: Optional[int] = None,
        max_tokens: Optional[int] = None,
        max_depth: Optional[int] = None,
    ):
        self.tokens = tokenize(source, max_chars=max_chars, max_tokens=max_tokens)
        self.pos = 0
        self.fresh = _FreshNames()
        self.current_fun: Optional[str] = None
        self.stat_counter = 0
        self.max_depth = DEFAULT_MAX_DEPTH if max_depth is None else max_depth
        self.depth = 0
        #: every surface match / let-pattern, for the lint passes
        self.match_records: List[MatchRecord] = []
        #: top-level definitions in source order (duplicates preserved;
        #: ``A.Program`` keeps only the last one per name)
        self.functions: List[A.FunDef] = []

    # -- nesting budget -----------------------------------------------------

    @contextmanager
    def _nest(self, levels: int = 1):
        """Charge ``levels`` against the nesting budget for this scope."""
        self.depth += levels
        if self.depth > self.max_depth:
            tok = self.peek()
            raise NestingDepthError(
                f"nesting depth exceeds the {self.max_depth}-level budget",
                tok.line,
                tok.col,
            )
        try:
            yield
        finally:
            self.depth -= levels

    @contextmanager
    def _parse_stack(self):
        """Raise the interpreter recursion limit to fit ``max_depth`` levels.

        The cap, not the Python stack, must be what stops deep nesting —
        otherwise the diagnostic depends on how many frames the host
        happens to allow.
        """
        old = sys.getrecursionlimit()
        # pattern-matrix compilation recurses once per pattern constructor,
        # which is bounded by token count rather than nesting depth
        need = self.max_depth * _FRAMES_PER_LEVEL + 8 * len(self.tokens) + 2000
        sys.setrecursionlimit(max(old, need))
        try:
            yield
        finally:
            sys.setrecursionlimit(old)

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.kind == kind and (text is None or tok.text == text)

    def at_symbol(self, text: str, offset: int = 0) -> bool:
        return self.at("symbol", text, offset)

    def at_keyword(self, text: str, offset: int = 0) -> bool:
        return self.at("keyword", text, offset)

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.line, tok.col)
        return self.next()

    def here(self) -> A.Pos:
        tok = self.peek()
        return A.Pos(tok.line, tok.col)

    # -- program ------------------------------------------------------------

    def parse_program(self) -> A.Program:
        with self._parse_stack():
            while not self.at("eof"):
                if self.at_keyword("exception"):
                    self.next()
                    self.expect("ident")
                    continue
                self.functions.append(self.parse_fundef())
        if not self.functions:
            raise ParseError("empty program")
        return A.Program(self.functions)

    def parse_fundef(self) -> A.FunDef:
        pos = self.here()
        self.expect("keyword", "let")
        recursive = False
        if self.at_keyword("rec"):
            self.next()
            recursive = True
        name_tok = self.expect("ident")
        name = name_tok.text
        if is_builtin(name):
            raise ParseError(f"cannot redefine builtin {name!r}", name_tok.line, name_tok.col)
        self.current_fun = name
        self.stat_counter = 0
        params: List[str] = []
        param_pos: List[A.Pos] = []
        while not self.at_symbol("=") and not self.at_symbol(":"):
            pname, ppos = self.parse_param()
            params.append(pname)
            param_pos.append(ppos)
        # optional return type annotation
        if self.at_symbol(":"):
            self.next()
            self.parse_type()
        self.expect("symbol", "=")
        body = self.parse_expr()
        if not params:
            raise ParseError(f"function {name!r} has no parameters", pos.line, pos.col)
        return A.FunDef(
            name,
            tuple(params),
            body,
            recursive=recursive,
            pos=pos,
            name_pos=A.Pos(name_tok.line, name_tok.col),
            param_pos=tuple(param_pos),
        )

    def parse_param(self) -> Tuple[str, A.Pos]:
        pos = self.here()
        if self.at("ident"):
            return self.next().text, pos
        if self.at_symbol("_"):
            self.next()
            return self.fresh.fresh("u"), pos
        if self.at_symbol("("):
            self.next()
            tok = self.expect("ident")
            if self.at_symbol(":"):
                self.next()
                self.parse_type()
            self.expect("symbol", ")")
            return tok.text, A.Pos(tok.line, tok.col)
        tok = self.peek()
        raise ParseError(f"expected parameter, found {tok.text!r}", tok.line, tok.col)

    # -- types (parsed and discarded; inference recomputes them) -------------

    def parse_type(self) -> A.Type:
        ty = self.parse_type_atom()
        items = [ty]
        while self.at_symbol("*"):
            self.next()
            items.append(self.parse_type_atom())
        if len(items) > 1:
            return A.TProd(tuple(items))
        return ty

    def parse_type_atom(self) -> A.Type:
        if self.at_symbol("("):
            self.next()
            ty = self.parse_type()
            self.expect("symbol", ")")
            return self._type_suffix(ty)
        if self.at_symbol("'"):
            self.next()
            name = self.expect("ident").text
            return self._type_suffix(A.TVar(name))
        tok = self.expect("ident")
        base = {"int": A.INT, "bool": A.BOOL, "unit": A.UNIT}.get(tok.text)
        if base is None:
            if tok.text == "list":
                raise ParseError("'list' must follow an element type", tok.line, tok.col)
            base = A.TVar(tok.text)
        return self._type_suffix(base)

    def _type_suffix(self, ty: A.Type) -> A.Type:
        while self.at("ident", "list"):
            self.next()
            ty = A.TList(ty)
        return ty

    # -- patterns -----------------------------------------------------------

    def parse_pattern(self):
        with self._nest():
            pat = self.parse_pattern_cons()
        return pat

    def parse_pattern_cons(self):
        head = self.parse_pattern_atom()
        if self.at_symbol("::"):
            self.next()
            with self._nest():
                tail = self.parse_pattern_cons()
            return PCons(head, tail)
        return head

    def parse_pattern_atom(self):
        tok = self.peek()
        if self.at_symbol("_"):
            self.next()
            return PVar("_")
        if self.at("ident"):
            name = self.next().text
            if name == "Left":
                with self._nest():
                    return PInl(self.parse_pattern_atom())
            if name == "Right":
                with self._nest():
                    return PInr(self.parse_pattern_atom())
            return PVar(name)
        if self.at_symbol("["):
            self.next()
            items = []
            if not self.at_symbol("]"):
                items.append(self.parse_pattern())
                while self.at_symbol(";"):
                    self.next()
                    items.append(self.parse_pattern())
            self.expect("symbol", "]")
            # the sugar desugars to one cons per element: charge its depth
            self._charge_chain(len(items), tok)
            pat = PNil()
            for item in reversed(items):
                pat = PCons(item, pat)
            return pat
        if self.at_symbol("("):
            self.next()
            if self.at_symbol(")"):
                self.next()
                return PUnit()
            items = [self.parse_pattern()]
            while self.at_symbol(","):
                self.next()
                items.append(self.parse_pattern())
            self.expect("symbol", ")")
            if len(items) == 1:
                return items[0]
            return PTuple(tuple(items))
        raise ParseError(f"expected pattern, found {tok.text!r}", tok.line, tok.col)

    def _charge_chain(self, length: int, tok: Token) -> None:
        """Reject list sugar whose desugared cons chain would breach the cap."""
        if self.depth + length > self.max_depth:
            raise NestingDepthError(
                f"nesting depth exceeds the {self.max_depth}-level budget",
                tok.line,
                tok.col,
            )

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        with self._nest():
            return self._parse_expr()

    def _parse_expr(self) -> A.Expr:
        pos = self.here()
        if self.at_keyword("let"):
            return self.parse_let()
        if self.at_keyword("if"):
            self.next()
            cond = self.parse_expr()
            self.expect("keyword", "then")
            then_branch = self.parse_expr()
            self.expect("keyword", "else")
            else_branch = self.parse_expr()
            return A.If(cond, then_branch, else_branch, pos=pos)
        if self.at_keyword("match"):
            return self.parse_match()
        if self.at_keyword("raise"):
            self.next()
            tok = self.expect("ident")
            return A.ErrorExpr(tok.text, pos=pos)
        if self.at_keyword("fun"):
            tok = self.peek()
            raise ParseError("higher-order functions are not supported", tok.line, tok.col)
        return self.parse_or()

    def parse_let(self) -> A.Expr:
        pos = self.here()
        self.expect("keyword", "let")
        if self.at_keyword("rec"):
            tok = self.peek()
            raise ParseError("local 'let rec' is not supported", tok.line, tok.col)
        pat = self.parse_pattern()
        if self.at_symbol(","):
            # OCaml allows unparenthesized tuple patterns in let bindings:
            #   let lower, upper = partition pivot xs in ...
            items = [pat]
            while self.at_symbol(","):
                self.next()
                items.append(self.parse_pattern())
            pat = PTuple(tuple(items))
        if self.at_symbol(":"):
            self.next()
            self.parse_type()
        self.expect("symbol", "=")
        bound = self.parse_expr()
        self.expect("keyword", "in")
        body = self.parse_expr()
        if isinstance(pat, PVar):
            name = pat.name if pat.name != "_" else self.fresh.fresh("u")
            return A.Let(name, bound, body, pos=pos)
        record = MatchRecord(pos=pos, kind="let", arm_pos=[pos], fun=self.current_fun)
        self.match_records.append(record)
        tmp = self.fresh.fresh("b")
        compiled = _compile_match(tmp, [(pat, body)], self.fresh, pos, record)
        return A.Let(tmp, bound, compiled, pos=pos)

    def parse_match(self) -> A.Expr:
        pos = self.here()
        self.expect("keyword", "match")
        scrut = self.parse_expr()
        self.expect("keyword", "with")
        arms = []
        arm_pos: List[A.Pos] = []
        if self.at_symbol("|"):
            self.next()
        while True:
            arm_pos.append(self.here())
            pat = self.parse_pattern()
            self.expect("symbol", "->")
            rhs = self.parse_expr()
            arms.append((pat, rhs))
            if self.at_symbol("|"):
                self.next()
                continue
            break
        record = MatchRecord(pos=pos, kind="match", arm_pos=arm_pos, fun=self.current_fun)
        self.match_records.append(record)
        if isinstance(scrut, A.Var):
            return _compile_match(scrut.name, arms, self.fresh, pos, record)
        tmp = self.fresh.fresh("s")
        compiled = _compile_match(tmp, arms, self.fresh, pos, record)
        return A.Let(tmp, scrut, compiled, pos=pos)

    def parse_or(self) -> A.Expr:
        # `a || b` desugars to `if a then true else b` at parse time so that
        # share-let normalization cannot break short-circuit evaluation
        left = self.parse_and()
        while self.at_symbol("||"):
            pos = self.here()
            self.next()
            right = self.parse_and()
            left = A.If(left, A.BoolLit(True, pos=pos), right, pos=pos)
        return left

    def parse_and(self) -> A.Expr:
        # `a && b` desugars to `if a then b else false` (see parse_or)
        left = self.parse_cmp()
        while self.at_symbol("&&"):
            pos = self.here()
            self.next()
            right = self.parse_cmp()
            left = A.If(left, right, A.BoolLit(False, pos=pos), pos=pos)
        return left

    def parse_cmp(self) -> A.Expr:
        left = self.parse_cons()
        if self.peek().kind == "symbol" and self.peek().text in A.CMP_OPS:
            pos = self.here()
            op = self.next().text
            right = self.parse_cons()
            return A.BinOp(op, left, right, pos=pos)
        return left

    def parse_cons(self) -> A.Expr:
        head = self.parse_additive()
        if self.at_symbol("::"):
            pos = self.here()
            self.next()
            with self._nest():
                tail = self.parse_cons()
            return A.Cons(head, tail, pos=pos)
        return head

    def parse_additive(self) -> A.Expr:
        left = self.parse_multiplicative()
        while self.peek().kind == "symbol" and self.peek().text in ("+", "-"):
            pos = self.here()
            op = self.next().text
            right = self.parse_multiplicative()
            left = A.BinOp(op, left, right, pos=pos)
        return left

    def parse_multiplicative(self) -> A.Expr:
        left = self.parse_unary()
        while (self.peek().kind == "symbol" and self.peek().text in ("*", "/")) or self.at_keyword("mod"):
            pos = self.here()
            op = self.next().text
            right = self.parse_unary()
            left = A.BinOp(op, left, right, pos=pos)
        return left

    def parse_unary(self) -> A.Expr:
        pos = self.here()
        if self.at_symbol("-"):
            self.next()
            with self._nest():
                operand = self.parse_unary()
            if isinstance(operand, A.IntLit):
                return A.IntLit(-operand.value, pos=pos)
            return A.Neg("-", operand, pos=pos)
        if self.at_keyword("not"):
            self.next()
            with self._nest():
                operand = self.parse_unary()
            return A.Neg("not", operand, pos=pos)
        return self.parse_app()

    def parse_app(self) -> A.Expr:
        pos = self.here()
        if self.at("ident"):
            name = self.peek().text
            if name in ("Raml.tick", "tick"):
                self.next()
                return self.parse_tick(pos)
            if name in ("Raml.stat", "stat"):
                self.next()
                self.stat_counter += 1
                label = f"{self.current_fun or 'main'}#{self.stat_counter}"
                body = self.parse_atom()
                return A.Stat(label, body, pos=pos)
            if name in ("Left", "Right"):
                self.next()
                operand = self.parse_atom()
                cls = A.Inl if name == "Left" else A.Inr
                return cls(operand, pos=pos)
            # function application: ident followed by atoms
            if self._atom_follows(1):
                self.next()
                args = [self.parse_atom()]
                while self._atom_follows(0):
                    args.append(self.parse_atom())
                return A.App(name, tuple(args), pos=pos)
        return self.parse_atom()

    def parse_tick(self, pos: A.Pos) -> A.Expr:
        negative = False
        if self.at_symbol("-"):
            self.next()
            negative = True
        if self.at_symbol("("):
            self.next()
            if self.at_symbol("-"):
                self.next()
                negative = True
            tok = self.next()
            self.expect("symbol", ")")
        else:
            tok = self.next()
        if tok.kind not in ("int", "float"):
            raise ParseError("tick expects a numeric literal", tok.line, tok.col)
        amount = float(tok.text)
        return A.Tick(-amount if negative else amount, pos=pos)

    def _atom_follows(self, offset: int) -> bool:
        tok = self.peek(offset)
        if tok.kind in ("int", "float", "ident"):
            return tok.text not in ("mod",)
        if tok.kind == "keyword" and tok.text in ("true", "false"):
            return True
        if tok.kind == "symbol" and tok.text in ("(", "["):
            return True
        return False

    def parse_atom(self) -> A.Expr:
        pos = self.here()
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return A.IntLit(int(tok.text), pos=pos)
        if tok.kind == "float":
            raise ParseError("float literals are only allowed in tick", tok.line, tok.col)
        if self.at_keyword("true"):
            self.next()
            return A.BoolLit(True, pos=pos)
        if self.at_keyword("false"):
            self.next()
            return A.BoolLit(False, pos=pos)
        if tok.kind == "ident":
            self.next()
            return A.Var(tok.text, pos=pos)
        if self.at_symbol("["):
            self.next()
            items = []
            if not self.at_symbol("]"):
                items.append(self.parse_expr())
                while self.at_symbol(";"):
                    self.next()
                    items.append(self.parse_expr())
            self.expect("symbol", "]")
            # the sugar desugars to one cons per element: charge its depth
            self._charge_chain(len(items), tok)
            expr: A.Expr = A.Nil(pos=pos)
            for item in reversed(items):
                expr = A.Cons(item, expr, pos=pos)
            return expr
        if self.at_symbol("("):
            self.next()
            if self.at_symbol(")"):
                self.next()
                return A.UnitLit(pos=pos)
            items = [self.parse_expr()]
            while self.at_symbol(","):
                self.next()
                items.append(self.parse_expr())
            self.expect("symbol", ")")
            if len(items) == 1:
                return items[0]
            return A.TupleExpr(tuple(items), pos=pos)
        raise ParseError(f"expected expression, found {tok.text!r}", tok.line, tok.col)


@dataclass
class ParseResult:
    """Everything the lint passes need that ``A.Program`` discards.

    ``functions`` preserves source order *including duplicate names*
    (``A.Program`` keeps only the last definition per name), and
    ``match_records`` carries per-arm positions plus the reachability
    facts recorded during pattern-matrix compilation.
    """

    program: A.Program
    functions: List[A.FunDef]
    match_records: List[MatchRecord]


def parse_program(
    source: str,
    max_chars: Optional[int] = None,
    max_tokens: Optional[int] = None,
    max_depth: Optional[int] = None,
) -> A.Program:
    """Parse a whole program from source text."""
    return Parser(
        source, max_chars=max_chars, max_tokens=max_tokens, max_depth=max_depth
    ).parse_program()


def parse_program_ex(
    source: str,
    max_chars: Optional[int] = None,
    max_tokens: Optional[int] = None,
    max_depth: Optional[int] = None,
) -> ParseResult:
    """Parse a whole program, keeping the lint-facing side channel."""
    parser = Parser(source, max_chars=max_chars, max_tokens=max_tokens, max_depth=max_depth)
    program = parser.parse_program()
    return ParseResult(program, parser.functions, parser.match_records)


def parse_expr(source: str) -> A.Expr:
    """Parse a single expression (test helper)."""
    parser = Parser(source)
    parser.current_fun = "main"
    with parser._parse_stack():
        expr = parser.parse_expr()
    tok = parser.peek()
    if tok.kind != "eof":
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.col)
    return expr


def function_line_spans(
    functions: Sequence[A.FunDef], source: str
) -> Optional[Dict[str, Tuple[int, int]]]:
    """``name -> (start_line, end_line)`` slicing the source per function.

    A function's slice runs from its ``let`` keyword's line through the
    line before the next definition (the last one runs to EOF), so every
    source line after the first ``let`` belongs to exactly one function.
    Returns ``None`` when the program cannot be sliced unambiguously:
    duplicate top-level names, or a definition without position info.
    Consumers (the incremental analysis pipeline) must fall back to
    whole-program granularity in that case.
    """
    spans: Dict[str, Tuple[int, int]] = {}
    ordered = list(functions)
    total_lines = source.count("\n") + 1
    for i, fdef in enumerate(ordered):
        pos = fdef.pos or fdef.name_pos
        if pos is None or pos.line <= 0 or fdef.name in spans:
            return None
        if i + 1 < len(ordered):
            nxt = ordered[i + 1].pos or ordered[i + 1].name_pos
            if nxt is None or nxt.line <= 0:
                return None
            end = nxt.line - 1
        else:
            end = total_lines
        if end < pos.line:
            return None
        spans[fdef.name] = (pos.line, end)
    return spans
