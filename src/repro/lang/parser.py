"""Recursive-descent parser for the OCaml-like surface syntax.

The grammar covers the fragment used by the paper's benchmarks
(Appendix C): top-level ``let``/``let rec`` function definitions, list and
tuple pattern matching (including nested patterns, compiled to the core
``MatchList``/``MatchTuple``/``MatchSum`` forms), ``if``/``let``/``match``
expressions, integer arithmetic and comparisons, ``Raml.tick`` and
``Raml.stat`` annotations, and ``raise``.

Pattern matches with nested or multiple refutable patterns are compiled to
a decision tree by :func:`_compile_match` (a small instance of the classic
pattern-matrix algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from . import ast as A
from .builtins import is_builtin
from .lexer import Token, tokenize
from ..errors import ParseError

# ---------------------------------------------------------------------------
# Patterns (surface only; compiled away before the AST leaves this module)
# ---------------------------------------------------------------------------


@dataclass
class PVar:
    name: str  # "_" means wildcard


@dataclass
class PUnit:
    pass


@dataclass
class PNil:
    pass


@dataclass
class PCons:
    head: "Pattern"
    tail: "Pattern"


@dataclass
class PTuple:
    items: Tuple["Pattern", ...]


@dataclass
class PInl:
    inner: "Pattern"


@dataclass
class PInr:
    inner: "Pattern"


Pattern = object


def _is_irrefutable(pat) -> bool:
    if isinstance(pat, (PVar, PUnit)):
        return True
    if isinstance(pat, PTuple):
        return all(_is_irrefutable(p) for p in pat.items)
    return False


class _FreshNames:
    """Generates hygienic temporaries (``$m1`` etc. cannot be user idents)."""

    def __init__(self) -> None:
        self.counter = 0

    def fresh(self, hint: str = "m") -> str:
        self.counter += 1
        return f"${hint}{self.counter}"


def _compile_match(scrut_var: str, arms, fresh: "_FreshNames", pos) -> A.Expr:
    """Compile ``match scrut_var with arms`` to core destructors.

    ``arms`` is a list of ``(pattern, rhs_expr)``.  Implements the pattern
    matrix algorithm over obligation lists ``[(var, pattern), ...]``.
    """
    matrix = [([(scrut_var, pat)], rhs) for pat, rhs in arms]
    return _compile_matrix(matrix, fresh, pos)


def _compile_matrix(matrix, fresh: "_FreshNames", pos) -> A.Expr:
    if not matrix:
        return A.ErrorExpr("match failure", pos=pos)
    obligations, rhs = matrix[0]

    # Discharge leading irrefutable obligations of the first row.
    for idx, (var, pat) in enumerate(obligations):
        if isinstance(pat, (PVar, PUnit)):
            continue
        if isinstance(pat, PTuple) and _is_irrefutable(pat):
            continue
        return _branch_on(idx, matrix, fresh, pos)

    # Whole first row is irrefutable: bind and ignore remaining rows.
    body = rhs
    for var, pat in reversed(obligations):
        body = _bind_irrefutable(var, pat, body, fresh, pos)
    return body


def _bind_irrefutable(var: str, pat, body: A.Expr, fresh: "_FreshNames", pos) -> A.Expr:
    if isinstance(pat, PVar):
        if pat.name == "_":
            return body
        return A.Let(pat.name, A.Var(var, pos=pos), body, pos=pos)
    if isinstance(pat, PUnit):
        return body
    if isinstance(pat, PTuple):
        names = []
        inner = body
        binders = []
        for item in pat.items:
            if isinstance(item, PVar):
                names.append(item.name)
            else:
                tmp = fresh.fresh("t")
                names.append(tmp)
                binders.append((tmp, item))
        for tmp, item in reversed(binders):
            inner = _bind_irrefutable(tmp, item, inner, fresh, pos)
        return A.MatchTuple(A.Var(var, pos=pos), tuple(names), inner, pos=pos)
    raise ParseError(f"pattern {pat} is refutable", pos.line if pos else None)


def _branch_on(idx: int, matrix, fresh: "_FreshNames", pos) -> A.Expr:
    """Branch on the constructor of obligation ``idx`` of the first row."""
    var = matrix[0][0][idx][0]
    pivot = matrix[0][0][idx][1]

    if isinstance(pivot, (PNil, PCons)):
        return _branch_list(idx, var, matrix, fresh, pos)
    if isinstance(pivot, PTuple):
        return _branch_tuple(idx, var, matrix, fresh, pos)
    if isinstance(pivot, (PInl, PInr)):
        return _branch_sum(idx, var, matrix, fresh, pos)
    raise ParseError(f"unsupported pattern {pivot}")


def _row_obligation_on(row, var):
    """Find the obligation index on ``var`` in ``row``, or None."""
    for k, (v, _p) in enumerate(row[0]):
        if v == var:
            return k
    return None


def _branch_list(idx: int, var: str, matrix, fresh: "_FreshNames", pos) -> A.Expr:
    head_var = fresh.fresh("h")
    tail_var = fresh.fresh("t")
    nil_rows = []
    cons_rows = []
    for obligations, rhs in matrix:
        k = _row_obligation_on((obligations, rhs), var)
        if k is None:
            nil_rows.append((list(obligations), rhs))
            cons_rows.append((list(obligations), rhs))
            continue
        pat = obligations[k][1]
        rest = obligations[:k] + obligations[k + 1 :]
        if isinstance(pat, PNil):
            nil_rows.append((rest, rhs))
        elif isinstance(pat, PCons):
            cons_rows.append(
                (rest + [(head_var, pat.head), (tail_var, pat.tail)], rhs)
            )
        elif isinstance(pat, PVar):
            # variable matches both; rebind the scrutinee variable
            bound_nil = rest if pat.name == "_" else rest + [(var, pat)]
            nil_rows.append((bound_nil, rhs))
            cons_rows.append((list(bound_nil), rhs))
        else:
            raise ParseError("list and non-list patterns mixed in match")
    nil_branch = _compile_matrix(nil_rows, fresh, pos)
    cons_branch = _compile_matrix(cons_rows, fresh, pos)
    return A.MatchList(A.Var(var, pos=pos), nil_branch, head_var, tail_var, cons_branch, pos=pos)


def _branch_tuple(idx: int, var: str, matrix, fresh: "_FreshNames", pos) -> A.Expr:
    width = len(matrix[0][0][idx][1].items)
    comp_vars = [fresh.fresh("c") for _ in range(width)]
    rows = []
    for obligations, rhs in matrix:
        k = _row_obligation_on((obligations, rhs), var)
        if k is None:
            rows.append((list(obligations), rhs))
            continue
        pat = obligations[k][1]
        rest = obligations[:k] + obligations[k + 1 :]
        if isinstance(pat, PTuple):
            if len(pat.items) != width:
                raise ParseError("tuple pattern arity mismatch")
            rows.append((rest + list(zip(comp_vars, pat.items)), rhs))
        elif isinstance(pat, PVar):
            rows.append((rest + ([] if pat.name == "_" else [(var, pat)]), rhs))
        else:
            raise ParseError("tuple and non-tuple patterns mixed in match")
    body = _compile_matrix(rows, fresh, pos)
    return A.MatchTuple(A.Var(var, pos=pos), tuple(comp_vars), body, pos=pos)


def _branch_sum(idx: int, var: str, matrix, fresh: "_FreshNames", pos) -> A.Expr:
    lvar = fresh.fresh("l")
    rvar = fresh.fresh("r")
    left_rows = []
    right_rows = []
    for obligations, rhs in matrix:
        k = _row_obligation_on((obligations, rhs), var)
        if k is None:
            left_rows.append((list(obligations), rhs))
            right_rows.append((list(obligations), rhs))
            continue
        pat = obligations[k][1]
        rest = obligations[:k] + obligations[k + 1 :]
        if isinstance(pat, PInl):
            left_rows.append((rest + [(lvar, pat.inner)], rhs))
        elif isinstance(pat, PInr):
            right_rows.append((rest + [(rvar, pat.inner)], rhs))
        elif isinstance(pat, PVar):
            bound = rest if pat.name == "_" else rest + [(var, pat)]
            left_rows.append((bound, rhs))
            right_rows.append((list(bound), rhs))
        else:
            raise ParseError("sum and non-sum patterns mixed in match")
    left_branch = _compile_matrix(left_rows, fresh, pos)
    right_branch = _compile_matrix(right_rows, fresh, pos)
    return A.MatchSum(A.Var(var, pos=pos), lvar, left_branch, rvar, right_branch, pos=pos)


# ---------------------------------------------------------------------------
# The parser proper
# ---------------------------------------------------------------------------


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.fresh = _FreshNames()
        self.current_fun: Optional[str] = None
        self.stat_counter = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.kind == kind and (text is None or tok.text == text)

    def at_symbol(self, text: str, offset: int = 0) -> bool:
        return self.at("symbol", text, offset)

    def at_keyword(self, text: str, offset: int = 0) -> bool:
        return self.at("keyword", text, offset)

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.line, tok.col)
        return self.next()

    def here(self) -> A.Pos:
        tok = self.peek()
        return A.Pos(tok.line, tok.col)

    # -- program ------------------------------------------------------------

    def parse_program(self) -> A.Program:
        functions: List[A.FunDef] = []
        while not self.at("eof"):
            if self.at_keyword("exception"):
                self.next()
                self.expect("ident")
                continue
            functions.append(self.parse_fundef())
        if not functions:
            raise ParseError("empty program")
        return A.Program(functions)

    def parse_fundef(self) -> A.FunDef:
        pos = self.here()
        self.expect("keyword", "let")
        recursive = False
        if self.at_keyword("rec"):
            self.next()
            recursive = True
        name_tok = self.expect("ident")
        name = name_tok.text
        if is_builtin(name):
            raise ParseError(f"cannot redefine builtin {name!r}", name_tok.line, name_tok.col)
        self.current_fun = name
        self.stat_counter = 0
        params: List[str] = []
        while not self.at_symbol("=") and not self.at_symbol(":"):
            params.append(self.parse_param())
        # optional return type annotation
        if self.at_symbol(":"):
            self.next()
            self.parse_type()
        self.expect("symbol", "=")
        body = self.parse_expr()
        if not params:
            raise ParseError(f"function {name!r} has no parameters", pos.line, pos.col)
        return A.FunDef(name, tuple(params), body, recursive=recursive, pos=pos)

    def parse_param(self) -> str:
        if self.at("ident"):
            return self.next().text
        if self.at_symbol("_"):
            self.next()
            return self.fresh.fresh("u")
        if self.at_symbol("("):
            self.next()
            tok = self.expect("ident")
            if self.at_symbol(":"):
                self.next()
                self.parse_type()
            self.expect("symbol", ")")
            return tok.text
        tok = self.peek()
        raise ParseError(f"expected parameter, found {tok.text!r}", tok.line, tok.col)

    # -- types (parsed and discarded; inference recomputes them) -------------

    def parse_type(self) -> A.Type:
        ty = self.parse_type_atom()
        items = [ty]
        while self.at_symbol("*"):
            self.next()
            items.append(self.parse_type_atom())
        if len(items) > 1:
            return A.TProd(tuple(items))
        return ty

    def parse_type_atom(self) -> A.Type:
        if self.at_symbol("("):
            self.next()
            ty = self.parse_type()
            self.expect("symbol", ")")
            return self._type_suffix(ty)
        if self.at_symbol("'"):
            self.next()
            name = self.expect("ident").text
            return self._type_suffix(A.TVar(name))
        tok = self.expect("ident")
        base = {"int": A.INT, "bool": A.BOOL, "unit": A.UNIT}.get(tok.text)
        if base is None:
            if tok.text == "list":
                raise ParseError("'list' must follow an element type", tok.line, tok.col)
            base = A.TVar(tok.text)
        return self._type_suffix(base)

    def _type_suffix(self, ty: A.Type) -> A.Type:
        while self.at("ident", "list"):
            self.next()
            ty = A.TList(ty)
        return ty

    # -- patterns -----------------------------------------------------------

    def parse_pattern(self):
        pat = self.parse_pattern_cons()
        return pat

    def parse_pattern_cons(self):
        head = self.parse_pattern_atom()
        if self.at_symbol("::"):
            self.next()
            tail = self.parse_pattern_cons()
            return PCons(head, tail)
        return head

    def parse_pattern_atom(self):
        tok = self.peek()
        if self.at_symbol("_"):
            self.next()
            return PVar("_")
        if self.at("ident"):
            name = self.next().text
            if name == "Left":
                return PInl(self.parse_pattern_atom())
            if name == "Right":
                return PInr(self.parse_pattern_atom())
            return PVar(name)
        if self.at_symbol("["):
            self.next()
            items = []
            if not self.at_symbol("]"):
                items.append(self.parse_pattern())
                while self.at_symbol(";"):
                    self.next()
                    items.append(self.parse_pattern())
            self.expect("symbol", "]")
            pat = PNil()
            for item in reversed(items):
                pat = PCons(item, pat)
            return pat
        if self.at_symbol("("):
            self.next()
            if self.at_symbol(")"):
                self.next()
                return PUnit()
            items = [self.parse_pattern()]
            while self.at_symbol(","):
                self.next()
                items.append(self.parse_pattern())
            self.expect("symbol", ")")
            if len(items) == 1:
                return items[0]
            return PTuple(tuple(items))
        raise ParseError(f"expected pattern, found {tok.text!r}", tok.line, tok.col)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        pos = self.here()
        if self.at_keyword("let"):
            return self.parse_let()
        if self.at_keyword("if"):
            self.next()
            cond = self.parse_expr()
            self.expect("keyword", "then")
            then_branch = self.parse_expr()
            self.expect("keyword", "else")
            else_branch = self.parse_expr()
            return A.If(cond, then_branch, else_branch, pos=pos)
        if self.at_keyword("match"):
            return self.parse_match()
        if self.at_keyword("raise"):
            self.next()
            tok = self.expect("ident")
            return A.ErrorExpr(tok.text, pos=pos)
        if self.at_keyword("fun"):
            tok = self.peek()
            raise ParseError("higher-order functions are not supported", tok.line, tok.col)
        return self.parse_or()

    def parse_let(self) -> A.Expr:
        pos = self.here()
        self.expect("keyword", "let")
        if self.at_keyword("rec"):
            tok = self.peek()
            raise ParseError("local 'let rec' is not supported", tok.line, tok.col)
        pat = self.parse_pattern()
        if self.at_symbol(","):
            # OCaml allows unparenthesized tuple patterns in let bindings:
            #   let lower, upper = partition pivot xs in ...
            items = [pat]
            while self.at_symbol(","):
                self.next()
                items.append(self.parse_pattern())
            pat = PTuple(tuple(items))
        if self.at_symbol(":"):
            self.next()
            self.parse_type()
        self.expect("symbol", "=")
        bound = self.parse_expr()
        self.expect("keyword", "in")
        body = self.parse_expr()
        if isinstance(pat, PVar):
            name = pat.name if pat.name != "_" else self.fresh.fresh("u")
            return A.Let(name, bound, body, pos=pos)
        tmp = self.fresh.fresh("b")
        compiled = _compile_match(tmp, [(pat, body)], self.fresh, pos)
        return A.Let(tmp, bound, compiled, pos=pos)

    def parse_match(self) -> A.Expr:
        pos = self.here()
        self.expect("keyword", "match")
        scrut = self.parse_expr()
        self.expect("keyword", "with")
        arms = []
        if self.at_symbol("|"):
            self.next()
        while True:
            pat = self.parse_pattern()
            self.expect("symbol", "->")
            rhs = self.parse_expr()
            arms.append((pat, rhs))
            if self.at_symbol("|"):
                self.next()
                continue
            break
        if isinstance(scrut, A.Var):
            return _compile_match(scrut.name, arms, self.fresh, pos)
        tmp = self.fresh.fresh("s")
        compiled = _compile_match(tmp, arms, self.fresh, pos)
        return A.Let(tmp, scrut, compiled, pos=pos)

    def parse_or(self) -> A.Expr:
        # `a || b` desugars to `if a then true else b` at parse time so that
        # share-let normalization cannot break short-circuit evaluation
        left = self.parse_and()
        while self.at_symbol("||"):
            pos = self.here()
            self.next()
            right = self.parse_and()
            left = A.If(left, A.BoolLit(True, pos=pos), right, pos=pos)
        return left

    def parse_and(self) -> A.Expr:
        # `a && b` desugars to `if a then b else false` (see parse_or)
        left = self.parse_cmp()
        while self.at_symbol("&&"):
            pos = self.here()
            self.next()
            right = self.parse_cmp()
            left = A.If(left, right, A.BoolLit(False, pos=pos), pos=pos)
        return left

    def parse_cmp(self) -> A.Expr:
        left = self.parse_cons()
        if self.peek().kind == "symbol" and self.peek().text in A.CMP_OPS:
            pos = self.here()
            op = self.next().text
            right = self.parse_cons()
            return A.BinOp(op, left, right, pos=pos)
        return left

    def parse_cons(self) -> A.Expr:
        head = self.parse_additive()
        if self.at_symbol("::"):
            pos = self.here()
            self.next()
            tail = self.parse_cons()
            return A.Cons(head, tail, pos=pos)
        return head

    def parse_additive(self) -> A.Expr:
        left = self.parse_multiplicative()
        while self.peek().kind == "symbol" and self.peek().text in ("+", "-"):
            pos = self.here()
            op = self.next().text
            right = self.parse_multiplicative()
            left = A.BinOp(op, left, right, pos=pos)
        return left

    def parse_multiplicative(self) -> A.Expr:
        left = self.parse_unary()
        while (self.peek().kind == "symbol" and self.peek().text in ("*", "/")) or self.at_keyword("mod"):
            pos = self.here()
            op = self.next().text
            right = self.parse_unary()
            left = A.BinOp(op, left, right, pos=pos)
        return left

    def parse_unary(self) -> A.Expr:
        pos = self.here()
        if self.at_symbol("-"):
            self.next()
            operand = self.parse_unary()
            if isinstance(operand, A.IntLit):
                return A.IntLit(-operand.value, pos=pos)
            return A.Neg("-", operand, pos=pos)
        if self.at_keyword("not"):
            self.next()
            operand = self.parse_unary()
            return A.Neg("not", operand, pos=pos)
        return self.parse_app()

    def parse_app(self) -> A.Expr:
        pos = self.here()
        if self.at("ident"):
            name = self.peek().text
            if name in ("Raml.tick", "tick"):
                self.next()
                return self.parse_tick(pos)
            if name in ("Raml.stat", "stat"):
                self.next()
                self.stat_counter += 1
                label = f"{self.current_fun or 'main'}#{self.stat_counter}"
                body = self.parse_atom()
                return A.Stat(label, body, pos=pos)
            if name in ("Left", "Right"):
                self.next()
                operand = self.parse_atom()
                cls = A.Inl if name == "Left" else A.Inr
                return cls(operand, pos=pos)
            # function application: ident followed by atoms
            if self._atom_follows(1):
                self.next()
                args = [self.parse_atom()]
                while self._atom_follows(0):
                    args.append(self.parse_atom())
                return A.App(name, tuple(args), pos=pos)
        return self.parse_atom()

    def parse_tick(self, pos: A.Pos) -> A.Expr:
        negative = False
        if self.at_symbol("-"):
            self.next()
            negative = True
        if self.at_symbol("("):
            self.next()
            if self.at_symbol("-"):
                self.next()
                negative = True
            tok = self.next()
            self.expect("symbol", ")")
        else:
            tok = self.next()
        if tok.kind not in ("int", "float"):
            raise ParseError("tick expects a numeric literal", tok.line, tok.col)
        amount = float(tok.text)
        return A.Tick(-amount if negative else amount, pos=pos)

    def _atom_follows(self, offset: int) -> bool:
        tok = self.peek(offset)
        if tok.kind in ("int", "float", "ident"):
            return tok.text not in ("mod",)
        if tok.kind == "keyword" and tok.text in ("true", "false"):
            return True
        if tok.kind == "symbol" and tok.text in ("(", "["):
            return True
        return False

    def parse_atom(self) -> A.Expr:
        pos = self.here()
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return A.IntLit(int(tok.text), pos=pos)
        if tok.kind == "float":
            raise ParseError("float literals are only allowed in tick", tok.line, tok.col)
        if self.at_keyword("true"):
            self.next()
            return A.BoolLit(True, pos=pos)
        if self.at_keyword("false"):
            self.next()
            return A.BoolLit(False, pos=pos)
        if tok.kind == "ident":
            self.next()
            return A.Var(tok.text, pos=pos)
        if self.at_symbol("["):
            self.next()
            items = []
            if not self.at_symbol("]"):
                items.append(self.parse_expr())
                while self.at_symbol(";"):
                    self.next()
                    items.append(self.parse_expr())
            self.expect("symbol", "]")
            expr: A.Expr = A.Nil(pos=pos)
            for item in reversed(items):
                expr = A.Cons(item, expr, pos=pos)
            return expr
        if self.at_symbol("("):
            self.next()
            if self.at_symbol(")"):
                self.next()
                return A.UnitLit(pos=pos)
            items = [self.parse_expr()]
            while self.at_symbol(","):
                self.next()
                items.append(self.parse_expr())
            self.expect("symbol", ")")
            if len(items) == 1:
                return items[0]
            return A.TupleExpr(tuple(items), pos=pos)
        raise ParseError(f"expected expression, found {tok.text!r}", tok.line, tok.col)


def parse_program(source: str) -> A.Program:
    """Parse a whole program from source text."""
    return Parser(source).parse_program()


def parse_expr(source: str) -> A.Expr:
    """Parse a single expression (test helper)."""
    parser = Parser(source)
    parser.current_fun = "main"
    expr = parser.parse_expr()
    tok = parser.peek()
    if tok.kind != "eof":
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.col)
    return expr
