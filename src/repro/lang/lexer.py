"""Lexer for the OCaml-like surface syntax.

Produces a list of :class:`Token`.  Identifiers may be dotted
(``Raml.tick``), comments are OCaml-style ``(* ... *)`` and nest, and both
integer and floating-point literals are recognized (floats appear only as
tick amounts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import LexError

KEYWORDS = {
    "let",
    "rec",
    "and",
    "in",
    "match",
    "with",
    "if",
    "then",
    "else",
    "true",
    "false",
    "not",
    "raise",
    "exception",
    "mod",
    "fun",
    "of",
    "type",
}

# multi-character operators first so maximal munch works
SYMBOLS = [
    "->",
    "::",
    "<=",
    ">=",
    "<>",
    "&&",
    "||",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "|",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    ":",
    "_",
    "'",
]


@dataclass
class Token:
    kind: str  # 'int' | 'float' | 'ident' | 'keyword' | 'symbol' | 'string' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.text!r}@{self.line}:{self.col})"


#: default input-size caps: ``None`` = uncapped (the trusted-suite path).
#: Untrusted callers pass explicit caps from an ``ExecutionBudget``.
DEFAULT_MAX_CHARS: Optional[int] = None
DEFAULT_MAX_TOKENS: Optional[int] = None


def tokenize(
    source: str,
    max_chars: Optional[int] = DEFAULT_MAX_CHARS,
    max_tokens: Optional[int] = DEFAULT_MAX_TOKENS,
) -> List[Token]:
    """Tokenize ``source``; raises :class:`LexError` on invalid input.

    ``max_chars``/``max_tokens`` bound untrusted input before any later
    stage sees it: oversized source or a token bomb is rejected with an
    ordinary :class:`LexError` (rendered as R001 by the linter), never a
    memory blowup.
    """
    if max_chars is not None and len(source) > max_chars:
        raise LexError(
            f"source too large: {len(source)} characters exceeds the "
            f"{max_chars}-character budget",
            1,
            1,
        )
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        if max_tokens is not None and len(tokens) >= max_tokens:
            raise LexError(
                f"token budget exceeded: more than {max_tokens} tokens",
                line,
                col,
            )
        ch = source[i]
        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # comments (* ... *), nesting
        if source.startswith("(*", i):
            depth = 1
            start_line, start_col = line, col
            advance(2)
            while i < n and depth > 0:
                if source.startswith("(*", i):
                    depth += 1
                    advance(2)
                elif source.startswith("*)", i):
                    depth -= 1
                    advance(2)
                else:
                    advance(1)
            if depth > 0:
                raise LexError("unterminated comment", start_line, start_col)
            continue
        # string literal (used by error messages)
        if ch == '"':
            start_line, start_col = line, col
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    buf.append(source[j + 1])
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise LexError("unterminated string", start_line, start_col)
            text = "".join(buf)
            advance(j + 1 - i)
            tokens.append(Token("string", text, start_line, start_col))
            continue
        # numbers: int or float (digits '.' digits)
        if ch.isdigit():
            start_line, start_col = line, col
            j = i
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
                text = source[i:j]
                advance(j - i)
                tokens.append(Token("float", text, start_line, start_col))
            else:
                text = source[i:j]
                advance(j - i)
                tokens.append(Token("int", text, start_line, start_col))
            continue
        # identifiers / keywords; dotted names allowed (Raml.tick)
        if ch.isalpha() or ch == "_" and _ident_follows(source, i):
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_'"):
                j += 1
            while j < n and source[j] == "." and j + 1 < n and (source[j + 1].isalpha() or source[j + 1] == "_"):
                j += 1
                while j < n and (source[j].isalnum() or source[j] in "_'"):
                    j += 1
            text = source[i:j]
            advance(j - i)
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        # symbols (maximal munch)
        matched: Optional[str] = None
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                matched = sym
                break
        if matched is not None:
            tokens.append(Token("symbol", matched, line, col))
            advance(len(matched))
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("eof", "", line, col))
    return tokens


def _ident_follows(source: str, i: int) -> bool:
    """Is ``_`` at position ``i`` the start of an identifier (``_foo``)?

    A lone ``_`` is the wildcard symbol; ``_x`` is an identifier.
    """
    return i + 1 < len(source) and (source[i + 1].isalnum() or source[i + 1] in "_'")
