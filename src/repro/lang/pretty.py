"""Pretty-printer for expressions and programs (debugging/documentation)."""

from __future__ import annotations

from . import ast as A


def pretty_expr(expr: A.Expr, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(expr, A.Var):
        return expr.name
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, A.UnitLit):
        return "()"
    if isinstance(expr, A.Nil):
        return "[]"
    if isinstance(expr, A.Tick):
        return f"tick {expr.amount}"
    if isinstance(expr, A.ErrorExpr):
        return f'error "{expr.message}"'
    if isinstance(expr, A.Cons):
        return f"{pretty_expr(expr.head)} :: {pretty_expr(expr.tail)}"
    if isinstance(expr, A.TupleExpr):
        return "(" + ", ".join(pretty_expr(e) for e in expr.items) + ")"
    if isinstance(expr, A.Inl):
        return f"Left {pretty_expr(expr.operand)}"
    if isinstance(expr, A.Inr):
        return f"Right {pretty_expr(expr.operand)}"
    if isinstance(expr, A.BinOp):
        return f"({pretty_expr(expr.left)} {expr.op} {pretty_expr(expr.right)})"
    if isinstance(expr, A.Neg):
        op = "-" if expr.op == "-" else "not "
        return f"{op}{pretty_expr(expr.operand)}"
    if isinstance(expr, A.App):
        args = " ".join(pretty_expr(a) for a in expr.args)
        return f"({expr.fname} {args})"
    if isinstance(expr, A.Stat):
        return f"stat[{expr.label}] ({pretty_expr(expr.body)})"
    if isinstance(expr, A.Let):
        return (
            f"let {expr.name} = {pretty_expr(expr.bound)} in\n"
            f"{pad}{pretty_expr(expr.body, indent)}"
        )
    if isinstance(expr, A.Share):
        return (
            f"share {expr.name} as {expr.name1}, {expr.name2} in\n"
            f"{pad}{pretty_expr(expr.body, indent)}"
        )
    if isinstance(expr, A.If):
        return (
            f"if {pretty_expr(expr.cond)}\n"
            f"{pad}then {pretty_expr(expr.then_branch, indent + 1)}\n"
            f"{pad}else {pretty_expr(expr.else_branch, indent + 1)}"
        )
    if isinstance(expr, A.MatchList):
        return (
            f"match {pretty_expr(expr.scrutinee)} with\n"
            f"{pad}| [] -> {pretty_expr(expr.nil_branch, indent + 1)}\n"
            f"{pad}| {expr.head_var} :: {expr.tail_var} -> "
            f"{pretty_expr(expr.cons_branch, indent + 1)}"
        )
    if isinstance(expr, A.MatchSum):
        return (
            f"match {pretty_expr(expr.scrutinee)} with\n"
            f"{pad}| Left {expr.left_var} -> {pretty_expr(expr.left_branch, indent + 1)}\n"
            f"{pad}| Right {expr.right_var} -> {pretty_expr(expr.right_branch, indent + 1)}"
        )
    if isinstance(expr, A.MatchTuple):
        names = ", ".join(expr.names)
        return (
            f"match {pretty_expr(expr.scrutinee)} with ({names}) ->\n"
            f"{pad}{pretty_expr(expr.body, indent)}"
        )
    return f"<{type(expr).__name__}>"


def pretty_program(program: A.Program) -> str:
    chunks = []
    for fdef in program:
        rec = "rec " if fdef.recursive else ""
        params = " ".join(fdef.params)
        sig = f" (* : {fdef.fun_type} *)" if fdef.fun_type else ""
        chunks.append(f"let {rec}{fdef.name} {params} ={sig}\n  {pretty_expr(fdef.body, 1)}")
    return "\n\n".join(chunks)
