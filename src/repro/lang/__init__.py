"""The first-order AARA language: syntax, semantics, and normalization.

The canonical pipeline is :func:`compile_program`:

>>> from repro.lang import compile_program, evaluate
>>> from repro.lang.values import from_python
>>> prog = compile_program('''
... let rec length xs =
...   match xs with
...   | [] -> 0
...   | hd :: tl -> let _ = Raml.tick 1.0 in 1 + length tl
... ''')
>>> evaluate(prog, "length", [from_python([1, 2, 3])]).cost
3.0
"""

from . import ast
from .interp import EvalResult, Interpreter, StatRecord, evaluate, run_on_inputs
from .normalize import normalize_program
from .parser import parse_expr, parse_program
from .types import typecheck_program
from .values import from_python, to_python


def compile_program(source: str, budget=None) -> ast.Program:
    """Parse, share-let-normalize, and type-check a program.

    ``budget`` (an :class:`~repro.config.ExecutionBudget`) caps the
    front end for untrusted source; ``None`` keeps the trusted path.
    """
    program = parse_program(
        source,
        max_chars=getattr(budget, "max_source_chars", None),
        max_tokens=getattr(budget, "max_tokens", None),
        max_depth=getattr(budget, "max_nesting_depth", None),
    )
    program = normalize_program(program)
    return typecheck_program(program)


__all__ = [
    "ast",
    "compile_program",
    "parse_program",
    "parse_expr",
    "normalize_program",
    "typecheck_program",
    "evaluate",
    "run_on_inputs",
    "Interpreter",
    "EvalResult",
    "StatRecord",
    "from_python",
    "to_python",
]
