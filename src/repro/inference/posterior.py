"""Containers and summaries for posterior collections of cost bounds.

Bayesian resource analysis returns a whole distribution over bounds
(Section 5); these helpers compute the paper's headline statistics:
fraction of sound bounds (Table 1), relative estimation-gap percentiles
(Fig. 5 / Tables 2–11), and median/percentile bound curves (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..aara.bound import ResourceBound, shape_features, synthetic_list
from ..lang.values import Value

ShapeFn = Callable[[int], List[Value]]
TruthFn = Callable[[int], float]


def default_shape(n: int) -> List[Value]:
    return [synthetic_list(n)]


@dataclass
class PosteriorResult:
    """Outcome of one analysis run (Opt has a single-element posterior)."""

    method: str  # 'opt' | 'bayeswc' | 'bayespc'
    mode: str  # 'data-driven' | 'hybrid'
    bounds: List[ResourceBound]
    runtime_seconds: float
    failures: int = 0  # posterior samples whose LP was infeasible
    diagnostics: Dict[str, float] = field(default_factory=dict)
    #: per-chain sampler health (divergences, self-healing retries, final
    #: step size, accept rate) — empty for Opt, which runs no sampler
    chain_diagnostics: List[Dict[str, float]] = field(default_factory=list)

    @property
    def num_bounds(self) -> int:
        return len(self.bounds)

    # -- evaluation helpers ---------------------------------------------------

    def curves(self, sizes: Sequence[int], shape_fn: Optional[ShapeFn] = None) -> np.ndarray:
        """Matrix of bound values, shape (num_bounds, len(sizes))."""
        shape_fn = shape_fn or default_shape
        out = np.empty((len(self.bounds), len(sizes)))
        coeffs = self._coefficient_matrix()
        for j, n in enumerate(sizes):
            shape = shape_fn(n)  # build the synthetic arguments once per size
            features = (
                shape_features(shape, self.bounds[0].params)
                if coeffs is not None
                else None
            )
            if features is not None and features.shape[0] == coeffs.shape[1]:
                # Φ is linear in the annotation coefficients: one structure
                # walk per size, a dot product per bound.
                out[:, j] = coeffs @ features
            else:
                for i, bound in enumerate(self.bounds):
                    out[i, j] = bound.evaluate(shape)
        return out

    def _coefficient_matrix(self) -> Optional[np.ndarray]:
        """(num_bounds, 1 + num_coeffs) matrix, or None if the bounds do
        not share one annotation template (they always do in practice —
        one posterior comes from one program at one degree)."""
        if not self.bounds:
            return None
        reference = self.bounds[0]
        signature = tuple(ann.simple() for ann in reference.params)
        width = len(reference.coefficients())
        rows = []
        for bound in self.bounds:
            if (
                tuple(ann.simple() for ann in bound.params) != signature
                or len(coeffs := bound.coefficients()) != width
            ):
                return None
            rows.append(coeffs)
        return np.array(rows)

    def soundness_fraction(
        self,
        truth: TruthFn,
        sizes: Sequence[int],
        shape_fn: Optional[ShapeFn] = None,
        tol: float = 1e-6,
    ) -> float:
        """Fraction of bounds that dominate the true worst case on all sizes."""
        if not self.bounds:
            return 0.0
        curves = self.curves(sizes, shape_fn)
        truths = np.array([truth(n) for n in sizes])
        sound = np.all(curves >= truths[None, :] - tol, axis=1)
        return float(sound.mean())

    def relative_gaps(
        self,
        truth: TruthFn,
        size: int,
        shape_fn: Optional[ShapeFn] = None,
    ) -> np.ndarray:
        """Relative estimation gaps (bound − truth)/truth at one size (Fig. 5)."""
        shape_fn = shape_fn or default_shape
        true_value = truth(size)
        if true_value == 0:
            true_value = 1.0
        values = np.array([bound.evaluate(shape_fn(size)) for bound in self.bounds])
        return (values - true_value) / true_value

    def gap_percentiles(
        self,
        truth: TruthFn,
        size: int,
        percentiles=(5, 50, 95),
        shape_fn: Optional[ShapeFn] = None,
    ) -> Dict[int, float]:
        gaps = self.relative_gaps(truth, size, shape_fn)
        if gaps.size == 0:
            return {p: float("nan") for p in percentiles}
        return {p: float(np.percentile(gaps, p)) for p in percentiles}

    def percentile_curves(
        self,
        sizes: Sequence[int],
        percentiles=(10, 50, 90),
        shape_fn: Optional[ShapeFn] = None,
    ) -> Dict[int, List[float]]:
        """Per-size percentile curves of the posterior bounds (Fig. 6 bands)."""
        curves = self.curves(sizes, shape_fn)
        return {
            p: [float(v) for v in np.percentile(curves, p, axis=0)] for p in percentiles
        }

    def median_coefficients(self) -> List[float]:
        if not self.bounds:
            return []
        matrix = np.array([b.coefficients() for b in self.bounds])
        return [float(v) for v in np.median(matrix, axis=0)]
