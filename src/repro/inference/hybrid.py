"""Hybrid AARA: the typing rules H:Opt, H:BayesWC, H:BayesPC (Section 6).

This module is the engine for *all six* analysis configurations of the
paper's evaluation.  A fully data-driven analysis is the special case
where the whole function body is a single ``stat`` expression (the
benchmark programs are written exactly that way, mirroring Appendix C),
so Opt / BayesWC / BayesPC and their Hybrid counterparts share one code
path:

* **Opt / Hybrid Opt** — the H:Opt rule (Eq. 6.2) adds, for every runtime
  measurement, the constraint ``p0 + Φ(V:Γ) ≥ q0 + Φ(v:a) + c`` to the
  conventional AARA LP; the staged objective first minimizes the total
  cost gap (Opt-LP), then the root coefficients.
* **BayesWC / Hybrid BayesWC** — observed costs are replaced by symbolic
  per-size worst-case variables that are *pinned* to posterior simulations
  from the survival model, producing the M joint LPs of Fig. 3a.
* **BayesPC / Hybrid BayesPC** — the first pass builds the constraint set
  C0 with H:Opt; reflective HMC then samples the BayesPC posterior
  restricted to C0's polytope (Eq. 6.3); each draw pins the stat-site
  coefficients and re-solves the LP (Eqs. 6.4–6.5, Fig. 3b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .bayespc import BayesPCDensity, LikelihoodRow
from .bayeswc import WorstCaseSamples, infer_worst_case_samples
from .dataset import RuntimeDataset, StatDataset
from .hyperparams import resolve_bayespc_hyperparams
from .posterior import PosteriorResult
from .. import telemetry
from ..aara.analyze import Analysis, _snap, build_analysis, solve_analysis
from ..aara.annot import AnnType, instantiate, make_template, potential_of_env, potential_of_value
from ..aara.bound import ResourceBound
from ..aara.typecheck import StatSite
from ..config import AnalysisConfig
from ..errors import InfeasibleError, InferenceError
from ..lang import ast as A
from ..lp import LinExpr, solve_lexicographic
from ..stats.hmc import HMCConfig
from ..stats.polytope import low_norm_interior_point, polytope_from_lp
from ..stats.reflective_hmc import (
    diagonal_preconditioner,
    map_estimate,
    reflective_hmc_chains,
    rescale_problem,
)

SizeKey = Tuple[int, ...]


# ---------------------------------------------------------------------------
# Site bookkeeping shared by the three rules
# ---------------------------------------------------------------------------


@dataclass
class SiteOccurrence:
    """One application of a data-driven typing rule during constraint gen."""

    label: str
    ctx: Dict[str, AnnType]
    p_in: LinExpr
    result_ann: AnnType
    q0: LinExpr
    costful: bool
    #: per-observation symbolic worst-case costs (costful occurrences only)
    rows: List[LikelihoodRow] = field(default_factory=list)

    def judgment_vars(self) -> List[str]:
        names: set = set()
        for ann in self.ctx.values():
            for coeff in ann.coefficients():
                names.update(coeff.variables())
        names.update(self.p_in.variables())
        for coeff in self.result_ann.coefficients():
            names.update(coeff.variables())
        names.update(self.q0.variables())
        return sorted(names)


@dataclass
class SiteCollector:
    """Accumulates data constraints, the gap objective, and w-variables."""

    occurrences: List[SiteOccurrence] = field(default_factory=list)
    gap_objective: LinExpr = field(default_factory=LinExpr)
    #: (label, size key) -> worst-case variable name (BayesWC mode)
    wvars: Dict[Tuple[str, SizeKey], str] = field(default_factory=dict)

    def site_vars(self) -> List[str]:
        names: set = set()
        for occ in self.occurrences:
            names.update(occ.judgment_vars())
        return sorted(names)

    def likelihood_rows(self) -> List[LikelihoodRow]:
        rows: List[LikelihoodRow] = []
        for occ in self.occurrences:
            if occ.costful:
                rows.extend(occ.rows)
        return rows


def make_data_handler(
    dataset: RuntimeDataset,
    collector: SiteCollector,
    cost_mode: str = "const",
):
    """Build a stat handler implementing H:Opt (``const``) or the symbolic
    worst-case-cost variant used by H:BayesWC (``wvar``)."""
    if cost_mode not in ("const", "wvar"):
        raise InferenceError(f"unknown cost mode {cost_mode!r}")

    def handler(site: StatSite) -> Tuple[AnnType, LinExpr]:
        ds: StatDataset = dataset[site.label]
        lp = site.lp
        result_ann = make_template(site.result_type, site.degree, lp, hint=f"st.{site.label}")
        q0 = lp.fresh(f"st.{site.label}.q0")
        occ = SiteOccurrence(site.label, dict(site.ctx), site.p_in, result_ann, q0, site.costful)
        collector.occurrences.append(occ)

        max_costs = ds.max_costs()
        # group observations whose potential expressions coincide
        groups: Dict[Tuple, List] = {}
        for obs in ds.observations:
            phi_env = potential_of_env(obs.env_dict(), site.ctx)
            phi_out = potential_of_value(obs.value, result_ann)
            key = (phi_env, phi_out, obs.size_key())
            groups.setdefault(key, []).append(obs)

        for (phi_env, phi_out, size_key), members in groups.items():
            count = len(members)
            cmax = max_costs[size_key]
            lhs = site.p_in + phi_env
            base_rhs = q0 + phi_out
            if not site.costful:
                # cost-free derivations pass potential but pay nothing
                lp.add_ge(lhs, base_rhs, note=f"H:cf {site.label}")
                continue
            if cost_mode == "const":
                cost_term: LinExpr | float = cmax
            else:
                wname = collector.wvars.get((site.label, size_key))
                if wname is None:
                    wexpr = lp.fresh(f"wc.{site.label}")
                    wname = wexpr.variables()[0]
                    collector.wvars[(site.label, size_key)] = wname
                cost_term = LinExpr.var(wname)
            lp.add_ge(lhs, base_rhs + cost_term, note=f"H:data {site.label}")
            gap = (lhs - base_rhs - cost_term) * count
            collector.gap_objective = collector.gap_objective + gap
            occ.rows.append(
                LikelihoodRow(expr=lhs - base_rhs, cost=cmax, count=count)
            )
        return result_ann, q0

    return handler


# ---------------------------------------------------------------------------
# Opt and Hybrid Opt (Section 5.1 / rule H:Opt)
# ---------------------------------------------------------------------------


def classify_mode(program: A.Program, fname: str) -> str:
    """'data-driven' when the root body is a single stat expression."""
    body = program[fname].body
    if isinstance(body, A.Stat):
        return "data-driven"
    return "hybrid"


def run_opt(
    program: A.Program,
    fname: str,
    dataset: RuntimeDataset,
    config: AnalysisConfig,
) -> PosteriorResult:
    """Optimization-based analysis (Opt-LP embedded in AARA via H:Opt)."""
    start = time.perf_counter()
    collector = SiteCollector()
    handler = make_data_handler(dataset, collector, cost_mode="const")
    analysis = build_analysis(
        program, fname, config.degree, stat_handler=handler, budget=config.budget
    )
    result = solve_analysis(
        analysis,
        extra_objectives=[collector.gap_objective],
        objective_mode=config.objective,
    )
    elapsed = time.perf_counter() - start
    return PosteriorResult(
        method="opt",
        mode=classify_mode(program, fname),
        bounds=[result.bound],
        runtime_seconds=elapsed,
        diagnostics={
            "gap": result.solution.objective_values[0],
            "lp_fallbacks": float(result.solution.fallbacks),
        },
    )


# ---------------------------------------------------------------------------
# BayesWC and Hybrid BayesWC (Section 5.2 / rule H:BayesWC, Fig. 3a)
# ---------------------------------------------------------------------------


def run_bayeswc(
    program: A.Program,
    fname: str,
    dataset: RuntimeDataset,
    config: AnalysisConfig,
    rng: Optional[np.random.Generator] = None,
) -> PosteriorResult:
    start = time.perf_counter()
    rng = rng if rng is not None else np.random.default_rng(config.seed)

    collector = SiteCollector()
    handler = make_data_handler(dataset, collector, cost_mode="wvar")
    analysis = build_analysis(
        program, fname, config.degree, stat_handler=handler, budget=config.budget
    )
    objectives = [collector.gap_objective] + analysis.root_objectives(config.objective)

    # survival inference per label actually used by the analysis
    labels = sorted({occ.label for occ in collector.occurrences})
    wc: Dict[str, WorstCaseSamples] = {}
    with telemetry.span("posterior.survival", labels=len(labels)):
        for label in labels:
            wc[label] = infer_worst_case_samples(dataset[label], config, rng)

    bounds: List[ResourceBound] = []
    failures = 0
    lp_fallbacks = 0
    sig = analysis.signature
    with telemetry.span(
        "posterior.resolve", method="bayeswc", samples=config.num_posterior_samples
    ) as tspan:
        for j in range(config.num_posterior_samples):
            pinned = {}
            for (label, size_key), wname in collector.wvars.items():
                pinned[wname] = float(wc[label].samples[size_key][j])
            try:
                solution = solve_lexicographic(
                    analysis.lp, objectives, context=f"BayesWC sample {j}", pinned=pinned
                )
            except InfeasibleError:
                failures += 1
                continue
            lp_fallbacks += solution.fallbacks
            assignment = {k: _snap(v) for k, v in solution.assignment.items()}
            bounds.append(
                ResourceBound(
                    fname,
                    tuple(instantiate(p, assignment) for p in sig.params),
                    _snap(solution.value(sig.p0)),
                )
            )
        tspan.set(failures=failures, lp_fallbacks=lp_fallbacks)
    elapsed = time.perf_counter() - start
    diagnostics: Dict[str, float] = {}
    chain_diagnostics: List[Dict[str, float]] = []
    for label in labels:
        diagnostics[f"accept_rate[{label}]"] = wc[label].accept_rate
        diagnostics[f"divergences[{label}]"] = float(wc[label].divergences)
        diagnostics[f"sampler_retries[{label}]"] = float(wc[label].retries)
        chain_diagnostics.extend(wc[label].chain_diagnostics)
    diagnostics["lp_fallbacks"] = float(lp_fallbacks)
    return PosteriorResult(
        method="bayeswc",
        mode=classify_mode(program, fname),
        bounds=bounds,
        runtime_seconds=elapsed,
        failures=failures,
        diagnostics=diagnostics,
        chain_diagnostics=chain_diagnostics,
    )


# ---------------------------------------------------------------------------
# BayesPC and Hybrid BayesPC (Section 5.3 / Section 6.2, Fig. 3b)
# ---------------------------------------------------------------------------


def run_bayespc(
    program: A.Program,
    fname: str,
    dataset: RuntimeDataset,
    config: AnalysisConfig,
    rng: Optional[np.random.Generator] = None,
) -> PosteriorResult:
    start = time.perf_counter()
    rng = rng if rng is not None else np.random.default_rng(config.seed)

    # First pass: conventional AARA + H:Opt => constraint set C0 (Fig. 3b)
    collector = SiteCollector()
    handler = make_data_handler(dataset, collector, cost_mode="const")
    analysis = build_analysis(
        program, fname, config.degree, stat_handler=handler, budget=config.budget
    )

    # Preliminary Opt solve: feasibility check + empirical Bayes (App. B)
    opt_solution = solve_lexicographic(
        analysis.lp,
        [collector.gap_objective] + analysis.root_objectives(config.objective),
        context="BayesPC preliminary Opt",
    )
    opt_gaps = [
        row.expr.evaluate(opt_solution.assignment) - row.cost
        for row in collector.likelihood_rows()
    ]
    hyper = resolve_bayespc_hyperparams(config.bayespc, analysis, opt_solution, opt_gaps)

    # Build the polytope over C0 and the constrained density (Eq. 6.3)
    with telemetry.span("posterior.polytope") as tspan:
        reduced = polytope_from_lp(analysis.lp)
        tspan.set(dim=int(reduced.polytope.dim), facets=int(reduced.polytope.A.shape[0]))
    density = BayesPCDensity(
        reduced.names,
        collector.likelihood_rows(),
        hyper,
        collector.site_vars(),
        nuisance_factor=config.bayespc.nuisance_scale_factor,
        truncation_floor=config.bayespc.truncation_floor,
    )
    logdensity_z = density.reduced_density(reduced)

    sampler = config.sampler
    # Warm start at the (convex) MAP and precondition by the local curvature;
    # the raw interior point can be 10^5 nats from the typical set.
    with telemetry.span("posterior.warmstart", dim=int(reduced.polytope.dim)):
        interior = low_norm_interior_point(reduced)
        mode = map_estimate(logdensity_z, reduced.polytope, interior)
        scales = diagonal_preconditioner(logdensity_z, mode, reduced.polytope)
        scaled = rescale_problem(logdensity_z, reduced.polytope, scales)
        base_start = scaled.from_z(mode)
    starts = []
    slack = scaled.polytope.slack(base_start) if scaled.polytope.dim else np.zeros(0)
    margin = float(max(slack.min(), 0.0)) if slack.size else 1.0
    for _ in range(sampler.n_chains):
        jitter = rng.normal(size=scaled.polytope.dim) * min(0.1, 0.2 * margin)
        candidate = base_start + jitter
        if scaled.polytope.dim == 0 or scaled.polytope.contains(candidate, tol=-1e-10):
            starts.append(candidate)
        else:
            starts.append(base_start)
    M = config.num_posterior_samples
    per_chain = max(32, int(np.ceil(M / sampler.n_chains)))
    hmc_config = HMCConfig(
        n_samples=per_chain,
        n_warmup=sampler.n_warmup,
        n_leapfrog=sampler.n_leapfrog,
        initial_step_size=sampler.initial_step_size,
        target_accept=sampler.target_accept,
    )
    # precompiled batched density: the embedding, rescale and likelihood
    # matrices are folded once here instead of re-applied per step
    fused_density = density.scaled_reduced_density(reduced, scales)
    chain_result = reflective_hmc_chains(
        fused_density, scaled.polytope, starts, hmc_config, rng,
        fault_key=fname,
    )
    draws_scaled = chain_result.samples
    idx = np.linspace(0, draws_scaled.shape[0] - 1, M).astype(int)
    draws = draws_scaled[idx] * scales[None, :]

    # Per-draw: pin the sampled stat-judgment coefficients, re-solve (Eq. 6.5)
    site_vars = collector.site_vars()
    sig = analysis.signature
    root_objectives = analysis.root_objectives(config.objective)
    bounds: List[ResourceBound] = []
    failures = 0
    lp_fallbacks = opt_solution.fallbacks
    with telemetry.span(
        "posterior.resolve", method="bayespc", samples=int(draws.shape[0])
    ) as tspan:
        for j in range(draws.shape[0]):
            assignment_x = reduced.assignment(draws[j])
            pinned = {name: max(0.0, assignment_x.get(name, 0.0)) for name in site_vars}
            try:
                solution = solve_lexicographic(
                    analysis.lp,
                    root_objectives,
                    context=f"BayesPC sample {j}",
                    pinned=pinned,
                    pin_slack=1e-6,
                )
            except InfeasibleError:
                failures += 1
                continue
            lp_fallbacks += solution.fallbacks
            assignment = {k: _snap(v) for k, v in solution.assignment.items()}
            bounds.append(
                ResourceBound(
                    fname,
                    tuple(instantiate(p, assignment) for p in sig.params),
                    _snap(solution.value(sig.p0)),
                )
            )
        tspan.set(failures=failures, lp_fallbacks=lp_fallbacks)
    elapsed = time.perf_counter() - start
    return PosteriorResult(
        method="bayespc",
        mode=classify_mode(program, fname),
        bounds=bounds,
        runtime_seconds=elapsed,
        failures=failures,
        diagnostics={
            "accept_rate": chain_result.accept_rate,
            "gamma0": hyper.gamma0,
            "theta1": hyper.theta1,
            "polytope_dim": float(reduced.polytope.dim),
            "divergences": float(chain_result.divergences),
            "sampler_retries": float(chain_result.retries),
            "lp_fallbacks": float(lp_fallbacks),
        },
        chain_diagnostics=list(chain_result.chain_diagnostics),
    )


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------


METHODS = {
    "opt": run_opt,
    "bayeswc": run_bayeswc,
    "bayespc": run_bayespc,
}


def run_analysis(
    program: A.Program,
    fname: str,
    dataset: RuntimeDataset,
    config: AnalysisConfig,
    method: str,
    rng: Optional[np.random.Generator] = None,
) -> PosteriorResult:
    """Run one of {opt, bayeswc, bayespc} on a (possibly hybrid) program."""
    if method not in METHODS:
        raise InferenceError(f"unknown analysis method {method!r}")
    if method == "opt":
        return run_opt(program, fname, dataset, config)
    return METHODS[method](program, fname, dataset, config, rng=rng)
