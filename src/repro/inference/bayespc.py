"""BayesPC — Bayesian inference on polynomial coefficients (Sections 5.3, 6.2).

The generative model of Eqs. (5.14)–(5.16) places truncated-normal priors
on the resource coefficients, defines the symbolic worst-case cost
``c'_i = p0 + Φ(V_i:Γ) − q0 − Φ(v_i:a)`` (a *linear* function of the
coefficients), and models observed costs as ``c_i = c'_i − ε_i`` with
``ε_i ~ Weibull(θ0, θ1)`` truncated to ``[0, c'_i]``.

The posterior is therefore a smooth density **restricted to the convex
polytope** cut out by the data constraints plus — in Hybrid BayesPC — the
conventional-AARA constraint set C0 (Eq. 6.3).  We sample it with
reflective HMC after eliminating equality constraints (Remark 5.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .hyperparams import BayesPCHyperparams
from ..errors import InferenceError
from ..lp import LinExpr
from ..stats.densities import BatchedDensity, rowmat
from ..stats.polytope import ReducedPolytope


@dataclass
class LikelihoodRow:
    """One observation's symbolic worst-case cost c'_i = w·x + o."""

    expr: LinExpr
    cost: float
    count: int = 1


class BayesPCDensity:
    """Log-density (and gradient) of the BayesPC posterior over x-space.

    * prior: HalfNormal(γ0) on the stat-judgment coefficient variables,
      HalfNormal(γ0 · nuisance_factor) on all remaining (nuisance ε)
      variables — a proper, weakly-informative stand-in for the paper's
      uninformative prior that keeps the posterior integrable when C0 is
      unbounded;
    * likelihood: truncated-Weibull cost gaps, including the truncation
      normalizer 1/F(c'_i) whose gradient pushes c'_i away from zero.
    """

    def __init__(
        self,
        names: Sequence[str],
        rows: Sequence[LikelihoodRow],
        hyper: BayesPCHyperparams,
        site_vars: Sequence[str],
        nuisance_factor: float = 20.0,
        truncation_floor: float = 0.1,
    ):
        self.names = list(names)
        self.index = {name: i for i, name in enumerate(self.names)}
        n = len(self.names)
        site_set = set(site_vars)
        scales = np.full(n, hyper.gamma0 * nuisance_factor)
        for name in site_set:
            if name in self.index:
                scales[self.index[name]] = hyper.gamma0
        self.prior_inv_var = 1.0 / scales**2
        self.theta0 = hyper.theta0
        self.theta1 = hyper.theta1
        #: the truncation interval endpoint is censored below at this value;
        #: without it the normalizer 1/F(c') has an (integrable) singularity
        #: at c' = 0 wherever a zero-cost observation allows c' -> 0, which
        #: creates boundary density spikes no sampler can traverse
        self.truncation_floor = truncation_floor

        # vectorize c'_i = W x + o
        W = np.zeros((len(rows), n))
        offsets = np.zeros(len(rows))
        costs = np.zeros(len(rows))
        counts = np.zeros(len(rows))
        for i, row in enumerate(rows):
            for name, coef in row.expr.coeffs.items():
                if name not in self.index:
                    raise InferenceError(f"likelihood references unknown variable {name!r}")
                W[i, self.index[name]] = coef
            offsets[i] = row.expr.const
            costs[i] = row.cost
            counts[i] = row.count
        self.W = W
        self.offsets = offsets
        self.costs = costs
        self.counts = counts

    # -- density ---------------------------------------------------------------

    def logdensity_and_grad(self, x: np.ndarray) -> Tuple[float, np.ndarray]:
        k, lam = self.theta0, self.theta1
        logp = float(-0.5 * np.sum(self.prior_inv_var * x * x))
        grad = -self.prior_inv_var * x
        if self.W.shape[0] == 0:
            return logp, grad

        cprime = self.W @ x + self.offsets
        eps = cprime - self.costs
        if np.any(eps < 0.0) or np.any(cprime < 0.0):
            return -np.inf, grad
        if k > 1.0 and np.any(eps <= 1e-12):
            # the Weibull log-pdf diverges to -inf at eps = 0 for shape > 1
            return -np.inf, grad
        eps_safe = np.maximum(eps, 1e-12)

        t_eps = (eps_safe / lam) ** k
        log_pdf = math.log(k) - k * math.log(lam) + (k - 1.0) * np.log(eps_safe) - t_eps
        # truncation normalizer: -log F(c') with F the Weibull CDF; the
        # endpoint is censored below at truncation_floor (see __init__)
        cp_cens = np.maximum(cprime, self.truncation_floor)
        t_cp = (cp_cens / lam) ** k
        log_cdf = np.log(-np.expm1(-t_cp))
        loglik = float(np.sum(self.counts * (log_pdf - log_cdf)))

        # gradients w.r.t. c' (both eps and the normalizer move with c')
        dlog_pdf = (k - 1.0) / eps_safe - (k / lam) * (eps_safe / lam) ** (k - 1.0)
        # d/dc' [-log F] = -f(c')/F(c'), zero in the censored region
        pdf_cp = (k / lam) * (cp_cens / lam) ** (k - 1.0) * np.exp(-t_cp)
        cdf_cp = -np.expm1(-t_cp)
        hazard = np.where(
            cprime > self.truncation_floor,
            pdf_cp / np.maximum(cdf_cp, 1e-300),
            0.0,
        )
        row_grad = self.counts * (dlog_pdf - hazard)
        grad = grad + self.W.T @ row_grad
        return logp + loglik, grad

    def reduced_density(self, reduced: ReducedPolytope):
        """The density pulled back to the equality-reduced z-space."""
        if reduced.names != self.names:
            raise InferenceError("variable order mismatch between density and polytope")
        affine = reduced.affine

        def logdensity_and_grad_z(z: np.ndarray) -> Tuple[float, np.ndarray]:
            x = affine.embed(z)
            logp, grad_x = self.logdensity_and_grad(x)
            if not np.isfinite(logp):
                return -np.inf, np.zeros(affine.reduced_dim)
            return logp, affine.pull_gradient(grad_x)

        return logdensity_and_grad_z

    def scaled_reduced_density(
        self, reduced: ReducedPolytope, scales: np.ndarray
    ) -> "ScaledReducedDensity":
        """Fused, precompiled batched density over preconditioned y-space.

        Composes the equality-reduction embedding ``x = x0 + N z``, the
        preconditioner rescale ``z = scales · y`` and the likelihood's
        ``c' = W x + o`` into two constant matrices, so one sampler step
        costs two batched matvecs in and two out — for the whole chain
        batch — instead of a chain of per-chain closure calls.
        """
        if reduced.names != self.names:
            raise InferenceError("variable order mismatch between density and polytope")
        return ScaledReducedDensity(self, reduced.affine, np.asarray(scales, float))

    # -- posterior worst-case costs (for Fig. 2c-style reporting) ---------------

    def worst_case_costs(self, x: np.ndarray) -> np.ndarray:
        """c'_i values at a coefficient draw."""
        return self.W @ x + self.offsets


class ScaledReducedDensity(BatchedDensity):
    """Batched BayesPC posterior in the sampler's (reduced, scaled) coords.

    Semantically ``scaled_density ∘ reduced_density`` from the closures
    above, but evaluated for a whole ``(rows, dim)`` batch with the
    affine maps folded into precomputed effective matrices:

        x  = x0 + Neff·y        (Neff = N · diag(scales))
        c' = Weff·y + ceff      (Weff = W·Neff, ceff = W·x0 + offsets)
        ∇y = Neffᵀ·∇x_prior + Weffᵀ·row_grad

    All matvecs go through :func:`repro.stats.densities.rowmat` so every
    row is bit-stable under batching — the engine-equivalence contract.
    """

    def __init__(self, density: BayesPCDensity, affine, scales: np.ndarray):
        self.density = density
        self.neff = affine.N * scales[None, :]
        self.neff_t = np.ascontiguousarray(self.neff.T)
        self.x0 = affine.x0
        self.n_x = affine.N.shape[0]
        self.weff = density.W @ self.neff
        self.weff_t = np.ascontiguousarray(self.weff.T)
        self.ceff = density.W @ affine.x0 + density.offsets
        # stacked operators: one batched matvec maps y -> (x - x0, c' - ceff)
        # and one maps (prior grad, likelihood row grad) -> grad_y, halving
        # the dispatch count of the sampler's hottest call
        self.m_in = np.ascontiguousarray(np.vstack([self.neff, self.weff]))
        self.m_out = np.ascontiguousarray(np.hstack([self.neff_t, self.weff_t]))
        # multiplying by an all-ones count vector is the identity bit for
        # bit, so it can be skipped outright in the common case
        self.uniform_counts = bool(np.all(density.counts == 1.0))

    def batched(self, Y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        d = self.density
        k, lam = d.theta0, d.theta1
        if d.W.shape[0] == 0:
            X = self.x0[None, :] + rowmat(self.neff, Y)
            with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
                pivX = d.prior_inv_var[None, :] * X
                logp = -0.5 * (pivX * X).sum(axis=-1)
                return logp, rowmat(self.neff_t, -pivX)
        fused = rowmat(self.m_in, Y)
        X = self.x0[None, :] + fused[:, : self.n_x]
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            pivX = d.prior_inv_var[None, :] * X
            logp = -0.5 * (pivX * X).sum(axis=-1)
            cprime = fused[:, self.n_x :] + self.ceff[None, :]
            eps = cprime - d.costs[None, :]
            eps_min = eps.min(axis=-1)
            bad = np.minimum(eps_min, cprime.min(axis=-1)) < 0.0
            if k > 1.0:
                # the Weibull log-pdf diverges to -inf at eps = 0 for shape > 1
                bad = bad | (eps_min <= 1e-12)
            eps_safe = np.maximum(eps, 1e-12)
            cp_cens = np.maximum(cprime, d.truncation_floor)
            if k == 1.0:
                # exponential noise — the paper's default shape θ0 = 1:
                # every pdf term collapses to a linear expression, so this
                # lane runs no pow / log / exp besides one expm1 per row
                t_eps = eps_safe / lam
                log_pdf = (-math.log(lam)) - t_eps
                em = np.expm1(-(cp_cens / lam))
                pdf_cp = (1.0 + em) / lam
                dlog_pdf = -1.0 / lam  # scalar, broadcast into row_grad
            else:
                r = eps_safe / lam
                t_eps = r**k
                log_pdf = (
                    math.log(k) - k * math.log(lam) + (k - 1.0) * np.log(eps_safe) - t_eps
                )
                dlog_pdf = (k - 1.0) / eps_safe - (k / lam) * (t_eps / r)
                r_cp = cp_cens / lam
                t_cp = r_cp**k
                em = np.expm1(-t_cp)
                # exp(-t) == expm1(-t) + 1, reusing the expensive transcendental
                pdf_cp = (k / lam) * (t_cp / r_cp) * (1.0 + em)
            cdf_cp = -em
            log_cdf = np.log(cdf_cp)
            hazard = np.where(
                cprime > d.truncation_floor,
                pdf_cp / np.maximum(cdf_cp, 1e-300),
                0.0,
            )
            if self.uniform_counts:
                loglik = (log_pdf - log_cdf).sum(axis=-1)
                row_grad = dlog_pdf - hazard
            else:
                loglik = (d.counts[None, :] * (log_pdf - log_cdf)).sum(axis=-1)
                row_grad = d.counts[None, :] * (dlog_pdf - hazard)
            full = rowmat(self.m_out, np.concatenate([-pivX, row_grad], axis=1))
        good = ~bad & np.isfinite(loglik) & np.all(np.isfinite(full), axis=-1)
        out_logp = np.where(good, logp + loglik, -np.inf)
        out_grad = np.where(good[:, None], full, np.zeros(1))
        return out_logp, out_grad
