"""BayesWC — Bayesian inference on worst-case costs (Section 5.2).

The generative model (Eq. 5.12) is a log-location-scale survival model:

    β0, β, σ ~ Normal(0, γ0)            (i.i.d. prior)
    ε_i ~ g_noise(0, 1)                  (Gumbel-min by default)
    y_i = β0 + β·φ(V_i, v_i) + |σ|·ε_i
    c_i = exp(y_i) − shift

The ``shift`` (default 1) extends the paper's model to cost observations
that are exactly zero, which occur in benchmarks such as ZAlgorithm.
Posterior inference runs our HMC on the 2+F-dimensional unconstrained
posterior (features are standardized internally for good conditioning).

Given posterior draws θ_j, worst-case costs are simulated from the noise
model *truncated to lie above the observed maximum* at each size key
(Eqs. 5.10–5.11), which yields the soundness-with-respect-to-data and
robustness properties of Eq. (5.7) (Proposition 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np
from scipy.special import erf, erfinv

from .dataset import StatDataset
from ..config import AnalysisConfig, BayesWCConfig, SamplerConfig
from ..errors import InferenceError
from ..stats.densities import BatchedDensity, rowmat
from ..stats.distributions import GumbelMin, Logistic, Normal
from ..stats.hmc import HMCConfig, hmc_sample_chains

SizeKey = Tuple[int, ...]


class _StdNormalNoise:
    @staticmethod
    def logpdf(z):
        return -0.5 * (z * z) - 0.5 * math.log(2.0 * math.pi)

    @staticmethod
    def dlogpdf(z):
        return -z

    @staticmethod
    def logpdf_and_dlogpdf(z):
        return _StdNormalNoise.logpdf(z), -z

    @staticmethod
    def cdf(z):
        return 0.5 * (1.0 + erf(z / math.sqrt(2.0)))

    @staticmethod
    def ppf(u):
        return math.sqrt(2.0) * erfinv(2.0 * np.asarray(u, dtype=float) - 1.0)


class _GumbelMinNoise:
    _dist = GumbelMin()

    @staticmethod
    def logpdf(z):
        return z - np.exp(np.minimum(z, 700.0))

    @staticmethod
    def dlogpdf(z):
        return 1.0 - np.exp(np.minimum(z, 700.0))

    @staticmethod
    def logpdf_and_dlogpdf(z):
        # share the exp — it dominates the batched survival density
        ez = np.exp(np.minimum(z, 700.0))
        return z - ez, 1.0 - ez

    @staticmethod
    def cdf(z):
        return 1.0 - np.exp(-np.exp(z))

    @staticmethod
    def ppf(u):
        return _GumbelMinNoise._dist.ppf(u)


class _LogisticNoise:
    _dist = Logistic()

    @staticmethod
    def logpdf(z):
        return _LogisticNoise._dist.logpdf(z)

    @staticmethod
    def dlogpdf(z):
        return -np.tanh(np.asarray(z) / 2.0)

    @staticmethod
    def logpdf_and_dlogpdf(z):
        return _LogisticNoise.logpdf(z), _LogisticNoise.dlogpdf(z)

    @staticmethod
    def cdf(z):
        return _LogisticNoise._dist.cdf(z)

    @staticmethod
    def ppf(u):
        return _LogisticNoise._dist.ppf(u)


NOISE_MODELS = {
    "gumbel": _GumbelMinNoise,
    "normal": _StdNormalNoise,
    "logistic": _LogisticNoise,
}


@dataclass
class SurvivalModel:
    """The per-label survival regression, ready for HMC."""

    features: np.ndarray  # (n_obs, F) standardized
    log_costs: np.ndarray  # (n_obs,)
    feature_mean: np.ndarray
    feature_scale: np.ndarray
    gamma0: float
    noise: type
    shift: float

    @property
    def dim(self) -> int:
        return self.features.shape[1] + 2  # β0, β_1..F, σ

    def unpack(self, theta: np.ndarray):
        beta0 = theta[0]
        betas = theta[1:-1]
        sigma = abs(theta[-1])
        return beta0, betas, sigma

    def logdensity_and_grad(self, theta: np.ndarray) -> Tuple[float, np.ndarray]:
        beta0, betas, sigma_raw = theta[0], theta[1:-1], theta[-1]
        sigma = abs(sigma_raw)
        if sigma < 1e-8 or not np.all(np.abs(theta) < 1e150):
            return -np.inf, np.zeros_like(theta)
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            mu = beta0 + self.features @ betas
            z = (self.log_costs - mu) / sigma
            loglik = float(np.sum(self.noise.logpdf(z))) - self.log_costs.size * math.log(sigma)
            logprior = float(-0.5 * np.sum(theta**2) / self.gamma0**2)
            if not np.isfinite(loglik):
                return -np.inf, np.zeros_like(theta)
            dz = self.noise.dlogpdf(z)
            grad = np.zeros_like(theta)
            grad[0] = float(np.sum(-dz / sigma))
            grad[1:-1] = -(self.features.T @ dz) / sigma
            dsigma = float(np.sum(-z * dz / sigma) - self.log_costs.size / sigma)
            grad[-1] = dsigma * (1.0 if sigma_raw >= 0 else -1.0)
            grad += -theta / self.gamma0**2
        if not np.all(np.isfinite(grad)):
            return -np.inf, np.zeros_like(theta)
        return loglik + logprior, grad

    def batched_density(self) -> "SurvivalDensity":
        """Precompiled batched log-density for the sampler engines."""
        return SurvivalDensity(self)

    def standardize(self, raw_features: np.ndarray) -> np.ndarray:
        return (raw_features - self.feature_mean) / self.feature_scale

    def location(self, theta: np.ndarray, size_key: SizeKey) -> float:
        beta0, betas, _sigma = self.unpack(theta)
        x = self.standardize(np.asarray(size_key, dtype=float))
        return float(beta0 + x @ betas)


class SurvivalDensity(BatchedDensity):
    """Fused batched survival log-density: one call per sampler step.

    Evaluates a whole ``(rows, dim)`` batch of parameter vectors with a
    fixed count of numpy dispatches — the per-step cost of the samplers
    is dispatch-bound at these data sizes, so fusing the model into one
    batched evaluation (instead of one scalar closure call per chain) is
    where the lockstep engine's speedup comes from.  All reductions are
    last-axis sums over precomputed transposed factors, keeping every row
    bit-stable under batching (see :mod:`repro.stats.densities`); the
    row-loop scalar method :meth:`SurvivalModel.logdensity_and_grad` is
    retained for finite-difference tests but no longer drives sampling.
    """

    def __init__(self, model: SurvivalModel):
        self.model = model
        # (F, n_obs) so per-feature sums over observations are last-axis
        self.features_t = np.ascontiguousarray(model.features.T)
        self.log_costs = model.log_costs
        self.n_obs = model.log_costs.size
        self.inv_gamma_sq = 1.0 / model.gamma0**2
        self.noise = model.noise

    def batched(self, Theta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        sigma_raw = Theta[:, -1]
        sigma = np.abs(sigma_raw)
        # overflow-sized coefficients propagate to a non-finite loglik or
        # gradient and are caught by the `good` mask at the end, so the
        # only up-front validity gate the math needs is a usable sigma
        ok = sigma >= 1e-8
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            betas = Theta[:, 1:-1]
            # mu[r, i] = beta0_r + features[i] · betas_r
            mu = Theta[:, 0][:, None] + rowmat(self.model.features, betas)
            inv_sigma = np.where(ok, 1.0 / sigma, 0.0)
            neg_inv_sigma = -inv_sigma
            z = (self.log_costs[None, :] - mu) * inv_sigma[:, None]
            lp_z, dz = self.noise.logpdf_and_dlogpdf(z)
            loglik = lp_z.sum(axis=-1) - self.n_obs * np.log(sigma)
            logprior = -0.5 * (Theta * Theta).sum(axis=-1) * self.inv_gamma_sq
            g0 = dz.sum(axis=-1) * neg_inv_sigma
            gbetas = rowmat(self.features_t, dz) * neg_inv_sigma[:, None]
            dsigma = (z * dz).sum(axis=-1) * neg_inv_sigma - self.n_obs * inv_sigma
            gsigma = np.where(sigma_raw >= 0, dsigma, -dsigma)
            full = np.concatenate(
                [g0[:, None], gbetas, gsigma[:, None]], axis=-1
            ) - Theta * self.inv_gamma_sq
            good = ok & np.isfinite(loglik) & np.all(np.isfinite(full), axis=-1)
            logp = np.where(good, loglik + logprior, -np.inf)
            grad = np.where(good[:, None], full, 0.0)
        return logp, grad


def build_survival_model(ds: StatDataset, config: BayesWCConfig) -> SurvivalModel:
    if not len(ds):
        raise InferenceError(f"no observations for label {ds.label!r}")
    raw = np.array(ds.size_keys(), dtype=float)
    costs = np.array([obs.cost for obs in ds.observations], dtype=float)
    if np.any(costs + config.cost_shift <= 0):
        raise InferenceError("costs must satisfy cost + shift > 0")
    log_costs = np.log(costs + config.cost_shift)
    mean = raw.mean(axis=0)
    scale = raw.std(axis=0)
    scale[scale < 1e-9] = 1.0
    features = (raw - mean) / scale
    noise = NOISE_MODELS.get(config.noise)
    if noise is None:
        raise InferenceError(f"unknown noise model {config.noise!r}")
    return SurvivalModel(
        features, log_costs, mean, scale, config.gamma0, noise, config.cost_shift
    )


@dataclass
class WorstCaseSamples:
    """M posterior batches of simulated worst-case costs per size key (Eq. 5.8)."""

    label: str
    samples: Dict[SizeKey, np.ndarray]  # each array has length M
    theta_draws: np.ndarray
    accept_rate: float
    divergences: int = 0
    retries: int = 0
    chain_diagnostics: List[Dict[str, float]] = field(default_factory=list)

    @property
    def num_samples(self) -> int:
        key = next(iter(self.samples))
        return self.samples[key].size

    def batch(self, j: int) -> Dict[SizeKey, float]:
        """The j-th list c'_j = (c'_{n,j} ; n ∈ N_D)."""
        return {key: float(values[j]) for key, values in self.samples.items()}


def infer_worst_case_samples(
    ds: StatDataset,
    config: AnalysisConfig,
    rng: np.random.Generator,
) -> WorstCaseSamples:
    """Posterior worst-case-cost simulation for one stat label.

    Runs HMC on the survival posterior, thins to M draws, then simulates
    one worst-case cost above the observed max per (draw, size key).
    """
    model = build_survival_model(ds, config.bayeswc)
    sampler: SamplerConfig = config.sampler
    M = config.num_posterior_samples
    per_chain = max(64, math.ceil(M / sampler.n_chains))
    hmc_config = HMCConfig(
        n_samples=per_chain,
        n_warmup=sampler.n_warmup,
        n_leapfrog=sampler.n_leapfrog,
        initial_step_size=max(sampler.initial_step_size, 0.02),
        target_accept=sampler.target_accept,
    )
    initials = []
    # moment-based starting points: regression through the data + jitter
    y_mean = float(model.log_costs.mean())
    y_std = float(model.log_costs.std() or 1.0)
    for _ in range(sampler.n_chains):
        start = np.zeros(model.dim)
        start[0] = y_mean + rng.normal(0, 0.1)
        start[-1] = max(y_std, 0.1) * math.exp(rng.normal(0, 0.1))
        initials.append(start)
    if sampler.algorithm == "nuts":
        from ..stats.nuts import nuts_sample_chains

        result = nuts_sample_chains(
            model.logdensity_and_grad, initials, hmc_config, rng, fault_key=ds.label
        )
    else:
        # precompiled batched density: one fused evaluation per sampler
        # step for the whole chain batch (the NUTS tree is inherently
        # scalar, so that path keeps the per-point closure)
        result = hmc_sample_chains(
            model.batched_density(), initials, hmc_config, rng, fault_key=ds.label
        )
    draws = result.samples
    idx = np.linspace(0, draws.shape[0] - 1, M).astype(int)
    thetas = draws[idx]

    max_costs = ds.max_costs()
    shift = model.shift
    samples: Dict[SizeKey, np.ndarray] = {}
    for key, cmax in max_costs.items():
        low_y = math.log(cmax + shift)
        out = np.empty(M)
        for j, theta in enumerate(thetas):
            _b0, _b, sigma = model.unpack(theta)
            mu = model.location(theta, key)
            z_low = (low_y - mu) / sigma
            u_low = float(model.noise.cdf(z_low))
            u = rng.uniform(u_low, 1.0)
            u = min(max(u, u_low), 1.0 - 1e-12)
            y = mu + sigma * float(model.noise.ppf(u))
            # numerical guard: the simulated worst case can never be below
            # the observed maximum (Eq. 5.7, left)
            out[j] = max(math.exp(min(y, 700.0)) - shift, cmax)
        samples[key] = out
    return WorstCaseSamples(
        ds.label,
        samples,
        thetas,
        result.accept_rate,
        divergences=result.divergences,
        retries=result.retries,
        chain_diagnostics=list(result.chain_diagnostics),
    )
