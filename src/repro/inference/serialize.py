"""JSON (de)serialization for datasets, bounds, and analysis results.

The paper's artifact separates data collection from analysis: runtime cost
data is generated once and re-analyzed under many configurations.  These
helpers make that workflow concrete: datasets round-trip through JSON
(values encoded structurally), and posterior results can be archived with
their bounds and diagnostics.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .dataset import Observation, RuntimeDataset, StatDataset
from .posterior import PosteriorResult
from ..aara.annot import ABase, AList, AProd, ASum, AnnType
from ..aara.bound import ResourceBound
from ..errors import DatasetError
from ..lang import ast as A
from ..lang.values import VInl, VInr, VList, VTuple, VUnit, Value
from ..lp import LinExpr

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


def value_to_json(value: Value) -> Any:
    if isinstance(value, bool):
        return {"b": value}
    if isinstance(value, int):
        return value
    if isinstance(value, VUnit):
        return {"u": 0}
    if isinstance(value, VList):
        return [value_to_json(v) for v in value.items]
    if isinstance(value, VTuple):
        return {"t": [value_to_json(v) for v in value.items]}
    if isinstance(value, VInl):
        return {"l": value_to_json(value.value)}
    if isinstance(value, VInr):
        return {"r": value_to_json(value.value)}
    raise DatasetError(f"cannot serialize value {value!r}")


def value_from_json(data: Any) -> Value:
    if isinstance(data, bool):
        return data
    if isinstance(data, int):
        return data
    if isinstance(data, list):
        return VList(tuple(value_from_json(v) for v in data))
    if isinstance(data, dict):
        if "b" in data:
            return bool(data["b"])
        if "u" in data:
            return VUnit()
        if "t" in data:
            return VTuple(tuple(value_from_json(v) for v in data["t"]))
        if "l" in data:
            return VInl(value_from_json(data["l"]))
        if "r" in data:
            return VInr(value_from_json(data["r"]))
    raise DatasetError(f"cannot deserialize value from {data!r}")


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------


def dataset_to_json(dataset: RuntimeDataset) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "num_runs": dataset.num_runs,
        "labels": {
            label: [
                {
                    "env": [[name, value_to_json(v)] for name, v in obs.env],
                    "value": value_to_json(obs.value),
                    "cost": obs.cost,
                }
                for obs in ds.observations
            ]
            for label, ds in dataset.per_label.items()
        },
    }


def dataset_from_json(data: Dict[str, Any]) -> RuntimeDataset:
    if data.get("version") != FORMAT_VERSION:
        raise DatasetError(f"unsupported dataset format version {data.get('version')}")
    dataset = RuntimeDataset(num_runs=int(data.get("num_runs", 0)))
    for label, observations in data["labels"].items():
        ds = StatDataset(label)
        for entry in observations:
            env = tuple(
                (name, value_from_json(v)) for name, v in entry["env"]
            )
            ds.observations.append(
                Observation(env, value_from_json(entry["value"]), float(entry["cost"]))
            )
        dataset.per_label[label] = ds
    return dataset


def save_dataset(dataset: RuntimeDataset, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(dataset_to_json(dataset), handle)


def load_dataset(path: str) -> RuntimeDataset:
    with open(path) as handle:
        return dataset_from_json(json.load(handle))


# ---------------------------------------------------------------------------
# Annotations and bounds
# ---------------------------------------------------------------------------


def _ann_to_json(ann: AnnType) -> Any:
    if isinstance(ann, ABase):
        return {"base": str(ann.base)}
    if isinstance(ann, AProd):
        return {"prod": [_ann_to_json(item) for item in ann.items]}
    if isinstance(ann, ASum):
        return {
            "sum": [
                _ann_to_json(ann.left),
                ann.left_const.const,
                _ann_to_json(ann.right),
                ann.right_const.const,
            ]
        }
    if isinstance(ann, AList):
        return {
            "list": [c.const for c in ann.coeffs],
            "elem": _ann_to_json(ann.elem),
        }
    raise DatasetError(f"cannot serialize annotation {ann!r}")


_BASES = {"unit": A.UNIT, "int": A.INT, "bool": A.BOOL}


def _ann_from_json(data: Any) -> AnnType:
    if "base" in data:
        return ABase(_BASES[data["base"]])
    if "prod" in data:
        return AProd(tuple(_ann_from_json(item) for item in data["prod"]))
    if "sum" in data:
        left, lc, right, rc = data["sum"]
        return ASum(
            _ann_from_json(left),
            LinExpr.constant(lc),
            _ann_from_json(right),
            LinExpr.constant(rc),
        )
    if "list" in data:
        return AList(
            tuple(LinExpr.constant(c) for c in data["list"]),
            _ann_from_json(data["elem"]),
        )
    raise DatasetError(f"cannot deserialize annotation from {data!r}")


def bound_to_json(bound: ResourceBound) -> Dict[str, Any]:
    return {
        "fname": bound.fname,
        "p0": bound.p0,
        "params": [_ann_to_json(p) for p in bound.params],
    }


def bound_from_json(data: Dict[str, Any]) -> ResourceBound:
    return ResourceBound(
        data["fname"],
        tuple(_ann_from_json(p) for p in data["params"]),
        float(data["p0"]),
    )


# ---------------------------------------------------------------------------
# Posterior results
# ---------------------------------------------------------------------------


def result_to_json(result: PosteriorResult) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "method": result.method,
        "mode": result.mode,
        "runtime_seconds": result.runtime_seconds,
        "failures": result.failures,
        "diagnostics": dict(result.diagnostics),
        "chain_diagnostics": [dict(d) for d in result.chain_diagnostics],
        "bounds": [bound_to_json(b) for b in result.bounds],
    }


def result_from_json(data: Dict[str, Any]) -> PosteriorResult:
    if data.get("version") != FORMAT_VERSION:
        raise DatasetError(f"unsupported result format version {data.get('version')}")
    return PosteriorResult(
        method=data["method"],
        mode=data["mode"],
        bounds=[bound_from_json(b) for b in data["bounds"]],
        runtime_seconds=float(data["runtime_seconds"]),
        failures=int(data.get("failures", 0)),
        diagnostics={k: float(v) for k, v in data.get("diagnostics", {}).items()},
        chain_diagnostics=[
            {k: float(v) for k, v in d.items()}
            for d in data.get("chain_diagnostics", [])
        ],
    )


def save_result(result: PosteriorResult, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(result_to_json(result), handle)


def load_result(path: str) -> PosteriorResult:
    with open(path) as handle:
        return result_from_json(json.load(handle))
