"""Data-driven and hybrid resource analyses (Opt, BayesWC, BayesPC)."""

from .bayespc import BayesPCDensity, LikelihoodRow
from .bayeswc import (
    SurvivalModel,
    WorstCaseSamples,
    build_survival_model,
    infer_worst_case_samples,
)
from .dataset import (
    Observation,
    RuntimeDataset,
    StatDataset,
    collect_dataset,
    dataset_from_results,
)
from .hybrid import (
    SiteCollector,
    SiteOccurrence,
    classify_mode,
    make_data_handler,
    run_analysis,
    run_bayespc,
    run_bayeswc,
    run_opt,
)
from .hyperparams import (
    BayesPCHyperparams,
    gamma0_from_opt,
    resolve_bayespc_hyperparams,
    theta1_from_gaps,
)
from .posterior import PosteriorResult

__all__ = [
    "BayesPCDensity",
    "LikelihoodRow",
    "SurvivalModel",
    "WorstCaseSamples",
    "build_survival_model",
    "infer_worst_case_samples",
    "Observation",
    "RuntimeDataset",
    "StatDataset",
    "collect_dataset",
    "dataset_from_results",
    "SiteCollector",
    "SiteOccurrence",
    "classify_mode",
    "make_data_handler",
    "run_analysis",
    "run_bayespc",
    "run_bayeswc",
    "run_opt",
    "BayesPCHyperparams",
    "gamma0_from_opt",
    "resolve_bayespc_hyperparams",
    "theta1_from_gaps",
    "PosteriorResult",
]
