"""Empirical-Bayes hyperparameter selection (Appendix B).

BayesWC uses a fixed prior scale γ0 = 5 for all benchmarks (App. B.1).
For BayesPC, the prior scale γ0 and the Weibull noise scale θ1 are
derived from a preliminary (Data-Driven or Hybrid) **Opt** run:

* γ0 = (8/15)·max{p_1, …, p_D} + 4/5           (Eq. B.5), where the p_i
  are the highest-degree resource coefficients of the Opt solution's root
  typing context;
* θ1 = (1100/188.7)·ε_α + 100                  (Eq. B.9), where ε_α is the
  α = 90th percentile of the Opt solution's cost gaps at the stat sites
  (Eq. B.8, taken relative to the observed costs).

The Weibull shape θ0 is 1.0–1.5 per benchmark in the paper; our
:class:`~repro.config.BayesPCConfig` carries it directly and benchmark
specs override it where the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..aara.analyze import Analysis
from ..aara.annot import coeffs_by_degree
from ..config import BayesPCConfig
from ..lp import LPSolution


@dataclass(frozen=True)
class BayesPCHyperparams:
    gamma0: float
    theta0: float
    theta1: float


def gamma0_from_opt(analysis: Analysis, solution: LPSolution) -> float:
    """Eq. (B.5): γ0 from the top-degree coefficients of the Opt bound."""
    top: List[float] = []
    max_degree = 0
    pairs = []
    for ann in analysis.signature.params:
        for degree, coeff in coeffs_by_degree(ann):
            pairs.append((degree, solution.value(coeff)))
            max_degree = max(max_degree, degree)
    top = [value for degree, value in pairs if degree == max_degree]
    peak = max(top) if top else 0.0
    return (8.0 / 15.0) * peak + 4.0 / 5.0


def theta1_from_gaps(gaps: Sequence[float], alpha: float = 90.0) -> float:
    """Eq. (B.9): θ1 from the α-percentile Opt cost gap at the stat sites."""
    if len(gaps) == 0:
        eps = 0.0
    else:
        eps = float(np.percentile(np.asarray(gaps, dtype=float), alpha))
    return (1100.0 / 188.7) * max(eps, 0.0) + 100.0


def resolve_bayespc_hyperparams(
    config: BayesPCConfig,
    analysis: Analysis,
    opt_solution: LPSolution,
    opt_gaps: Sequence[float],
) -> BayesPCHyperparams:
    """Fill unset hyperparameters using the empirical-Bayes procedure."""
    gamma0 = config.gamma0 if config.gamma0 is not None else gamma0_from_opt(analysis, opt_solution)
    theta1 = config.theta1 if config.theta1 is not None else theta1_from_gaps(opt_gaps)
    return BayesPCHyperparams(gamma0=max(gamma0, 1e-3), theta0=config.theta0, theta1=max(theta1, 1e-3))
