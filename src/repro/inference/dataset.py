"""Runtime-cost datasets and size projections (Sections 3.3 and 5.4).

A :class:`RuntimeDataset` groups the interpreter's stat records by label:
``D = {(ℓ, V, v, c)}``.  The size projection ``φ(V, v)`` flattens an
environment and result value into a tuple of integers (list lengths and
total nested sizes), which indexes worst-case-cost groups in BayesWC and
provides regression features.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .. import telemetry
from ..errors import DatasetError
from ..lang import ast as A
from ..lang.interp import EvalResult, Interpreter, StatRecord
from ..lang.values import Value, sizes_of


@dataclass(frozen=True)
class Observation:
    """One measurement ``(V, v, c)`` at a stat site."""

    env: Tuple[Tuple[str, Value], ...]
    value: Value
    cost: float

    def env_dict(self) -> Dict[str, Value]:
        return dict(self.env)

    def size_key(self) -> Tuple[int, ...]:
        """The projection φ(V, v): env sizes (by variable name) + result sizes."""
        key: Tuple[int, ...] = ()
        for _name, value in self.env:
            key += sizes_of(value)
        key += sizes_of(self.value)
        return key


@dataclass
class StatDataset:
    """All observations for one stat label."""

    label: str
    observations: List[Observation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self):
        return iter(self.observations)

    def size_keys(self) -> List[Tuple[int, ...]]:
        return [obs.size_key() for obs in self.observations]

    def unique_sizes(self) -> List[Tuple[int, ...]]:
        """``N_D`` — the distinct size keys, in first-seen order (Eq. 5.4)."""
        seen: "OrderedDict[Tuple[int, ...], None]" = OrderedDict()
        for obs in self.observations:
            seen.setdefault(obs.size_key(), None)
        return list(seen.keys())

    def grouped_by_size(self) -> "OrderedDict[Tuple[int, ...], List[Observation]]":
        groups: "OrderedDict[Tuple[int, ...], List[Observation]]" = OrderedDict()
        for obs in self.observations:
            groups.setdefault(obs.size_key(), []).append(obs)
        return groups

    def max_costs(self) -> Dict[Tuple[int, ...], float]:
        """``ĉ_n^max`` — the maximum observed cost at each size key (Eq. 5.5)."""
        out: Dict[Tuple[int, ...], float] = {}
        for obs in self.observations:
            key = obs.size_key()
            out[key] = max(out.get(key, float("-inf")), obs.cost)
        return out

    def feature_dim(self) -> int:
        if not self.observations:
            raise DatasetError(f"empty dataset for label {self.label!r}")
        dims = {len(obs.size_key()) for obs in self.observations}
        if len(dims) != 1:
            raise DatasetError(
                f"inconsistent size-projection arity for label {self.label!r}: {sorted(dims)}"
            )
        return dims.pop()


@dataclass
class RuntimeDataset:
    """Datasets for every stat label of a program: ``D = ∪_ℓ D_ℓ``."""

    per_label: Dict[str, StatDataset] = field(default_factory=dict)
    #: how many top-level executions produced this dataset
    num_runs: int = 0

    def __getitem__(self, label: str) -> StatDataset:
        if label not in self.per_label:
            raise DatasetError(f"no runtime data for stat label {label!r}")
        return self.per_label[label]

    def __contains__(self, label: str) -> bool:
        return label in self.per_label

    def labels(self) -> List[str]:
        return list(self.per_label.keys())

    def total_observations(self) -> int:
        return sum(len(ds) for ds in self.per_label.values())

    def add_record(self, record: StatRecord) -> None:
        ds = self.per_label.setdefault(record.label, StatDataset(record.label))
        ds.observations.append(Observation(record.env, record.value, record.cost))

    def merge(self, other: "RuntimeDataset") -> None:
        for label, ds in other.per_label.items():
            target = self.per_label.setdefault(label, StatDataset(label))
            target.observations.extend(ds.observations)
        self.num_runs += other.num_runs


def dataset_from_results(results: Iterable[EvalResult]) -> RuntimeDataset:
    dataset = RuntimeDataset()
    for result in results:
        dataset.num_runs += 1
        for record in result.stat_records:
            dataset.add_record(record)
    return dataset


def collect_dataset(
    program: A.Program,
    fname: str,
    inputs: Sequence[Sequence[Value]],
    budget=None,
) -> RuntimeDataset:
    """Run ``fname`` over all input vectors and collect stat measurements.

    This is the data-collection judgment of Eq. (3.3): independent
    executions sweeping through the environments, collecting one
    measurement per dynamic evaluation of each statℓ subexpression.

    ``budget`` (an :class:`~repro.config.ExecutionBudget`) fuels each run:
    one hostile execution raises
    :class:`~repro.errors.BudgetExceededError`, aborting this *cell* with
    ``failure_stage='eval-budget'`` — the worker process survives.
    """
    interp = Interpreter(
        program,
        collect_stats=True,
        max_steps=getattr(budget, "eval_steps", None),
        max_call_depth=getattr(budget, "eval_call_depth", None),
        max_value_size=getattr(budget, "eval_value_size", None),
    )
    dataset = RuntimeDataset()
    with telemetry.span("data.collect", fname=fname, runs=len(inputs)) as tspan:
        for args in inputs:
            result = interp.run(fname, list(args))
            dataset.num_runs += 1
            for record in result.stat_records:
                dataset.add_record(record)
        tspan.set(
            observations=dataset.total_observations(),
            eval_steps=interp.eval_steps,
            tick_ops=interp.tick_ops,
        )
        telemetry.counter("interp.eval_steps", interp.eval_steps)
        telemetry.counter("interp.tick_ops", interp.tick_ops)
    if not dataset.per_label:
        raise DatasetError(
            f"no stat records collected running {fname!r} — does the program "
            "contain Raml.stat annotations on code the inputs exercise?"
        )
    return dataset
