"""Mid-chain checkpointing for the MCMC samplers (durable runs).

A paper-scale evaluation cell spends nearly all of its wall clock inside
one of the three samplers (HMC, NUTS, reflective HMC).  When the parent
process is SIGTERMed or the host dies, the run journal
(:mod:`repro.evalharness.journal`) lets ``bench resume`` skip *completed*
cells — but without checkpointing, an interrupted cell restarts its
chains from iteration zero.  This module snapshots chain state
periodically so a resumed cell continues exactly where it stopped.

A checkpoint captures *everything* the chain loop needs: the current
position (and its cached log-density/gradient), the step size, the
dual-averaging adapter internals, the iteration index, the draws
collected so far, and — crucially — the rng bit-generator state.  A
chain restored from a checkpoint therefore consumes the random stream
identically to an uninterrupted chain, so resumed runs produce
**rng-identical posteriors** (the interrupted≡uninterrupted counterpart
of the telemetry layer's traced≡untraced property).

Activation mirrors :mod:`repro.telemetry`: off by default (the samplers
pay a single ``None`` test per chain), enabled explicitly via
:func:`enable` or through the ``REPRO_CHECKPOINT=<dir>`` environment
variable, which the eval runner sets from the run journal's
``checkpoints/`` directory so forked pool workers inherit it.  Inside a
worker, :func:`task_scope` namespaces chain files per grid cell.

Checkpoint files are JSON (Python's float repr round-trips doubles
exactly, and numpy bit-generator states are plain int dicts), written
atomically (unique temp file + ``os.replace``) so a kill mid-write can
never tear a snapshot — the previous snapshot simply survives.  Each
file embeds a *fingerprint* of the sampler configuration, the chain key,
the start point, and the healing-restart index; a stale snapshot from a
different configuration is ignored rather than trusted.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

import numpy as np

from . import telemetry

#: environment variable naming the checkpoint directory (workers inherit)
ENV_CHECKPOINT = "REPRO_CHECKPOINT"
#: iterations between snapshots (override via env for tests / long chains)
ENV_INTERVAL = "REPRO_CHECKPOINT_INTERVAL"
DEFAULT_INTERVAL = 50

_dir: Optional[str] = None
_task_dir: Optional[str] = None
_interval: int = DEFAULT_INTERVAL
_env_seen: Optional[str] = None


def enabled() -> bool:
    """Is checkpointing active for this process?"""
    return _dir is not None


def enable(directory: os.PathLike, interval: Optional[int] = None) -> None:
    """Activate checkpointing, writing chain snapshots under ``directory``."""
    global _dir, _interval
    _dir = str(directory)
    os.makedirs(_dir, exist_ok=True)
    if interval is not None:
        _interval = max(1, int(interval))
    else:
        _interval = max(1, int(os.environ.get(ENV_INTERVAL, DEFAULT_INTERVAL)))


def disable() -> None:
    """Deactivate checkpointing (task scopes become no-ops)."""
    global _dir, _task_dir, _env_seen
    _dir = None
    _task_dir = None
    _env_seen = None


def ensure_from_env() -> bool:
    """Enable (or re-point) from ``REPRO_CHECKPOINT`` if set.

    Called once per task on the worker side.  Unlike a plain "enable
    once" latch this tracks the env value, so two journalled runs in one
    process (tests, ``bench resume`` after ``bench``) never write into a
    stale directory.
    """
    global _env_seen
    value = os.environ.get(ENV_CHECKPOINT) or None
    if value == _env_seen:
        return _dir is not None
    _env_seen = value
    if value:
        enable(value)
        return True
    disable()
    return False


def _sanitize(task_id: str) -> str:
    return task_id.replace("/", "__")


@contextlib.contextmanager
def task_scope(task_id: str):
    """Namespace chain checkpoints under one grid cell (worker-side)."""
    global _task_dir
    if _dir is None:
        yield
        return
    previous = _task_dir
    _task_dir = os.path.join(_dir, _sanitize(task_id))
    try:
        yield
    finally:
        _task_dir = previous


# ---------------------------------------------------------------------------
# JSON-safe state helpers
# ---------------------------------------------------------------------------


def rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """The generator's bit-generator state (plain ints — JSON-safe)."""
    return rng.bit_generator.state


def restore_rng(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Rewind ``rng`` to a captured bit-generator state."""
    rng.bit_generator.state = state


def array_sha(values: np.ndarray) -> str:
    """Identity hash of a float array (fingerprints chain start points)."""
    data = np.ascontiguousarray(np.asarray(values, dtype=float))
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


class ChainCheckpoint:
    """Cursor for one chain's snapshot file.

    ``load`` returns the saved state only when the embedded fingerprint
    matches; ``save`` publishes atomically and degrades to a no-op after
    the first I/O failure (a full disk must never crash the sampler —
    the run merely loses resumability for this chain).
    """

    def __init__(self, path: str, fingerprint: Dict[str, Any], interval: int):
        self.path = path
        self.fingerprint = fingerprint
        self.interval = max(1, int(interval))
        self._broken = False

    def due(self, iteration: int) -> bool:
        """Snapshot at this iteration? (never at 0 — nothing to save yet)"""
        return iteration > 0 and iteration % self.interval == 0

    def load(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.path, "r") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("fingerprint") != self.fingerprint:
            return None
        state = payload.get("state")
        if not isinstance(state, dict) or "status" not in state:
            return None
        telemetry.counter(
            "checkpoint.restored",
            1,
            status=state.get("status"),
            iteration=state.get("iteration", -1),
        )
        return state

    def save(self, state: Dict[str, Any]) -> None:
        if self._broken:
            return
        payload = {"fingerprint": self.fingerprint, "state": state}
        blob = json.dumps(payload)
        directory = os.path.dirname(self.path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(blob)
                os.replace(tmp, self.path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except OSError:
            # full disk / revoked permissions: checkpointing only ever
            # observes, so it must degrade silently rather than kill a
            # chain that would otherwise finish
            self._broken = True
            telemetry.counter("checkpoint.errors", 1)
            return
        telemetry.counter(
            "checkpoint.written", 1, status=state.get("status"), iteration=state.get("iteration", -1)
        )

    def clear(self) -> None:
        with contextlib.suppress(OSError):
            os.unlink(self.path)


def chain_cursor(
    key: Optional[str],
    config,
    start: np.ndarray,
    engine: Optional[str] = None,
) -> Optional[ChainCheckpoint]:
    """A checkpoint cursor for one chain, or None when inactive.

    The fingerprint covers the chain key, the full sampler config
    (including the healing ``restart_index``, so each self-healing
    attempt gets its own snapshot file) and a hash of the start point;
    the file name is a digest of the fingerprint, so mismatched
    configurations can never clobber each other's snapshots.  When the
    caller passes its sampler ``engine`` name (``batched``/``perchain``)
    it joins the fingerprint too: the engines produce bit-identical
    chains, but a resume must still never silently mix engine labels —
    diagnosing a cross-engine discrepancy requires knowing which engine
    produced every draw of a chain.
    """
    if key is None or _dir is None or _task_dir is None:
        return None
    fingerprint = {
        "key": key,
        "start_sha": array_sha(start),
        "config": dataclasses.asdict(config),
    }
    if engine is not None:
        fingerprint["engine"] = engine
    digest = hashlib.sha256(
        json.dumps(fingerprint, sort_keys=True, default=str).encode()
    ).hexdigest()[:24]
    path = os.path.join(_task_dir, f"{digest}.ckpt.json")
    return ChainCheckpoint(path, fingerprint, _interval)
