"""Linear-programming substrate: expressions, problems, HiGHS solving."""

from .expr import LinExpr, ZERO, as_expr
from .problem import Constraint, LPProblem
from .solver import LPSolution, feasible_point, solve_lexicographic, solve_min

__all__ = [
    "LinExpr",
    "ZERO",
    "as_expr",
    "Constraint",
    "LPProblem",
    "LPSolution",
    "solve_lexicographic",
    "solve_min",
    "feasible_point",
]
