"""Linear expressions over named LP variables.

A :class:`LinExpr` is an immutable-ish mapping ``var -> coefficient`` plus a
constant.  All resource coefficients in AARA and the data-driven analyses
are represented this way, so potential bookkeeping is ordinary arithmetic:

>>> x, y = LinExpr.var("x"), LinExpr.var("y")
>>> str(2 * x + y + 1)
'2*x + y + 1'
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, float]


class LinExpr:
    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[str, float] | None = None, const: float = 0.0):
        self.coeffs: Dict[str, float] = {}
        if coeffs:
            for name, coef in coeffs.items():
                if coef != 0:
                    self.coeffs[name] = float(coef)
        self.const = float(const)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def var(name: str) -> "LinExpr":
        return LinExpr({name: 1.0})

    @staticmethod
    def constant(value: Number) -> "LinExpr":
        return LinExpr({}, float(value))

    @staticmethod
    def total(terms: Iterable["LinExpr | Number"]) -> "LinExpr":
        acc = LinExpr()
        for term in terms:
            acc = acc + term
        return acc

    # -- arithmetic ----------------------------------------------------------

    def _coerce(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, (int, float)):
            return LinExpr.constant(other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other) -> "LinExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        coeffs = dict(self.coeffs)
        for name, coef in other.coeffs.items():
            coeffs[name] = coeffs.get(name, 0.0) + coef
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-1.0) * other

    def __rsub__(self, other) -> "LinExpr":
        return self._coerce(other) - self

    def __mul__(self, scalar) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return LinExpr({k: v * scalar for k, v in self.coeffs.items()}, self.const * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- inspection ----------------------------------------------------------

    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> Tuple[str, ...]:
        return tuple(self.coeffs.keys())

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        return self.const + sum(coef * assignment.get(name, 0.0) for name, coef in self.coeffs.items())

    def __eq__(self, other) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self):
        return hash((frozenset(self.coeffs.items()), self.const))

    def __str__(self) -> str:
        parts = []
        for name in sorted(self.coeffs):
            coef = self.coeffs[name]
            if coef == 1.0:
                parts.append(name)
            elif coef == -1.0:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coef:g}*{name}")
        if self.const or not parts:
            parts.append(f"{self.const:g}")
        return " + ".join(parts).replace("+ -", "- ")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinExpr({self})"


ZERO = LinExpr()


def as_expr(value: Union[LinExpr, Number]) -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr.constant(value)
